//! Figure 7 — Comparison with other ML systems.
//!
//! The paper grounds its Local/Fed-LAN numbers against Scikit-learn
//! (K-Means, PCA) and TensorFlow (FFN, CNN). Those systems are not
//! runnable here; per DESIGN.md §4 they are replaced by *specialized
//! single-algorithm Rust baselines* (`exdra_ml::baselines` and the direct
//! mini-batch trainer) that skip the declarative instruction/plan layer —
//! the same structural advantage sklearn/TF hold over SystemDS. The paper
//! reports mixed results within roughly 2x either way.
//!
//! `cargo run -p exdra-bench --bin fig7_systems --release [-- --quick]`

use exdra_bench::*;
use exdra_core::Tensor;
use exdra_ml::baselines;
use exdra_ml::nn::{train_local, Network, Sgd};
use exdra_ml::{kmeans, pca, synth};
use exdra_paramserv::balance::BalanceStrategy;
use exdra_paramserv::{fed as psfed, local as pslocal, PsConfig};

fn main() {
    obs_init();
    let cfg = BenchConfig::from_args();
    let workers = 3usize;
    println!(
        "Figure 7 | X: {}x{} | Fed LAN with {} workers | reps {}",
        cfg.rows, cfg.cols, workers, cfg.reps
    );
    let x = paper_matrix(cfg.rows, cfg.cols, 1);
    let y_cls = paper_class_labels(&x, 3, 2);
    let y_cls_1h = synth::one_hot(&y_cls, 3);
    let cnn_rows = (cfg.rows / 10).clamp(512, 60_000);
    let (x_img, y_img) = synth::images(cnn_rows, 28, 10, 3);
    let y_img_1h = synth::one_hot(&y_img, 10);

    let (ctx, ws) = federation(workers, NetSetting::Lan, cfg.wan_profile());
    let fed = scatter(&ctx, &ws, &x);
    let fed_img = scatter(&ctx, &ws, &x_img);

    let mut table = Table::new(
        "Figure 7: generic system vs specialized baselines",
        &[
            "algorithm",
            "baseline*",
            "ExDRa Local",
            "ExDRa Fed LAN",
            "Local/baseline",
        ],
    );

    // --- K-Means vs direct Lloyd (sklearn stand-in) ----------------------
    {
        let iters = 5usize;
        let (t_base, _) = time_reps(cfg.reps, || {
            baselines::kmeans_direct(&x, 50, iters, 9).expect("baseline");
        });
        let params = kmeans::KMeansParams {
            k: 50,
            max_iter: iters,
            runs: 1,
            tol: 0.0,
            seed: 9,
        };
        let (t_local, _) = time_reps(cfg.reps, || {
            kmeans::kmeans(&Tensor::Local(x.clone()), &params).expect("sys");
        });
        let (t_fed, _) = time_reps(cfg.reps, || {
            kmeans::kmeans(&Tensor::Fed(fed.clone()), &params).expect("sys fed");
        });
        table.row(&[
            "K-Means".into(),
            secs(t_base),
            secs(t_local),
            secs(t_fed),
            format!("{:.1}x", t_local / t_base),
        ]);
    }

    // --- PCA vs direct covariance PCA (sklearn stand-in) -----------------
    {
        let (t_base, _) = time_reps(cfg.reps, || {
            baselines::pca_direct(&x, 10).expect("baseline");
        });
        let (t_local, _) = time_reps(cfg.reps, || {
            let m = pca::pca(&Tensor::Local(x.clone()), 10).expect("sys");
            let _ = pca::transform(&Tensor::Local(x.clone()), &m).expect("project");
        });
        let (t_fed, _) = time_reps(cfg.reps, || {
            let m = pca::pca(&Tensor::Fed(fed.clone()), 10).expect("sys fed");
            let _ = pca::transform(&Tensor::Fed(fed.clone()), &m).expect("project");
        });
        table.row(&[
            "PCA".into(),
            secs(t_base),
            secs(t_local),
            secs(t_fed),
            format!("{:.1}x", t_local / t_base),
        ]);
    }

    // --- FFN vs direct mini-batch SGD (TF stand-in) ----------------------
    {
        let net = Network::ffn(cfg.cols, &[64], 3, 7);
        let ps = PsConfig {
            epochs: 3,
            batch_size: 512,
            ..PsConfig::default()
        };
        let (t_base, _) = time_reps(cfg.reps, || {
            let mut n = net.clone();
            let mut sgd = Sgd::new(ps.lr, ps.momentum, ps.nesterov);
            train_local(&mut n, &x, &y_cls_1h, ps.epochs, ps.batch_size, &mut sgd)
                .expect("baseline");
        });
        let (t_local, _) = time_reps(cfg.reps, || {
            pslocal::train(&net, &[(x.clone(), y_cls_1h.clone())], &ps).expect("sys");
        });
        let (t_fed, _) = time_reps(cfg.reps, || {
            psfed::train_federated(&fed, &y_cls_1h, &ws, &net, &ps, BalanceStrategy::None)
                .expect("sys fed");
        });
        table.row(&[
            "FFN".into(),
            secs(t_base),
            secs(t_local),
            secs(t_fed),
            format!("{:.1}x", t_local / t_base),
        ]);
    }

    // --- CNN vs direct mini-batch SGD (TF stand-in) ----------------------
    {
        let net = Network::cnn(28, 4, 32, 10, 8);
        let ps = PsConfig {
            epochs: 2,
            batch_size: 128,
            ..PsConfig::default()
        };
        let (t_base, _) = time_reps(cfg.reps, || {
            let mut n = net.clone();
            let mut sgd = Sgd::new(ps.lr, ps.momentum, false);
            train_local(
                &mut n,
                &x_img,
                &y_img_1h,
                ps.epochs,
                ps.batch_size,
                &mut sgd,
            )
            .expect("baseline");
        });
        let (t_local, _) = time_reps(cfg.reps, || {
            pslocal::train(&net, &[(x_img.clone(), y_img_1h.clone())], &ps).expect("sys");
        });
        let (t_fed, _) = time_reps(cfg.reps, || {
            psfed::train_federated(&fed_img, &y_img_1h, &ws, &net, &ps, BalanceStrategy::None)
                .expect("sys fed");
        });
        table.row(&[
            "CNN".into(),
            secs(t_base),
            secs(t_local),
            secs(t_fed),
            format!("{:.1}x", t_local / t_base),
        ]);
    }

    table.print();
    println!(
        "\n* baseline = specialized single-algorithm implementation skipping\n\
         the instruction/plan layer (Scikit-learn/TensorFlow stand-in; see\n\
         DESIGN.md §4). Paper reference: K-Means 1.6x slower, PCA 2x faster,\n\
         FFN 25% faster, CNN 2x slower — mixed results within ~2x."
    );
    write_metrics_sidecar("fig7_systems");
}
