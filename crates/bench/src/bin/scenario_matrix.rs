//! Adversarial-topology scenario matrix: runs the four named scenarios
//! from `exdra-scenario` — hub-and-spoke WAN, one straggler site, site
//! churn mid-training, skewed partition sizes — each fully derived from
//! one master seed, and checks every declared invariant mechanically
//! (bitwise model identity against a fault-free oracle under BSP,
//! bounded staleness under ASP, zero failed computations through
//! churn).
//!
//!     cargo run --release -p exdra-bench --bin scenario_matrix -- --quick
//!
//! Flags: `--quick` (reduced scale for CI), `--scale <f>` (workload
//! scale factor, default 1.0), `--seed <u64>` (master seed, default
//! 0xEDDA). Writes `results/scenarios.json` with per-scenario p50/p99
//! round latency and invariant pass/fail, plus the metrics sidecar.
//! Exits non-zero if any scenario fails an invariant.

use exdra_bench::{obs_init, write_metrics_sidecar, Table};
use exdra_scenario::{run_scenario, Scenario};

struct Args {
    scale: f64,
    seed: u64,
}

fn parse_args() -> Args {
    let mut out = Args {
        scale: 1.0,
        seed: 0xEDDA,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0usize;
    while i < args.len() {
        let flag = args[i].clone();
        let mut take = || -> String {
            i += 1;
            args.get(i)
                .unwrap_or_else(|| panic!("missing value for {flag}"))
                .clone()
        };
        match flag.as_str() {
            "--quick" => out.scale = 0.3,
            "--scale" => out.scale = take().parse().expect("--scale"),
            "--seed" => out.seed = take().parse().expect("--seed"),
            other => panic!("unknown flag {other} (see crate docs)"),
        }
        i += 1;
    }
    out
}

fn main() {
    obs_init();
    let args = parse_args();
    println!(
        "scenario matrix: master seed {:#x}, scale {:.2}",
        args.seed, args.scale
    );

    let mut table = Table::new(
        "Scenario matrix",
        &[
            "scenario",
            "p50 ms",
            "p99 ms",
            "total ms",
            "failed",
            "retried",
            "stale",
            "reenc",
            "acc",
            "invariants",
        ],
    );
    let mut reports = Vec::new();
    let mut all_passed = true;
    for sc in Scenario::matrix(args.seed, args.scale) {
        let name = sc.name.clone();
        println!("running {name} ...");
        let r = run_scenario(&sc).unwrap_or_else(|e| panic!("scenario {name} errored: {e}"));
        let inv = r
            .invariants
            .iter()
            .map(|(n, ok)| format!("{n}={}", if *ok { "ok" } else { "FAIL" }))
            .collect::<Vec<_>>()
            .join(" ");
        table.row(&[
            r.name.clone(),
            format!("{:.2}", r.p50_ms),
            format!("{:.2}", r.p99_ms),
            format!("{:.1}", r.total_ms),
            format!("{}", r.failed_computations),
            format!("{}", r.retried_rounds),
            format!("{}", r.max_observed_staleness),
            format!("{}", r.reencodes),
            format!("{:.3}", r.final_accuracy),
            inv,
        ]);
        all_passed &= r.passed;
        reports.push(r.to_json());
    }
    table.print();

    let json = format!(
        "{{\n  \"master_seed\": {},\n  \"scale\": {:.3},\n  \"passed\": {},\n  \
         \"scenarios\": [\n    {}\n  ]\n}}\n",
        args.seed,
        args.scale,
        all_passed,
        reports.join(",\n    ")
    );
    let dir = std::path::Path::new("results");
    let path = dir.join("scenarios.json");
    match std::fs::create_dir_all(dir).and_then(|_| std::fs::write(&path, json)) {
        Ok(()) => println!("results: {}", path.display()),
        Err(e) => eprintln!("warning: failed to write {}: {e}", path.display()),
    }
    write_metrics_sidecar("scenario_matrix");

    assert!(all_passed, "one or more scenarios failed an invariant");
    println!("all scenarios passed their invariants");
}
