//! Ablation A1 — lineage-based reuse across repeated pipeline runs
//! (paper §4.4, "Lineage-based Reuse" / LIMA).
//!
//! Exploratory data science re-executes pipelines with small variations;
//! standing workers cache intermediates keyed by lineage. This ablation
//! runs the same preprocessing sub-plan repeatedly (as an exploring data
//! scientist would while tweaking the downstream model) with the worker
//! cache enabled vs disabled.
//!
//! `cargo run -p exdra-bench --bin ablation_reuse --release [-- --quick]`

use exdra_bench::*;
use exdra_core::coordinator::WorkerEndpoint;
use exdra_core::testutil::tcp_federation_with;
use exdra_core::worker::WorkerConfig;
use exdra_core::{PrivacyLevel, Tensor};
use exdra_matrix::kernels::aggregates::{AggDir, AggOp};
use exdra_matrix::kernels::elementwise::BinaryOp;

fn main() {
    obs_init();
    let cfg = BenchConfig::from_args();
    let workers = 3usize;
    let runs = 8usize;
    println!(
        "Ablation A1 (lineage reuse) | X: {}x{} | {} workers | {} repeated pipeline runs",
        cfg.rows, cfg.cols, workers, runs
    );
    let x = paper_matrix(cfg.rows, cfg.cols, 1);

    // The repeated exploratory sub-plan: normalization + Gram matrix.
    // Identical across runs, so a lineage cache can serve it entirely.
    let pipeline = |fed: &exdra_core::fed::FedMatrix| {
        let t = Tensor::Fed(fed.clone());
        let mu = t
            .agg(AggOp::Mean, AggDir::Col)
            .expect("mean")
            .to_local()
            .expect("local");
        let centered = t.binary(BinaryOp::Sub, &Tensor::Local(mu)).expect("center");
        let _gram = centered.tsmm().expect("gram");
    };

    let mut table = Table::new(
        "Ablation A1: repeated-pipeline runtime, reuse on vs off",
        &["run", "reuse ON", "reuse OFF"],
    );
    let mut totals = [0.0f64; 2];
    let mut hits_on = 0u64;
    for (col, reuse) in [true, false].into_iter().enumerate() {
        let (ctx, ws) = tcp_federation_with(
            workers,
            || WorkerConfig {
                reuse_enabled: reuse,
                ..WorkerConfig::default()
            },
            WorkerEndpoint::tcp,
        );
        let fed = exdra_core::fed::FedMatrix::scatter_rows(&ctx, &x, PrivacyLevel::Public)
            .expect("scatter");
        let mut per_run = Vec::new();
        for _ in 0..runs {
            let (_, t) = time(|| pipeline(&fed));
            per_run.push(t);
            totals[col] += t;
        }
        if reuse {
            hits_on = ws.iter().map(|w| w.cache().hits()).sum();
            for (i, t) in per_run.iter().enumerate() {
                table.row(&[format!("{}", i + 1), secs(*t), String::new()]);
            }
        } else {
            // Merge the OFF column into the existing rows.
            for (i, t) in per_run.iter().enumerate() {
                table.rows_set(i, 2, secs(*t));
            }
        }
    }
    table.row(&["total".into(), secs(totals[0]), secs(totals[1])]);
    table.print();
    println!(
        "\nworker cache hits with reuse ON: {hits_on} | speedup on repeated runs: {:.1}x",
        totals[1] / totals[0]
    );
    write_metrics_sidecar("ablation_reuse");
}

/// Small extension trait so the binary can fill a column after the fact.
trait TableExt {
    fn rows_set(&mut self, row: usize, col: usize, value: String);
}

impl TableExt for Table {
    fn rows_set(&mut self, row: usize, col: usize, value: String) {
        self.set_cell(row, col, value);
    }
}
