//! Pipelined-RPC latency hiding: a 16-request batch streamed through
//! sliding windows {1, 2, 4, 8, 16} over a WAN-shaped channel, measuring
//! round trips as transport-blocked time over one-way latency. Lock-step
//! (window 1) pays ~one round trip per request; window `w` pays
//! ~`ceil(N/w)`, so the batch drops from ~16 RTTs to ~(1 + 16/window).
//!
//!     cargo run --release -p exdra-bench --bin rpc_pipeline
//!
//! Writes `results/rpc_pipeline.json` plus the usual metrics sidecar and
//! asserts window 8 measures at least 2x fewer round trips than window 1
//! with bitwise-identical responses.

use exdra_bench::{obs_init, write_metrics_sidecar, BenchConfig, Table};
use exdra_core::protocol::{Request, Response};
use exdra_core::value::DataValue;
use exdra_core::worker::{Worker, WorkerConfig};
use exdra_core::{FedContext, PrivacyLevel};
use exdra_net::transport::ShapedChannel;
use exdra_net::Channel;

/// Requests per streamed batch (the acceptance batch size).
const BATCH: u64 = 16;

/// Speed factor applied to the paper WAN profile so the sweep stays
/// under a second (one-way latency 20 ms -> 5 ms); ratios between
/// windows are latency-scale invariant.
const WAN_SCALE: f64 = 0.25;

fn scalar_bits(responses: &[Response]) -> Vec<u64> {
    responses
        .iter()
        .map(|r| match r {
            Response::Data(DataValue::Scalar(v)) => v.to_bits(),
            other => panic!("expected scalar response, got {other:?}"),
        })
        .collect()
}

fn main() {
    obs_init();
    let cfg = BenchConfig::from_args();
    let profile = cfg.wan_profile().scaled(WAN_SCALE);
    let one_way = profile.latency().as_nanos().max(1) as f64;

    // One in-process worker behind a WAN-shaped in-memory channel; the
    // coordinator's `from_channels` adds the instrumentation that feeds
    // `NetStatsSnapshot`.
    let worker = Worker::new(WorkerConfig::default());
    let shaped = Box::new(ShapedChannel::new(worker.serve_mem(), profile)) as Box<dyn Channel>;
    let ctx = FedContext::from_channels(vec![shaped]).expect("federation");

    // Install the values the batch reads via the legacy single-envelope
    // call, so the sweep's `max_inflight` watermark is untouched by setup.
    let puts: Vec<Request> = (0..BATCH)
        .map(|i| Request::Put {
            id: i + 1,
            data: DataValue::Scalar(i as f64 * 1.5 - 3.0),
            privacy: PrivacyLevel::Public,
        })
        .collect();
    ctx.call(0, &puts).expect("puts");

    let gets: Vec<Request> = (0..BATCH).map(|i| Request::Get { id: i + 1 }).collect();
    let windows = [1usize, 2, 4, 8, 16];
    let reps = cfg.reps.max(1);

    let mut table = Table::new(
        &format!(
            "Pipelined RPC: {BATCH}-request batch, one-way {:.1} ms (mean of {reps})",
            one_way / 1e6
        ),
        &[
            "window",
            "wall ms",
            "net ms",
            "round trips",
            "max in flight",
        ],
    );
    let mut baseline_bits: Option<Vec<u64>> = None;
    let mut round_trips = Vec::with_capacity(windows.len());
    let mut json_rows = Vec::new();
    for &w in &windows {
        let mut wall_ms = 0.0;
        let mut net_ms = 0.0;
        let mut trips = 0.0;
        let mut max_inflight = 0u64;
        for _ in 0..reps {
            let before = ctx.stats().snapshot();
            let t0 = std::time::Instant::now();
            let responses = ctx.call_streamed(0, &gets, w).expect("streamed batch");
            wall_ms += t0.elapsed().as_secs_f64() * 1e3 / reps as f64;
            let delta = ctx.stats().snapshot().delta(&before);
            net_ms += delta.network_nanos as f64 / 1e6 / reps as f64;
            trips += delta.network_nanos as f64 / one_way / reps as f64;
            max_inflight = max_inflight.max(delta.max_inflight);

            let bits = scalar_bits(&responses);
            match &baseline_bits {
                None => baseline_bits = Some(bits),
                Some(base) => assert_eq!(
                    &bits, base,
                    "window {w}: responses differ bitwise from lock-step"
                ),
            }
        }
        table.row(&[
            w.to_string(),
            format!("{wall_ms:.1}"),
            format!("{net_ms:.1}"),
            format!("{trips:.1}"),
            max_inflight.to_string(),
        ]);
        round_trips.push(trips);
        json_rows.push(format!(
            "    {{\"window\": {w}, \"wall_ms\": {wall_ms:.3}, \"net_ms\": {net_ms:.3}, \
             \"round_trips\": {trips:.2}, \"max_inflight\": {max_inflight}}}"
        ));
    }
    table.print();

    let rt1 = round_trips[0];
    let rt8 = round_trips[windows.iter().position(|&w| w == 8).unwrap()];
    let shrink = rt1 / rt8.max(1e-9);
    println!("\nround trips: {rt1:.1} at window 1 -> {rt8:.1} at window 8 ({shrink:.1}x fewer)");
    assert!(
        rt8 * 2.0 <= rt1,
        "window 8 must measure at least 2x fewer round trips than lock-step \
         ({rt8:.2} vs {rt1:.2})"
    );

    let json = format!(
        "{{\n  \"batch\": {BATCH},\n  \"one_way_ms\": {:.3},\n  \"reps\": {reps},\n  \
         \"shrink_w8_vs_w1\": {shrink:.3},\n  \"bitwise_identical\": true,\n  \
         \"windows\": [\n{}\n  ]\n}}\n",
        one_way / 1e6,
        json_rows.join(",\n")
    );
    let dir = std::path::Path::new("results");
    let path = dir.join("rpc_pipeline.json");
    match std::fs::create_dir_all(dir).and_then(|_| std::fs::write(&path, json)) {
        Ok(()) => println!("results: {}", path.display()),
        Err(e) => eprintln!("warning: failed to write {}: {e}", path.display()),
    }
    write_metrics_sidecar("rpc_pipeline");
    drop(ctx);
    worker.shutdown();
}
