//! Figure 8 — ML pipeline scalability with the number of federated workers.
//!
//! The simplified paper-production training pipeline P2 (§6.3): read the
//! raw federated frame, `transformencode` (recode + one-hot), clip values
//! outside ±1.5σ, z-normalize, split 70/30 with balanced federated
//! partitions, and train LM (P2_LM) or an FFN (P2_FFN); Local vs Fed LAN
//! over a sweep of worker counts.
//!
//! `cargo run -p exdra-bench --bin fig8_pipeline --release [-- --quick]`

use exdra_bench::*;
use exdra_core::fed::prep::{split_rows_per_partition, FedFrame};
use exdra_core::{PrivacyLevel, Tensor};
use exdra_matrix::kernels::aggregates::{AggDir, AggOp};
use exdra_matrix::kernels::elementwise::BinaryOp;
use exdra_matrix::{DenseMatrix, Frame};
use exdra_ml::nn::Network;
use exdra_ml::{lm, synth};
use exdra_paramserv::balance::BalanceStrategy;
use exdra_paramserv::{fed as psfed, PsConfig};
use exdra_transform::TransformSpec;

/// P2 preprocessing over a locality-agnostic tensor: clip to ±1.5σ and
/// z-normalize — identical code for the local and federated variants.
fn preprocess(x: Tensor) -> exdra_core::Result<Tensor> {
    let x = x.replace(f64::NAN, 0.0)?;
    let mu = x.agg(AggOp::Mean, AggDir::Col)?.to_local()?;
    let sd = x
        .agg(AggOp::Sd, AggDir::Col)?
        .to_local()?
        .map(|v| if v > 1e-12 { v } else { 1.0 });
    let lower = mu.zip(&sd, "clip", |m, s| m - 1.5 * s)?;
    let upper = mu.zip(&sd, "clip", |m, s| m + 1.5 * s)?;
    let x = x.binary(BinaryOp::Max, &Tensor::Local(lower))?;
    let x = x.binary(BinaryOp::Min, &Tensor::Local(upper))?;
    let x = x.binary(BinaryOp::Sub, &Tensor::Local(mu))?;
    x.binary(BinaryOp::Div, &Tensor::Local(sd))
}

/// Generates the per-site raw frames and aligned targets.
fn site_data(rows_per_site: usize, cont_cols: usize, sites: usize) -> (Vec<Frame>, DenseMatrix) {
    let mut frames = Vec::new();
    let mut y: Option<DenseMatrix> = None;
    for s in 0..sites {
        let (f, t) =
            synth::paper_production_frame(rows_per_site, 2, 8, cont_cols, 0.01, 1000 + s as u64);
        frames.push(f);
        y = Some(match y {
            None => t,
            Some(acc) => exdra_matrix::kernels::reorg::rbind(&acc, &t).expect("rbind"),
        });
    }
    (frames, y.expect("at least one site"))
}

fn run_fed_pipeline(
    ctx: &std::sync::Arc<exdra_core::FedContext>,
    frames: &[Frame],
    y: &DenseMatrix,
    train_ffn: bool,
    workers: &[std::sync::Arc<exdra_core::worker::Worker>],
) {
    let fed_frame = FedFrame::from_site_frames(ctx, frames, PrivacyLevel::Public).expect("frame");
    let spec = TransformSpec::auto(&frames[0]);
    let (encoded, _meta) = fed_frame.transform_encode(&spec).expect("encode");
    let x = preprocess(Tensor::Fed(encoded)).expect("preprocess");
    let x_fed = match x {
        Tensor::Fed(f) => f,
        Tensor::Local(_) | Tensor::Compressed(_) => unreachable!("stays federated"),
    };
    let split = split_rows_per_partition(&x_fed, Some(y), 0.7, 7).expect("split");
    let y_train = split.y_train.expect("labels");
    if train_ffn {
        let y1h = y_train.map(|v| if v >= 0.0 { 1.0 } else { 0.0 });
        let y1h =
            exdra_matrix::kernels::reorg::cbind(&y1h, &y1h.map(|v| 1.0 - v)).expect("one-hot");
        let net = Network::ffn(split.x_train.cols(), &[64], 2, 7);
        psfed::train_federated(
            &split.x_train,
            &y1h,
            workers,
            &net,
            &PsConfig {
                epochs: 3,
                batch_size: 512,
                ..PsConfig::default()
            },
            BalanceStrategy::None,
        )
        .expect("ffn");
    } else {
        lm::lm(
            &Tensor::Fed(split.x_train),
            &y_train,
            &lm::LmParams::default(),
        )
        .expect("lm");
    }
}

fn run_local_pipeline(frames: &[Frame], y: &DenseMatrix, train_ffn: bool) {
    // Same steps, entirely local (the Local baseline of Figure 8).
    let mut all = frames[0].clone();
    for f in &frames[1..] {
        all = all.rbind(f).expect("rbind");
    }
    let spec = TransformSpec::auto(&all);
    let (encoded, _) = exdra_transform::transform_encode(&all, &spec).expect("encode");
    let x = preprocess(Tensor::Local(encoded)).expect("preprocess");
    let xl = x.to_local().expect("local");
    // Local split with the same per-"partition" shuffling (one partition).
    let perm = exdra_matrix::rng::rand_permutation(xl.rows(), 7);
    let xs = exdra_matrix::kernels::reorg::gather_rows(&xl, &perm).expect("shuffle");
    let ys = exdra_matrix::kernels::reorg::gather_rows(y, &perm).expect("shuffle");
    let n_train = (xl.rows() as f64 * 0.7).round() as usize;
    let x_train =
        exdra_matrix::kernels::reorg::index(&xs, 0, n_train, 0, xs.cols()).expect("split");
    let y_train = exdra_matrix::kernels::reorg::index(&ys, 0, n_train, 0, 1).expect("split");
    if train_ffn {
        let y1h = y_train.map(|v| if v >= 0.0 { 1.0 } else { 0.0 });
        let y1h =
            exdra_matrix::kernels::reorg::cbind(&y1h, &y1h.map(|v| 1.0 - v)).expect("one-hot");
        let net = Network::ffn(x_train.cols(), &[64], 2, 7);
        let mut sgd = exdra_ml::nn::Sgd::new(0.05, 0.9, true);
        let mut n = net.clone();
        exdra_ml::nn::train_local(&mut n, &x_train, &y1h, 3, 512, &mut sgd).expect("ffn");
    } else {
        lm::lm(&Tensor::Local(x_train), &y_train, &lm::LmParams::default()).expect("lm");
    }
}

fn main() {
    obs_init();
    let cfg = BenchConfig::from_args();
    // Continuous signal count so the encoded width approximates cfg.cols
    // (2 categorical columns with domain <= 8 add <= 16 one-hot columns).
    let cont_cols = cfg.cols.saturating_sub(16).max(4);
    println!(
        "Figure 8 | {} rows total, ~{} encoded cols | workers {:?} | reps {}",
        cfg.rows, cfg.cols, cfg.workers, cfg.reps
    );
    let mut table = Table::new("Figure 8: pipeline P2 end-to-end runtime", &{
        let mut h = vec!["pipeline", "Local"];
        for w in &cfg.workers {
            h.push(Box::leak(format!("Fed w={w}").into_boxed_str()));
        }
        h
    });

    for (name, ffn) in [("P2_LM", false), ("P2_FFN", true)] {
        let mut cells = vec![name.to_string()];
        // Local baseline over single-site data of the full size.
        let (frames1, y1) = site_data(cfg.rows, cont_cols, 1);
        let (t_local, _) = time_reps(cfg.reps, || run_local_pipeline(&frames1, &y1, ffn));
        cells.push(secs(t_local));
        for &w in &cfg.workers {
            let rows_per_site = cfg.rows / w;
            let (frames, y) = site_data(rows_per_site, cont_cols, w);
            let (ctx, workers) = federation(w, NetSetting::Lan, cfg.wan_profile());
            let (t, _) = time_reps(cfg.reps, || {
                run_fed_pipeline(&ctx, &frames, &y, ffn, &workers)
            });
            cells.push(secs(t));
        }
        table.row(&cells);
    }
    table.print();
    println!(
        "\nPaper reference: good improvements over Local as workers grow;\n\
         P2_FFN scales better than P2_LM (larger compute per worker)."
    );
    write_metrics_sidecar("fig8_pipeline");
}
