#![warn(missing_docs)]
//! # exdra-bench
//!
//! The benchmark harness regenerating every table and figure of the ExDRa
//! evaluation (paper §6). Each binary in `src/bin/` reproduces one
//! artifact; see DESIGN.md §3 for the experiment index and EXPERIMENTS.md
//! for paper-vs-measured results.
//!
//! Common knobs (all binaries): `--rows N --cols N --workers a,b,c
//! --wan-rtt-ms F --wan-mbps F --reps N --quick --full`.

use std::sync::Arc;
use std::time::Instant;

use exdra_core::coordinator::WorkerEndpoint;
use exdra_core::testutil::tcp_federation_with;
use exdra_core::worker::{Worker, WorkerConfig};
use exdra_core::{FedContext, PrivacyLevel};
use exdra_matrix::DenseMatrix;
use exdra_net::crypto::ChannelKey;
use exdra_net::sim::NetProfile;

/// Harness configuration parsed from the command line.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Rows of the synthetic feature matrix.
    pub rows: usize,
    /// Columns of the synthetic feature matrix (post-encoding).
    pub cols: usize,
    /// Worker counts swept by scalability experiments.
    pub workers: Vec<usize>,
    /// WAN round-trip latency in milliseconds.
    pub wan_rtt_ms: f64,
    /// WAN bandwidth in MB/s.
    pub wan_mbps: f64,
    /// Repetitions per configuration (paper: mean of >= 3).
    pub reps: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        // Scaled defaults: the paper's 1M x 1,050 runs in minutes on a
        // cluster; these defaults keep every binary under a few minutes on
        // a laptop while preserving compute/communication ratios.
        Self {
            rows: 50_000,
            cols: 100,
            workers: vec![1, 2, 3, 5],
            wan_rtt_ms: 40.0,
            wan_mbps: 1.7,
            reps: 3,
        }
    }
}

impl BenchConfig {
    /// Parses command-line arguments (unknown flags are rejected).
    pub fn from_args() -> Self {
        let mut cfg = Self::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0usize;
        while i < args.len() {
            let flag = args[i].clone();
            let mut take = || -> String {
                i += 1;
                args.get(i)
                    .unwrap_or_else(|| panic!("missing value for {flag}"))
                    .clone()
            };
            match flag.as_str() {
                "--rows" => cfg.rows = take().parse().expect("--rows"),
                "--cols" => cfg.cols = take().parse().expect("--cols"),
                "--workers" => {
                    cfg.workers = take()
                        .split(',')
                        .map(|x| x.parse().expect("--workers"))
                        .collect()
                }
                "--wan-rtt-ms" => cfg.wan_rtt_ms = take().parse().expect("--wan-rtt-ms"),
                "--wan-mbps" => cfg.wan_mbps = take().parse().expect("--wan-mbps"),
                "--reps" => cfg.reps = take().parse().expect("--reps"),
                "--quick" => {
                    cfg.rows = 10_000;
                    cfg.cols = 50;
                    cfg.workers = vec![1, 2, 3];
                    cfg.reps = 1;
                }
                "--full" => {
                    // Paper scale (1M x 1,050); expect long runtimes.
                    cfg.rows = 1_000_000;
                    cfg.cols = 1_050;
                    cfg.workers = vec![1, 2, 3, 5, 7];
                }
                other => panic!("unknown flag {other} (see crate docs)"),
            }
            i += 1;
        }
        cfg
    }

    /// The WAN profile for this configuration.
    pub fn wan_profile(&self) -> NetProfile {
        NetProfile::custom(self.wan_rtt_ms, self.wan_mbps)
    }
}

/// Network setting of a federated run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetSetting {
    /// Unshaped loopback TCP (the LAN analogue).
    Lan,
    /// WAN-shaped channels.
    Wan,
    /// WAN-shaped and encrypted channels (the "SSL" configuration).
    WanEncrypted,
}

impl NetSetting {
    /// Display name used in result tables.
    pub fn name(self) -> &'static str {
        match self {
            NetSetting::Lan => "Fed LAN",
            NetSetting::Wan => "Fed WAN",
            NetSetting::WanEncrypted => "Fed WAN+SSL",
        }
    }
}

/// Spawns `n` in-process workers behind loopback TCP with the given
/// network setting and returns a connected context.
pub fn federation(
    n: usize,
    setting: NetSetting,
    wan: NetProfile,
) -> (Arc<FedContext>, Vec<Arc<Worker>>) {
    let key = ChannelKey::from_passphrase("exdra-bench");
    let worker_config = move || WorkerConfig {
        channel_key: (setting == NetSetting::WanEncrypted).then_some(key),
        // Figures 5-8 measure computation/communication, not caching:
        // deterministic plans would otherwise hit the lineage cache on
        // repetitions 2..n (reuse is measured by ablation A1 instead).
        reuse_enabled: false,
        ..WorkerConfig::default()
    };
    tcp_federation_with(n, worker_config, move |addr| match setting {
        NetSetting::Lan => WorkerEndpoint::tcp(addr),
        NetSetting::Wan => WorkerEndpoint::tcp_with(addr, wan, None),
        NetSetting::WanEncrypted => WorkerEndpoint::tcp_with(addr, wan, Some(key)),
    })
}

/// Installs row partitions of `x` directly into the in-process workers —
/// the benchmarking equivalent of data already living at the federated
/// sites (a network `scatter` would charge the WAN for a transfer that
/// never happens in the paper's deployment, §5.1).
pub fn scatter(
    ctx: &Arc<FedContext>,
    workers: &[Arc<Worker>],
    x: &DenseMatrix,
) -> exdra_core::fed::FedMatrix {
    use exdra_core::fed::{FedPartition, PartitionScheme};
    let n = workers.len();
    let base = x.rows() / n;
    let extra = x.rows() % n;
    let mut parts = Vec::with_capacity(n);
    let mut lo = 0usize;
    for (w, worker) in workers.iter().enumerate() {
        let hi = lo + base + usize::from(w < extra);
        let id = ctx.fresh_id();
        let slice = exdra_matrix::kernels::reorg::index(x, lo, hi, 0, x.cols()).expect("slice");
        worker.install_matrix(id, slice, PrivacyLevel::Public, &format!("bench-{w}-{id}"));
        parts.push(FedPartition {
            lo,
            hi,
            worker: w,
            id,
        });
        lo = hi;
    }
    exdra_core::fed::FedMatrix::from_parts(
        Arc::clone(ctx),
        PartitionScheme::Row,
        x.rows(),
        x.cols(),
        parts,
        PrivacyLevel::Public,
        false,
    )
    .expect("federation map")
}

/// Turns on the global tracing/metrics layer for this bench process, so
/// the binary can drop a machine-readable metrics sidecar (see
/// [`write_metrics_sidecar`]) next to its printed tables. Call first
/// thing in `main`, before any federation is set up.
pub fn obs_init() {
    exdra_obs::set_enabled(true);
}

/// Writes `results/<bin>.metrics.json` — the [`exdra_obs::RunReport`] of
/// everything this process recorded — and prints the path. Failures are
/// reported but never abort the run; a bench binary's tables are worth
/// printing even on a read-only filesystem.
pub fn write_metrics_sidecar(bin: &str) {
    let report = exdra_obs::RunReport::from_global();
    let dir = std::path::Path::new("results");
    let path = dir.join(format!("{bin}.metrics.json"));
    let res = std::fs::create_dir_all(dir).and_then(|_| std::fs::write(&path, report.to_json()));
    match res {
        Ok(()) => println!("\nmetrics sidecar: {}", path.display()),
        Err(e) => eprintln!("warning: failed to write {}: {e}", path.display()),
    }
}

/// Times a closure in seconds.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// Times `reps` runs, returning `(mean, min)` seconds.
pub fn time_reps<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, f64) {
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps.max(1) {
        let (_, t) = time(&mut f);
        times.push(t);
    }
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    (mean, min)
}

/// Result-table printer: one row per configuration, fixed-width columns.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Overwrites one cell of an existing row (for column-at-a-time
    /// experiment sweeps).
    pub fn set_cell(&mut self, row: usize, col: usize, value: String) {
        if let Some(r) = self.rows.get_mut(row) {
            while r.len() <= col {
                r.push(String::new());
            }
            r[col] = value;
        }
    }

    /// Renders and prints the table.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(c.len());
                }
            }
        }
        println!("\n== {} ==", self.title);
        let fmt_row = |cells: &[String]| {
            let parts: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            parts.join("  ")
        };
        println!("{}", fmt_row(&self.headers));
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
    }
}

/// Formats seconds with adaptive precision.
pub fn secs(t: f64) -> String {
    if t < 0.1 {
        format!("{:.1}ms", t * 1e3)
    } else if t < 10.0 {
        format!("{t:.2}s")
    } else {
        format!("{t:.1}s")
    }
}

/// The synthetic "paper production" feature matrix of §6.1: continuous
/// sensor signals plus one-hot encoded categorical recipe features,
/// resembling the 1M x 1,050 evaluation matrix at configurable scale.
pub fn paper_matrix(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    // 20% of the columns are one-hot groups, the rest continuous.
    let onehot_cols = cols / 5;
    let cont_cols = cols - onehot_cols;
    let cont = exdra_matrix::rng::rand_matrix(rows, cont_cols, -1.0, 1.0, seed);
    if onehot_cols == 0 {
        return cont;
    }
    let mut oh = DenseMatrix::zeros(rows, onehot_cols);
    let labels = exdra_matrix::rng::rand_matrix(rows, 1, 0.0, onehot_cols as f64, seed + 1);
    for r in 0..rows {
        let c = (labels.get(r, 0) as usize).min(onehot_cols - 1);
        oh.set(r, c, 1.0);
    }
    exdra_matrix::kernels::reorg::cbind(&cont, &oh).expect("aligned rows")
}

/// Regression labels for [`paper_matrix`].
pub fn paper_labels(x: &DenseMatrix, seed: u64) -> DenseMatrix {
    let beta = exdra_matrix::rng::rand_matrix(x.cols(), 1, -1.0, 1.0, seed);
    let mut y = exdra_matrix::kernels::matmul::matmul(x, &beta).expect("shapes");
    let noise = exdra_matrix::rng::randn_matrix(x.rows(), 1, seed + 1);
    for (yv, nv) in y.values_mut().iter_mut().zip(noise.values()) {
        *yv += 0.1 * nv;
    }
    y
}

/// Binary ±1 labels for [`paper_matrix`].
pub fn paper_binary_labels(x: &DenseMatrix, seed: u64) -> DenseMatrix {
    let y = paper_labels(x, seed);
    y.map(|v| if v >= 0.0 { 1.0 } else { -1.0 })
}

/// Multi-class 1-based labels for [`paper_matrix`] (quantile-balanced).
pub fn paper_class_labels(x: &DenseMatrix, classes: usize, seed: u64) -> DenseMatrix {
    let y = paper_labels(x, seed);
    let mut sorted: Vec<f64> = y.values().to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let th: Vec<f64> = (1..classes)
        .map(|c| sorted[c * sorted.len() / classes])
        .collect();
    y.map(|v| {
        let mut cls = 1.0;
        for t in &th {
            if v >= *t {
                cls += 1.0;
            }
        }
        cls
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_matrix_shape_and_onehot() {
        let x = paper_matrix(100, 50, 1);
        assert_eq!(x.shape(), (100, 50));
        for r in 0..100 {
            let s: f64 = (40..50).map(|c| x.get(r, c)).sum();
            assert_eq!(s, 1.0);
        }
    }

    #[test]
    fn class_labels_balanced() {
        let x = paper_matrix(1000, 20, 2);
        let y = paper_class_labels(&x, 4, 3);
        for c in 1..=4 {
            let n = y.values().iter().filter(|&&v| v == c as f64).count();
            assert!((200..=300).contains(&n), "class {c}: {n}");
        }
    }

    #[test]
    fn table_renders() {
        let mut t = Table::new("demo", &["algo", "time"]);
        t.row(&["LM".into(), secs(1.234)]);
        t.print(); // smoke test: must not panic
    }

    #[test]
    fn time_reps_returns_mean_and_min() {
        let (mean, min) = time_reps(3, || {
            std::thread::sleep(std::time::Duration::from_millis(2))
        });
        assert!(min >= 0.002);
        assert!(mean >= min);
    }
}
