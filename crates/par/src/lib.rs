//! Deterministic intra-operator data parallelism for ExDRa workers.
//!
//! A small chunk-splitting compute pool in the spirit of rayon's
//! `join`/`par_chunks`, built from `std::thread::scope` plus the vendored
//! `crossbeam` channel (the workspace builds offline, so there is no real
//! rayon). A parallel *region* splits one operator's work into enumerated
//! chunks, pushes them into a shared MPMC injector queue, and lets the
//! caller thread plus `width - 1` scoped workers self-schedule by popping
//! chunks until the queue drains — idle threads "steal" whatever chunk is
//! next rather than being bound to a static slice of the iteration space.
//!
//! # Determinism contract
//!
//! Every entry point hands each chunk a **disjoint** `&mut` view of the
//! output, and kernels built on top arrange their per-output-element
//! reduction order to be identical to the serial schedule. Because no two
//! threads ever combine partial results, the bits written are a pure
//! function of the chunk decomposition — and for disjoint-output kernels
//! they are identical at *every* thread count, including
//! `EXDRA_THREADS=1`, which executes the same chunk schedule in order on
//! the calling thread.
//!
//! # Sizing
//!
//! The pool width comes from, in priority order: a thread-local
//! [`with_threads`] override (scoped, for tests), the process-global
//! [`set_threads`] override (`SessionBuilder::threads`), the
//! `EXDRA_THREADS` environment variable (read once), and finally
//! [`std::thread::available_parallelism`]. Nested regions — a parallel
//! kernel invoked from inside a chunk — run serially on the worker that
//! reached them, so recursion never oversubscribes the machine.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Target number of chunks handed to each thread, so faster threads can
/// steal work from slower ones instead of idling at a static partition.
const CHUNKS_PER_THREAD: usize = 4;

/// Process-global thread-count override (0 = unset). See [`set_threads`].
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

fn hardware_threads() -> usize {
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| {
        match std::env::var("EXDRA_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            Some(n) if n >= 1 => n,
            _ => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    })
}

thread_local! {
    /// Scoped thread-count override (0 = unset); see [`with_threads`].
    static TL_THREADS: Cell<usize> = const { Cell::new(0) };
    /// Set on every thread currently executing region chunks; nested
    /// regions observe it and degrade to serial execution.
    static IN_REGION: Cell<bool> = const { Cell::new(false) };
    /// Per-thread accumulation of region statistics since the last
    /// [`take_region_stats`].
    static TL_STATS: Cell<RegionStats> = const { Cell::new(RegionStats::ZERO) };
}

/// The pool width parallel regions on this thread will use.
pub fn threads() -> usize {
    let tl = TL_THREADS.with(Cell::get);
    if tl != 0 {
        return tl;
    }
    let g = GLOBAL_THREADS.load(Ordering::Relaxed);
    if g != 0 {
        return g;
    }
    hardware_threads()
}

/// Sets the process-global pool width (`SessionBuilder::threads` lands
/// here). `0` clears the override, falling back to `EXDRA_THREADS` /
/// `available_parallelism`.
pub fn set_threads(n: usize) {
    GLOBAL_THREADS.store(n, Ordering::Relaxed);
}

/// Runs `f` with the pool width pinned to `n` on this thread (and the
/// threads its regions spawn). Restores the previous override on exit,
/// including on panic. Intended for tests comparing thread counts.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            TL_THREADS.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(TL_THREADS.with(|c| c.replace(n)));
    f()
}

/// Statistics accumulated per thread across parallel regions, consumed by
/// the worker's instruction instrumentation via [`take_region_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegionStats {
    /// Regions that actually fanned out across threads.
    pub regions: u64,
    /// Regions that ran serially (width 1, single chunk, or nested).
    pub serial_regions: u64,
    /// Total chunks executed across all regions.
    pub chunks: u64,
    /// Chunks executed on spawned (non-caller) threads.
    pub steals: u64,
    /// Largest width engaged by any single region.
    pub max_threads: u64,
    /// Sum over regions of the width engaged (for mean width).
    pub threads_engaged: u64,
}

impl RegionStats {
    const ZERO: RegionStats = RegionStats {
        regions: 0,
        serial_regions: 0,
        chunks: 0,
        steals: 0,
        max_threads: 0,
        threads_engaged: 0,
    };

    /// Total regions, parallel and serial.
    pub fn total_regions(&self) -> u64 {
        self.regions + self.serial_regions
    }
}

/// Returns and resets the calling thread's accumulated [`RegionStats`].
///
/// The worker runtime calls this immediately before running an
/// instruction (to reset) and immediately after (to read), attributing
/// the delta to that instruction's span.
pub fn take_region_stats() -> RegionStats {
    TL_STATS.with(|c| c.replace(RegionStats::ZERO))
}

fn record_region(chunks: usize, engaged: usize, steals: u64, parallel: bool) {
    TL_STATS.with(|c| {
        let mut s = c.get();
        if parallel {
            s.regions += 1;
        } else {
            s.serial_regions += 1;
        }
        s.chunks += chunks as u64;
        s.steals += steals;
        s.max_threads = s.max_threads.max(engaged as u64);
        s.threads_engaged += engaged as u64;
        c.set(s);
    });
    if exdra_obs::enabled() {
        let g = exdra_obs::global();
        if parallel {
            g.inc("par.regions");
            g.add("par.chunks", chunks as u64);
            g.add("par.steals", steals);
            g.record("par.threads_used", engaged as u64);
        } else {
            g.inc("par.serial_regions");
        }
    }
}

/// Chunk length targeting ~`CHUNKS_PER_THREAD` chunks per pool thread,
/// but never below `min_chunk` items (callers derive `min_chunk` from the
/// per-item cost so tiny inputs stay single-chunk and serial).
pub fn chunk_len(total: usize, min_chunk: usize) -> usize {
    let target = threads().saturating_mul(CHUNKS_PER_THREAD).max(1);
    total.div_ceil(target).max(min_chunk.max(1))
}

/// Chunk length on a fixed grid that does **not** depend on the pool
/// width, for callers that want one chunk schedule across all thread
/// counts rather than relying on disjoint-output determinism.
pub fn fixed_chunk_len(total: usize, min_chunk: usize) -> usize {
    const FIXED_GRID_CHUNKS: usize = 32;
    total.div_ceil(FIXED_GRID_CHUNKS).max(min_chunk.max(1))
}

/// Effective width for a region with `n_chunks` chunks on this thread:
/// 1 inside an enclosing region (serial nesting) or when there is nothing
/// to fan out, otherwise `min(threads(), n_chunks)`.
fn region_width(n_chunks: usize) -> usize {
    if n_chunks <= 1 || IN_REGION.with(Cell::get) {
        1
    } else {
        threads().min(n_chunks)
    }
}

/// Runs enumerated jobs through the shared injector queue across `width`
/// threads (the caller plus `width - 1` scoped workers). Returns the
/// number of jobs executed on spawned threads ("steals").
fn run_queue<J, F>(width: usize, jobs: Vec<J>, f: F) -> u64
where
    J: Send,
    F: Fn(J) + Sync,
{
    let (tx, rx) = crossbeam::channel::unbounded();
    for job in jobs {
        let _ = tx.send(job);
    }
    drop(tx);
    let steals = AtomicU64::new(0);
    struct Region(bool);
    impl Drop for Region {
        fn drop(&mut self) {
            IN_REGION.with(|c| c.set(self.0));
        }
    }
    std::thread::scope(|s| {
        for _ in 1..width {
            let rx = rx.clone();
            let f = &f;
            let steals = &steals;
            s.spawn(move || {
                IN_REGION.with(|c| c.set(true));
                while let Ok(job) = rx.recv() {
                    steals.fetch_add(1, Ordering::Relaxed);
                    f(job);
                }
            });
        }
        // The caller participates too; the guard restores its nesting
        // flag even if a chunk panics (the scope joins workers first and
        // re-raises the panic afterwards).
        let _region = Region(IN_REGION.with(|c| c.replace(true)));
        while let Ok(job) = rx.recv() {
            f(job);
        }
    });
    steals.load(Ordering::Relaxed)
}

/// Splits `data` into chunks of `chunk` items and runs
/// `f(chunk_index, item_offset, chunk)` for each, fanning chunks out
/// across the pool. Chunks are disjoint `&mut` slices, so any per-chunk
/// write pattern is race-free by construction; with a serial-order
/// per-element schedule inside `f`, output bits are identical at every
/// thread count.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, usize, &mut [T]) + Sync,
{
    let chunk = chunk.max(1);
    let n_chunks = data.len().div_ceil(chunk);
    if n_chunks == 0 {
        return;
    }
    let width = region_width(n_chunks);
    if width <= 1 {
        struct Region(bool);
        impl Drop for Region {
            fn drop(&mut self) {
                IN_REGION.with(|c| c.set(self.0));
            }
        }
        let _region = Region(IN_REGION.with(|c| c.replace(true)));
        for (i, part) in data.chunks_mut(chunk).enumerate() {
            f(i, i * chunk, part);
        }
        drop(_region);
        record_region(n_chunks, 1, 0, false);
        return;
    }
    let jobs: Vec<(usize, &mut [T])> = data.chunks_mut(chunk).enumerate().collect();
    let steals = run_queue(width, jobs, |(i, part)| f(i, i * chunk, part));
    record_region(n_chunks, width, steals, true);
}

/// Splits `0..total` into index ranges of `chunk` items and runs
/// `f(chunk_index, range)` for each across the pool. For kernels whose
/// output disjointness is not expressible as one flat slice (e.g. gather
/// + encode pipelines); `f` must only touch state owned by its range.
pub fn for_each_chunk<F>(total: usize, chunk: usize, f: F)
where
    F: Fn(usize, Range<usize>) + Sync,
{
    let chunk = chunk.max(1);
    let n_chunks = total.div_ceil(chunk);
    if n_chunks == 0 {
        return;
    }
    let ranges = |i: usize| -> Range<usize> { i * chunk..(i * chunk + chunk).min(total) };
    let width = region_width(n_chunks);
    if width <= 1 {
        struct Region(bool);
        impl Drop for Region {
            fn drop(&mut self) {
                IN_REGION.with(|c| c.set(self.0));
            }
        }
        let _region = Region(IN_REGION.with(|c| c.replace(true)));
        for i in 0..n_chunks {
            f(i, ranges(i));
        }
        drop(_region);
        record_region(n_chunks, 1, 0, false);
        return;
    }
    let jobs: Vec<usize> = (0..n_chunks).collect();
    let steals = run_queue(width, jobs, |i| f(i, ranges(i)));
    record_region(n_chunks, width, steals, true);
}

/// Maps `0..total` in chunks of `chunk` items through
/// `f(chunk_index, range)` across the pool, returning the results **in
/// chunk order** regardless of which thread produced them.
pub fn map_chunks<R, F>(total: usize, chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, Range<usize>) -> R + Sync,
{
    let chunk = chunk.max(1);
    let n_chunks = total.div_ceil(chunk);
    let mut slots: Vec<Option<R>> = (0..n_chunks).map(|_| None).collect();
    par_chunks_mut(&mut slots, 1, |i, _, slot| {
        let lo = i * chunk;
        let hi = (lo + chunk).min(total);
        slot[0] = Some(f(i, lo..hi));
    });
    slots
        .into_iter()
        .map(|s| s.expect("every chunk executes exactly once"))
        .collect()
}

/// Runs `a` and `b` potentially in parallel, returning both results.
/// `b` runs on a scoped thread when the pool width allows; inside an
/// enclosing region both run serially on the caller.
pub fn join<Ra, Rb, A, B>(a: A, b: B) -> (Ra, Rb)
where
    Ra: Send,
    Rb: Send,
    A: FnOnce() -> Ra + Send,
    B: FnOnce() -> Rb + Send,
{
    if threads() <= 1 || IN_REGION.with(Cell::get) {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(|| {
            IN_REGION.with(|c| c.set(true));
            b()
        });
        let ra = a();
        let rb = match hb.join() {
            Ok(rb) => rb,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn threads_resolution_order() {
        set_threads(0);
        let hw = threads();
        assert!(hw >= 1);
        set_threads(6);
        assert_eq!(threads(), 6);
        with_threads(2, || assert_eq!(threads(), 2));
        assert_eq!(threads(), 6);
        set_threads(0);
        assert_eq!(threads(), hw);
    }

    #[test]
    fn with_threads_restores_on_panic() {
        let before = TL_THREADS.with(Cell::get);
        let caught = std::panic::catch_unwind(|| with_threads(5, || panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(TL_THREADS.with(Cell::get), before);
    }

    #[test]
    fn par_chunks_mut_covers_every_item_once() {
        for threads in [1usize, 2, 3, 8] {
            with_threads(threads, || {
                let mut data = vec![0u32; 1003];
                par_chunks_mut(&mut data, 17, |_, off, part| {
                    for (d, v) in part.iter_mut().enumerate() {
                        *v += (off + d) as u32 + 1;
                    }
                });
                for (i, v) in data.iter().enumerate() {
                    assert_eq!(*v, i as u32 + 1, "item {i} at {threads} threads");
                }
            });
        }
    }

    #[test]
    fn par_chunks_mut_handles_empty_input() {
        let mut data: Vec<u8> = Vec::new();
        par_chunks_mut(&mut data, 4, |_, _, _| panic!("no chunks expected"));
    }

    #[test]
    fn map_chunks_preserves_chunk_order() {
        for threads in [1usize, 4] {
            let got = with_threads(threads, || {
                map_chunks(25, 4, |i, range| (i, range.start, range.end))
            });
            let want: Vec<_> = (0..7).map(|i| (i, i * 4, ((i + 1) * 4).min(25))).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn for_each_chunk_ranges_partition_the_input() {
        with_threads(4, || {
            let hits: Vec<AtomicUsize> = (0..103).map(|_| AtomicUsize::new(0)).collect();
            for_each_chunk(103, 10, |_, range| {
                for i in range {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        });
    }

    #[test]
    fn nested_regions_run_serial() {
        with_threads(4, || {
            take_region_stats();
            let mut outer = vec![0u64; 64];
            par_chunks_mut(&mut outer, 8, |_, _, part| {
                // Every thread executing a chunk is flagged in-region, so
                // the nested call below must degrade to width 1.
                assert!(IN_REGION.with(Cell::get));
                let mut inner = vec![0u64; 32];
                par_chunks_mut(&mut inner, 4, |_, off, p| {
                    for (d, v) in p.iter_mut().enumerate() {
                        *v = (off + d) as u64;
                    }
                });
                part[0] = inner.iter().sum();
            });
            // Only the outer region registers as parallel on this thread.
            let stats = take_region_stats();
            assert_eq!(stats.regions, 1);
            assert_eq!(outer[0], (0..32).sum::<u64>());
        });
    }

    #[test]
    fn serial_override_matches_parallel_bits() {
        let run = |t: usize| {
            with_threads(t, || {
                let mut data = vec![0f64; 777];
                par_chunks_mut(&mut data, 13, |_, off, part| {
                    for (d, v) in part.iter_mut().enumerate() {
                        let i = (off + d) as f64;
                        *v = (i * 0.1).sin() / (i + 1.0);
                    }
                });
                data.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            })
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(3));
        assert_eq!(serial, run(16));
    }

    #[test]
    fn region_stats_accumulate_and_reset() {
        with_threads(3, || {
            take_region_stats();
            let mut data = vec![0u8; 90];
            par_chunks_mut(&mut data, 10, |_, _, _| {});
            let s = take_region_stats();
            assert_eq!(s.regions, 1);
            assert_eq!(s.chunks, 9);
            assert_eq!(s.max_threads, 3);
            assert_eq!(take_region_stats(), RegionStats::ZERO);
        });
    }

    #[test]
    fn join_returns_both_results() {
        with_threads(2, || {
            let (a, b) = join(|| 2 + 2, || "ok");
            assert_eq!((a, b), (4, "ok"));
        });
        with_threads(1, || {
            let (a, b) = join(|| 1, || 2);
            assert_eq!((a, b), (1, 2));
        });
    }

    #[test]
    fn chunk_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            with_threads(2, || {
                let mut data = vec![0u8; 100];
                par_chunks_mut(&mut data, 10, |i, _, _| {
                    if i == 7 {
                        panic!("chunk failure");
                    }
                });
            })
        });
        assert!(caught.is_err());
        // The pool must remain usable after a panicking region.
        with_threads(2, || {
            let mut data = vec![0u8; 20];
            par_chunks_mut(&mut data, 5, |_, _, part| part.fill(1));
            assert!(data.iter().all(|&v| v == 1));
        });
    }

    #[test]
    fn chunk_len_targets_pool_width() {
        with_threads(4, || {
            assert_eq!(chunk_len(1600, 1), 100);
            // min_chunk floors the result.
            assert_eq!(chunk_len(1600, 500), 500);
            assert_eq!(chunk_len(0, 1), 1);
        });
        assert_eq!(fixed_chunk_len(6400, 1), 200);
    }
}
