//! Property tests pinning the streaming operators to batch oracles.
//!
//! A tumbling window over a record stream must equal the obvious batch
//! computation: chunk the input into consecutive full windows and fold
//! each chunk per field. The full Filter → Project → TumblingWindow
//! pipeline must likewise equal filter-then-map-then-chunk over the
//! whole batch, and `Query::reset` must make a reused query behave as if
//! freshly built.

use exdra_stream::query::{Cmp, Operator, Query, WindowAgg};
use exdra_stream::record::Record;
use proptest::prelude::*;

fn agg_strategy() -> impl Strategy<Value = WindowAgg> {
    prop_oneof![
        Just(WindowAgg::Mean),
        Just(WindowAgg::Min),
        Just(WindowAgg::Max),
        Just(WindowAgg::Sum),
    ]
}

/// Batch oracle: aggregate one full window of rows per field.
fn batch_window(rows: &[Vec<f64>], agg: WindowAgg) -> Vec<f64> {
    let arity = rows[0].len();
    (0..arity)
        .map(|f| {
            let col: Vec<f64> = rows.iter().map(|r| r[f]).collect();
            match agg {
                WindowAgg::Sum => col.iter().sum(),
                WindowAgg::Mean => col.iter().sum::<f64>() / col.len() as f64,
                WindowAgg::Min => col.iter().cloned().fold(f64::INFINITY, f64::min),
                WindowAgg::Max => col.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            }
        })
        .collect()
}

fn stream_through(q: &mut Query, rows: &[Vec<f64>]) -> Vec<Record> {
    let mut out = Vec::new();
    for (t, vals) in rows.iter().enumerate() {
        out.extend(q.process(Record::new(t as u64, vals.clone())));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tumbling-window aggregation over a stream equals chunked batch
    /// aggregation, bitwise, for every aggregate function. Trailing
    /// records that never fill a window produce nothing.
    #[test]
    fn tumbling_window_matches_batch_oracle(
        rows in proptest::collection::vec(
            proptest::collection::vec(-1e3f64..1e3, 3), 0..40),
        size in 1usize..6,
        agg in agg_strategy(),
    ) {
        let mut q = Query::new("w", vec![Operator::TumblingWindow { size, agg }]);
        let streamed = stream_through(&mut q, &rows);
        let expected: Vec<Vec<f64>> = rows
            .chunks_exact(size)
            .map(|chunk| batch_window(chunk, agg))
            .collect();
        prop_assert_eq!(streamed.len(), expected.len());
        for (got, want) in streamed.iter().zip(&expected) {
            for (g, w) in got.values.iter().zip(want) {
                prop_assert_eq!(g.to_bits(), w.to_bits(), "agg {:?}", agg);
            }
        }
        // Timestamp of each aggregate = last record of its window.
        for (i, got) in streamed.iter().enumerate() {
            prop_assert_eq!(got.timestamp, ((i + 1) * size - 1) as u64);
        }
        prop_assert_eq!(q.pending_window_records(), rows.len() % size);
    }

    /// The composed Filter → Project → TumblingWindow pipeline equals the
    /// batch pipeline: keep rows passing the predicate, transform them,
    /// then window the survivors in arrival order.
    #[test]
    fn filter_project_window_pipeline_matches_batch(
        rows in proptest::collection::vec(
            proptest::collection::vec(-10f64..10.0, 2), 0..60),
        threshold in -5f64..5.0,
        size in 1usize..5,
        agg in agg_strategy(),
    ) {
        let mut q = Query::new(
            "pipeline",
            vec![
                Operator::Filter { field: 0, cmp: Cmp::Ge, value: threshold },
                Operator::Project {
                    fields: vec![1, 0],
                    scale: vec![2.0, 1.0],
                    offset: vec![0.5, 0.0],
                },
                Operator::TumblingWindow { size, agg },
            ],
        );
        let streamed = stream_through(&mut q, &rows);
        let survivors: Vec<Vec<f64>> = rows
            .iter()
            .filter(|r| r[0] >= threshold)
            .map(|r| vec![r[1] * 2.0 + 0.5, r[0]])
            .collect();
        let expected: Vec<Vec<f64>> = survivors
            .chunks_exact(size)
            .map(|chunk| batch_window(chunk, agg))
            .collect();
        prop_assert_eq!(streamed.len(), expected.len());
        for (got, want) in streamed.iter().zip(&expected) {
            for (g, w) in got.values.iter().zip(want) {
                prop_assert_eq!(g.to_bits(), w.to_bits());
            }
        }
    }

    /// `Query::reset` restores fresh-query behavior: run a prefix, reset,
    /// then the second batch's outputs are exactly a fresh query's.
    #[test]
    fn reset_equals_fresh_query(
        first in proptest::collection::vec(
            proptest::collection::vec(-1e2f64..1e2, 2), 0..20),
        second in proptest::collection::vec(
            proptest::collection::vec(-1e2f64..1e2, 2), 0..20),
        size in 1usize..5,
        agg in agg_strategy(),
    ) {
        let ops = vec![Operator::TumblingWindow { size, agg }];
        let mut reused = Query::new("reused", ops.clone());
        let _ = stream_through(&mut reused, &first);
        reused.reset();
        let after_reset = stream_through(&mut reused, &second);
        let mut fresh = Query::new("fresh", ops);
        let fresh_out = stream_through(&mut fresh, &second);
        prop_assert_eq!(after_reset.len(), fresh_out.len());
        for (a, b) in after_reset.iter().zip(&fresh_out) {
            for (x, y) in a.values.iter().zip(&b.values) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}
