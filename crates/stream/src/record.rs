//! Stream records: timestamped rows of named numeric fields.

/// One stream tuple: a logical timestamp plus numeric field values.
///
/// Field names live in the stream schema (held by sources/queries), not in
/// every record, keeping tuples cheap to move through operator pipelines.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Logical timestamp (monotone per source).
    pub timestamp: u64,
    /// Field values, aligned with the stream schema.
    pub values: Vec<f64>,
}

impl Record {
    /// Creates a record.
    pub fn new(timestamp: u64, values: Vec<f64>) -> Self {
        Self { timestamp, values }
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.values.len()
    }
}

/// A stream schema: ordered field names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    /// Field names in record order.
    pub fields: Vec<String>,
}

impl Schema {
    /// Creates a schema from field names.
    pub fn new(fields: &[&str]) -> Self {
        Self {
            fields: fields.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Index of a field by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f == name)
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_lookup() {
        let s = Schema::new(&["power", "temp", "vibration"]);
        assert_eq!(s.index_of("temp"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.arity(), 3);
    }

    #[test]
    fn record_arity() {
        let r = Record::new(5, vec![1.0, 2.0]);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.timestamp, 5);
    }
}
