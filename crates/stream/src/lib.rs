#![warn(missing_docs)]
//! # exdra-stream
//!
//! Streaming data acquisition in the spirit of NebulaStream (paper §3.4):
//! a per-site coordinator deploys continuous queries over a topology of
//! sensor sources; results are appended to buffered *file sinks with
//! retention periods*, from which ML training sessions read consistent
//! in-memory snapshots — bridging "the impedance mismatch between streaming
//! data sources and iterative, multi-pass federated learning" (§5.1).
//!
//! * [`record`] — timestamped multi-field stream records,
//! * [`source`] — synthetic sensor sources (sinusoid + drift + noise +
//!   injected anomalies) standing in for OPC-connected equipment,
//! * [`query`] — continuous-query operators: filter, map/projection, and
//!   tumbling-window aggregation,
//! * [`sink`] — segmented file sinks with retention and snapshot reads,
//! * [`coordinator`] — per-site coordinator wiring sources through query
//!   plans into sinks, on background threads.

pub mod coordinator;
pub mod query;
pub mod record;
pub mod sink;
pub mod source;

pub use coordinator::{NesCoordinator, QueryHandle};
pub use record::Record;
pub use sink::FileSink;
pub use source::SensorSource;
