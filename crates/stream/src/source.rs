//! Synthetic sensor sources.
//!
//! Stands in for the paper's physical instrumentation (§2.1: "68 sensors at
//! 1-second granularity ... power, currents, temperatures, pressure
//! differences, tank levels, ..."): each field is a sinusoid with
//! field-specific period plus Gaussian noise and slow drift; anomalies are
//! injected at a configurable rate as large excursions, giving downstream
//! anomaly-detection models something real to find.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::record::{Record, Schema};

/// Configuration of a synthetic multi-field sensor source.
#[derive(Debug, Clone)]
pub struct SensorConfig {
    /// Field names (one signal per field).
    pub fields: Vec<String>,
    /// Probability that a record is an injected anomaly.
    pub anomaly_rate: f64,
    /// Gaussian noise scale.
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SensorConfig {
    /// `n` generically named signals.
    pub fn signals(n: usize, seed: u64) -> Self {
        Self {
            fields: (0..n).map(|i| format!("s{i}")).collect(),
            anomaly_rate: 0.0,
            noise: 0.05,
            seed,
        }
    }
}

/// A deterministic synthetic sensor source; iterator over records.
pub struct SensorSource {
    schema: Schema,
    config: SensorConfig,
    rng: StdRng,
    t: u64,
}

impl SensorSource {
    /// Creates the source.
    pub fn new(config: SensorConfig) -> Self {
        let schema = Schema {
            fields: config.fields.clone(),
        };
        let rng = StdRng::seed_from_u64(config.seed);
        Self {
            schema,
            config,
            rng,
            t: 0,
        }
    }

    /// The source's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Produces the next record.
    pub fn next_record(&mut self) -> Record {
        let t = self.t;
        self.t += 1;
        let anomalous = self.rng.gen::<f64>() < self.config.anomaly_rate;
        let values = (0..self.schema.arity())
            .map(|f| {
                let period = 20.0 + 7.0 * f as f64;
                let base = (t as f64 * 2.0 * std::f64::consts::PI / period).sin();
                let drift = t as f64 * 1e-4 * ((f % 3) as f64 - 1.0);
                let noise: f64 = self.rng.gen_range(-1.0..1.0) * self.config.noise;
                let spike = if anomalous {
                    5.0 + self.rng.gen::<f64>() * 5.0
                } else {
                    0.0
                };
                base + drift + noise + spike
            })
            .collect();
        Record::new(t, values)
    }

    /// Produces `n` records at once.
    pub fn take_records(&mut self, n: usize) -> Vec<Record> {
        (0..n).map(|_| self.next_record()).collect()
    }
}

impl Iterator for SensorSource {
    type Item = Record;
    fn next(&mut self) -> Option<Record> {
        Some(self.next_record())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SensorSource::new(SensorConfig::signals(4, 1));
        let mut b = SensorSource::new(SensorConfig::signals(4, 1));
        for _ in 0..50 {
            assert_eq!(a.next_record(), b.next_record());
        }
    }

    #[test]
    fn timestamps_monotone() {
        let mut s = SensorSource::new(SensorConfig::signals(2, 2));
        let records = s.take_records(100);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.timestamp, i as u64);
            assert_eq!(r.arity(), 2);
        }
    }

    #[test]
    fn anomalies_visible_as_spikes() {
        let mut cfg = SensorConfig::signals(1, 3);
        cfg.anomaly_rate = 0.1;
        let mut s = SensorSource::new(cfg);
        let records = s.take_records(1000);
        let spikes = records.iter().filter(|r| r.values[0] > 3.0).count();
        assert!(
            (50..200).contains(&spikes),
            "expected ~10% anomalies, saw {spikes}"
        );
    }

    #[test]
    fn clean_signal_bounded() {
        let mut s = SensorSource::new(SensorConfig::signals(3, 4));
        for r in s.take_records(500) {
            for &v in &r.values {
                assert!(v.abs() < 1.5, "clean signal out of band: {v}");
            }
        }
    }
}
