//! Continuous-query operators.
//!
//! A [`Query`] is a pipeline of stateless/stateful operators applied to a
//! record stream: selection ([`Operator::Filter`]), projection/scaling
//! ([`Operator::Project`]), and tumbling-window aggregation
//! ([`Operator::TumblingWindow`]) — the core relational-streaming surface
//! NES deploys to its node topology.

use crate::record::{Record, Schema};

/// Comparison predicate for filters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Cmp {
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// Equal.
    Eq,
}

impl Cmp {
    fn apply(self, a: f64, b: f64) -> bool {
        match self {
            Cmp::Lt => a < b,
            Cmp::Le => a <= b,
            Cmp::Gt => a > b,
            Cmp::Ge => a >= b,
            Cmp::Eq => a == b,
        }
    }
}

/// Window aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowAgg {
    /// Arithmetic mean per field.
    Mean,
    /// Minimum per field.
    Min,
    /// Maximum per field.
    Max,
    /// Sum per field.
    Sum,
}

/// A continuous-query operator.
#[derive(Debug, Clone)]
pub enum Operator {
    /// Keeps records where `field cmp value`.
    Filter {
        /// Field index.
        field: usize,
        /// Comparison.
        cmp: Cmp,
        /// Literal to compare against.
        value: f64,
    },
    /// Projects (and optionally scales/offsets) fields:
    /// output field `i` = `input[fields[i]] * scale[i] + offset[i]`.
    Project {
        /// Source field indices in output order.
        fields: Vec<usize>,
        /// Per-output scale (1.0 = identity).
        scale: Vec<f64>,
        /// Per-output offset (0.0 = identity).
        offset: Vec<f64>,
    },
    /// Tumbling window of `size` records emitting one aggregate record per
    /// full window (timestamp = last contained record's).
    TumblingWindow {
        /// Window length in records.
        size: usize,
        /// Aggregate function applied per field.
        agg: WindowAgg,
    },
}

/// Operator state for stateful operators.
enum OpState {
    Stateless,
    Window { buffer: Vec<Record> },
}

/// A compiled continuous query: operators plus their runtime state.
pub struct Query {
    name: String,
    operators: Vec<Operator>,
    state: Vec<OpState>,
}

impl Query {
    /// Builds a query from an operator pipeline.
    pub fn new(name: impl Into<String>, operators: Vec<Operator>) -> Self {
        let state = operators
            .iter()
            .map(|op| match op {
                Operator::TumblingWindow { .. } => OpState::Window { buffer: Vec::new() },
                _ => OpState::Stateless,
            })
            .collect();
        Self {
            name: name.into(),
            operators,
            state,
        }
    }

    /// Query name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operator pipeline.
    pub fn operators(&self) -> &[Operator] {
        &self.operators
    }

    /// Clears all stateful operator state (partially filled window
    /// buffers), so the query can be reused across bounded runs without
    /// records from one run leaking into the next window of the other.
    pub fn reset(&mut self) {
        for state in &mut self.state {
            if let OpState::Window { buffer } = state {
                buffer.clear();
            }
        }
    }

    /// Records currently buffered in partially filled windows.
    pub fn pending_window_records(&self) -> usize {
        self.state
            .iter()
            .map(|s| match s {
                OpState::Window { buffer } => buffer.len(),
                OpState::Stateless => 0,
            })
            .sum()
    }

    /// Output schema given the input schema.
    pub fn output_schema(&self, input: &Schema) -> Schema {
        let mut fields = input.fields.clone();
        for op in &self.operators {
            if let Operator::Project { fields: idx, .. } = op {
                fields = idx.iter().map(|&i| fields[i].clone()).collect();
            }
        }
        Schema { fields }
    }

    /// Processes one input record, producing zero or more output records.
    pub fn process(&mut self, record: Record) -> Vec<Record> {
        let mut current = vec![record];
        for (op, state) in self.operators.iter().zip(&mut self.state) {
            let mut next = Vec::new();
            for r in current {
                match (op, &mut *state) {
                    (Operator::Filter { field, cmp, value }, _) => {
                        if *field < r.arity() && cmp.apply(r.values[*field], *value) {
                            next.push(r);
                        }
                    }
                    (
                        Operator::Project {
                            fields,
                            scale,
                            offset,
                        },
                        _,
                    ) => {
                        let values = fields
                            .iter()
                            .enumerate()
                            .map(|(i, &f)| r.values[f] * scale[i] + offset[i])
                            .collect();
                        next.push(Record::new(r.timestamp, values));
                    }
                    (Operator::TumblingWindow { size, agg }, OpState::Window { buffer }) => {
                        buffer.push(r);
                        if buffer.len() >= *size {
                            next.push(aggregate_window(buffer, *agg));
                            buffer.clear();
                        }
                    }
                    _ => unreachable!("state/operator mismatch"),
                }
            }
            current = next;
        }
        current
    }
}

fn aggregate_window(buffer: &[Record], agg: WindowAgg) -> Record {
    let arity = buffer[0].arity();
    let ts = buffer.last().expect("non-empty window").timestamp;
    let mut values = vec![
        match agg {
            WindowAgg::Min => f64::INFINITY,
            WindowAgg::Max => f64::NEG_INFINITY,
            _ => 0.0,
        };
        arity
    ];
    for r in buffer {
        for (v, &x) in values.iter_mut().zip(&r.values) {
            match agg {
                WindowAgg::Mean | WindowAgg::Sum => *v += x,
                WindowAgg::Min => *v = v.min(x),
                WindowAgg::Max => *v = v.max(x),
            }
        }
    }
    if agg == WindowAgg::Mean {
        for v in &mut values {
            *v /= buffer.len() as f64;
        }
    }
    Record::new(ts, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ts: u64, vals: &[f64]) -> Record {
        Record::new(ts, vals.to_vec())
    }

    #[test]
    fn filter_keeps_matching() {
        let mut q = Query::new(
            "f",
            vec![Operator::Filter {
                field: 0,
                cmp: Cmp::Gt,
                value: 1.0,
            }],
        );
        assert!(q.process(rec(0, &[0.5])).is_empty());
        assert_eq!(q.process(rec(1, &[2.0])).len(), 1);
    }

    #[test]
    fn project_reorders_and_scales() {
        let mut q = Query::new(
            "p",
            vec![Operator::Project {
                fields: vec![1, 0],
                scale: vec![2.0, 1.0],
                offset: vec![0.0, 10.0],
            }],
        );
        let out = q.process(rec(3, &[1.0, 5.0]));
        assert_eq!(out[0].values, vec![10.0, 11.0]);
        assert_eq!(out[0].timestamp, 3);
    }

    #[test]
    fn tumbling_window_mean() {
        let mut q = Query::new(
            "w",
            vec![Operator::TumblingWindow {
                size: 3,
                agg: WindowAgg::Mean,
            }],
        );
        assert!(q.process(rec(0, &[1.0])).is_empty());
        assert!(q.process(rec(1, &[2.0])).is_empty());
        let out = q.process(rec(2, &[3.0]));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].values[0], 2.0);
        assert_eq!(out[0].timestamp, 2);
        // Next window starts fresh.
        assert!(q.process(rec(3, &[10.0])).is_empty());
    }

    #[test]
    fn pipeline_composes() {
        // Filter out negatives, then 2-window max.
        let mut q = Query::new(
            "combo",
            vec![
                Operator::Filter {
                    field: 0,
                    cmp: Cmp::Ge,
                    value: 0.0,
                },
                Operator::TumblingWindow {
                    size: 2,
                    agg: WindowAgg::Max,
                },
            ],
        );
        let mut outs = Vec::new();
        for (ts, v) in [(0u64, 1.0), (1, -5.0), (2, 3.0), (3, 2.0)] {
            outs.extend(q.process(rec(ts, &[v])));
        }
        // Records 1.0 and 3.0 fill the first window (the -5 was dropped).
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].values[0], 3.0);
    }

    #[test]
    fn reset_discards_partial_windows() {
        let mut q = Query::new(
            "r",
            vec![Operator::TumblingWindow {
                size: 3,
                agg: WindowAgg::Sum,
            }],
        );
        assert!(q.process(rec(0, &[1.0])).is_empty());
        assert!(q.process(rec(1, &[2.0])).is_empty());
        assert_eq!(q.pending_window_records(), 2);
        q.reset();
        assert_eq!(q.pending_window_records(), 0);
        // The two pre-reset records must not contaminate the next window.
        assert!(q.process(rec(2, &[10.0])).is_empty());
        assert!(q.process(rec(3, &[20.0])).is_empty());
        let out = q.process(rec(4, &[30.0]));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].values[0], 60.0);
    }

    #[test]
    fn window_min_and_sum_aggregate_per_field() {
        for (agg, expect) in [
            (WindowAgg::Min, vec![1.0, -2.0]),
            (WindowAgg::Sum, vec![4.0, 3.0]),
            (WindowAgg::Max, vec![3.0, 5.0]),
            (WindowAgg::Mean, vec![2.0, 1.5]),
        ] {
            let mut q = Query::new("agg", vec![Operator::TumblingWindow { size: 2, agg }]);
            assert!(q.process(rec(0, &[1.0, 5.0])).is_empty());
            let out = q.process(rec(1, &[3.0, -2.0]));
            assert_eq!(out.len(), 1, "{agg:?}");
            assert_eq!(out[0].values, expect, "{agg:?}");
            assert_eq!(out[0].timestamp, 1);
        }
    }

    #[test]
    fn output_schema_tracks_projection() {
        let q = Query::new(
            "s",
            vec![Operator::Project {
                fields: vec![2, 0],
                scale: vec![1.0, 1.0],
                offset: vec![0.0, 0.0],
            }],
        );
        let schema = Schema::new(&["a", "b", "c"]);
        assert_eq!(q.output_schema(&schema).fields, vec!["c", "a"]);
    }
}
