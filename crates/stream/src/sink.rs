//! Buffered file sinks with retention periods.
//!
//! "NES appends the collected streams to file sinks with retention periods
//! (e.g., last two days). ML pipelines then read this federated data from
//! the file sink, and use an in-memory snapshot for iterative training"
//! (paper §3.4). The sink rotates CSV segment files of a fixed record
//! count and drops the oldest segments beyond the retention limit;
//! [`FileSink::snapshot`] assembles a consistent matrix over the currently
//! retained records.

use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use exdra_matrix::{DenseMatrix, MatrixError, Result};
use parking_lot::Mutex;

use crate::record::{Record, Schema};

/// A segmented, retention-bounded CSV sink.
pub struct FileSink {
    dir: PathBuf,
    schema: Schema,
    segment_records: usize,
    retention_segments: usize,
    state: Mutex<SinkState>,
}

struct SinkState {
    /// Monotone segment counter (also the file name).
    next_segment: u64,
    /// Live segments, oldest first: `(segment id, records written)`.
    segments: Vec<(u64, usize)>,
    /// Writer for the open segment.
    writer: Option<BufWriter<File>>,
}

impl FileSink {
    /// Creates a sink writing segments of `segment_records` records into
    /// `dir`, keeping at most `retention_segments` finished segments.
    pub fn create(
        dir: impl AsRef<Path>,
        schema: Schema,
        segment_records: usize,
        retention_segments: usize,
    ) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        if segment_records == 0 || retention_segments == 0 {
            return Err(MatrixError::InvalidArgument {
                op: "FileSink::create",
                msg: "segment size and retention must be positive".into(),
            });
        }
        Ok(Self {
            dir,
            schema,
            segment_records,
            retention_segments,
            state: Mutex::new(SinkState {
                next_segment: 0,
                segments: Vec::new(),
                writer: None,
            }),
        })
    }

    /// The sink's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Directory holding the segment files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn segment_path(&self, id: u64) -> PathBuf {
        self.dir.join(format!("segment-{id:08}.csv"))
    }

    /// Appends one record (rotating and retiring segments as needed).
    pub fn append(&self, record: &Record) -> Result<()> {
        if record.arity() != self.schema.arity() {
            return Err(MatrixError::InvalidArgument {
                op: "FileSink::append",
                msg: format!(
                    "record arity {} != schema arity {}",
                    record.arity(),
                    self.schema.arity()
                ),
            });
        }
        let mut st = self.state.lock();
        // Open a fresh segment if needed.
        let need_new = match st.segments.last() {
            Some((_, n)) => *n >= self.segment_records,
            None => true,
        };
        if need_new {
            if let Some(mut w) = st.writer.take() {
                w.flush()?;
            }
            let id = st.next_segment;
            st.next_segment += 1;
            st.segments.push((id, 0));
            st.writer = Some(BufWriter::new(File::create(self.segment_path(id))?));
            // Retention: drop the oldest segments.
            while st.segments.len() > self.retention_segments {
                let (old, _) = st.segments.remove(0);
                let _ = fs::remove_file(self.segment_path(old));
            }
        }
        let mut line = String::with_capacity(record.arity() * 12);
        line.push_str(&record.timestamp.to_string());
        for v in &record.values {
            line.push(',');
            line.push_str(&format!("{v}"));
        }
        line.push('\n');
        let writer = st.writer.as_mut().expect("open segment");
        writer.write_all(line.as_bytes())?;
        writer.flush()?;
        if let Some(last) = st.segments.last_mut() {
            last.1 += 1;
        }
        Ok(())
    }

    /// Number of currently retained records.
    pub fn retained_records(&self) -> usize {
        self.state.lock().segments.iter().map(|(_, n)| n).sum()
    }

    /// Reads a consistent in-memory snapshot of all retained records as a
    /// matrix `[timestamp, fields...]`, oldest first.
    pub fn snapshot(&self) -> Result<DenseMatrix> {
        let st = self.state.lock();
        let cols = self.schema.arity() + 1;
        let mut data: Vec<f64> = Vec::new();
        let mut rows = 0usize;
        for (id, _) in &st.segments {
            let content = fs::read_to_string(self.segment_path(*id))?;
            for (lineno, line) in content.lines().enumerate() {
                if line.is_empty() {
                    continue;
                }
                let mut n = 0usize;
                for cell in line.split(',') {
                    let v: f64 = cell.parse().map_err(|_| MatrixError::Parse {
                        line: lineno + 1,
                        msg: format!("bad cell '{cell}' in segment {id}"),
                    })?;
                    data.push(v);
                    n += 1;
                }
                if n != cols {
                    return Err(MatrixError::Parse {
                        line: lineno + 1,
                        msg: format!("segment {id}: {n} cells, expected {cols}"),
                    });
                }
                rows += 1;
            }
        }
        DenseMatrix::new(rows, cols, data)
    }

    /// Snapshot without the timestamp column (feature matrix for training).
    pub fn snapshot_features(&self) -> Result<DenseMatrix> {
        let full = self.snapshot()?;
        if full.rows() == 0 {
            return DenseMatrix::new(0, self.schema.arity(), Vec::new());
        }
        exdra_matrix::kernels::reorg::index(&full, 0, full.rows(), 1, full.cols())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sink(name: &str, seg: usize, ret: usize) -> FileSink {
        let dir = std::env::temp_dir()
            .join("exdra_sink_tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        FileSink::create(dir, Schema::new(&["a", "b"]), seg, ret).unwrap()
    }

    #[test]
    fn append_and_snapshot() {
        let s = sink("basic", 10, 5);
        for t in 0..7u64 {
            s.append(&Record::new(t, vec![t as f64, -(t as f64)]))
                .unwrap();
        }
        let snap = s.snapshot().unwrap();
        assert_eq!(snap.shape(), (7, 3));
        assert_eq!(snap.get(3, 0), 3.0); // timestamp column
        assert_eq!(snap.get(3, 2), -3.0);
        let feats = s.snapshot_features().unwrap();
        assert_eq!(feats.shape(), (7, 2));
    }

    #[test]
    fn retention_drops_oldest_segments() {
        let s = sink("retention", 5, 2); // keep at most 10 records
        for t in 0..23u64 {
            s.append(&Record::new(t, vec![t as f64, 0.0])).unwrap();
        }
        // Segments: 0..5,5..10,10..15,15..20,20..23; retained = last 2.
        assert!(s.retained_records() <= 10);
        let snap = s.snapshot().unwrap();
        // Oldest retained record is from segment 3 (t = 15).
        assert_eq!(snap.get(0, 0), 15.0);
        assert_eq!(snap.get(snap.rows() - 1, 0), 22.0);
        // Old segment files are gone from disk.
        assert!(!s.segment_path(0).exists());
        assert!(s.segment_path(4).exists());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let s = sink("arity", 5, 2);
        assert!(s.append(&Record::new(0, vec![1.0])).is_err());
    }

    #[test]
    fn empty_snapshot_is_empty_matrix() {
        let s = sink("empty", 5, 2);
        assert_eq!(s.snapshot().unwrap().rows(), 0);
        assert_eq!(s.snapshot_features().unwrap().shape(), (0, 2));
    }

    #[test]
    fn concurrent_appends_do_not_corrupt() {
        let s = std::sync::Arc::new(sink("concurrent", 50, 10));
        std::thread::scope(|scope| {
            for tid in 0..4u64 {
                let s = std::sync::Arc::clone(&s);
                scope.spawn(move || {
                    for i in 0..50u64 {
                        s.append(&Record::new(tid * 1000 + i, vec![1.0, 2.0]))
                            .unwrap();
                    }
                });
            }
        });
        let snap = s.snapshot().unwrap();
        assert_eq!(snap.rows(), 200);
        // Every row parses and has the right values.
        for r in 0..snap.rows() {
            assert_eq!(snap.get(r, 1), 1.0);
            assert_eq!(snap.get(r, 2), 2.0);
        }
    }
}
