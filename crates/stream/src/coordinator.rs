//! Per-site NES coordinator: deploys continuous queries over sources into
//! sinks (paper §3.4). One coordinator instance runs at each federated
//! site, "which protects private data by avoiding consolidation in central
//! cloud environments".

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use exdra_matrix::Result;

use crate::query::Query;
use crate::sink::FileSink;
use crate::source::SensorSource;

/// Handle to a deployed continuous query.
pub struct QueryHandle {
    name: String,
    stop: Arc<AtomicBool>,
    processed: Arc<AtomicU64>,
    emitted: Arc<AtomicU64>,
    thread: Option<JoinHandle<()>>,
}

impl QueryHandle {
    /// The query's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records consumed from the source so far.
    pub fn processed(&self) -> u64 {
        self.processed.load(Ordering::Relaxed)
    }

    /// Records emitted to the sink so far.
    pub fn emitted(&self) -> u64 {
        self.emitted.load(Ordering::Relaxed)
    }

    /// Stops the query and waits for its thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    /// Blocks until at least `n` records were emitted (with a timeout).
    pub fn wait_for_emitted(&self, n: u64, timeout: Duration) -> bool {
        let t0 = std::time::Instant::now();
        while self.emitted() < n {
            if t0.elapsed() > timeout {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        true
    }
}

impl Drop for QueryHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// A per-site streaming coordinator.
#[derive(Default)]
pub struct NesCoordinator {
    site: String,
}

impl NesCoordinator {
    /// Creates a coordinator for one federated site.
    pub fn new(site: impl Into<String>) -> Self {
        Self { site: site.into() }
    }

    /// Site name.
    pub fn site(&self) -> &str {
        &self.site
    }

    /// Deploys a continuous query: pump `source` through `query` into
    /// `sink` on a background thread until stopped. `rate_limit` throttles
    /// the source (None = as fast as possible; tests use a small pause to
    /// emulate sensor cadence).
    pub fn deploy(
        &self,
        mut source: SensorSource,
        mut query: Query,
        sink: Arc<FileSink>,
        rate_limit: Option<Duration>,
    ) -> QueryHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let processed = Arc::new(AtomicU64::new(0));
        let emitted = Arc::new(AtomicU64::new(0));
        let name = format!("{}/{}", self.site, query.name());
        let handle_stop = Arc::clone(&stop);
        let handle_processed = Arc::clone(&processed);
        let handle_emitted = Arc::clone(&emitted);
        let thread = std::thread::Builder::new()
            .name(format!("nes-{name}"))
            .spawn(move || {
                while !handle_stop.load(Ordering::SeqCst) {
                    let record = source.next_record();
                    handle_processed.fetch_add(1, Ordering::Relaxed);
                    for out in query.process(record) {
                        if sink.append(&out).is_err() {
                            return;
                        }
                        handle_emitted.fetch_add(1, Ordering::Relaxed);
                    }
                    if let Some(pause) = rate_limit {
                        std::thread::sleep(pause);
                    }
                }
            })
            .expect("spawn query thread");
        QueryHandle {
            name,
            stop,
            processed,
            emitted,
            thread: Some(thread),
        }
    }

    /// Runs a query synchronously over exactly `n` source records
    /// (deterministic batch pump for tests and benches).
    pub fn run_bounded(
        &self,
        source: &mut SensorSource,
        query: &mut Query,
        sink: &FileSink,
        n: usize,
    ) -> Result<u64> {
        let mut emitted = 0u64;
        for _ in 0..n {
            let record = source.next_record();
            for out in query.process(record) {
                sink.append(&out)?;
                emitted += 1;
            }
        }
        Ok(emitted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Cmp, Operator, WindowAgg};
    use crate::record::Schema;
    use crate::source::SensorConfig;

    fn tmp_sink(name: &str, fields: &[&str]) -> Arc<FileSink> {
        let dir = std::env::temp_dir()
            .join("exdra_nes_tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Arc::new(FileSink::create(dir, Schema::new(fields), 100, 10).unwrap())
    }

    #[test]
    fn bounded_pump_windows_into_sink() {
        let nes = NesCoordinator::new("site1");
        let mut source = SensorSource::new(SensorConfig::signals(3, 5));
        let mut query = Query::new(
            "window-mean",
            vec![Operator::TumblingWindow {
                size: 10,
                agg: WindowAgg::Mean,
            }],
        );
        let sink = tmp_sink("bounded", &["s0", "s1", "s2"]);
        let emitted = nes
            .run_bounded(&mut source, &mut query, &sink, 100)
            .unwrap();
        assert_eq!(emitted, 10);
        let snap = sink.snapshot().unwrap();
        assert_eq!(snap.shape(), (10, 4));
    }

    #[test]
    fn deployed_query_runs_until_stopped() {
        let nes = NesCoordinator::new("site2");
        let source = SensorSource::new(SensorConfig::signals(2, 6));
        let query = Query::new("raw", vec![]);
        let sink = tmp_sink("deployed", &["s0", "s1"]);
        let handle = nes.deploy(source, query, Arc::clone(&sink), None);
        assert!(handle.wait_for_emitted(50, Duration::from_secs(5)));
        assert_eq!(handle.name(), "site2/raw");
        handle.stop();
        let n = sink.retained_records();
        assert!(n >= 50);
        // After stop, no more records arrive.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(sink.retained_records(), n);
    }

    #[test]
    fn filtered_stream_keeps_only_matching() {
        let nes = NesCoordinator::new("site3");
        let mut cfg = SensorConfig::signals(1, 7);
        cfg.anomaly_rate = 0.2;
        let mut source = SensorSource::new(cfg);
        let mut query = Query::new(
            "anomalies-only",
            vec![Operator::Filter {
                field: 0,
                cmp: Cmp::Gt,
                value: 3.0,
            }],
        );
        let sink = tmp_sink("filtered", &["s0"]);
        let emitted = nes
            .run_bounded(&mut source, &mut query, &sink, 500)
            .unwrap();
        assert!(emitted > 30 && emitted < 250, "emitted {emitted}");
        let snap = sink.snapshot_features().unwrap();
        assert!(snap.values().iter().all(|&v| v > 3.0));
    }
}
