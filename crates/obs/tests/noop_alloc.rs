//! Proves the acceptance criterion that the tracing facade is a true
//! no-op when disabled: opening spans, attaching numeric attributes,
//! reading the current context, and propagating contexts must perform
//! zero heap allocations.
//!
//! Uses a counting `#[global_allocator]`; this lives in its own
//! integration-test binary so the allocator does not leak into other
//! tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn disabled_tracing_hot_path_does_not_allocate() {
    exdra_obs::set_enabled(false);
    // Warm up any lazy statics outside the measured window.
    {
        let mut s = exdra_obs::span(exdra_obs::SpanKind::Rpc, "warmup");
        s.attr("k", 1u64);
        let _ = exdra_obs::current();
        let _ = exdra_obs::propagate(exdra_obs::TraceContext::NONE);
    }

    let before = allocations();
    for i in 0..10_000u64 {
        let mut span = exdra_obs::span(exdra_obs::SpanKind::Instruction, "hot");
        span.attr("worker", 3u64);
        span.attr("bytes", i);
        span.attr("reuse", true);
        let ctx = span.context();
        let _guard = exdra_obs::propagate(ctx);
        let _ = exdra_obs::current();
        let mut child = exdra_obs::span_child_of(exdra_obs::SpanKind::Worker, "child", ctx);
        child.attr("n", i);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "disabled tracing must not allocate (saw {} allocations over 10k spans)",
        after - before
    );

    // Sanity check *after* the measured window (same test fn, so the
    // global enabled flag cannot race the measurement): the same facade
    // records when switched on, so the zero-allocation result above is
    // not vacuous.
    exdra_obs::set_enabled(true);
    {
        let mut s = exdra_obs::span(exdra_obs::SpanKind::Rpc, "real");
        s.attr("k", 7u64);
    }
    exdra_obs::set_enabled(false);
    let spans = exdra_obs::take_spans();
    assert!(spans.iter().any(|s| s.name == "real"));
}
