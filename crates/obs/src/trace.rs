//! Structured tracing: spans, contexts, per-thread buffering.
//!
//! Design notes:
//!
//! * A span is opened with [`span`] (parent inferred from the calling
//!   thread's span stack) or [`span_child_of`] (explicit parent, used on
//!   the worker side of an RPC and in fan-out threads). Dropping the
//!   returned [`SpanGuard`] records the span.
//! * Finished spans go to a thread-local buffer; the buffer drains into
//!   the global collector only when the thread's span stack unwinds to
//!   empty (or the buffer exceeds a high-water mark), so nested spans
//!   on the hot path never contend on the collector lock.
//! * Ids are drawn from one process-global atomic counter: cheap,
//!   collision-free, and deterministic enough for tests. `0` is the
//!   reserved "none" id.
//! * Disabled tracing (the default) short-circuits before any clock
//!   read, thread-local access, or allocation.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use parking_lot::Mutex;

/// Flush the thread-local buffer once it holds this many spans even if
/// the stack has not unwound (guards against unbounded growth under a
/// long-lived root span).
const BUFFER_HIGH_WATER: usize = 256;

/// Hard cap on retained spans so long runs with tracing enabled cannot
/// grow memory without bound; oldest spans are dropped first.
const COLLECTOR_CAP: usize = 1 << 20;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

static COLLECTOR: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

thread_local! {
    /// Stack of active span contexts (innermost last). Propagated
    /// foreign contexts are pushed here too, so `current()` sees them.
    static STACK: RefCell<Vec<TraceContext>> = const { RefCell::new(Vec::new()) };
    /// Finished spans awaiting a flush to the global collector.
    static BUFFER: RefCell<Vec<SpanRecord>> = const { RefCell::new(Vec::new()) };
}

/// Turns span recording on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Release);
}

/// Whether tracing is currently enabled. A single relaxed-ish atomic
/// load — instrumented code gates all allocation/formatting on this.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

fn fresh_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// A (trace id, span id) pair identifying a position in a trace.
/// `trace_id == 0` means "no context"; such contexts propagate nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TraceContext {
    pub trace_id: u64,
    pub span_id: u64,
}

impl TraceContext {
    pub const NONE: TraceContext = TraceContext {
        trace_id: 0,
        span_id: 0,
    };

    #[inline]
    pub fn is_none(&self) -> bool {
        self.trace_id == 0
    }
}

/// Coarse classification of what a span measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Coordinator-side RPC (send + wait + decode) to one worker.
    Rpc,
    /// Worker-side handling of one request batch.
    Worker,
    /// One executed instruction on a worker.
    Instruction,
    /// Parameter-server round or sub-phase.
    ParamServ,
    /// Session / API-level operation.
    Session,
    /// Supervision/recovery operation: checkpoint sweeps, state
    /// restoration onto replacement workers, speculative re-execution.
    Recovery,
    /// Anything else.
    Other,
}

impl SpanKind {
    pub fn name(&self) -> &'static str {
        match self {
            SpanKind::Rpc => "rpc",
            SpanKind::Worker => "worker",
            SpanKind::Instruction => "instruction",
            SpanKind::ParamServ => "paramserv",
            SpanKind::Session => "session",
            SpanKind::Recovery => "recovery",
            SpanKind::Other => "other",
        }
    }
}

/// An attribute value. Numeric variants never allocate; `Str` is for
/// values only known at runtime (callers should gate building the
/// `String` on [`SpanGuard::is_active`]).
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Static(&'static str),
    Str(String),
}

impl std::fmt::Display for AttrValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::I64(v) => write!(f, "{v}"),
            AttrValue::F64(v) => write!(f, "{v}"),
            AttrValue::Bool(v) => write!(f, "{v}"),
            AttrValue::Static(v) => write!(f, "{v}"),
            AttrValue::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}
impl From<&'static str> for AttrValue {
    fn from(v: &'static str) -> Self {
        AttrValue::Static(v)
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

/// One finished span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    pub trace_id: u64,
    pub span_id: u64,
    /// `0` for roots.
    pub parent_id: u64,
    pub kind: SpanKind,
    pub name: &'static str,
    /// Wall-clock start, nanoseconds since the unix epoch.
    pub start_unix_nanos: u64,
    pub duration_nanos: u64,
    pub attrs: Vec<(&'static str, AttrValue)>,
}

struct ActiveSpan {
    rec: SpanRecord,
    started: Instant,
}

/// RAII guard for an open span; records the span on drop. Inactive
/// guards (tracing disabled) are zero-cost.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    const INACTIVE: SpanGuard = SpanGuard { active: None };

    /// Whether this guard will record a span. Gate any allocating
    /// attribute construction (e.g. `format!`) on this.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active.is_some()
    }

    /// The context of this span, for propagation to children (possibly
    /// across threads or the wire). [`TraceContext::NONE`] if inactive.
    pub fn context(&self) -> TraceContext {
        match &self.active {
            Some(a) => TraceContext {
                trace_id: a.rec.trace_id,
                span_id: a.rec.span_id,
            },
            None => TraceContext::NONE,
        }
    }

    /// Attaches a key/value attribute. No-op when inactive; numeric
    /// values do not allocate beyond the attrs vector itself.
    #[inline]
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if let Some(a) = &mut self.active {
            a.rec.attrs.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(mut active) = self.active.take() else {
            return;
        };
        active.rec.duration_nanos = active.started.elapsed().as_nanos() as u64;
        let depth = STACK.with(|s| {
            let mut s = s.borrow_mut();
            s.pop();
            s.len()
        });
        BUFFER.with(|b| {
            let mut b = b.borrow_mut();
            b.push(active.rec);
            if depth == 0 || b.len() >= BUFFER_HIGH_WATER {
                flush_buffer(&mut b);
            }
        });
    }
}

fn flush_buffer(buffer: &mut Vec<SpanRecord>) {
    if buffer.is_empty() {
        return;
    }
    // Tee into the flight recorder's ring before taking the collector
    // lock (the two locks are never held together). Amortized over a
    // whole buffer, so the per-span happy path stays lock-free.
    if crate::recorder::enabled() {
        crate::recorder::observe_spans(buffer);
    }
    let mut collector = COLLECTOR.lock();
    if collector.len() + buffer.len() > COLLECTOR_CAP {
        let overflow = (collector.len() + buffer.len())
            .saturating_sub(COLLECTOR_CAP)
            .min(collector.len());
        collector.drain(..overflow);
    }
    collector.append(buffer);
}

fn unix_nanos() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

fn open(kind: SpanKind, name: &'static str, parent: TraceContext) -> SpanGuard {
    let (trace_id, parent_id) = if parent.is_none() {
        (fresh_id(), 0)
    } else {
        (parent.trace_id, parent.span_id)
    };
    let span_id = fresh_id();
    STACK.with(|s| s.borrow_mut().push(TraceContext { trace_id, span_id }));
    SpanGuard {
        active: Some(ActiveSpan {
            rec: SpanRecord {
                trace_id,
                span_id,
                parent_id,
                kind,
                name,
                start_unix_nanos: unix_nanos(),
                duration_nanos: 0,
                attrs: Vec::new(),
            },
            started: Instant::now(),
        }),
    }
}

/// Opens a span whose parent is the calling thread's innermost active
/// context (a fresh root if there is none). Returns an inactive,
/// zero-cost guard when tracing is disabled.
#[inline]
pub fn span(kind: SpanKind, name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard::INACTIVE;
    }
    open(kind, name, current())
}

/// Opens a span under an explicit parent context — the worker side of a
/// propagated RPC context, or a fan-out thread inheriting its spawner's
/// context. A `NONE` parent starts a fresh trace.
#[inline]
pub fn span_child_of(kind: SpanKind, name: &'static str, parent: TraceContext) -> SpanGuard {
    if !enabled() {
        return SpanGuard::INACTIVE;
    }
    open(kind, name, parent)
}

/// The calling thread's innermost active context ([`TraceContext::NONE`]
/// outside any span).
pub fn current() -> TraceContext {
    if !enabled() {
        return TraceContext::NONE;
    }
    STACK.with(|s| s.borrow().last().copied().unwrap_or(TraceContext::NONE))
}

/// RAII guard that makes `parent` the calling thread's current context
/// without opening a span — used to carry a context into spawned
/// threads so their spans parent correctly.
pub struct PropagationGuard {
    pushed: bool,
}

/// Pushes `parent` onto the calling thread's context stack until the
/// returned guard drops. No-op when tracing is disabled or the context
/// is `NONE`.
pub fn propagate(parent: TraceContext) -> PropagationGuard {
    if !enabled() || parent.is_none() {
        return PropagationGuard { pushed: false };
    }
    STACK.with(|s| s.borrow_mut().push(parent));
    PropagationGuard { pushed: true }
}

impl Drop for PropagationGuard {
    fn drop(&mut self) {
        if !self.pushed {
            return;
        }
        let depth = STACK.with(|s| {
            let mut s = s.borrow_mut();
            s.pop();
            s.len()
        });
        if depth == 0 {
            BUFFER.with(|b| flush_buffer(&mut b.borrow_mut()));
        }
    }
}

/// Drains all collected spans (flushing the calling thread's buffer
/// first). Spans buffered on *other* threads that are still inside a
/// root span are not included until those threads unwind.
pub fn take_spans() -> Vec<SpanRecord> {
    BUFFER.with(|b| flush_buffer(&mut b.borrow_mut()));
    std::mem::take(&mut *COLLECTOR.lock())
}

/// Copies all collected spans (flushing the calling thread's buffer
/// first) without draining the collector — unlike [`take_spans`], other
/// concurrent sessions keep their spans. Spans buffered on *other*
/// threads still inside a root span are not included.
pub fn snapshot_spans() -> Vec<SpanRecord> {
    BUFFER.with(|b| flush_buffer(&mut b.borrow_mut()));
    COLLECTOR.lock().clone()
}

/// Number of spans currently collected (including the calling thread's
/// unflushed buffer) without draining them.
pub fn collected_count() -> usize {
    let buffered = BUFFER.with(|b| b.borrow().len());
    buffered + COLLECTOR.lock().len()
}

/// Discards all collected spans and the calling thread's buffer.
pub fn clear() {
    BUFFER.with(|b| b.borrow_mut().clear());
    COLLECTOR.lock().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests in this module share the process-global enabled flag and
    // collector, so they serialize on one mutex.
    static GATE: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_spans_are_inactive_and_record_nothing() {
        let _g = GATE.lock();
        set_enabled(false);
        clear();
        let mut s = span(SpanKind::Rpc, "x");
        assert!(!s.is_active());
        assert_eq!(s.context(), TraceContext::NONE);
        s.attr("k", 1u64);
        drop(s);
        assert!(take_spans().is_empty());
    }

    #[test]
    fn nesting_assigns_parents_and_shares_trace_id() {
        let _g = GATE.lock();
        set_enabled(true);
        clear();
        let root_ctx;
        let child_ctx;
        {
            let root = span(SpanKind::Session, "root");
            root_ctx = root.context();
            {
                let child = span(SpanKind::Rpc, "child");
                child_ctx = child.context();
            }
        }
        set_enabled(false);
        let spans = take_spans();
        assert_eq!(spans.len(), 2);
        let child = spans.iter().find(|s| s.name == "child").unwrap();
        let root = spans.iter().find(|s| s.name == "root").unwrap();
        assert_eq!(child.trace_id, root.trace_id);
        assert_eq!(child.parent_id, root.span_id);
        assert_eq!(root.parent_id, 0);
        assert_eq!(root_ctx.span_id, root.span_id);
        assert_eq!(child_ctx.span_id, child.span_id);
    }

    #[test]
    fn explicit_parent_and_propagation_cross_threads() {
        let _g = GATE.lock();
        set_enabled(true);
        clear();
        let parent = {
            let root = span(SpanKind::Session, "root");
            let ctx = root.context();
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    let _p = propagate(ctx);
                    let mut s = span(SpanKind::Worker, "remote");
                    s.attr("worker", 3u64);
                });
            });
            ctx
        };
        set_enabled(false);
        let spans = take_spans();
        let remote = spans.iter().find(|s| s.name == "remote").unwrap();
        assert_eq!(remote.trace_id, parent.trace_id);
        assert_eq!(remote.parent_id, parent.span_id);
    }

    #[test]
    fn buffer_flushes_at_high_water_under_long_root() {
        let _g = GATE.lock();
        set_enabled(true);
        clear();
        let _root = span(SpanKind::Session, "long-root");
        for _ in 0..BUFFER_HIGH_WATER {
            let _s = span(SpanKind::Instruction, "leaf");
        }
        // Root still open, but the buffer crossed the high-water mark.
        assert!(COLLECTOR.lock().len() >= BUFFER_HIGH_WATER);
        drop(_root);
        set_enabled(false);
        clear();
    }
}
