//! Exporters: Prometheus-style text and JSON (hand-rolled — the
//! workspace builds offline with no serde), plus a minimal JSON reader
//! used by tests and the bench smoke check to assert sidecars parse.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::MetricsSnapshot;
use crate::trace::{AttrValue, SpanRecord};

/// Prometheus metric names allow `[a-zA-Z0-9_:]`; dots become
/// underscores and everything gets an `exdra_` namespace prefix.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("exdra_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' || ch == ':' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders a snapshot as Prometheus exposition text. Histograms export
/// as `<name>_count`/`<name>_sum` counters plus quantile gauges.
pub fn to_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, s) in &snap.histograms {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} summary");
        let _ = writeln!(out, "{n}{{quantile=\"0.5\"}} {}", s.p50);
        let _ = writeln!(out, "{n}{{quantile=\"0.95\"}} {}", s.p95);
        let _ = writeln!(out, "{n}{{quantile=\"0.99\"}} {}", s.p99);
        let _ = writeln!(out, "{n}_count {}", s.count);
        let _ = writeln!(out, "{n}_sum {}", s.sum);
        let _ = writeln!(out, "{n}_max {}", s.max);
    }
    out
}

/// Writes `s` as a JSON string literal (with escaping) into `out`.
pub fn json_escape_into(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats an `f64` as a JSON number (JSON has no NaN/Inf; those become
/// `0`). Integral values print without a fraction.
pub fn json_f64(v: f64) -> String {
    if !v.is_finite() {
        "0".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Renders a snapshot as a JSON object:
/// `{"counters": {...}, "histograms": {"name": {"count": ..}}}`.
pub fn to_json(snap: &MetricsSnapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_escape_into(&mut out, name);
        let _ = write!(out, ":{v}");
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, s)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_escape_into(&mut out, name);
        let _ = write!(
            out,
            ":{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
            s.count,
            s.sum,
            s.max,
            json_f64(s.p50),
            json_f64(s.p95),
            json_f64(s.p99)
        );
    }
    out.push_str("}}");
    out
}

/// Writes one span record as a JSON object into `out`:
/// `{"trace_id":..,"span_id":..,"parent_id":..,"kind":"rpc","name":..,
/// "start_unix_nanos":..,"duration_nanos":..,"attrs":{..}}`.
pub fn span_json_into(out: &mut String, rec: &SpanRecord) {
    let _ = write!(
        out,
        "{{\"trace_id\":{},\"span_id\":{},\"parent_id\":{},\"kind\":\"{}\",\"name\":",
        rec.trace_id,
        rec.span_id,
        rec.parent_id,
        rec.kind.name()
    );
    json_escape_into(out, rec.name);
    let _ = write!(
        out,
        ",\"start_unix_nanos\":{},\"duration_nanos\":{},\"attrs\":{{",
        rec.start_unix_nanos, rec.duration_nanos
    );
    for (i, (key, value)) in rec.attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_escape_into(out, key);
        out.push(':');
        match value {
            AttrValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            AttrValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            AttrValue::F64(v) => out.push_str(&json_f64(*v)),
            AttrValue::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            AttrValue::Static(s) => json_escape_into(out, s),
            AttrValue::Str(s) => json_escape_into(out, s),
        }
    }
    out.push_str("}}");
}

/// A parsed JSON value — just enough structure for tests and the bench
/// smoke check to validate sidecars without an external JSON crate.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", ch as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance by one UTF-8 scalar, not one byte.
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| "invalid utf-8 in string".to_string())?;
                let ch = rest.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        map.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut arr = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(arr));
    }
    loop {
        arr.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(arr));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn sample() -> MetricsSnapshot {
        let r = Registry::new();
        r.add("rpc.calls", 7);
        r.add("worker.0.bytes_sent", 1234);
        for v in [10u64, 100, 1000] {
            r.record("rpc.latency", v);
        }
        r.snapshot()
    }

    #[test]
    fn prometheus_text_is_well_formed() {
        let text = to_prometheus(&sample());
        assert!(text.contains("exdra_rpc_calls 7"));
        assert!(text.contains("exdra_rpc_latency_count 3"));
        assert!(text.contains("exdra_rpc_latency{quantile=\"0.5\"}"));
        // Every non-comment line is "name[{labels}] value".
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("name value");
            value.parse::<f64>().expect("numeric value");
        }
    }

    #[test]
    fn json_roundtrips_through_own_parser() {
        let text = to_json(&sample());
        let doc = Json::parse(&text).expect("valid json");
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("rpc.calls"))
                .and_then(Json::as_f64),
            Some(7.0)
        );
        let hist = doc
            .get("histograms")
            .and_then(|h| h.get("rpc.latency"))
            .unwrap();
        assert_eq!(hist.get("count").and_then(Json::as_f64), Some(3.0));
    }

    #[test]
    fn parser_handles_escapes_nesting_and_rejects_garbage() {
        let doc = Json::parse(r#"{"a\n\"b":[1,2.5,-3e2,true,null,{"x":"A"}]}"#).unwrap();
        let arr = doc.get("a\n\"b").unwrap();
        match arr {
            Json::Arr(items) => {
                assert_eq!(items[0], Json::Num(1.0));
                assert_eq!(items[2], Json::Num(-300.0));
                assert_eq!(items[5].get("x").and_then(Json::as_str), Some("A"));
            }
            _ => panic!("expected array"),
        }
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn json_f64_avoids_nan_and_integral_fractions() {
        assert_eq!(json_f64(f64::NAN), "0");
        assert_eq!(json_f64(3.0), "3");
        assert_eq!(json_f64(2.5), "2.5");
    }
}
