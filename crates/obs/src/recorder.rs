//! Flight recorder: an always-on, bounded ring of recent spans and
//! events that dumps a timestamped JSON incident bundle when an anomaly
//! fires (worker death, recovery, session rejection, deadline miss,
//! slow query).
//!
//! Design notes:
//!
//! * The recorder is independent of the tracing collector: finished
//!   spans are teed into its ring by the tracer's buffer flush (one
//!   lock per ≤256 spans, so the happy path pays nothing per span),
//!   and the ring keeps only the most recent 4096 spans.
//!   Draining the collector (e.g. a bench calling `take_spans`) does
//!   not erase the recorder's view of recent history.
//! * [`event`] records lightweight timestamped breadcrumbs (worker
//!   state changes, admissions, recoveries) that survive even when
//!   tracing is disabled.
//! * [`incident`] snapshots rings + the global metrics registry into a
//!   self-contained JSON bundle under the configured output directory
//!   (default `results/incidents`). A per-kind suppression window keeps
//!   a flapping anomaly from flooding the disk.

use std::collections::{BTreeMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::{SystemTime, UNIX_EPOCH};

use parking_lot::Mutex;

use crate::export::{json_escape_into, to_json};
use crate::trace::SpanRecord;

/// Most recent finished spans retained for incident bundles.
const SPAN_RING_CAP: usize = 4096;
/// Most recent events retained for incident bundles.
const EVENT_RING_CAP: usize = 512;
/// In-memory incident summaries kept for the `/incidents` endpoint.
const INCIDENT_KEEP: usize = 64;
/// Minimum spacing between two dumped bundles of the same kind; repeats
/// inside the window are counted but not written.
const SUPPRESS_WINDOW_NANOS: u64 = 1_000_000_000;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// One timestamped breadcrumb (e.g. "worker 2 marked dead").
#[derive(Debug, Clone)]
pub struct EventRecord {
    /// Wall-clock time of the event, nanoseconds since the unix epoch.
    pub unix_nanos: u64,
    /// Coarse category (`supervision`, `coord`, `session`, ...).
    pub category: &'static str,
    /// Human-readable description.
    pub message: String,
}

/// Summary of one dumped (or suppressed) incident, kept in memory for
/// the coordinator's `/incidents` endpoint.
#[derive(Debug, Clone)]
pub struct IncidentSummary {
    /// Anomaly kind (`worker_death`, `session_rejected`, ...).
    pub kind: &'static str,
    /// Free-form detail line from the call site.
    pub detail: String,
    /// Wall-clock time of the anomaly, nanoseconds since the unix epoch.
    pub unix_nanos: u64,
    /// Bundle path, empty when the dump was suppressed or failed.
    pub path: String,
}

struct State {
    spans: VecDeque<SpanRecord>,
    events: VecDeque<EventRecord>,
    incidents: VecDeque<IncidentSummary>,
    last_dump: BTreeMap<&'static str, u64>,
    output_dir: PathBuf,
    seq: u64,
}

impl State {
    fn new() -> Self {
        Self {
            spans: VecDeque::new(),
            events: VecDeque::new(),
            incidents: VecDeque::new(),
            last_dump: BTreeMap::new(),
            output_dir: PathBuf::from("results/incidents"),
            seq: 0,
        }
    }
}

fn state() -> &'static Mutex<State> {
    static STATE: OnceLock<Mutex<State>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(State::new()))
}

/// Incident-arrival barrier: a generation counter bumped by every
/// [`incident`] call (written, suppressed, or failed) plus a condvar for
/// [`wait_for_incident`]. Separate from the ring state and on `std::sync`
/// primitives because the vendored `parking_lot` has no `Condvar`.
fn incident_signal() -> &'static (std::sync::Mutex<u64>, std::sync::Condvar) {
    static SIGNAL: OnceLock<(std::sync::Mutex<u64>, std::sync::Condvar)> = OnceLock::new();
    SIGNAL.get_or_init(|| (std::sync::Mutex::new(0), std::sync::Condvar::new()))
}

fn bump_incident_signal() {
    let (lock, cond) = incident_signal();
    let mut gen = lock
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    *gen += 1;
    drop(gen);
    cond.notify_all();
}

/// Blocks until some recorded incident satisfies `pred`, waking on every
/// new [`incident`] call, and returns the first match (oldest first).
/// Returns `None` on timeout. This is the incident-ring barrier that
/// replaces sleep-polling in time-sensitive tests.
pub fn wait_for_incident(
    timeout: std::time::Duration,
    mut pred: impl FnMut(&IncidentSummary) -> bool,
) -> Option<IncidentSummary> {
    let deadline = std::time::Instant::now() + timeout;
    let (lock, cond) = incident_signal();
    let mut gen = lock
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    loop {
        drop(gen);
        if let Some(hit) = recent_incidents().into_iter().find(&mut pred) {
            return Some(hit);
        }
        let now = std::time::Instant::now();
        if now >= deadline {
            return None;
        }
        gen = cond
            .wait_timeout(
                lock.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
                deadline - now,
            )
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .0;
    }
}

fn unix_nanos() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

/// Turns the flight recorder on or off process-wide. Off (the default)
/// short-circuits every recording call before any lock or allocation.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Release);
}

/// Whether the flight recorder is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// Sets the directory incident bundles are written to (created on
/// demand at dump time). Default: `results/incidents`.
pub fn set_output_dir(dir: impl Into<PathBuf>) {
    state().lock().output_dir = dir.into();
}

/// Tees a batch of finished spans into the recorder ring. Called by the
/// tracer's buffer flush; callers gate on [`enabled`].
pub fn observe_spans(spans: &[SpanRecord]) {
    if spans.is_empty() {
        return;
    }
    let mut st = state().lock();
    for rec in spans {
        if st.spans.len() >= SPAN_RING_CAP {
            st.spans.pop_front();
        }
        st.spans.push_back(rec.clone());
    }
}

/// Records a timestamped breadcrumb. No-op when the recorder is
/// disabled; gate any `format!` on [`enabled`] at the call site.
pub fn event(category: &'static str, message: String) {
    if !enabled() {
        return;
    }
    let rec = EventRecord {
        unix_nanos: unix_nanos(),
        category,
        message,
    };
    let mut st = state().lock();
    if st.events.len() >= EVENT_RING_CAP {
        st.events.pop_front();
    }
    st.events.push_back(rec);
}

/// Reports an anomaly: snapshots the span/event rings plus the global
/// metrics registry into a JSON bundle under the output directory and
/// returns its path. Returns `None` when the recorder is disabled, the
/// same kind fired within the suppression window, or the write failed
/// (the incident is still counted and listed in either non-write case).
pub fn incident(kind: &'static str, detail: &str) -> Option<PathBuf> {
    if !enabled() {
        return None;
    }
    let now = unix_nanos();
    crate::metrics::global().inc("recorder.incidents");
    let mut st = state().lock();
    let suppressed = st
        .last_dump
        .get(kind)
        .is_some_and(|&last| now.saturating_sub(last) < SUPPRESS_WINDOW_NANOS);
    let mut summary = IncidentSummary {
        kind,
        detail: detail.to_string(),
        unix_nanos: now,
        path: String::new(),
    };
    let mut written = None;
    if !suppressed {
        st.last_dump.insert(kind, now);
        st.seq += 1;
        let name = format!("incident-{}-{}-{}.json", now / 1_000_000, kind, st.seq);
        let path = st.output_dir.join(name);
        let body = render_bundle(&st, kind, detail, now);
        drop(st);
        if std::fs::create_dir_all(path.parent().unwrap_or(Path::new(".")))
            .and_then(|_| std::fs::write(&path, body))
            .is_ok()
        {
            summary.path = path.to_string_lossy().into_owned();
            written = Some(path);
        }
        st = state().lock();
    }
    if st.incidents.len() >= INCIDENT_KEEP {
        st.incidents.pop_front();
    }
    st.incidents.push_back(summary);
    drop(st);
    bump_incident_signal();
    written
}

/// Recent incident summaries, oldest first.
pub fn recent_incidents() -> Vec<IncidentSummary> {
    state().lock().incidents.iter().cloned().collect()
}

/// Renders [`recent_incidents`] as a JSON array (for the `/incidents`
/// ops endpoint).
pub fn incidents_json() -> String {
    let incidents = recent_incidents();
    let mut out = String::from("[");
    for (i, inc) in incidents.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"kind\":");
        json_escape_into(&mut out, inc.kind);
        out.push_str(",\"detail\":");
        json_escape_into(&mut out, &inc.detail);
        out.push_str(&format!(",\"unix_ms\":{}", inc.unix_nanos / 1_000_000));
        out.push_str(",\"path\":");
        json_escape_into(&mut out, &inc.path);
        out.push('}');
    }
    out.push(']');
    out
}

/// Clears the span/event/incident rings and suppression state. Meant
/// for tests; leaves the enabled flag and output dir untouched.
pub fn reset() {
    let mut st = state().lock();
    st.spans.clear();
    st.events.clear();
    st.incidents.clear();
    st.last_dump.clear();
    st.seq = 0;
}

fn render_bundle(st: &State, kind: &str, detail: &str, now: u64) -> String {
    let mut out = String::with_capacity(16 * 1024);
    out.push_str("{\"kind\":");
    json_escape_into(&mut out, kind);
    out.push_str(",\"detail\":");
    json_escape_into(&mut out, detail);
    out.push_str(&format!(
        ",\"unix_ms\":{},\"seq\":{}",
        now / 1_000_000,
        st.seq
    ));
    out.push_str(",\"events\":[");
    for (i, ev) in st.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"unix_ms\":{},\"category\":",
            ev.unix_nanos / 1_000_000
        ));
        json_escape_into(&mut out, ev.category);
        out.push_str(",\"message\":");
        json_escape_into(&mut out, &ev.message);
        out.push('}');
    }
    out.push_str("],\"spans\":[");
    for (i, rec) in st.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        crate::export::span_json_into(&mut out, rec);
    }
    out.push_str("],\"metrics\":");
    out.push_str(&to_json(&crate::metrics::global().snapshot()));
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::Json;
    use crate::trace::SpanKind;

    // Tests share the process-global enabled flag and rings.
    static GATE: Mutex<()> = Mutex::new(());

    fn sample_span(name: &'static str) -> SpanRecord {
        SpanRecord {
            trace_id: 7,
            span_id: 8,
            parent_id: 0,
            kind: SpanKind::Worker,
            name,
            start_unix_nanos: 1,
            duration_nanos: 2,
            attrs: vec![("worker", crate::trace::AttrValue::U64(3))],
        }
    }

    #[test]
    fn wait_for_incident_wakes_on_arrival_and_times_out_clean() {
        let _g = GATE.lock();
        set_enabled(true);
        set_output_dir(std::env::temp_dir().join(format!("exdra-rec-wait-{}", std::process::id())));
        reset();
        // No match yet: a short wait must time out rather than hang.
        let t0 = std::time::Instant::now();
        assert!(
            wait_for_incident(std::time::Duration::from_millis(30), |i| i.kind == "never")
                .is_none()
        );
        assert!(t0.elapsed() >= std::time::Duration::from_millis(25));
        // Arrival from another thread wakes the waiter.
        let waiter = std::thread::spawn(|| {
            wait_for_incident(std::time::Duration::from_secs(5), |i| i.kind == "wait_kind")
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        incident("wait_kind", "arrived");
        let hit = waiter.join().unwrap().expect("waiter saw the incident");
        assert_eq!(hit.detail, "arrived");
        set_enabled(false);
        reset();
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let _g = GATE.lock();
        set_enabled(false);
        event("test", "ignored".into());
        assert!(incident("test_disabled", "x").is_none());
    }

    #[test]
    fn incident_bundle_round_trips_and_suppresses_repeats() {
        let _g = GATE.lock();
        let dir = std::env::temp_dir().join(format!("exdra-rec-test-{}", std::process::id()));
        set_enabled(true);
        set_output_dir(&dir);
        reset();
        observe_spans(&[sample_span("worker.batch")]);
        event("test", "breadcrumb".into());
        let path = incident("test_kind", "first").expect("bundle written");
        // Same kind inside the suppression window: counted, not written.
        assert!(incident("test_kind", "second").is_none());
        let text = std::fs::read_to_string(&path).expect("bundle readable");
        let doc = Json::parse(&text).expect("bundle parses");
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("test_kind"));
        let spans = match doc.get("spans") {
            Some(Json::Arr(a)) => a,
            other => panic!("spans array, got {other:?}"),
        };
        assert!(spans
            .iter()
            .any(|s| s.get("name").and_then(Json::as_str) == Some("worker.batch")));
        assert_eq!(recent_incidents().len(), 2);
        assert!(recent_incidents()[1].path.is_empty());
        set_enabled(false);
        reset();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
