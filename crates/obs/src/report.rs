//! Per-run profile reports.
//!
//! [`RunReport`] condenses the global metrics registry (plus optional
//! transport totals supplied by the caller, since this crate does not
//! depend on `exdra-net`) into the two artifacts the exploratory loop
//! needs: a human-readable breakdown (`Display`) and a JSON document
//! (`to_json`) that bench bins write as a `results/<bin>.metrics.json`
//! sidecar.
//!
//! The report understands the runtime's metric naming conventions:
//!
//! | metric | meaning |
//! |---|---|
//! | `rpc.calls` / `rpc.requests` / `rpc.retries` / `rpc.heartbeats` | coordinator RPC counters |
//! | `worker.{w}.rpcs` / `.requests` / `.bytes_sent` / `.bytes_recv` | per-worker traffic |
//! | `worker.{w}.net_nanos` / `.exec_nanos` / `.serde_nanos` / `.retries` | per-worker time split |
//! | `inst.{opcode}` (histogram) | worker-side per-instruction latency |
//! | `lineage.{worker,coordinator}.{hits,misses,evictions}` | reuse-cache traffic by cache scope |
//! | `ps.epochs` / `ps.skipped_updates`, `ps.round` / `ps.aggregate` (histograms) | parameter-server rounds |
//! | `recovery.{recovered,failed_attempts,restores,replays,restored_entries,restored_bytes}` | supervisor recovery arcs |
//! | `checkpoint.{deltas,full_snapshots,entries,bytes}` | background checkpoint stream |
//! | `speculation.{launched,won_replica,won_primary}` | straggler re-execution races |
//! | `par.{regions,serial_regions,chunks,steals}`, `par.threads_used` (histogram) | compute-pool activity |
//! | `par.inst.{opcode}.{calls,regions,chunks,threads}` | per-opcode intra-operator parallelism |
//! | `pipeline.{streams,requests,ooo}`, `rpc.window` / `net.inflight` (histograms) | pipelined-RPC streaming |

use std::fmt;

use crate::export::{json_escape_into, json_f64, to_json as metrics_to_json};
use crate::metrics::{global, MetricsSnapshot, Registry};
use crate::trace;

/// How many of the slowest instructions a report keeps.
const TOP_N_INSTRUCTIONS: usize = 10;

/// Process-lifetime transport totals (mirrors `NetStatsSnapshot`,
/// re-declared here as plain integers to keep the crate dependency-free).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetTotals {
    pub bytes_sent: u64,
    pub bytes_received: u64,
    pub messages_sent: u64,
    pub messages_received: u64,
    pub network_nanos: u64,
    pub retries: u64,
    pub heartbeats: u64,
    pub recoveries: u64,
    pub pipelined_messages: u64,
    pub max_inflight: u64,
}

/// One worker's share of the run, reconstructed from `worker.{w}.*`
/// counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerBreakdown {
    pub worker: usize,
    pub rpcs: u64,
    pub requests: u64,
    pub bytes_sent: u64,
    pub bytes_received: u64,
    /// Coordinator-measured send→receive wall time (includes the
    /// worker's compute time).
    pub net_nanos: u64,
    /// Worker-reported batch execution time (from the reply footer).
    pub exec_nanos: u64,
    /// Coordinator-side encode + decode time.
    pub serde_nanos: u64,
    pub retries: u64,
}

impl WorkerBreakdown {
    /// Estimated pure network wait: round-trip time minus the portion
    /// the worker spent executing.
    pub fn net_wait_nanos(&self) -> u64 {
        self.net_nanos.saturating_sub(self.exec_nanos)
    }
}

/// Self-healing activity of the run, reconstructed from the
/// `recovery.*` / `checkpoint.*` / `speculation.*` counters the
/// supervisor emits. Present only when any of them fired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoverySummary {
    /// Workers brought back to `Healthy` by the supervisor.
    pub recovered: u64,
    /// Recovery arcs that failed and left the worker dead.
    pub failed_attempts: u64,
    /// Recoveries that restored state from a checkpoint.
    pub restores: u64,
    /// Recoveries that fell back to initialization replay.
    pub replays: u64,
    /// Symbol-table entries shipped back via `RESTORE`.
    pub restored_entries: u64,
    /// Payload bytes shipped back via `RESTORE`.
    pub restored_bytes: u64,
    /// Checkpoint deltas pulled from workers.
    pub checkpoint_deltas: u64,
    /// Deltas that were full snapshots (`since_seq = 0`).
    pub full_snapshots: u64,
    /// Entries carried across all deltas.
    pub checkpoint_entries: u64,
    /// Payload bytes carried across all deltas.
    pub checkpoint_bytes: u64,
    /// Speculative replica executions launched past a deadline.
    pub speculation_launched: u64,
    /// Races won by the replica.
    pub speculation_won_replica: u64,
    /// Races won by the (straggling) primary after all.
    pub speculation_won_primary: u64,
}

impl RecoverySummary {
    fn is_empty(&self) -> bool {
        *self == Self::default()
    }
}

/// Intra-operator data-parallelism activity of the run, reconstructed
/// from the `par.*` counters the `exdra-par` pool and the instruction
/// executor emit. Present only when at least one region executed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParallelismSummary {
    /// Regions that fanned work out across threads.
    pub regions: u64,
    /// Regions that ran serially (width 1, single chunk, or nested).
    pub serial_regions: u64,
    /// Chunks executed across all parallel regions.
    pub chunks: u64,
    /// Chunks executed on spawned (non-caller) threads.
    pub steals: u64,
    /// Largest width engaged by any region.
    pub threads_used_max: u64,
    /// Mean width across parallel regions.
    pub threads_used_mean: f64,
    /// Per-opcode rollup, sorted by chunk volume.
    pub per_instruction: Vec<InstrParallelism>,
}

/// One opcode's share of the pool activity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InstrParallelism {
    pub name: String,
    /// Instruction executions that touched the pool at all.
    pub calls: u64,
    /// Parallel regions those executions opened.
    pub regions: u64,
    /// Chunks executed across those regions.
    pub chunks: u64,
    /// Sum over regions of the width engaged.
    pub threads_engaged: u64,
}

impl InstrParallelism {
    /// Mean pool width engaged per parallel region (1.0 when every
    /// region degraded to serial).
    pub fn mean_threads(&self) -> f64 {
        if self.regions == 0 {
            1.0
        } else {
            self.threads_engaged as f64 / self.regions as f64
        }
    }

    /// Fraction of `pool_width` this opcode kept busy — the
    /// parallel-efficiency figure `Session::profile()` prints.
    pub fn efficiency(&self, pool_width: u64) -> f64 {
        if pool_width == 0 {
            1.0
        } else {
            (self.mean_threads() / pool_width as f64).min(1.0)
        }
    }
}

/// Pipelined-RPC activity of the run, reconstructed from the
/// `pipeline.*` counters and `rpc.window` / `net.inflight` histograms
/// the coordinator's streaming path emits. Present only when at least
/// one batch was streamed through a sliding window.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PipelineSummary {
    /// Batches streamed through a sliding window (one per worker call).
    pub streams: u64,
    /// Requests carried across all streams.
    pub requests: u64,
    /// Replies that overtook an earlier in-flight request.
    pub out_of_order: u64,
    /// Largest configured window across streams.
    pub window_max: u64,
    /// Mean configured window across streams.
    pub window_mean: f64,
    /// Peak simultaneously in-flight requests observed on any stream.
    pub inflight_max: u64,
}

/// Aggregate latency profile of one instruction opcode.
#[derive(Debug, Clone, PartialEq)]
pub struct InstrProfile {
    pub name: String,
    pub count: u64,
    pub total_nanos: u64,
    pub mean_nanos: f64,
    pub p95_nanos: f64,
}

/// A condensed per-run profile. Build with [`RunReport::from_global`]
/// (or `from_registry` for a scoped registry in tests).
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    pub metrics: MetricsSnapshot,
    pub workers: Vec<WorkerBreakdown>,
    pub top_instructions: Vec<InstrProfile>,
    /// Spans sitting in the trace collector when the report was built.
    pub spans_recorded: usize,
    /// Transport totals, if the caller has a `NetStats` to contribute.
    pub net: Option<NetTotals>,
    /// Supervisor activity (checkpoints, restores, speculation), when any.
    pub recovery: Option<RecoverySummary>,
    /// Compute-pool activity (chunks, steals, per-opcode width), when any.
    pub parallelism: Option<ParallelismSummary>,
    /// Sliding-window RPC streaming activity, when any batch was pipelined.
    pub pipeline: Option<PipelineSummary>,
}

impl RunReport {
    pub fn from_global() -> Self {
        let mut r = Self::from_registry(global());
        r.spans_recorded = trace::collected_count();
        r
    }

    pub fn from_registry(reg: &Registry) -> Self {
        let metrics = reg.snapshot();
        let workers = extract_workers(&metrics);
        let top_instructions = extract_instructions(&metrics);
        let recovery = extract_recovery(&metrics);
        let parallelism = extract_parallelism(&metrics);
        let pipeline = extract_pipeline(&metrics);
        RunReport {
            metrics,
            workers,
            top_instructions,
            spans_recorded: 0,
            net: None,
            recovery,
            parallelism,
            pipeline,
        }
    }

    /// JSON document for the bench sidecar:
    /// `{"workers": [...], "top_instructions": [...], "net": {...}|null,
    ///   "spans_recorded": n, "metrics": {"counters": .., "histograms": ..}}`
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"workers\":[");
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"worker\":{},\"rpcs\":{},\"requests\":{},\"bytes_sent\":{},\
                 \"bytes_received\":{},\"net_nanos\":{},\"exec_nanos\":{},\
                 \"serde_nanos\":{},\"retries\":{}}}",
                w.worker,
                w.rpcs,
                w.requests,
                w.bytes_sent,
                w.bytes_received,
                w.net_nanos,
                w.exec_nanos,
                w.serde_nanos,
                w.retries
            ));
        }
        out.push_str("],\"top_instructions\":[");
        for (i, p) in self.top_instructions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            out.push_str("\"name\":");
            json_escape_into(&mut out, &p.name);
            out.push_str(&format!(
                ",\"count\":{},\"total_nanos\":{},\"mean_nanos\":{},\"p95_nanos\":{}}}",
                p.count,
                p.total_nanos,
                json_f64(p.mean_nanos),
                json_f64(p.p95_nanos)
            ));
        }
        out.push_str("],\"net\":");
        match &self.net {
            Some(n) => out.push_str(&format!(
                "{{\"bytes_sent\":{},\"bytes_received\":{},\"messages_sent\":{},\
                 \"messages_received\":{},\"network_nanos\":{},\"retries\":{},\
                 \"heartbeats\":{},\"recoveries\":{},\"pipelined_messages\":{},\
                 \"max_inflight\":{}}}",
                n.bytes_sent,
                n.bytes_received,
                n.messages_sent,
                n.messages_received,
                n.network_nanos,
                n.retries,
                n.heartbeats,
                n.recoveries,
                n.pipelined_messages,
                n.max_inflight
            )),
            None => out.push_str("null"),
        }
        out.push_str(",\"recovery\":");
        match &self.recovery {
            Some(r) => out.push_str(&format!(
                "{{\"recovered\":{},\"failed_attempts\":{},\"restores\":{},\
                 \"replays\":{},\"restored_entries\":{},\"restored_bytes\":{},\
                 \"checkpoint_deltas\":{},\"full_snapshots\":{},\
                 \"checkpoint_entries\":{},\"checkpoint_bytes\":{},\
                 \"speculation_launched\":{},\"speculation_won_replica\":{},\
                 \"speculation_won_primary\":{}}}",
                r.recovered,
                r.failed_attempts,
                r.restores,
                r.replays,
                r.restored_entries,
                r.restored_bytes,
                r.checkpoint_deltas,
                r.full_snapshots,
                r.checkpoint_entries,
                r.checkpoint_bytes,
                r.speculation_launched,
                r.speculation_won_replica,
                r.speculation_won_primary
            )),
            None => out.push_str("null"),
        }
        out.push_str(",\"parallelism\":");
        match &self.parallelism {
            Some(p) => {
                out.push_str(&format!(
                    "{{\"regions\":{},\"serial_regions\":{},\"chunks\":{},\
                     \"steals\":{},\"threads_used_max\":{},\"threads_used_mean\":{},\
                     \"per_instruction\":[",
                    p.regions,
                    p.serial_regions,
                    p.chunks,
                    p.steals,
                    p.threads_used_max,
                    json_f64(p.threads_used_mean)
                ));
                for (i, ip) in p.per_instruction.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"name\":");
                    json_escape_into(&mut out, &ip.name);
                    out.push_str(&format!(
                        ",\"calls\":{},\"regions\":{},\"chunks\":{},\
                         \"threads_engaged\":{},\"mean_threads\":{}}}",
                        ip.calls,
                        ip.regions,
                        ip.chunks,
                        ip.threads_engaged,
                        json_f64(ip.mean_threads())
                    ));
                }
                out.push_str("]}");
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"pipeline\":");
        match &self.pipeline {
            Some(p) => out.push_str(&format!(
                "{{\"streams\":{},\"requests\":{},\"out_of_order\":{},\
                 \"window_max\":{},\"window_mean\":{},\"inflight_max\":{}}}",
                p.streams,
                p.requests,
                p.out_of_order,
                p.window_max,
                json_f64(p.window_mean),
                p.inflight_max
            )),
            None => out.push_str("null"),
        }
        out.push_str(&format!(
            ",\"spans_recorded\":{},\"metrics\":",
            self.spans_recorded
        ));
        out.push_str(&metrics_to_json(&self.metrics));
        out.push('}');
        out
    }
}

fn extract_workers(snap: &MetricsSnapshot) -> Vec<WorkerBreakdown> {
    let mut workers: Vec<WorkerBreakdown> = Vec::new();
    for (name, &value) in &snap.counters {
        let Some(rest) = name.strip_prefix("worker.") else {
            continue;
        };
        let Some((idx, field)) = rest.split_once('.') else {
            continue;
        };
        let Ok(idx) = idx.parse::<usize>() else {
            continue;
        };
        if workers.len() <= idx {
            workers.resize_with(idx + 1, WorkerBreakdown::default);
        }
        let w = &mut workers[idx];
        w.worker = idx;
        match field {
            "rpcs" => w.rpcs = value,
            "requests" => w.requests = value,
            "bytes_sent" => w.bytes_sent = value,
            "bytes_recv" => w.bytes_received = value,
            "net_nanos" => w.net_nanos = value,
            "exec_nanos" => w.exec_nanos = value,
            "serde_nanos" => w.serde_nanos = value,
            "retries" => w.retries = value,
            _ => {}
        }
    }
    // Ensure worker index is set even for all-zero gaps.
    for (i, w) in workers.iter_mut().enumerate() {
        w.worker = i;
    }
    workers
}

fn extract_recovery(snap: &MetricsSnapshot) -> Option<RecoverySummary> {
    let c = |name: &str| snap.counter(name);
    let summary = RecoverySummary {
        recovered: c("recovery.recovered"),
        failed_attempts: c("recovery.failed_attempts"),
        restores: c("recovery.restores"),
        replays: c("recovery.replays"),
        restored_entries: c("recovery.restored_entries"),
        restored_bytes: c("recovery.restored_bytes"),
        checkpoint_deltas: c("checkpoint.deltas"),
        full_snapshots: c("checkpoint.full_snapshots"),
        checkpoint_entries: c("checkpoint.entries"),
        checkpoint_bytes: c("checkpoint.bytes"),
        speculation_launched: c("speculation.launched"),
        speculation_won_replica: c("speculation.won_replica"),
        speculation_won_primary: c("speculation.won_primary"),
    };
    (!summary.is_empty()).then_some(summary)
}

fn extract_parallelism(snap: &MetricsSnapshot) -> Option<ParallelismSummary> {
    let c = |name: &str| snap.counter(name);
    let regions = c("par.regions");
    let serial_regions = c("par.serial_regions");
    if regions + serial_regions == 0 {
        return None;
    }
    let (threads_used_max, threads_used_mean) = snap
        .histograms
        .get("par.threads_used")
        .map_or((0, 0.0), |h| (h.max, h.mean()));
    let mut per: Vec<InstrParallelism> = Vec::new();
    for (name, &value) in &snap.counters {
        let Some(rest) = name.strip_prefix("par.inst.") else {
            continue;
        };
        let Some((op, field)) = rest.rsplit_once('.') else {
            continue;
        };
        let entry = match per.iter_mut().find(|p| p.name == op) {
            Some(e) => e,
            None => {
                per.push(InstrParallelism {
                    name: op.to_string(),
                    ..Default::default()
                });
                per.last_mut().unwrap()
            }
        };
        match field {
            "calls" => entry.calls = value,
            "regions" => entry.regions = value,
            "chunks" => entry.chunks = value,
            "threads" => entry.threads_engaged = value,
            _ => {}
        }
    }
    per.sort_by(|a, b| b.chunks.cmp(&a.chunks).then(a.name.cmp(&b.name)));
    Some(ParallelismSummary {
        regions,
        serial_regions,
        chunks: c("par.chunks"),
        steals: c("par.steals"),
        threads_used_max,
        threads_used_mean,
        per_instruction: per,
    })
}

fn extract_pipeline(snap: &MetricsSnapshot) -> Option<PipelineSummary> {
    let streams = snap.counter("pipeline.streams");
    if streams == 0 {
        return None;
    }
    let (window_max, window_mean) = snap
        .histograms
        .get("rpc.window")
        .map_or((0, 0.0), |h| (h.max, h.mean()));
    let inflight_max = snap.histograms.get("net.inflight").map_or(0, |h| h.max);
    Some(PipelineSummary {
        streams,
        requests: snap.counter("pipeline.requests"),
        out_of_order: snap.counter("pipeline.ooo"),
        window_max,
        window_mean,
        inflight_max,
    })
}

fn extract_instructions(snap: &MetricsSnapshot) -> Vec<InstrProfile> {
    let mut out: Vec<InstrProfile> = snap
        .histograms
        .iter()
        .filter_map(|(name, s)| {
            let op = name.strip_prefix("inst.")?;
            Some(InstrProfile {
                name: op.to_string(),
                count: s.count,
                total_nanos: s.sum,
                mean_nanos: s.mean(),
                p95_nanos: s.p95,
            })
        })
        .collect();
    out.sort_by(|a, b| b.total_nanos.cmp(&a.total_nanos).then(a.name.cmp(&b.name)));
    out.truncate(TOP_N_INSTRUCTIONS);
    out
}

fn ms(nanos: u64) -> f64 {
    nanos as f64 / 1e6
}

fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== run profile ==")?;
        if let Some(n) = &self.net {
            writeln!(
                f,
                "transport: {:.2} MiB out / {:.2} MiB in, {} msgs out, \
                 {:.1} ms on the wire, {} retries, {} heartbeats, {} recoveries",
                mib(n.bytes_sent),
                mib(n.bytes_received),
                n.messages_sent,
                ms(n.network_nanos),
                n.retries,
                n.heartbeats,
                n.recoveries
            )?;
        }
        writeln!(f, "spans recorded: {}", self.spans_recorded)?;
        if !self.workers.is_empty() {
            writeln!(
                f,
                "{:<7} {:>6} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>7}",
                "worker",
                "rpcs",
                "reqs",
                "sent MiB",
                "recv MiB",
                "net ms",
                "exec ms",
                "serde ms",
                "retries"
            )?;
            for w in &self.workers {
                writeln!(
                    f,
                    "{:<7} {:>6} {:>8} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>7}",
                    w.worker,
                    w.rpcs,
                    w.requests,
                    mib(w.bytes_sent),
                    mib(w.bytes_received),
                    ms(w.net_nanos),
                    ms(w.exec_nanos),
                    ms(w.serde_nanos),
                    w.retries
                )?;
            }
        }
        if !self.top_instructions.is_empty() {
            writeln!(f, "top instructions by total time:")?;
            for p in &self.top_instructions {
                writeln!(
                    f,
                    "  {:<24} {:>8} calls {:>10.2} ms total {:>10.1} us mean {:>10.1} us p95",
                    p.name,
                    p.count,
                    ms(p.total_nanos),
                    p.mean_nanos / 1e3,
                    p.p95_nanos / 1e3
                )?;
            }
        }
        if let Some(r) = &self.recovery {
            writeln!(
                f,
                "self-healing: {} recovered ({} restores / {} replays, \
                 {} entries, {:.2} MiB), {} failed attempts",
                r.recovered,
                r.restores,
                r.replays,
                r.restored_entries,
                mib(r.restored_bytes),
                r.failed_attempts
            )?;
            writeln!(
                f,
                "checkpoints: {} deltas ({} full), {} entries, {:.2} MiB; \
                 speculation: {} launched, {} replica wins, {} primary wins",
                r.checkpoint_deltas,
                r.full_snapshots,
                r.checkpoint_entries,
                mib(r.checkpoint_bytes),
                r.speculation_launched,
                r.speculation_won_replica,
                r.speculation_won_primary
            )?;
        }
        if let Some(p) = &self.parallelism {
            writeln!(
                f,
                "parallelism: {} parallel regions ({} serial), {} chunks \
                 ({} stolen), mean {:.1} / max {} threads per region",
                p.regions,
                p.serial_regions,
                p.chunks,
                p.steals,
                p.threads_used_mean,
                p.threads_used_max
            )?;
            if !p.per_instruction.is_empty() {
                writeln!(f, "parallel efficiency by opcode:")?;
                for ip in &p.per_instruction {
                    writeln!(
                        f,
                        "  {:<24} {:>6} calls {:>7} regions {:>8} chunks \
                         {:>6.1} avg threads ({:>3.0}% of pool)",
                        ip.name,
                        ip.calls,
                        ip.regions,
                        ip.chunks,
                        ip.mean_threads(),
                        100.0 * ip.efficiency(p.threads_used_max.max(1))
                    )?;
                }
            }
        }
        if let Some(p) = &self.pipeline {
            writeln!(
                f,
                "pipelining: {} streams carrying {} requests, {} replies \
                 out of order, window mean {:.1} / max {}, peak {} in flight",
                p.streams, p.requests, p.out_of_order, p.window_mean, p.window_max, p.inflight_max
            )?;
        }
        let hits = self.metrics.counter("lineage.worker.hits")
            + self.metrics.counter("lineage.coordinator.hits");
        let misses = self.metrics.counter("lineage.worker.misses")
            + self.metrics.counter("lineage.coordinator.misses");
        if hits + misses > 0 {
            writeln!(
                f,
                "lineage reuse: {} hits / {} misses (coordinator {} / worker {} hits)",
                hits,
                misses,
                self.metrics.counter("lineage.coordinator.hits"),
                self.metrics.counter("lineage.worker.hits")
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::Json;

    fn seeded_registry() -> Registry {
        let r = Registry::new();
        r.add("rpc.calls", 4);
        for w in 0..2u64 {
            r.add(&format!("worker.{w}.rpcs"), 2);
            r.add(&format!("worker.{w}.requests"), 6);
            r.add(&format!("worker.{w}.bytes_sent"), 4096);
            r.add(&format!("worker.{w}.bytes_recv"), 2048);
            r.add(&format!("worker.{w}.net_nanos"), 9_000_000);
            r.add(&format!("worker.{w}.exec_nanos"), 5_000_000);
            r.add(&format!("worker.{w}.serde_nanos"), 1_000_000);
        }
        r.record("inst.fed_matmul", 4_000_000);
        r.record("inst.fed_matmul", 6_000_000);
        r.record("inst.rbind", 1_000);
        r.add("lineage.worker.hits", 3);
        r.add("lineage.worker.misses", 5);
        r
    }

    #[test]
    fn workers_and_instructions_are_extracted() {
        let report = RunReport::from_registry(&seeded_registry());
        assert_eq!(report.workers.len(), 2);
        assert_eq!(report.workers[1].requests, 6);
        assert_eq!(report.workers[0].net_wait_nanos(), 4_000_000);
        assert_eq!(report.top_instructions[0].name, "fed_matmul");
        assert_eq!(report.top_instructions[0].count, 2);
        assert_eq!(report.top_instructions[1].name, "rbind");
    }

    #[test]
    fn display_mentions_workers_and_reuse() {
        let mut report = RunReport::from_registry(&seeded_registry());
        report.net = Some(NetTotals {
            bytes_sent: 1 << 20,
            ..Default::default()
        });
        let text = format!("{report}");
        assert!(text.contains("run profile"));
        assert!(text.contains("fed_matmul"));
        assert!(text.contains("lineage reuse: 3 hits / 5 misses"));
        assert!(text.contains("transport: 1.00 MiB out"));
    }

    #[test]
    fn recovery_summary_extracted_only_when_active() {
        let quiet = RunReport::from_registry(&seeded_registry());
        assert!(quiet.recovery.is_none(), "no recovery counters, no section");

        let reg = seeded_registry();
        reg.inc("recovery.recovered");
        reg.inc("recovery.restores");
        reg.add("recovery.restored_entries", 7);
        reg.add("checkpoint.deltas", 3);
        reg.inc("checkpoint.full_snapshots");
        reg.add("checkpoint.bytes", 4096);
        reg.inc("speculation.launched");
        reg.inc("speculation.won_replica");
        let report = RunReport::from_registry(&reg);
        let r = report.recovery.expect("recovery section present");
        assert_eq!(r.recovered, 1);
        assert_eq!(r.restores, 1);
        assert_eq!(r.replays, 0);
        assert_eq!(r.restored_entries, 7);
        assert_eq!(r.checkpoint_deltas, 3);
        assert_eq!(r.full_snapshots, 1);
        assert_eq!(r.speculation_won_replica, 1);

        let text = format!("{report}");
        assert!(text.contains("self-healing: 1 recovered"));
        assert!(text.contains("speculation: 1 launched"));

        let doc = Json::parse(&report.to_json()).expect("report json parses");
        assert_eq!(
            doc.get("recovery")
                .and_then(|r| r.get("checkpoint_deltas"))
                .and_then(Json::as_f64),
            Some(3.0)
        );
        // A quiet report serializes the section as null.
        let quiet_doc = Json::parse(&quiet.to_json()).unwrap();
        assert!(matches!(quiet_doc.get("recovery"), Some(Json::Null)));
    }

    #[test]
    fn parallelism_summary_extracted_only_when_active() {
        let quiet = RunReport::from_registry(&seeded_registry());
        assert!(quiet.parallelism.is_none(), "no pool counters, no section");
        let quiet_doc = Json::parse(&quiet.to_json()).unwrap();
        assert!(matches!(quiet_doc.get("parallelism"), Some(Json::Null)));

        let reg = seeded_registry();
        reg.add("par.regions", 4);
        reg.add("par.serial_regions", 2);
        reg.add("par.chunks", 32);
        reg.add("par.steals", 20);
        for _ in 0..4 {
            reg.record("par.threads_used", 4);
        }
        reg.add("par.inst.fed_matmul.calls", 2);
        reg.add("par.inst.fed_matmul.regions", 4);
        reg.add("par.inst.fed_matmul.chunks", 32);
        reg.add("par.inst.fed_matmul.threads", 16);
        let report = RunReport::from_registry(&reg);
        let p = report.parallelism.as_ref().expect("parallelism section");
        assert_eq!(p.regions, 4);
        assert_eq!(p.serial_regions, 2);
        assert_eq!(p.chunks, 32);
        assert_eq!(p.steals, 20);
        assert_eq!(p.threads_used_max, 4);
        assert_eq!(p.per_instruction.len(), 1);
        let ip = &p.per_instruction[0];
        assert_eq!(ip.name, "fed_matmul");
        assert_eq!(ip.calls, 2);
        assert!((ip.mean_threads() - 4.0).abs() < 1e-12);
        assert!((ip.efficiency(4) - 1.0).abs() < 1e-12);

        let text = format!("{report}");
        assert!(text.contains("parallelism: 4 parallel regions (2 serial)"));
        assert!(text.contains("parallel efficiency by opcode:"));
        assert!(text.contains("fed_matmul"));

        let doc = Json::parse(&report.to_json()).expect("report json parses");
        assert_eq!(
            doc.get("parallelism")
                .and_then(|p| p.get("chunks"))
                .and_then(Json::as_f64),
            Some(32.0)
        );
        assert_eq!(
            doc.get("parallelism")
                .and_then(|p| p.get("per_instruction"))
                .and_then(|a| match a {
                    Json::Arr(v) => v.first(),
                    _ => None,
                })
                .and_then(|e| e.get("mean_threads"))
                .and_then(Json::as_f64),
            Some(4.0)
        );
    }

    #[test]
    fn pipeline_summary_extracted_only_when_active() {
        let quiet = RunReport::from_registry(&seeded_registry());
        assert!(quiet.pipeline.is_none(), "no streams, no section");
        let quiet_doc = Json::parse(&quiet.to_json()).unwrap();
        assert!(matches!(quiet_doc.get("pipeline"), Some(Json::Null)));

        let reg = seeded_registry();
        reg.add("pipeline.streams", 2);
        reg.add("pipeline.requests", 32);
        reg.add("pipeline.ooo", 5);
        reg.record("rpc.window", 8);
        reg.record("rpc.window", 4);
        reg.record("net.inflight", 7);
        let report = RunReport::from_registry(&reg);
        let p = report.pipeline.expect("pipeline section present");
        assert_eq!(p.streams, 2);
        assert_eq!(p.requests, 32);
        assert_eq!(p.out_of_order, 5);
        assert_eq!(p.window_max, 8);
        assert!((p.window_mean - 6.0).abs() < 1e-12);
        assert_eq!(p.inflight_max, 7);

        let text = format!("{report}");
        assert!(text.contains("pipelining: 2 streams carrying 32 requests"));

        let doc = Json::parse(&report.to_json()).expect("report json parses");
        assert_eq!(
            doc.get("pipeline")
                .and_then(|p| p.get("inflight_max"))
                .and_then(Json::as_f64),
            Some(7.0)
        );
    }

    #[test]
    fn json_sidecar_parses_and_carries_worker_split() {
        let mut report = RunReport::from_registry(&seeded_registry());
        report.net = Some(NetTotals {
            bytes_sent: 10,
            bytes_received: 20,
            messages_sent: 2,
            messages_received: 2,
            network_nanos: 500,
            retries: 1,
            heartbeats: 0,
            recoveries: 1,
            pipelined_messages: 5,
            max_inflight: 3,
        });
        report.spans_recorded = 12;
        let doc = Json::parse(&report.to_json()).expect("report json parses");
        let workers = match doc.get("workers") {
            Some(Json::Arr(a)) => a,
            other => panic!("workers array, got {other:?}"),
        };
        assert_eq!(workers.len(), 2);
        assert_eq!(
            workers[0].get("exec_nanos").and_then(Json::as_f64),
            Some(5_000_000.0)
        );
        assert_eq!(doc.get("spans_recorded").and_then(Json::as_f64), Some(12.0));
        assert_eq!(
            doc.get("net")
                .and_then(|n| n.get("retries"))
                .and_then(Json::as_f64),
            Some(1.0)
        );
        assert_eq!(
            doc.get("net")
                .and_then(|n| n.get("pipelined_messages"))
                .and_then(Json::as_f64),
            Some(5.0)
        );
        assert_eq!(
            doc.get("net")
                .and_then(|n| n.get("max_inflight"))
                .and_then(Json::as_f64),
            Some(3.0)
        );
        assert_eq!(
            doc.get("metrics")
                .and_then(|m| m.get("counters"))
                .and_then(|c| c.get("rpc.calls"))
                .and_then(Json::as_f64),
            Some(4.0)
        );
    }
}
