//! EXPLAIN ANALYZE: critical-path analysis over a stitched span forest.
//!
//! Consumes the spans of one computation (one trace rooted at a session
//! span) and produces:
//!
//! * a **wall-time breakdown** — compute vs network vs serde vs queue
//!   vs recovery, drawn from the attributes the coordinator stamps on
//!   `rpc.call`/`rpc.stream` spans and from `recovery.*` span durations;
//! * the **critical path** — the chain of spans from the root to the
//!   leaf that finished last, which is what actually bounded the run;
//! * **per-opcode and per-worker cost profiles** — mean/total nanos per
//!   executed instruction kind and per federated worker, the
//!   profile-guided-placement input the cost-based optimizer consumes.
//!
//! Attribution quality is reported explicitly: `attributed_nanos` is
//! the part of the root span's wall time covered by its direct
//! children (interval union), so a low ratio means untraced gaps.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::export::{json_escape_into, json_f64};
use crate::trace::{AttrValue, SpanKind, SpanRecord};

/// One hop on the critical path, root first.
#[derive(Debug, Clone)]
pub struct CriticalStep {
    /// Span name (`session.compute`, `rpc.call`, `worker.batch`, ...).
    pub name: &'static str,
    /// Span kind.
    pub kind: SpanKind,
    /// The `worker` attribute, when the span carries one.
    pub worker: Option<u64>,
    /// Span duration.
    pub duration_nanos: u64,
    /// Depth below the root (root = 0).
    pub depth: usize,
}

/// Aggregate cost of one instruction opcode across the computation.
#[derive(Debug, Clone, Copy, Default)]
pub struct OpcodeCost {
    /// Executions observed.
    pub count: u64,
    /// Summed span duration.
    pub total_nanos: u64,
}

impl OpcodeCost {
    /// Mean execution time per instance.
    pub fn mean_nanos(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_nanos as f64 / self.count as f64
        }
    }
}

/// Aggregate cost attributed to one federated worker.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerCost {
    /// RPCs (calls or streams) sent to this worker.
    pub calls: u64,
    /// Worker-side execution time (from batch footers).
    pub exec_nanos: u64,
    /// Coordinator-side network wait for this worker.
    pub net_nanos: u64,
}

/// The ANALYZE half of an explain report: the result of analyzing
/// one computation's span forest.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// Root span wall time.
    pub wall_nanos: u64,
    /// Part of the root interval covered by its direct children.
    pub attributed_nanos: u64,
    /// Worker-side execution time summed over all RPCs.
    pub compute_nanos: u64,
    /// Coordinator-side network wait summed over all RPCs.
    pub network_nanos: u64,
    /// Envelope encode/decode time summed over all RPCs.
    pub serde_nanos: u64,
    /// Admission/credit wait (RPC gate) summed over all RPCs.
    pub queue_nanos: u64,
    /// Time inside recovery spans (checkpoint/restore/replay/speculate).
    pub recovery_nanos: u64,
    /// Root-to-latest-leaf chain that bounded the run.
    pub critical_path: Vec<CriticalStep>,
    /// Per-opcode execution cost (from worker instruction spans).
    pub per_opcode: BTreeMap<String, OpcodeCost>,
    /// Per-worker execution/network cost (from RPC span attributes).
    pub per_worker: BTreeMap<u64, WorkerCost>,
    /// Spans belonging to this computation's trace.
    pub span_count: usize,
}

impl Analysis {
    /// Fraction of root wall time covered by direct-child spans, in
    /// `[0, 1]`. The EXPLAIN ANALYZE quality bar is ≥ 0.95.
    pub fn attribution(&self) -> f64 {
        if self.wall_nanos == 0 {
            1.0
        } else {
            (self.attributed_nanos as f64 / self.wall_nanos as f64).min(1.0)
        }
    }

    /// The worker with the largest execution time, if any RPCs ran.
    pub fn dominant_worker(&self) -> Option<u64> {
        self.per_worker
            .iter()
            .max_by_key(|(_, c)| c.exec_nanos)
            .map(|(w, _)| *w)
    }

    /// The opcode with the largest total execution time, if any
    /// instruction spans were observed.
    pub fn dominant_opcode(&self) -> Option<&str> {
        self.per_opcode
            .iter()
            .max_by_key(|(_, c)| c.total_nanos)
            .map(|(name, _)| name.as_str())
    }

    /// Renders the full report as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        let _ = write!(
            out,
            "{{\"wall_nanos\":{},\"attributed_nanos\":{},\"attribution\":{},\
             \"compute_nanos\":{},\"network_nanos\":{},\"serde_nanos\":{},\
             \"queue_nanos\":{},\"recovery_nanos\":{},\"span_count\":{}",
            self.wall_nanos,
            self.attributed_nanos,
            json_f64(self.attribution()),
            self.compute_nanos,
            self.network_nanos,
            self.serde_nanos,
            self.queue_nanos,
            self.recovery_nanos,
            self.span_count
        );
        out.push_str(",\"critical_path\":[");
        for (i, step) in self.critical_path.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":");
            json_escape_into(&mut out, step.name);
            let _ = write!(out, ",\"kind\":\"{}\"", step.kind.name());
            if let Some(w) = step.worker {
                let _ = write!(out, ",\"worker\":{w}");
            }
            let _ = write!(
                out,
                ",\"duration_nanos\":{},\"depth\":{}}}",
                step.duration_nanos, step.depth
            );
        }
        out.push_str("],\"per_opcode\":");
        out.push_str(&self.cost_profile_opcode_json());
        out.push_str(",\"per_worker\":");
        out.push_str(&self.cost_profile_worker_json());
        out.push('}');
        out
    }

    /// Renders the per-opcode/per-worker cost profile alone — the
    /// document persisted to `results/` as profile-guided-placement
    /// input.
    pub fn cost_profile_json(&self) -> String {
        format!(
            "{{\"per_opcode\":{},\"per_worker\":{}}}",
            self.cost_profile_opcode_json(),
            self.cost_profile_worker_json()
        )
    }

    fn cost_profile_opcode_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, c)) in self.per_opcode.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_escape_into(&mut out, name);
            let _ = write!(
                out,
                ":{{\"count\":{},\"total_nanos\":{},\"mean_nanos\":{}}}",
                c.count,
                c.total_nanos,
                json_f64(c.mean_nanos())
            );
        }
        out.push('}');
        out
    }

    fn cost_profile_worker_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (w, c)) in self.per_worker.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{w}\":{{\"calls\":{},\"exec_nanos\":{},\"net_nanos\":{}}}",
                c.calls, c.exec_nanos, c.net_nanos
            );
        }
        out.push('}');
        out
    }
}

fn ms(nanos: u64) -> f64 {
    nanos as f64 / 1e6
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

impl std::fmt::Display for Analysis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "EXPLAIN ANALYZE — {:.1} ms wall, {:.1}% attributed ({} spans)",
            ms(self.wall_nanos),
            100.0 * self.attribution(),
            self.span_count
        )?;
        writeln!(
            f,
            "  compute {:.1} ms ({:.0}%) | network {:.1} ms ({:.0}%) | serde {:.1} ms | queue {:.1} ms | recovery {:.1} ms",
            ms(self.compute_nanos),
            pct(self.compute_nanos, self.wall_nanos),
            ms(self.network_nanos),
            pct(self.network_nanos, self.wall_nanos),
            ms(self.serde_nanos),
            ms(self.queue_nanos),
            ms(self.recovery_nanos)
        )?;
        if let Some(w) = self.dominant_worker() {
            let c = self.per_worker[&w];
            write!(
                f,
                "  dominant worker: {w} ({:.1} ms exec, {} calls)",
                ms(c.exec_nanos),
                c.calls
            )?;
        }
        if let Some(op) = self.dominant_opcode() {
            let c = self.per_opcode[op];
            write!(
                f,
                "{}dominant opcode: {op} ({:.1} ms total, {} runs)",
                if self.per_worker.is_empty() {
                    "  "
                } else {
                    " | "
                },
                ms(c.total_nanos),
                c.count
            )?;
        }
        if self.dominant_worker().is_some() || self.dominant_opcode().is_some() {
            writeln!(f)?;
        }
        writeln!(f, "  critical path:")?;
        for step in &self.critical_path {
            write!(f, "  {:indent$}{}", "", step.name, indent = 2 * step.depth)?;
            if let Some(w) = step.worker {
                write!(f, " worker={w}")?;
            }
            writeln!(f, " ({:.2} ms)", ms(step.duration_nanos))?;
        }
        Ok(())
    }
}

fn attr_u64(rec: &SpanRecord, key: &str) -> Option<u64> {
    rec.attrs
        .iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| match v {
            AttrValue::U64(n) => Some(*n),
            AttrValue::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        })
}

fn end_nanos(rec: &SpanRecord) -> u64 {
    rec.start_unix_nanos.saturating_add(rec.duration_nanos)
}

/// Interval-union coverage of `[root_start, root_end]` by `children`.
fn covered_nanos(root: &SpanRecord, children: &[&SpanRecord]) -> u64 {
    let (lo, hi) = (root.start_unix_nanos, end_nanos(root));
    let mut ivs: Vec<(u64, u64)> = children
        .iter()
        .map(|c| (c.start_unix_nanos.clamp(lo, hi), end_nanos(c).clamp(lo, hi)))
        .filter(|(a, b)| b > a)
        .collect();
    ivs.sort_unstable();
    let mut covered = 0u64;
    let mut cursor = lo;
    for (a, b) in ivs {
        let a = a.max(cursor);
        if b > a {
            covered += b - a;
            cursor = b;
        }
    }
    covered
}

/// Analyzes the spans of one computation. `spans` is a snapshot of the
/// collector (other traces are ignored); `root_span_id` identifies the
/// root session span. Returns `None` when the root is missing.
pub fn analyze(spans: &[SpanRecord], root_span_id: u64) -> Option<Analysis> {
    let root = spans.iter().find(|s| s.span_id == root_span_id)?;
    let trace_id = root.trace_id;
    // Children index over this trace only.
    let mut children: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    for s in spans.iter().filter(|s| s.trace_id == trace_id) {
        children.entry(s.parent_id).or_default().push(s);
    }

    let mut ex = Analysis {
        wall_nanos: root.duration_nanos,
        ..Analysis::default()
    };

    // Walk the subtree under the root.
    let mut stack: Vec<&SpanRecord> = vec![root];
    while let Some(rec) = stack.pop() {
        ex.span_count += 1;
        if !std::ptr::eq(rec, root) {
            match rec.kind {
                SpanKind::Rpc => {
                    ex.compute_nanos += attr_u64(rec, "exec_nanos").unwrap_or(0);
                    ex.network_nanos += attr_u64(rec, "net_nanos").unwrap_or(0);
                    ex.serde_nanos += attr_u64(rec, "serde_nanos").unwrap_or(0);
                    ex.queue_nanos += attr_u64(rec, "gate_wait_nanos").unwrap_or(0);
                    if let Some(w) = attr_u64(rec, "worker") {
                        let c = ex.per_worker.entry(w).or_default();
                        c.calls += 1;
                        c.exec_nanos += attr_u64(rec, "exec_nanos").unwrap_or(0);
                        c.net_nanos += attr_u64(rec, "net_nanos").unwrap_or(0);
                    }
                }
                SpanKind::Recovery => ex.recovery_nanos += rec.duration_nanos,
                SpanKind::Instruction => {
                    let c = ex.per_opcode.entry(rec.name.to_string()).or_default();
                    c.count += 1;
                    c.total_nanos += rec.duration_nanos;
                }
                _ => {}
            }
        }
        if let Some(kids) = children.get(&rec.span_id) {
            stack.extend(kids.iter().copied());
        }
    }

    ex.attributed_nanos = children
        .get(&root.span_id)
        .map(|kids| covered_nanos(root, kids))
        .unwrap_or(0);

    // Critical path: from the root, repeatedly descend into the child
    // that finished last (the one the parent actually waited for).
    let mut path = Vec::new();
    let mut node = root;
    let mut depth = 0usize;
    loop {
        path.push(CriticalStep {
            name: node.name,
            kind: node.kind,
            worker: attr_u64(node, "worker"),
            duration_nanos: node.duration_nanos,
            depth,
        });
        let next = children
            .get(&node.span_id)
            .and_then(|kids| kids.iter().max_by_key(|k| end_nanos(k)).copied());
        match next {
            Some(k) if depth < 64 => {
                node = k;
                depth += 1;
            }
            _ => break,
        }
    }
    ex.critical_path = path;
    Some(ex)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::Json;

    fn rec(
        span_id: u64,
        parent_id: u64,
        kind: SpanKind,
        name: &'static str,
        start: u64,
        dur: u64,
        attrs: Vec<(&'static str, AttrValue)>,
    ) -> SpanRecord {
        SpanRecord {
            trace_id: 1,
            span_id,
            parent_id,
            kind,
            name,
            start_unix_nanos: start,
            duration_nanos: dur,
            attrs,
        }
    }

    fn sample_forest() -> Vec<SpanRecord> {
        vec![
            rec(10, 0, SpanKind::Session, "session.explain", 0, 1000, vec![]),
            rec(11, 10, SpanKind::Session, "session.compute", 0, 980, vec![]),
            rec(
                12,
                11,
                SpanKind::Rpc,
                "rpc.call",
                10,
                400,
                vec![
                    ("worker", AttrValue::U64(0)),
                    ("exec_nanos", AttrValue::U64(300)),
                    ("net_nanos", AttrValue::U64(80)),
                    ("serde_nanos", AttrValue::U64(5)),
                    ("gate_wait_nanos", AttrValue::U64(7)),
                ],
            ),
            rec(
                13,
                11,
                SpanKind::Rpc,
                "rpc.call",
                420,
                500,
                vec![
                    ("worker", AttrValue::U64(1)),
                    ("exec_nanos", AttrValue::U64(450)),
                    ("net_nanos", AttrValue::U64(30)),
                ],
            ),
            rec(14, 13, SpanKind::Worker, "worker.batch", 430, 460, vec![]),
            rec(
                15,
                14,
                SpanKind::Instruction,
                "fed_matmul",
                440,
                400,
                vec![],
            ),
            rec(16, 14, SpanKind::Instruction, "fed_sum", 845, 20, vec![]),
            // A different trace entirely: must be ignored.
            SpanRecord {
                trace_id: 2,
                span_id: 99,
                parent_id: 0,
                kind: SpanKind::Rpc,
                name: "rpc.call",
                start_unix_nanos: 0,
                duration_nanos: 5000,
                attrs: vec![("exec_nanos", AttrValue::U64(5000))],
            },
        ]
    }

    #[test]
    fn breakdown_critical_path_and_profiles() {
        let ex = analyze(&sample_forest(), 10).expect("root found");
        assert_eq!(ex.wall_nanos, 1000);
        assert_eq!(ex.compute_nanos, 750);
        assert_eq!(ex.network_nanos, 110);
        assert_eq!(ex.serde_nanos, 5);
        assert_eq!(ex.queue_nanos, 7);
        assert_eq!(ex.span_count, 7);
        // Direct child covers [0, 980] of [0, 1000].
        assert_eq!(ex.attributed_nanos, 980);
        assert!(ex.attribution() >= 0.95);
        assert_eq!(ex.dominant_worker(), Some(1));
        assert_eq!(ex.dominant_opcode(), Some("fed_matmul"));
        let names: Vec<&str> = ex.critical_path.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            [
                "session.explain",
                "session.compute",
                "rpc.call",
                "worker.batch",
                "fed_sum"
            ]
        );
        assert_eq!(ex.critical_path[2].worker, Some(1));
    }

    #[test]
    fn reports_render_and_parse() {
        let ex = analyze(&sample_forest(), 10).unwrap();
        let text = format!("{ex}");
        assert!(text.contains("EXPLAIN ANALYZE"));
        assert!(text.contains("critical path:"));
        let doc = Json::parse(&ex.to_json()).expect("to_json parses");
        assert_eq!(doc.get("wall_nanos").and_then(Json::as_f64), Some(1000.0));
        let profile = Json::parse(&ex.cost_profile_json()).expect("profile parses");
        let matmul = profile
            .get("per_opcode")
            .and_then(|o| o.get("fed_matmul"))
            .expect("fed_matmul present");
        assert_eq!(matmul.get("count").and_then(Json::as_f64), Some(1.0));
    }

    #[test]
    fn missing_root_yields_none() {
        assert!(analyze(&sample_forest(), 777).is_none());
    }
}
