//! The unified EXPLAIN surface.
//!
//! [`Explain`] is what `Session::explain` returns: the logical plan
//! script as lowered from the lazy DAG, the optimized script after the
//! rule pipeline ran (with the per-rule hit counts), and the cost
//! model's [`PlanEstimate`] for both. After `explain_analyze` executes
//! the plan, the report additionally carries the measured
//! [`Analysis`] — one `Display` renders
//! whichever sections are present, so EXPLAIN and EXPLAIN ANALYZE are
//! one API rather than two.

use std::fmt::Write as _;

use crate::analyze::Analysis;
use crate::export::{json_escape_into, json_f64};

/// Estimated execution cost of one plan under a cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PlanEstimate {
    /// Bytes crossing the coordinator/site boundary (both directions).
    pub bytes_moved: u64,
    /// Coordinator-to-site request rounds (batched RPCs count once).
    pub round_trips: u64,
    /// Estimated kernel time, site-parallelism already divided out.
    pub compute_nanos: f64,
    /// Estimated end-to-end time: compute + transfer + round-trip latency.
    pub total_nanos: f64,
}

impl PlanEstimate {
    /// Renders the estimate as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"bytes_moved\":{},\"round_trips\":{},\"compute_nanos\":{},\"total_nanos\":{}}}",
            self.bytes_moved,
            self.round_trips,
            json_f64(self.compute_nanos),
            json_f64(self.total_nanos)
        )
    }
}

impl std::fmt::Display for PlanEstimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} B moved, {} round trips, ~{:.2} ms total",
            self.bytes_moved,
            self.round_trips,
            self.total_nanos / 1e6
        )
    }
}

/// One optimizer rule's outcome over a plan: how many rewrites it made.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleFire {
    /// Rule name (`cse`, `fuse-ops`, ...).
    pub rule: String,
    /// Number of rewrites the rule performed (0 = did not fire).
    pub hits: u64,
}

/// An explain report: logical vs optimized plan, estimated costs, and —
/// after execution — the measured [`Analysis`]. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct Explain {
    /// The logical plan script as lowered from the lazy DAG.
    pub logical: String,
    /// The script after the optimizer rule pipeline.
    pub optimized: String,
    /// Per-rule rewrite counts, pipeline order.
    pub rules: Vec<RuleFire>,
    /// Cost estimate of the logical plan.
    pub estimated_logical: PlanEstimate,
    /// Cost estimate of the optimized plan.
    pub estimated_optimized: PlanEstimate,
    /// Measured breakdown, present after `explain_analyze` ran the plan.
    pub analyzed: Option<Analysis>,
}

impl Explain {
    /// The measured ANALYZE section, when the plan has been executed.
    pub fn analysis(&self) -> Option<&Analysis> {
        self.analyzed.as_ref()
    }

    /// Renders the full report as a JSON object (`analyzed` is `null`
    /// until the plan has been executed).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\"logical\":");
        json_escape_into(&mut out, &self.logical);
        out.push_str(",\"optimized\":");
        json_escape_into(&mut out, &self.optimized);
        out.push_str(",\"rules\":[");
        for (i, r) in self.rules.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"rule\":");
            json_escape_into(&mut out, &r.rule);
            let _ = write!(out, ",\"hits\":{}}}", r.hits);
        }
        out.push_str("],\"estimated_logical\":");
        out.push_str(&self.estimated_logical.to_json());
        out.push_str(",\"estimated_optimized\":");
        out.push_str(&self.estimated_optimized.to_json());
        out.push_str(",\"analyzed\":");
        match &self.analyzed {
            Some(a) => out.push_str(&a.to_json()),
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }
}

impl std::fmt::Display for Explain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "EXPLAIN")?;
        writeln!(f, "logical plan:")?;
        for line in self.logical.lines() {
            writeln!(f, "  {line}")?;
        }
        let fired: Vec<String> = self
            .rules
            .iter()
            .filter(|r| r.hits > 0)
            .map(|r| format!("{} x{}", r.rule, r.hits))
            .collect();
        if fired.is_empty() {
            writeln!(f, "optimized plan (no rules fired):")?;
        } else {
            writeln!(f, "optimized plan ({}):", fired.join(", "))?;
        }
        for line in self.optimized.lines() {
            writeln!(f, "  {line}")?;
        }
        writeln!(
            f,
            "estimated: {} -> {}",
            self.estimated_logical, self.estimated_optimized
        )?;
        if let Some(a) = &self.analyzed {
            write!(f, "{a}")?;
            writeln!(
                f,
                "estimated {:.2} ms total vs actual {:.2} ms wall",
                self.estimated_optimized.total_nanos / 1e6,
                a.wall_nanos as f64 / 1e6
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::Json;

    fn sample() -> Explain {
        Explain {
            logical: "X1 = matrix(2x2)\nX2 = tsmm(X1)".into(),
            optimized: "X1 = matrix(2x2)\nX2 = tsmm(X1)".into(),
            rules: vec![
                RuleFire {
                    rule: "cse".into(),
                    hits: 2,
                },
                RuleFire {
                    rule: "fuse-ops".into(),
                    hits: 0,
                },
            ],
            estimated_logical: PlanEstimate {
                bytes_moved: 1024,
                round_trips: 4,
                compute_nanos: 1e6,
                total_nanos: 5e6,
            },
            estimated_optimized: PlanEstimate {
                bytes_moved: 512,
                round_trips: 2,
                compute_nanos: 1e6,
                total_nanos: 3e6,
            },
            analyzed: None,
        }
    }

    #[test]
    fn display_shows_plans_rules_and_estimates() {
        let text = format!("{}", sample());
        assert!(text.starts_with("EXPLAIN\n"));
        assert!(text.contains("logical plan:"));
        assert!(text.contains("cse x2"));
        assert!(!text.contains("fuse-ops x0"), "silent rules are omitted");
        assert!(text.contains("1024 B moved, 4 round trips"));
        assert!(!text.contains("EXPLAIN ANALYZE"), "no analysis section yet");
    }

    #[test]
    fn display_appends_analysis_when_present() {
        let mut ex = sample();
        ex.analyzed = Some(Analysis {
            wall_nanos: 7_000_000,
            ..Analysis::default()
        });
        let text = format!("{ex}");
        assert!(text.contains("EXPLAIN ANALYZE"));
        assert!(text.contains("estimated 3.00 ms total vs actual 7.00 ms wall"));
    }

    #[test]
    fn json_round_trips() {
        let ex = sample();
        let doc = Json::parse(&ex.to_json()).expect("parses");
        assert!(doc
            .get("logical")
            .and_then(Json::as_str)
            .unwrap()
            .contains("tsmm"));
        assert_eq!(
            doc.get("estimated_optimized")
                .and_then(|e| e.get("bytes_moved"))
                .and_then(Json::as_f64),
            Some(512.0)
        );
        assert!(doc.get("analyzed").is_some());
    }
}
