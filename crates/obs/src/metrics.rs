//! Metrics registry: named monotonic counters and log-scale latency
//! histograms with quantile summaries.
//!
//! Handles ([`Counter`], [`Histogram`]) are `Arc`s resolved once by
//! name; per-event cost after that is a single atomic RMW. Hot paths
//! that cannot amortize the name lookup should gate registry access on
//! [`crate::trace::enabled`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;

/// A monotonic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Number of log2 buckets: bucket `i` holds values `v` with
/// `bit_width(v) == i`, i.e. `[2^(i-1), 2^i)` (bucket 0 holds `0`).
const BUCKETS: usize = 65;

/// A log-scale histogram of `u64` samples (typically nanoseconds).
/// Bucket boundaries are powers of two, so relative error of quantile
/// estimates is at most 2x and in practice ~±25% (we report the
/// geometric midpoint of the winning bucket, refined by linear
/// interpolation of rank within the bucket).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [(); BUCKETS].map(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    #[inline]
    pub fn record(&self, v: u64) {
        let idx = (64 - v.leading_zeros()) as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Approximate value at quantile `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                if i == 0 {
                    return 0.0;
                }
                // Bucket i covers [2^(i-1), 2^i); interpolate linearly
                // by rank position within the bucket.
                let lo = (1u128 << (i - 1)) as f64;
                let hi = if i >= 64 {
                    u64::MAX as f64
                } else {
                    (1u128 << i) as f64
                };
                let frac = (rank - seen) as f64 / c as f64;
                let est = lo + (hi - lo) * frac;
                return est.min(self.max.load(Ordering::Relaxed) as f64);
            }
            seen += c;
        }
        self.max.load(Ordering::Relaxed) as f64
    }

    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            max: self.max.load(Ordering::Relaxed),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time summary of one histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
}

impl HistogramSummary {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Point-in-time snapshot of a whole registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsSnapshot {
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

/// A named-metric registry. Metric names are dot-separated
/// (`rpc.calls`, `worker.0.net_nanos`, `inst.fed_matmul`); exporters
/// sanitize them per format.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Get-or-create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().get(name) {
            return Arc::clone(c);
        }
        Arc::clone(self.counters.write().entry(name.to_string()).or_default())
    }

    /// Get-or-create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().get(name) {
            return Arc::clone(h);
        }
        Arc::clone(self.histograms.write().entry(name.to_string()).or_default())
    }

    /// Convenience: `counter(name).add(v)`.
    pub fn add(&self, name: &str, v: u64) {
        self.counter(name).add(v);
    }

    /// Convenience: `counter(name).inc()`.
    pub fn inc(&self, name: &str) {
        self.counter(name).inc();
    }

    /// Convenience: `histogram(name).record(v)`.
    pub fn record(&self, name: &str, v: u64) {
        self.histogram(name).record(v);
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
        }
    }

    /// Zeroes every metric without dropping the (possibly shared)
    /// handles: callers holding `Arc<Counter>`s keep counting into the
    /// same cells after a reset.
    pub fn reset(&self) {
        for c in self.counters.read().values() {
            c.reset();
        }
        for h in self.histograms.read().values() {
            h.reset();
        }
    }
}

/// The process-global registry used by the instrumented runtime.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset_in_place() {
        let r = Registry::new();
        let c = r.counter("a.b");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("a.b").get(), 5);
        r.reset();
        // The original handle still works post-reset.
        c.inc();
        assert_eq!(r.snapshot().counter("a.b"), 1);
    }

    #[test]
    fn histogram_quantiles_are_log_scale_accurate() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500500);
        assert_eq!(s.max, 1000);
        // Log-bucket estimates: within 2x of the true quantile.
        assert!(s.p50 > 250.0 && s.p50 < 1000.0, "p50={}", s.p50);
        assert!(s.p95 > 475.0 && s.p95 <= 1000.0, "p95={}", s.p95);
        assert!(s.p99 >= s.p95 && s.p99 <= 1000.0, "p99={}", s.p99);
    }

    #[test]
    fn histogram_handles_zero_and_huge_values() {
        let h = Histogram::default();
        h.record(0);
        h.record(u64::MAX);
        let s = h.summary();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(h.quantile(0.0), 0.0);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::new();
        r.add("z", 1);
        r.add("a", 2);
        r.record("lat", 100);
        let snap = r.snapshot();
        let names: Vec<&String> = snap.counters.keys().collect();
        assert_eq!(names, ["a", "z"]);
        assert_eq!(snap.histograms["lat"].count, 1);
    }
}
