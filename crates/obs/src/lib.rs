//! Observability layer for the ExDRa runtime.
//!
//! Two independent facilities, both process-global and thread-safe:
//!
//! * **Tracing** ([`trace`]): structured spans with ids, parent ids, a
//!   [`SpanKind`], wall-clock duration, and key/value attributes. Spans
//!   are recorded into a per-thread buffer and flushed into a global
//!   collector when the thread's span stack unwinds to its root (or the
//!   buffer grows large), so the hot path never takes the collector
//!   lock per span. When tracing is disabled — the default — the facade
//!   is a true no-op: no clock reads, no allocation (verified by
//!   `tests/noop_alloc.rs`).
//! * **Metrics** ([`metrics`]): a registry of named monotonic counters
//!   and log-scale latency histograms with p50/p95/p99 summaries,
//!   exportable as Prometheus-style text and JSON ([`export`]).
//!
//! On top of those sit the operations plane:
//!
//! * **Flight recorder** ([`recorder`]): a bounded ring of recent spans
//!   and events that dumps a JSON incident bundle when an anomaly
//!   fires (worker death, session rejection, deadline miss, ...).
//! * **EXPLAIN ANALYZE** ([`analyze()`]): critical-path analysis over one
//!   computation's span forest — wall-time breakdown, dominant
//!   worker/opcode, and per-opcode/per-worker cost profiles — yielding
//!   an [`Analysis`].
//! * **EXPLAIN reports** ([`explain`]): the unified [`Explain`] document
//!   the API layer fills with logical/optimized plan scripts, cost
//!   estimates ([`PlanEstimate`]), optimizer rule hits ([`RuleFire`]),
//!   and — once the plan ran — the measured [`Analysis`].
//!
//! [`report::RunReport`] assembles both into a human-readable per-run
//! breakdown (compute/network/serde split per worker, top-N slowest
//! instructions) and a JSON document the bench harness writes as a
//! sidecar next to its results.
//!
//! Trace contexts are plain `u64` pairs so the RPC layer can propagate
//! them over the wire without this crate knowing about the protocol.

pub mod analyze;
pub mod explain;
pub mod export;
pub mod metrics;
pub mod recorder;
pub mod report;
pub mod trace;

pub use analyze::{analyze, Analysis, CriticalStep, OpcodeCost, WorkerCost};
pub use explain::{Explain, PlanEstimate, RuleFire};
pub use metrics::{global, Counter, Histogram, HistogramSummary, MetricsSnapshot, Registry};
pub use report::{
    InstrProfile, NetTotals, PipelineSummary, RecoverySummary, RunReport, WorkerBreakdown,
};
pub use trace::{
    clear, current, enabled, propagate, set_enabled, snapshot_spans, span, span_child_of,
    take_spans, AttrValue, PropagationGuard, SpanGuard, SpanKind, SpanRecord, TraceContext,
};

/// Resets all global observability state (spans, metrics, id counters).
/// Meant for tests and between bench phases; leaves enabled/disabled
/// state untouched. The flight recorder's rings are deliberately NOT
/// cleared — they are forensic history (see [`recorder::reset`]).
pub fn reset() {
    trace::clear();
    metrics::global().reset();
}
