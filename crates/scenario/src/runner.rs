//! Scenario execution, invariants, and reporting.
//!
//! [`run_scenario`] materializes a declared [`Scenario`] into a live
//! federation — per-site workers behind their declared link shaping and
//! fault plans, a coordinator-side supervisor with checkpointing and an
//! in-memory reconnector — and drives the continuous-learning loop
//! through every round, executing the churn schedule and the full
//! kill → detect → recover → reinstall → retry arc where declared. For
//! scenarios promising [`Invariant::BitwiseModelMatch`] it then replays
//! the *stripped* scenario (plain links, no churn, same seeds) and
//! compares final model hashes, before mechanically evaluating every
//! declared invariant into a [`ScenarioReport`].

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use exdra_core::supervision::{HealthState, SupervisionPolicy, Supervisor};
use exdra_core::worker::{Worker, WorkerConfig};
use exdra_core::{FedContext, Result};
use exdra_fault::FaultyChannel;
use exdra_matrix::DenseMatrix;
use exdra_net::transport::{Channel, ShapedChannel};
use exdra_paramserv::fed::install_ps_udf;

use crate::continuous::{ContinuousTrainer, SitePipeline, TrainerConfig};
use crate::topology::{Invariant, Scenario};

/// Per-round measurements of one scenario execution.
#[derive(Debug, Clone, Copy)]
pub struct RoundStat {
    /// Round index.
    pub round: usize,
    /// Wall time of scatter + checkpoint + training (including any
    /// recovery + retry), in milliseconds.
    pub millis: f64,
    /// Final epoch loss (0 when the round ultimately failed).
    pub loss: f64,
    /// Post-round accuracy on the round's windows (0 on failure).
    pub accuracy: f64,
    /// Maximum staleness observed this round.
    pub staleness: usize,
    /// Whether the round needed a post-recovery retry.
    pub retried: bool,
    /// Whether the round ultimately failed (after any retry).
    pub failed: bool,
}

/// The artifact of one scenario run: measurements plus the mechanical
/// verdict on every declared invariant.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// The master seed the whole run derives from (sufficient, together
    /// with the name and scale, to replay it).
    pub master_seed: u64,
    /// Per-round stats.
    pub rounds: Vec<RoundStat>,
    /// Median round time (ms).
    pub p50_ms: f64,
    /// Tail round time (ms).
    pub p99_ms: f64,
    /// Total round time (ms).
    pub total_ms: f64,
    /// Rounds that ultimately failed.
    pub failed_computations: usize,
    /// Rounds that succeeded only after recovery + retry.
    pub retried_rounds: usize,
    /// Maximum ASP staleness observed across all rounds.
    pub max_observed_staleness: usize,
    /// Drift-triggered metadata re-encodes.
    pub reencodes: usize,
    /// Worst drift score observed.
    pub max_drift_seen: f64,
    /// Model versions tracked in the experiment store.
    pub expdb_runs: usize,
    /// Registered pipeline versions (bumped per re-encode).
    pub pipeline_versions: usize,
    /// Accuracy of the final model on the last round's windows.
    pub final_accuracy: f64,
    /// Bitwise hash of the final model parameters.
    pub model_hash: u64,
    /// Hash of the fault-free oracle's final model, when an oracle run
    /// was required by the invariants.
    pub oracle_hash: Option<u64>,
    /// `(invariant name, held)` for every declared invariant.
    pub invariants: Vec<(String, bool)>,
    /// True when every declared invariant held.
    pub passed: bool,
}

impl ScenarioReport {
    /// Renders the report as a JSON object (for `results/scenarios.json`).
    pub fn to_json(&self) -> String {
        let rounds: Vec<String> = self
            .rounds
            .iter()
            .map(|r| {
                format!(
                    "{{\"round\":{},\"ms\":{:.3},\"loss\":{:.6},\"accuracy\":{:.4},\
                     \"staleness\":{},\"retried\":{},\"failed\":{}}}",
                    r.round, r.millis, r.loss, r.accuracy, r.staleness, r.retried, r.failed
                )
            })
            .collect();
        let invariants: Vec<String> = self
            .invariants
            .iter()
            .map(|(n, ok)| format!("{{\"name\":\"{n}\",\"passed\":{ok}}}"))
            .collect();
        let oracle = match self.oracle_hash {
            Some(h) => format!("\"{h:016x}\""),
            None => "null".into(),
        };
        format!(
            "{{\"name\":\"{}\",\"master_seed\":{},\"p50_ms\":{:.3},\"p99_ms\":{:.3},\
             \"total_ms\":{:.3},\"failed_computations\":{},\"retried_rounds\":{},\
             \"max_observed_staleness\":{},\"reencodes\":{},\"max_drift_seen\":{:.4},\
             \"expdb_runs\":{},\"pipeline_versions\":{},\"final_accuracy\":{:.4},\
             \"model_hash\":\"{:016x}\",\"oracle_hash\":{},\"passed\":{},\
             \"invariants\":[{}],\"rounds\":[{}]}}",
            self.name,
            self.master_seed,
            self.p50_ms,
            self.p99_ms,
            self.total_ms,
            self.failed_computations,
            self.retried_rounds,
            self.max_observed_staleness,
            self.reencodes,
            self.max_drift_seen,
            self.expdb_runs,
            self.pipeline_versions,
            self.final_accuracy,
            self.model_hash,
            oracle,
            self.passed,
            invariants.join(","),
            rounds.join(",")
        )
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Everything `execute` measures, before invariant evaluation.
struct ExecOutcome {
    rounds: Vec<RoundStat>,
    model_hash: u64,
    max_staleness: usize,
    reencodes: usize,
    max_drift_seen: f64,
    expdb_runs: usize,
    pipeline_versions: usize,
    final_accuracy: f64,
}

/// Runs a scenario end to end and evaluates its invariants. For
/// [`Invariant::BitwiseModelMatch`] scenarios the stripped (fault-free,
/// plain-link) oracle is executed afterwards with identical seeds and
/// the two final models compared bitwise.
pub fn run_scenario(sc: &Scenario) -> Result<ScenarioReport> {
    let live = execute(sc, "live")?;
    let oracle_hash = if sc.invariants.contains(&Invariant::BitwiseModelMatch) {
        Some(execute(&sc.stripped(), "oracle")?.model_hash)
    } else {
        None
    };

    let failed_computations = live.rounds.iter().filter(|r| r.failed).count();
    let retried_rounds = live.rounds.iter().filter(|r| r.retried).count();
    let invariants: Vec<(String, bool)> = sc
        .invariants
        .iter()
        .map(|inv| {
            let held = match inv {
                Invariant::BitwiseModelMatch => oracle_hash == Some(live.model_hash),
                Invariant::BoundedStaleness => sc
                    .workload
                    .max_staleness
                    .is_none_or(|bound| live.max_staleness <= bound),
                Invariant::ZeroFailedComputations => failed_computations == 0,
                Invariant::ReencodeOnDrift => live.reencodes >= 1,
            };
            (inv.name().to_string(), held)
        })
        .collect();
    let passed = invariants.iter().all(|(_, ok)| *ok);

    let mut times: Vec<f64> = live.rounds.iter().map(|r| r.millis).collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite round times"));
    Ok(ScenarioReport {
        name: sc.name.clone(),
        master_seed: sc.master_seed,
        p50_ms: percentile(&times, 0.50),
        p99_ms: percentile(&times, 0.99),
        total_ms: times.iter().sum(),
        rounds: live.rounds,
        failed_computations,
        retried_rounds,
        max_observed_staleness: live.max_staleness,
        reencodes: live.reencodes,
        max_drift_seen: live.max_drift_seen,
        expdb_runs: live.expdb_runs,
        pipeline_versions: live.pipeline_versions,
        final_accuracy: live.final_accuracy,
        model_hash: live.model_hash,
        oracle_hash,
        invariants,
        passed,
    })
}

/// Adds a constant offset to every cell (the declared sensor
/// recalibration regime change).
fn offset_all(mut m: DenseMatrix, shift: f64) -> DenseMatrix {
    for v in m.values_mut() {
        *v += shift;
    }
    m
}

fn execute(sc: &Scenario, tag: &str) -> Result<ExecOutcome> {
    let wl = &sc.workload;

    // --- Federation: one worker per site behind its declared link. ---
    let slots: Arc<parking_lot::Mutex<Vec<Arc<Worker>>>> = Arc::new(parking_lot::Mutex::new(
        (0..wl.sites)
            .map(|_| Worker::new(WorkerConfig::default()))
            .collect(),
    ));
    let channels: Vec<Box<dyn Channel>> = {
        let guard = slots.lock();
        sc.links
            .iter()
            .enumerate()
            .map(|(i, link)| {
                let base: Box<dyn Channel> = match link.profile {
                    Some(p) => Box::new(ShapedChannel::new(guard[i].serve_mem(), p)),
                    None => Box::new(guard[i].serve_mem()),
                };
                match link.fault {
                    Some(plan) => Box::new(FaultyChannel::new(base, plan)) as Box<dyn Channel>,
                    None => base,
                }
            })
            .collect()
    };
    let ctx = FedContext::from_channels(channels)?;

    // --- Supervision: manual sweeps, checkpoints, in-memory reconnector. ---
    let sup = Supervisor::new(Arc::clone(&ctx), SupervisionPolicy::default());
    {
        let slots = Arc::clone(&slots);
        sup.set_reconnector(Box::new(move |w| {
            // Stand-in for a restarted site process: a fresh, empty
            // worker; the supervisor restores its state from checkpoint.
            let fresh = Worker::new(WorkerConfig::default());
            let ch = fresh.serve_mem();
            slots.lock()[w] = fresh;
            Some(Box::new(ch) as Box<dyn Channel>)
        }));
    }

    // --- Continuous pipelines and trainer, all seeded from the master. ---
    let dir = std::env::temp_dir().join("exdra_scenarios").join(format!(
        "{}-{}-{}-{tag}",
        sc.name,
        std::process::id(),
        sc.master_seed
    ));
    let mut pipelines = Vec::with_capacity(wl.sites);
    for site in 0..wl.sites {
        pipelines.push(SitePipeline::new(
            site,
            wl.fields,
            wl.window,
            sc.sensor_seed(site),
            dir.join(format!("site{site}")),
        )?);
    }
    let mut trainer = ContinuousTrainer::new(TrainerConfig {
        fields: wl.fields,
        classes: wl.classes,
        hidden: wl.hidden,
        epochs_per_round: wl.epochs_per_round,
        batch_size: wl.batch_size,
        update_type: wl.update_type,
        max_staleness: wl.max_staleness,
        seed: sc.train_seed(),
        drift_threshold: wl.drift_threshold,
    });
    {
        let guard = slots.lock();
        for w in guard.iter() {
            install_ps_udf(w, trainer.network().clone());
        }
    }

    let churn: HashMap<usize, usize> = sc.churn.iter().map(|c| (c.round, c.site)).collect();
    let mut rounds = Vec::with_capacity(wl.rounds);
    let mut max_staleness = 0usize;
    let mut final_accuracy = 0.0;

    for round in 0..wl.rounds {
        // 1. Continuous ingest: one fresh windowed mini-batch per site.
        let mut blocks = Vec::with_capacity(wl.sites);
        for (site, p) in pipelines.iter_mut().enumerate() {
            let mut b = p.pump(wl.site_records[site])?;
            if let Some((from, shift)) = wl.drift_shift {
                if round >= from {
                    b = offset_all(b, shift);
                }
            }
            blocks.push(b);
        }

        // 2. Drift check against the consolidated transform metadata.
        trainer.observe(&blocks)?;

        // 3. Scatter, checkpoint, then (maybe) kill and train.
        let t0 = Instant::now();
        let prep = trainer.prepare(&ctx, &blocks)?;
        sup.heartbeat_once();
        sup.checkpoint_once();
        let killed = churn.get(&round).copied();
        if let Some(site) = killed {
            slots.lock()[site].shutdown();
        }

        let mut retried = false;
        let mut outcome = trainer.train_round(&ctx, &prep, round, Some(sup.latency_tracker()));
        if outcome.is_err() {
            if let Some(site) = killed {
                // The scheduled death: report it to the supervisor, wait
                // out the recovery arc (replacement channel + checkpoint
                // restore), re-ship the setup-time UDF (function
                // registrations are not part of the variable-environment
                // checkpoint), and retry the identical round.
                sup.notify_worker_dead(site);
                sup.wait_recoveries();
                let mut attempts = 0;
                while sup.detector().state(site) != HealthState::Healthy && attempts < 10 {
                    sup.spawn_recovery(site);
                    sup.wait_recoveries();
                    attempts += 1;
                }
                install_ps_udf(&slots.lock()[site], trainer.network().clone());
                retried = true;
                outcome = trainer.train_round(&ctx, &prep, round, Some(sup.latency_tracker()));
            }
        }
        let millis = t0.elapsed().as_secs_f64() * 1e3;

        match outcome {
            Ok(m) => {
                max_staleness = max_staleness.max(m.staleness);
                final_accuracy = m.accuracy;
                rounds.push(RoundStat {
                    round,
                    millis,
                    loss: m.loss,
                    accuracy: m.accuracy,
                    staleness: m.staleness,
                    retried,
                    failed: false,
                });
            }
            Err(_) => rounds.push(RoundStat {
                round,
                millis,
                loss: 0.0,
                accuracy: 0.0,
                staleness: 0,
                retried,
                failed: true,
            }),
        }
    }

    let outcome = ExecOutcome {
        rounds,
        model_hash: trainer.model_hash(),
        max_staleness,
        reencodes: trainer.reencodes,
        max_drift_seen: trainer.max_drift_seen,
        expdb_runs: trainer.expdb().all_runs().len(),
        pipeline_versions: trainer.pipeline_versions(),
        final_accuracy,
    };

    // Orderly teardown: stop workers, then drop the context.
    for w in slots.lock().iter() {
        w.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(outcome)
}
