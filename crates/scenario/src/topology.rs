//! Scenarios as data.
//!
//! An adversarial-topology scenario is a *declaration*: per-site link
//! conditions ([`exdra_net::sim::NetProfile`] shaping plus an optional
//! [`exdra_fault::FaultPlan`]), a churn schedule, a continuous-learning
//! workload, and the invariants the run must uphold. The four named
//! topologies of the scenario matrix — hub-and-spoke WAN, one straggler
//! site, site churn mid-training, skewed partition sizes — are
//! constructors over this one type, each deriving every internal seed
//! (sensor streams, latency jitter, fault schedule, partition skew) from
//! a single master seed through [`exdra_fault::splitmix64`], so an
//! entire scenario replays bit-identically from the `(name, master_seed)`
//! pair recorded in its JSON artifact.

use std::time::Duration;

use exdra_fault::{splitmix64, FaultPlan};
use exdra_net::sim::NetProfile;
use exdra_paramserv::UpdateType;

/// Link conditions between the coordinator hub and one site.
#[derive(Debug, Clone)]
pub struct SiteLink {
    /// Latency/bandwidth/jitter shaping; `None` = plain in-process link.
    pub profile: Option<NetProfile>,
    /// Injected transport faults; `None` = clean link.
    pub fault: Option<FaultPlan>,
}

impl SiteLink {
    /// An unshaped, fault-free link.
    pub fn plain() -> Self {
        Self {
            profile: None,
            fault: None,
        }
    }
}

/// One scheduled mid-training site failure: before round `round` trains,
/// site `site`'s worker process is killed (after the round's data has
/// been scattered and checkpointed).
#[derive(Debug, Clone, Copy)]
pub struct ChurnEvent {
    /// Round index (0-based) whose training the kill interrupts.
    pub round: usize,
    /// Site to kill.
    pub site: usize,
}

/// A mechanically checkable promise about a scenario run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invariant {
    /// The final model is bitwise identical to the fault-free oracle run
    /// (same workload, plain links, no churn). Holds for BSP scenarios:
    /// adversity may cost time but never correctness.
    BitwiseModelMatch,
    /// Observed ASP staleness never exceeded the configured bound.
    BoundedStaleness,
    /// No round ultimately failed: every computation, including rounds
    /// interrupted by churn, completed (possibly after recovery + retry).
    ZeroFailedComputations,
    /// Distribution drift was detected and the transform metadata
    /// re-encoded at least once.
    ReencodeOnDrift,
}

impl Invariant {
    /// Stable snake_case name used in reports and JSON artifacts.
    pub fn name(self) -> &'static str {
        match self {
            Invariant::BitwiseModelMatch => "bitwise_model_match",
            Invariant::BoundedStaleness => "bounded_staleness",
            Invariant::ZeroFailedComputations => "zero_failed_computations",
            Invariant::ReencodeOnDrift => "reencode_on_drift",
        }
    }
}

/// The continuous-learning workload a scenario drives.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Number of federated sites (= workers).
    pub sites: usize,
    /// Retraining rounds.
    pub rounds: usize,
    /// Sensor fields per site (= model input width).
    pub fields: usize,
    /// Tumbling-window length in records.
    pub window: usize,
    /// Raw sensor records pumped per site per round (index = site);
    /// unequal entries express partition skew.
    pub site_records: Vec<usize>,
    /// Target classes.
    pub classes: usize,
    /// Hidden layer width.
    pub hidden: usize,
    /// Parameter-server epochs per round.
    pub epochs_per_round: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// BSP or ASP synchronization.
    pub update_type: UpdateType,
    /// Stale-synchronous bound under ASP.
    pub max_staleness: Option<usize>,
    /// Worst-site drift score that triggers a metadata re-encode.
    pub drift_threshold: f64,
    /// Optional sensor recalibration: from round `.0` on, every feature
    /// is offset by `.1` — a deterministic regime change that must drive
    /// the drift detector over its threshold.
    pub drift_shift: Option<(usize, f64)>,
}

/// A fully declared scenario: topology + fault schedule + workload +
/// invariants, all derived from one master seed.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (one of the four matrix topologies, or custom).
    pub name: String,
    /// The single seed every internal RNG stream is derived from.
    pub master_seed: u64,
    /// Per-site link conditions (index = site).
    pub links: Vec<SiteLink>,
    /// Scheduled mid-training site kills.
    pub churn: Vec<ChurnEvent>,
    /// The continuous-learning workload.
    pub workload: Workload,
    /// Invariants asserted after the run.
    pub invariants: Vec<Invariant>,
}

/// Salts for the per-purpose sub-seed streams, so adding a consumer
/// never perturbs the draws of another.
mod salt {
    pub const SENSOR: u64 = 0x5e25;
    pub const JITTER: u64 = 0x717e;
    pub const FAULT: u64 = 0xfa17;
    pub const SKEW: u64 = 0x5e3b;
    pub const TRAIN: u64 = 0x7a13;
}

impl Scenario {
    /// Derives the deterministic sub-seed for (`salt`, `index`) from the
    /// master seed — the only seed-derivation path in the harness.
    pub fn sub_seed(&self, salt: u64, index: u64) -> u64 {
        derive(self.master_seed, salt, index)
    }

    /// Sensor-stream seed for one site.
    pub fn sensor_seed(&self, site: usize) -> u64 {
        self.sub_seed(salt::SENSOR, site as u64)
    }

    /// Training seed (model init + shuffles).
    pub fn train_seed(&self) -> u64 {
        self.sub_seed(salt::TRAIN, 0)
    }

    /// The fault-free oracle of this scenario: identical workload and
    /// seeds, but plain links and no churn. BSP scenarios must reach the
    /// bitwise-identical final model.
    pub fn stripped(&self) -> Scenario {
        Scenario {
            name: format!("{}-oracle", self.name),
            links: self.links.iter().map(|_| SiteLink::plain()).collect(),
            churn: Vec::new(),
            invariants: Vec::new(),
            ..self.clone()
        }
    }

    /// All four matrix topologies at the given scale.
    pub fn matrix(master_seed: u64, scale: f64) -> Vec<Scenario> {
        vec![
            Scenario::hub_and_spoke_wan(master_seed, scale),
            Scenario::one_straggler(master_seed, scale),
            Scenario::site_churn(master_seed, scale),
            Scenario::skewed_partitions(master_seed, scale),
        ]
    }

    /// Hub-and-spoke WAN: every site sits behind a scaled-down version of
    /// the paper's measured WAN profile with ±25% seeded latency jitter;
    /// mid-run a sensor recalibration forces a metadata re-encode. BSP
    /// over shaped links must still match the oracle bitwise.
    pub fn hub_and_spoke_wan(master_seed: u64, scale: f64) -> Scenario {
        let mut sc = Scenario {
            name: "hub_and_spoke_wan".into(),
            master_seed,
            links: Vec::new(),
            churn: Vec::new(),
            workload: base_workload(3, scale),
            invariants: vec![
                Invariant::BitwiseModelMatch,
                Invariant::ZeroFailedComputations,
                Invariant::ReencodeOnDrift,
            ],
        };
        sc.workload.drift_shift = Some((sc.workload.rounds / 2, 2.0));
        sc.links = (0..sc.workload.sites)
            .map(|site| SiteLink {
                profile: Some(
                    NetProfile::wan()
                        .scaled((0.2 * scale).clamp(0.02, 0.5))
                        .with_jitter(0.25, derive(master_seed, salt::JITTER, site as u64)),
                ),
                fault: None,
            })
            .collect();
        sc
    }

    /// One straggler site: ASP training with a bounded-staleness gate
    /// while site 0's link delays every message; fast sites may run
    /// ahead, but never beyond the staleness bound.
    pub fn one_straggler(master_seed: u64, scale: f64) -> Scenario {
        let mut sc = Scenario {
            name: "one_straggler".into(),
            master_seed,
            links: Vec::new(),
            churn: Vec::new(),
            workload: base_workload(3, scale),
            invariants: vec![
                Invariant::BoundedStaleness,
                Invariant::ZeroFailedComputations,
            ],
        };
        sc.workload.update_type = UpdateType::Asp;
        sc.workload.max_staleness = Some(1);
        let delay_ms = ((25.0 * scale) as u64).max(4);
        sc.links = (0..sc.workload.sites)
            .map(|site| SiteLink {
                profile: None,
                fault: (site == 0).then(|| {
                    FaultPlan::none(derive(master_seed, salt::FAULT, site as u64))
                        .with_delay(1.0, Duration::from_millis(delay_ms))
                }),
            })
            .collect();
        sc
    }

    /// Site churn mid-training: one site's worker process is killed after
    /// the round's data is scattered and checkpointed; the supervisor
    /// must recover it onto a replacement worker and the retried round
    /// must leave the final model bitwise identical to the oracle, with
    /// zero ultimately-failed computations.
    pub fn site_churn(master_seed: u64, scale: f64) -> Scenario {
        let workload = base_workload(3, scale);
        let churn = vec![ChurnEvent {
            round: workload.rounds / 2,
            site: 1,
        }];
        Scenario {
            name: "site_churn".into(),
            master_seed,
            links: (0..workload.sites).map(|_| SiteLink::plain()).collect(),
            churn,
            workload,
            invariants: vec![
                Invariant::BitwiseModelMatch,
                Invariant::ZeroFailedComputations,
            ],
        }
    }

    /// Skewed partition sizes: per-site record volumes drawn from the
    /// seeded skew stream span roughly a 4x spread, so aggregation
    /// weights and batch counts diverge across sites. The run must be
    /// reproducible bitwise from its seed.
    pub fn skewed_partitions(master_seed: u64, scale: f64) -> Scenario {
        let mut workload = base_workload(4, scale);
        let base = workload.site_records[0];
        workload.site_records = (0..workload.sites)
            .map(|site| {
                let draw = derive(master_seed, salt::SKEW, site as u64);
                // Fraction in [0.25, 1.0]: smallest site ~4x smaller.
                let frac = 0.25 + 0.75 * (draw >> 11) as f64 / (1u64 << 53) as f64;
                round_to_window(((base as f64) * frac) as usize, workload.window)
            })
            .collect();
        Scenario {
            name: "skewed_partitions".into(),
            master_seed,
            links: (0..workload.sites).map(|_| SiteLink::plain()).collect(),
            churn: Vec::new(),
            workload,
            invariants: vec![
                Invariant::BitwiseModelMatch,
                Invariant::ZeroFailedComputations,
            ],
        }
    }
}

/// One splitmix64 draw keyed by `(master, salt, index)`.
fn derive(master: u64, salt: u64, index: u64) -> u64 {
    let mut state = master
        .wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(index.wrapping_mul(0xD1B5_4A32_D192_ED03));
    splitmix64(&mut state)
}

/// Rounds `records` down to a positive multiple of the window size (at
/// least four windows, so every site emits a usable mini-batch).
fn round_to_window(records: usize, window: usize) -> usize {
    let min = window * 4;
    (records / window * window).max(min)
}

/// The shared baseline workload; `scale` in (0, 1] shrinks per-round
/// record volume for smoke runs.
fn base_workload(sites: usize, scale: f64) -> Workload {
    let window = 5;
    let records = round_to_window((150.0 * scale.clamp(0.05, 4.0)) as usize, window);
    Workload {
        sites,
        rounds: 6,
        fields: 4,
        window,
        site_records: vec![records; sites],
        classes: 2,
        hidden: 8,
        epochs_per_round: 2,
        batch_size: 16,
        update_type: UpdateType::Bsp,
        max_staleness: None,
        drift_threshold: 0.4,
        drift_shift: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_declares_four_named_seeded_topologies() {
        let m = Scenario::matrix(7, 1.0);
        let names: Vec<&str> = m.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "hub_and_spoke_wan",
                "one_straggler",
                "site_churn",
                "skewed_partitions"
            ]
        );
        for sc in &m {
            assert_eq!(sc.master_seed, 7);
            assert_eq!(sc.links.len(), sc.workload.sites);
            assert_eq!(sc.workload.site_records.len(), sc.workload.sites);
            assert!(sc
                .workload
                .site_records
                .iter()
                .all(|r| *r >= sc.workload.window * 4 && r % sc.workload.window == 0));
        }
    }

    #[test]
    fn sub_seeds_are_deterministic_and_distinct() {
        let a = Scenario::site_churn(42, 1.0);
        let b = Scenario::site_churn(42, 1.0);
        assert_eq!(a.sensor_seed(0), b.sensor_seed(0));
        assert_eq!(a.train_seed(), b.train_seed());
        assert_ne!(a.sensor_seed(0), a.sensor_seed(1));
        assert_ne!(a.sensor_seed(0), a.train_seed());
        let c = Scenario::site_churn(43, 1.0);
        assert_ne!(a.sensor_seed(0), c.sensor_seed(0));
    }

    #[test]
    fn skew_spreads_partition_sizes() {
        let sc = Scenario::skewed_partitions(11, 1.0);
        let min = sc.workload.site_records.iter().min().unwrap();
        let max = sc.workload.site_records.iter().max().unwrap();
        assert!(
            max > min,
            "skew produced equal sites: {:?}",
            sc.workload.site_records
        );
    }

    #[test]
    fn stripped_oracle_removes_adversity_only() {
        let sc = Scenario::hub_and_spoke_wan(3, 1.0);
        let oracle = sc.stripped();
        assert!(oracle
            .links
            .iter()
            .all(|l| l.profile.is_none() && l.fault.is_none()));
        assert!(oracle.churn.is_empty());
        assert_eq!(oracle.master_seed, sc.master_seed);
        assert_eq!(oracle.workload.site_records, sc.workload.site_records);
        assert_eq!(oracle.sensor_seed(2), sc.sensor_seed(2));
    }
}
