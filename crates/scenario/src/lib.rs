#![warn(missing_docs)]
//! # exdra-scenario
//!
//! Continuous federated learning over streams, and the
//! adversarial-topology scenario harness that exercises it.
//!
//! The paper's system runs exploratory data science *against live,
//! geo-distributed, failure-prone sites*. This crate closes the loop on
//! that claim in two layers:
//!
//! * [`continuous`] — windowed continuous queries (`exdra-stream`) feed
//!   federated mini-batch retraining through the parameter server
//!   (`exdra-paramserv`, BSP and ASP with bounded staleness), every model
//!   version is tracked in the `ExperimentDb`, and transform-metadata
//!   drift triggers a two-pass re-encode exactly when a site's data
//!   escapes its encoded domain.
//! * [`topology`] / [`runner`] — scenarios declared *as data* (per-site
//!   link shaping + fault plans, churn schedule, workload, invariants),
//!   with the four matrix topologies — `hub_and_spoke_wan`,
//!   `one_straggler`, `site_churn`, `skewed_partitions` — derived
//!   entirely from one master seed and executed with mechanical
//!   invariant checking: bitwise model identity against a fault-free
//!   oracle under BSP, bounded staleness under ASP, and zero failed
//!   computations through mid-training site churn.

pub mod continuous;
pub mod runner;
pub mod topology;

pub use continuous::{
    label_classes, model_hash, scatter_site_blocks, ContinuousTrainer, RoundMetrics, SitePipeline,
    TrainerConfig, PIPELINE_NAME,
};
pub use runner::{percentile, run_scenario, RoundStat, ScenarioReport};
pub use topology::{ChurnEvent, Invariant, Scenario, SiteLink, Workload};
