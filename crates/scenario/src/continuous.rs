//! Continuous federated learning over streams.
//!
//! Wires the pieces built elsewhere in the workspace into one loop: each
//! federated site runs a windowed continuous query ([`exdra_stream`])
//! over its local sensor stream into a retention sink; every round the
//! fresh window aggregates are scattered as a new federated mini-batch
//! and the global model is retrained through the federated parameter
//! server ([`exdra_paramserv::fed`]); every model version is tracked in
//! the [`ExperimentDb`] with its parameter hash as lineage; and the
//! consolidated transform metadata is drift-checked against each round's
//! site-local partials ([`exdra_transform::drift`]), re-encoding (and
//! bumping the registered pipeline version) exactly when a site's data
//! escapes the encoded domain.

use std::path::PathBuf;
use std::sync::Arc;

use exdra_core::coordinator::expect_ok;
use exdra_core::fed::FedPartition;
use exdra_core::protocol::Request;
use exdra_core::{
    DataValue, FedContext, FedMatrix, PartitionScheme, PrivacyLevel, Result, RuntimeError,
};
use exdra_expdb::{DatasetMeta, ExperimentDb};
use exdra_fault::straggler::LatencyTracker;
use exdra_matrix::frame::{Frame, FrameColumn};
use exdra_matrix::DenseMatrix;
use exdra_ml::nn::Network;
use exdra_ml::synth;
use exdra_paramserv::fed as psfed;
use exdra_paramserv::{balance, AggregationMode, PsConfig, UpdateFreq, UpdateType};
use exdra_stream::query::Query;
use exdra_stream::query::{Cmp, Operator, WindowAgg};
use exdra_stream::source::SensorConfig;
use exdra_stream::{FileSink, NesCoordinator, SensorSource};
use exdra_transform::{
    build_partial, max_drift, merge_partials, EncodeKind, PartialMeta, TransformMeta, TransformSpec,
};

/// Name under which the continuous pipeline is registered in the
/// [`ExperimentDb`]; every drift-triggered re-encode registers the next
/// version of this name.
pub const PIPELINE_NAME: &str = "continuous-sensor-ffn";

/// One site's streaming ingest: a seeded synthetic sensor pumped through
/// a filter → project → tumbling-window query into a segment-retention
/// file sink. [`SitePipeline::pump`] returns only the window aggregates
/// produced since the previous call, so each call yields one round's
/// fresh federated mini-batch.
pub struct SitePipeline {
    nes: NesCoordinator,
    source: SensorSource,
    query: Query,
    sink: FileSink,
    /// Snapshot rows already handed out by earlier `pump` calls.
    consumed_rows: usize,
}

impl SitePipeline {
    /// Builds the pipeline for one site. `seed` drives the sensor stream;
    /// `window` is the tumbling-window length in records; sink segments
    /// land under `dir` (recreated empty).
    pub fn new(site: usize, fields: usize, window: usize, seed: u64, dir: PathBuf) -> Result<Self> {
        let mut cfg = SensorConfig::signals(fields, seed);
        // A few injected anomalies give the filter stage something to drop.
        cfg.anomaly_rate = 0.05;
        let source = SensorSource::new(cfg);
        let query = Query::new(
            format!("site{site}-window"),
            vec![
                // Drop injected anomaly spikes (clean signal stays < 1.5).
                Operator::Filter {
                    field: 0,
                    cmp: Cmp::Lt,
                    value: 3.0,
                },
                // Identity projection keeps all fields (exercises the
                // stateless projection operator in the deployed plan).
                Operator::Project {
                    fields: (0..fields).collect(),
                    scale: vec![1.0; fields],
                    offset: vec![0.0; fields],
                },
                Operator::TumblingWindow {
                    size: window,
                    agg: WindowAgg::Mean,
                },
            ],
        );
        let _ = std::fs::remove_dir_all(&dir);
        let schema = query.output_schema(source.schema());
        // Retention is sized to hold every segment a scenario run writes,
        // so `consumed_rows` bookkeeping stays exact.
        let sink = FileSink::create(dir, schema, 256, 4096)?;
        Ok(Self {
            nes: NesCoordinator::new(format!("site{site}")),
            source,
            query,
            sink,
            consumed_rows: 0,
        })
    }

    /// Pumps `records` raw sensor records through the continuous query
    /// and returns the window-aggregate rows emitted by this call (the
    /// site's fresh mini-batch), as a features-only matrix.
    pub fn pump(&mut self, records: usize) -> Result<DenseMatrix> {
        self.nes
            .run_bounded(&mut self.source, &mut self.query, &self.sink, records)?;
        let all = self.sink.snapshot_features()?;
        let fresh = exdra_matrix::kernels::reorg::index(
            &all,
            self.consumed_rows,
            all.rows(),
            0,
            all.cols(),
        )?;
        self.consumed_rows = all.rows();
        Ok(fresh)
    }

    /// Records currently buffered in partially filled windows (carried
    /// across rounds rather than dropped).
    pub fn pending_window_records(&self) -> usize {
        self.query.pending_window_records()
    }
}

/// Deterministic labeling rule for the synthetic sensor task: 1-based
/// class 2 when the row's mean feature value is positive, else class 1
/// (matching the workspace's SystemDS-style label convention). Being a
/// pure function of the features, every site (and the oracle rerun) can
/// derive identical labels without exchanging them.
pub fn label_classes(x: &DenseMatrix) -> DenseMatrix {
    let (rows, cols) = (x.rows(), x.cols());
    let mut data = Vec::with_capacity(rows);
    for r in 0..rows {
        let sum: f64 = x.values()[r * cols..(r + 1) * cols].iter().sum();
        data.push(if sum > 0.0 { 2.0 } else { 1.0 });
    }
    DenseMatrix::new(rows, 1, data).expect("label vector shape")
}

/// Order-independent FNV-style fold of the exact parameter bits of a
/// model, for bitwise-identity assertions and lineage strings.
pub fn model_hash(params: &[DenseMatrix]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for m in params {
        for &v in m.values() {
            h ^= v.to_bits();
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Scatters one feature block per site to its worker and wraps them as a
/// row-partitioned [`FedMatrix`] (site `i` holds rows `lo_i..hi_i`, in
/// site order). Blocks must agree on the column count; empty blocks are
/// rejected (a site that produced no windows has nothing to train on).
pub fn scatter_site_blocks(
    ctx: &Arc<FedContext>,
    blocks: &[DenseMatrix],
    privacy: PrivacyLevel,
) -> Result<FedMatrix> {
    if blocks.is_empty() {
        return Err(RuntimeError::Invalid("no site blocks to scatter".into()));
    }
    let cols = blocks[0].cols();
    let mut parts = Vec::with_capacity(blocks.len());
    let mut batches = vec![Vec::new(); ctx.num_workers()];
    let mut lo = 0usize;
    for (site, b) in blocks.iter().enumerate() {
        if b.rows() == 0 || b.cols() != cols {
            return Err(RuntimeError::Invalid(format!(
                "site {site}: block is {}x{}, expected non-empty with {cols} cols",
                b.rows(),
                b.cols()
            )));
        }
        let id = ctx.fresh_id();
        batches[site].push(Request::Put {
            id,
            data: DataValue::from(b.clone()),
            privacy,
        });
        parts.push(FedPartition {
            lo,
            hi: lo + b.rows(),
            worker: site,
            id,
        });
        lo += b.rows();
    }
    let responses = ctx.call_all(batches)?;
    for (w, rs) in responses.iter().enumerate() {
        for r in rs {
            expect_ok(r, w)?;
        }
    }
    FedMatrix::from_parts(
        Arc::clone(ctx),
        PartitionScheme::Row,
        lo,
        cols,
        parts,
        privacy,
        true,
    )
}

/// Configuration of the continuous trainer.
#[derive(Debug, Clone)]
pub struct TrainerConfig {
    /// Input feature count (sensor fields).
    pub fields: usize,
    /// Number of target classes.
    pub classes: usize,
    /// Hidden layer width of the FFN.
    pub hidden: usize,
    /// Parameter-server epochs per retraining round.
    pub epochs_per_round: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// BSP or ASP synchronization.
    pub update_type: UpdateType,
    /// Stale-synchronous bound under ASP (see [`PsConfig::max_staleness`]).
    pub max_staleness: Option<usize>,
    /// Base seed; round `r` trains with `seed + r`.
    pub seed: u64,
    /// Worst-site drift score above which the transform metadata is
    /// re-encoded (see [`exdra_transform::drift_score`]).
    pub drift_threshold: f64,
}

/// Outcome of one successful retraining round.
#[derive(Debug, Clone, Copy)]
pub struct RoundMetrics {
    /// Final epoch's aggregated training loss.
    pub loss: f64,
    /// Accuracy of the updated global model on this round's windows.
    pub accuracy: f64,
    /// Maximum staleness observed during the round (0 under BSP).
    pub staleness: usize,
}

/// One round's scattered mini-batch, kept alive so the worker symbols
/// survive until the round (including any post-recovery retry) is done.
pub struct PreparedRound {
    /// The federated feature matrix (site-partitioned rows).
    pub x: FedMatrix,
    /// `(worker, x id, y id)` per partition, ready for [`psfed::train`].
    pub data_ids: Vec<(usize, u64, u64)>,
    /// Aggregation weights (proportional to partition sizes).
    pub weights: Vec<f64>,
    /// Coordinator-side concatenation of the blocks, for evaluation.
    pub features: DenseMatrix,
    /// Class indices aligned with `features`.
    pub labels: DenseMatrix,
}

/// The continuous-learning driver: owns the global model, the experiment
/// store, and the consolidated transform metadata.
pub struct ContinuousTrainer {
    cfg: TrainerConfig,
    net: Network,
    expdb: ExperimentDb,
    pipeline_id: u64,
    spec: Option<TransformSpec>,
    meta: Option<TransformMeta>,
    /// Drift-triggered re-encodes so far.
    pub reencodes: usize,
    /// Worst drift score observed across all rounds.
    pub max_drift_seen: f64,
}

impl ContinuousTrainer {
    /// Fresh trainer with a seeded FFN and an empty experiment store.
    pub fn new(cfg: TrainerConfig) -> Self {
        let net = Network::ffn(cfg.fields, &[cfg.hidden], cfg.classes, cfg.seed);
        let expdb = ExperimentDb::new();
        let pipeline_id = expdb.register_pipeline(
            PIPELINE_NAME,
            &["sensor.window", "transformencode", "ffn.paramserv"],
        );
        Self {
            cfg,
            net,
            expdb,
            pipeline_id,
            spec: None,
            meta: None,
            reencodes: 0,
            max_drift_seen: 0.0,
        }
    }

    /// The current global model (architecture + parameters).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The experiment store tracking every model version.
    pub fn expdb(&self) -> &ExperimentDb {
        &self.expdb
    }

    /// Hash of the current global model parameters.
    pub fn model_hash(&self) -> u64 {
        model_hash(&self.net.params())
    }

    /// Registered versions of the continuous pipeline (bumped by each
    /// drift-triggered re-encode).
    pub fn pipeline_versions(&self) -> usize {
        self.expdb.versions(PIPELINE_NAME).len()
    }

    fn frame_of(block: &DenseMatrix) -> Frame {
        let cols = (0..block.cols())
            .map(|c| {
                let vals = (0..block.rows())
                    .map(|r| Some(block.values()[r * block.cols() + c]))
                    .collect();
                (format!("f{c}"), FrameColumn::F64(vals))
            })
            .collect();
        Frame::new(cols).expect("aligned frame columns")
    }

    fn partials_of(
        &self,
        blocks: &[DenseMatrix],
        spec: &TransformSpec,
    ) -> Result<Vec<PartialMeta>> {
        blocks
            .iter()
            .map(|b| Ok(build_partial(&Self::frame_of(b), spec)?))
            .collect()
    }

    /// Drift-checks one round's fresh site blocks against the
    /// consolidated transform metadata. The first call consolidates the
    /// initial metadata; later calls re-encode (and register the next
    /// pipeline version) when the worst site's drift score crosses the
    /// configured threshold. Returns whether a re-encode happened.
    pub fn observe(&mut self, blocks: &[DenseMatrix]) -> Result<bool> {
        if blocks.is_empty() || blocks[0].rows() == 0 {
            return Ok(false);
        }
        if self.spec.is_none() {
            let mut spec = TransformSpec::auto(&Self::frame_of(&blocks[0]));
            for col in &mut spec.columns {
                col.kind = EncodeKind::Bin { num_bins: 8 };
                col.one_hot = false;
            }
            let partials = self.partials_of(blocks, &spec)?;
            self.meta = Some(merge_partials(&partials, &spec)?);
            self.spec = Some(spec);
            return Ok(false);
        }
        let spec = self.spec.as_ref().expect("spec initialized").clone();
        let meta = self.meta.as_ref().expect("meta initialized");
        let partials = self.partials_of(blocks, &spec)?;
        let score = max_drift(meta, &partials);
        self.max_drift_seen = self.max_drift_seen.max(score);
        if score <= self.cfg.drift_threshold {
            return Ok(false);
        }
        // Two-pass re-encode: fresh partials are merged into new
        // consolidated metadata and the pipeline artifact is re-registered
        // as its next version.
        self.meta = Some(merge_partials(&partials, &spec)?);
        self.reencodes += 1;
        self.pipeline_id = self.expdb.register_pipeline(
            PIPELINE_NAME,
            &["sensor.window", "transformencode", "ffn.paramserv"],
        );
        Ok(true)
    }

    /// Scatters one round's site blocks and labels, returning the handle
    /// the round (and any retry of it) trains on.
    pub fn prepare(&self, ctx: &Arc<FedContext>, blocks: &[DenseMatrix]) -> Result<PreparedRound> {
        let x = scatter_site_blocks(ctx, blocks, PrivacyLevel::Public)?;
        let cols = x.cols();
        let mut data = Vec::with_capacity(x.rows() * cols);
        for b in blocks {
            data.extend_from_slice(b.values());
        }
        let features = DenseMatrix::new(x.rows(), cols, data)?;
        let labels = label_classes(&features);
        let y1h = synth::one_hot(&labels, self.cfg.classes);
        let fed_labels = psfed::scatter_labels(&x, &y1h)?;
        let sizes: Vec<usize> = x.parts().iter().map(|p| p.len()).collect();
        let plan = balance::plan(&sizes, balance::BalanceStrategy::None);
        let data_ids = psfed::apply_balance(&x, &fed_labels, &plan)?;
        Ok(PreparedRound {
            x,
            data_ids,
            weights: plan.weights,
            features,
            labels,
        })
    }

    /// The parameter-server configuration round `round` trains with.
    pub fn ps_config(&self, round: usize) -> PsConfig {
        PsConfig {
            update_type: self.cfg.update_type,
            freq: UpdateFreq::Epoch,
            epochs: self.cfg.epochs_per_round,
            batch_size: self.cfg.batch_size,
            seed: self.cfg.seed.wrapping_add(round as u64),
            aggregation: AggregationMode::Strict,
            max_staleness: self.cfg.max_staleness,
            ..PsConfig::default()
        }
    }

    /// Retrains the global model on one prepared round through the
    /// federated parameter server. On success the model advances and the
    /// new version is tracked in the experiment store; on error the model
    /// is untouched, so the identical call can be retried after recovery.
    pub fn train_round(
        &mut self,
        ctx: &Arc<FedContext>,
        prep: &PreparedRound,
        round: usize,
        tracker: Option<&LatencyTracker>,
    ) -> Result<RoundMetrics> {
        let cfg = self.ps_config(round);
        let run =
            psfed::train_tracked(ctx, &prep.data_ids, &self.net, &cfg, &prep.weights, tracker)?;
        self.net.set_params(&run.params)?;
        let loss = run.epoch_losses.last().copied().unwrap_or(f64::NAN);
        let pred = self.net.predict(&prep.features)?;
        let accuracy = exdra_ml::scoring::accuracy(&pred, &prep.labels)?;
        let nnz = prep.features.values().iter().filter(|v| **v != 0.0).count();
        let dataset = DatasetMeta {
            rows: prep.features.rows(),
            cols: prep.features.cols(),
            sparsity: nnz as f64 / prep.features.values().len().max(1) as f64,
            num_classes: self.cfg.classes,
            missing_rate: 0.0,
        };
        let hash = self.model_hash();
        self.expdb.track_run(
            self.pipeline_id,
            &[
                ("round", &round.to_string()),
                ("epochs", &cfg.epochs.to_string()),
                ("batch_size", &cfg.batch_size.to_string()),
            ],
            dataset,
            &[("loss", loss), ("accuracy", accuracy)],
            &[&format!("model:{hash:016x}")],
        );
        Ok(RoundMetrics {
            loss,
            accuracy,
            staleness: run.max_observed_staleness,
        })
    }
}
