//! Wire format of the attach protocol (client ↔ coordinator server).
//!
//! The attach connection carries four things multiplexed over one
//! socket: the handshake, opaque per-worker RPC payloads (forwarded
//! verbatim — the server never decodes tenant traffic), shared-plan-
//! cache probes, and worker liveness notifications. Frames ride the
//! same length-prefixed framing as worker RPC (`exdra_net::framing`).

use bytes::{Buf, BufMut};

use exdra_core::privacy::PrivacyLevel;
use exdra_core::value::DataValue;
use exdra_net::codec::{DecodeError, DecodeResult, Wire};

/// Protocol magic leading every handshake (`"exdrcord"`).
pub(crate) const ATTACH_MAGIC: u64 = 0x6578_6472_636f_7264;
/// Protocol version of this implementation.
pub(crate) const ATTACH_VERSION: u32 = 1;

fn put_bytes(buf: &mut impl BufMut, b: &[u8]) {
    (b.len() as u64).encode(buf);
    buf.put_slice(b);
}

fn get_bytes(buf: &mut impl Buf) -> DecodeResult<Vec<u8>> {
    let len = u64::decode(buf)? as usize;
    if buf.remaining() < len {
        return Err(DecodeError(format!(
            "payload of {len} bytes, {} remaining",
            buf.remaining()
        )));
    }
    let mut out = vec![0u8; len];
    buf.copy_to_slice(&mut out);
    Ok(out)
}

/// Client → server frames.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum ClientFrame {
    /// Handshake: request admission.
    Attach {
        /// Must equal [`ATTACH_MAGIC`].
        magic: u64,
        /// Must equal [`ATTACH_VERSION`].
        version: u32,
    },
    /// Opaque RPC payload for worker `worker` (already envelope- and/or
    /// correlation-tagged by the client's own context).
    Data { worker: u32, payload: Vec<u8> },
    /// Probe the shared plan cache.
    CacheProbe { key: u64 },
    /// Publish a computed plan result into the shared cache.
    CachePut {
        key: u64,
        privacy: PrivacyLevel,
        releasable: bool,
        value: DataValue,
    },
    /// Ask the service to recover worker `worker` (client saw it dead).
    Recover { worker: u32 },
    /// Close the session (namespace reaped server-side).
    Detach,
}

/// Server → client frames.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum ServerFrame {
    /// Admission granted: the session's namespace and the fleet size.
    Granted { ns: u64, n_workers: u32 },
    /// Admission refused (maps to `FedError::SessionRejected`).
    Rejected { active: u64, max: u64 },
    /// Opaque reply payload from worker `worker`.
    Data { worker: u32, payload: Vec<u8> },
    /// Cache probe answer: present.
    CacheHit {
        privacy: PrivacyLevel,
        releasable: bool,
        value: DataValue,
    },
    /// Cache probe answer: absent.
    CacheMiss,
    /// Worker `worker` is down; its tunnel errors until `WorkerUp`.
    WorkerDown { worker: u32 },
    /// Worker `worker` was recovered; its tunnel is serviceable again.
    WorkerUp { worker: u32 },
    /// Acknowledges `Detach`; the namespace has been reaped.
    DetachAck,
}

impl Wire for ClientFrame {
    fn encode(&self, buf: &mut impl BufMut) {
        match self {
            ClientFrame::Attach { magic, version } => {
                buf.put_u8(0);
                magic.encode(buf);
                version.encode(buf);
            }
            ClientFrame::Data { worker, payload } => {
                buf.put_u8(1);
                worker.encode(buf);
                put_bytes(buf, payload);
            }
            ClientFrame::CacheProbe { key } => {
                buf.put_u8(2);
                key.encode(buf);
            }
            ClientFrame::CachePut {
                key,
                privacy,
                releasable,
                value,
            } => {
                buf.put_u8(3);
                key.encode(buf);
                privacy.encode(buf);
                releasable.encode(buf);
                value.encode(buf);
            }
            ClientFrame::Recover { worker } => {
                buf.put_u8(4);
                worker.encode(buf);
            }
            ClientFrame::Detach => buf.put_u8(5),
        }
    }

    fn decode(buf: &mut impl Buf) -> DecodeResult<Self> {
        match u8::decode(buf)? {
            0 => Ok(ClientFrame::Attach {
                magic: u64::decode(buf)?,
                version: u32::decode(buf)?,
            }),
            1 => Ok(ClientFrame::Data {
                worker: u32::decode(buf)?,
                payload: get_bytes(buf)?,
            }),
            2 => Ok(ClientFrame::CacheProbe {
                key: u64::decode(buf)?,
            }),
            3 => Ok(ClientFrame::CachePut {
                key: u64::decode(buf)?,
                privacy: PrivacyLevel::decode(buf)?,
                releasable: bool::decode(buf)?,
                value: DataValue::decode(buf)?,
            }),
            4 => Ok(ClientFrame::Recover {
                worker: u32::decode(buf)?,
            }),
            5 => Ok(ClientFrame::Detach),
            t => Err(DecodeError(format!("invalid ClientFrame tag {t}"))),
        }
    }
}

impl Wire for ServerFrame {
    fn encode(&self, buf: &mut impl BufMut) {
        match self {
            ServerFrame::Granted { ns, n_workers } => {
                buf.put_u8(0);
                ns.encode(buf);
                n_workers.encode(buf);
            }
            ServerFrame::Rejected { active, max } => {
                buf.put_u8(1);
                active.encode(buf);
                max.encode(buf);
            }
            ServerFrame::Data { worker, payload } => {
                buf.put_u8(2);
                worker.encode(buf);
                put_bytes(buf, payload);
            }
            ServerFrame::CacheHit {
                privacy,
                releasable,
                value,
            } => {
                buf.put_u8(3);
                privacy.encode(buf);
                releasable.encode(buf);
                value.encode(buf);
            }
            ServerFrame::CacheMiss => buf.put_u8(4),
            ServerFrame::WorkerDown { worker } => {
                buf.put_u8(5);
                worker.encode(buf);
            }
            ServerFrame::WorkerUp { worker } => {
                buf.put_u8(6);
                worker.encode(buf);
            }
            ServerFrame::DetachAck => buf.put_u8(7),
        }
    }

    fn decode(buf: &mut impl Buf) -> DecodeResult<Self> {
        match u8::decode(buf)? {
            0 => Ok(ServerFrame::Granted {
                ns: u64::decode(buf)?,
                n_workers: u32::decode(buf)?,
            }),
            1 => Ok(ServerFrame::Rejected {
                active: u64::decode(buf)?,
                max: u64::decode(buf)?,
            }),
            2 => Ok(ServerFrame::Data {
                worker: u32::decode(buf)?,
                payload: get_bytes(buf)?,
            }),
            3 => Ok(ServerFrame::CacheHit {
                privacy: PrivacyLevel::decode(buf)?,
                releasable: bool::decode(buf)?,
                value: DataValue::decode(buf)?,
            }),
            4 => Ok(ServerFrame::CacheMiss),
            5 => Ok(ServerFrame::WorkerDown {
                worker: u32::decode(buf)?,
            }),
            6 => Ok(ServerFrame::WorkerUp {
                worker: u32::decode(buf)?,
            }),
            7 => Ok(ServerFrame::DetachAck),
            t => Err(DecodeError(format!("invalid ServerFrame tag {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_frames_roundtrip() {
        let frames = vec![
            ClientFrame::Attach {
                magic: ATTACH_MAGIC,
                version: ATTACH_VERSION,
            },
            ClientFrame::Data {
                worker: 3,
                payload: vec![1, 2, 3, 255],
            },
            ClientFrame::CacheProbe { key: 0xdead_beef },
            ClientFrame::CachePut {
                key: 7,
                privacy: PrivacyLevel::Public,
                releasable: true,
                value: DataValue::Scalar(1.5),
            },
            ClientFrame::Recover { worker: 1 },
            ClientFrame::Detach,
        ];
        for f in frames {
            assert_eq!(ClientFrame::from_bytes(&f.to_bytes()).unwrap(), f);
        }
    }

    #[test]
    fn server_frames_roundtrip() {
        let frames = vec![
            ServerFrame::Granted {
                ns: 9,
                n_workers: 2,
            },
            ServerFrame::Rejected { active: 8, max: 8 },
            ServerFrame::Data {
                worker: 0,
                payload: vec![],
            },
            ServerFrame::CacheHit {
                privacy: PrivacyLevel::Public,
                releasable: true,
                value: DataValue::Scalar(2.0),
            },
            ServerFrame::CacheMiss,
            ServerFrame::WorkerDown { worker: 1 },
            ServerFrame::WorkerUp { worker: 1 },
            ServerFrame::DetachAck,
        ];
        for f in frames {
            assert_eq!(ServerFrame::from_bytes(&f.to_bytes()).unwrap(), f);
        }
    }

    #[test]
    fn truncated_frames_error() {
        let data = ClientFrame::Data {
            worker: 1,
            payload: vec![9; 32],
        }
        .to_bytes();
        assert!(ClientFrame::from_bytes(&data[..data.len() - 1]).is_err());
        assert!(ServerFrame::from_bytes(&[42]).is_err());
    }
}
