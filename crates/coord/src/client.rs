//! Client side of the attach protocol.
//!
//! [`AttachedClient::connect`] performs the handshake against a
//! [`crate::CoordServer`] and yields one [`TunnelChannel`] per worker:
//! an ordinary [`Channel`] whose frames travel multiplexed over the
//! single attach socket. A session then builds its own `FedContext`
//! over the tunnels — from the runtime's point of view an attached
//! session is indistinguishable from a directly connected one, except
//! that symbol IDs come from the namespace the server granted and
//! recovery is delegated to the server ([`AttachedClient::recover`]).

use std::collections::VecDeque;
use std::io;
// std Mutex/Condvar: the vendored parking_lot compatibility crate has
// no condition variables, and inbox waits need one.
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use exdra_core::error::{FedError, Result};
use exdra_core::lineage::CachedEntry;
use exdra_net::codec::Wire;
use exdra_net::transport::{Channel, SendHalf, SplitResult, TcpChannel};

use crate::wire::{ClientFrame, ServerFrame, ATTACH_MAGIC, ATTACH_VERSION};

#[derive(Default)]
struct InboxState {
    frames: VecDeque<Vec<u8>>,
    /// Worker declared down by the server; tunnel I/O fails fast until
    /// a `WorkerUp` clears it.
    down: bool,
    /// The attach socket itself died; terminal.
    closed: bool,
}

/// Per-worker reply queue fed by the demux reader thread.
struct Inbox {
    state: Mutex<InboxState>,
    cond: Condvar,
}

impl Inbox {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(InboxState::default()),
            cond: Condvar::new(),
        })
    }
}

#[derive(Default)]
struct CacheSlot {
    reply: Option<ServerFrame>,
    closed: bool,
}

type SharedTx = Arc<Mutex<Box<dyn SendHalf>>>;

/// State shared between the user-facing [`AttachedClient`] handle, its
/// tunnels, and the demux reader thread. The reader holds *only* this —
/// never the `AttachedClient` itself — so dropping the last user handle
/// runs the detach protocol even while the reader blocks in `recv`.
struct Shared {
    tx: SharedTx,
    inboxes: Vec<Arc<Inbox>>,
    /// Serializes cache probes (one outstanding probe at a time).
    cache_lock: Mutex<()>,
    cache_slot: Mutex<CacheSlot>,
    cache_cond: Condvar,
    detached: Mutex<bool>,
    detach_cond: Condvar,
}

impl Shared {
    fn send(&self, frame: &ClientFrame) -> Result<()> {
        self.tx
            .lock()
            .expect("attach socket lock")
            .send(&frame.to_bytes())
            .map_err(FedError::from)
    }

    fn detach(&self) {
        {
            let mut d = self.detached.lock().expect("detach lock");
            if *d {
                return;
            }
            *d = true;
        }
        if self.send(&ClientFrame::Detach).is_err() {
            return;
        }
        // Bounded wait for the ack (signalled on DetachAck or socket
        // close) so callers can assert teardown completed server-side.
        let d = self.detached.lock().expect("detach lock");
        let _ = self
            .detach_cond
            .wait_timeout(d, Duration::from_secs(5))
            .expect("detach lock");
    }

    fn run_reader(&self, mut rx: Box<dyn exdra_net::transport::RecvHalf>) {
        while let Ok(raw) = rx.recv() {
            let Ok(frame) = ServerFrame::from_bytes(&raw) else {
                break;
            };
            match frame {
                ServerFrame::Data { worker, payload } => {
                    if let Some(inbox) = self.inboxes.get(worker as usize) {
                        let mut st = inbox.state.lock().expect("inbox lock");
                        st.frames.push_back(payload);
                        inbox.cond.notify_all();
                    }
                }
                ServerFrame::WorkerDown { worker } => {
                    if let Some(inbox) = self.inboxes.get(worker as usize) {
                        let mut st = inbox.state.lock().expect("inbox lock");
                        st.down = true;
                        // Replies from the dead incarnation can never
                        // arrive; wake any blocked receiver into its
                        // fast-fail path.
                        st.frames.clear();
                        inbox.cond.notify_all();
                    }
                }
                ServerFrame::WorkerUp { worker } => {
                    if let Some(inbox) = self.inboxes.get(worker as usize) {
                        let mut st = inbox.state.lock().expect("inbox lock");
                        st.down = false;
                        inbox.cond.notify_all();
                    }
                }
                reply @ (ServerFrame::CacheHit { .. } | ServerFrame::CacheMiss) => {
                    let mut slot = self.cache_slot.lock().expect("cache slot lock");
                    slot.reply = Some(reply);
                    self.cache_cond.notify_all();
                }
                ServerFrame::DetachAck => {
                    self.detach_cond.notify_all();
                }
                ServerFrame::Granted { .. } | ServerFrame::Rejected { .. } => break,
            }
        }
        // Socket gone: fail everything fast.
        for inbox in &self.inboxes {
            let mut st = inbox.state.lock().expect("inbox lock");
            st.closed = true;
            inbox.cond.notify_all();
        }
        {
            let mut slot = self.cache_slot.lock().expect("cache slot lock");
            slot.closed = true;
            self.cache_cond.notify_all();
        }
        self.detach_cond.notify_all();
    }
}

/// A session attached to a remote coordinator service.
pub struct AttachedClient {
    ns: u64,
    shared: Arc<Shared>,
}

impl AttachedClient {
    /// Connects and performs the attach handshake. Returns the typed
    /// [`FedError::SessionRejected`] when the server is at capacity.
    pub fn connect(addr: &str) -> Result<Arc<Self>> {
        let mut ch = TcpChannel::connect(addr)
            .map_err(|e| FedError::Network(format!("attach {addr}: {e}")))?;
        ch.send(
            &ClientFrame::Attach {
                magic: ATTACH_MAGIC,
                version: ATTACH_VERSION,
            }
            .to_bytes(),
        )
        .map_err(FedError::from)?;
        let reply = ch.recv().map_err(FedError::from)?;
        let (ns, n_workers) = match ServerFrame::from_bytes(&reply)? {
            ServerFrame::Granted { ns, n_workers } => (ns, n_workers as usize),
            ServerFrame::Rejected { active, max } => {
                return Err(FedError::SessionRejected {
                    active: active as usize,
                    max: max as usize,
                })
            }
            other => {
                return Err(FedError::Protocol(format!(
                    "unexpected attach reply {other:?}"
                )))
            }
        };
        let (tx, rx) = match Box::new(ch).split() {
            SplitResult::Split(tx, rx) => (tx, rx),
            SplitResult::Whole(_) => {
                return Err(FedError::Protocol("attach channel must split".into()))
            }
        };
        let shared = Arc::new(Shared {
            tx: Arc::new(Mutex::new(tx)),
            inboxes: (0..n_workers).map(|_| Inbox::new()).collect(),
            cache_lock: Mutex::new(()),
            cache_slot: Mutex::new(CacheSlot::default()),
            cache_cond: Condvar::new(),
            detached: Mutex::new(false),
            detach_cond: Condvar::new(),
        });
        let reader = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("exdra-attach-reader".into())
            .spawn(move || reader.run_reader(rx))
            .expect("spawn attach reader thread");
        Ok(Arc::new(Self { ns, shared }))
    }

    /// The namespace the server granted this session.
    pub fn namespace(&self) -> u64 {
        self.ns
    }

    /// Fleet size behind the server.
    pub fn num_workers(&self) -> usize {
        self.shared.inboxes.len()
    }

    /// One tunnel [`Channel`] per worker, for `FedContext::from_channels`.
    pub fn tunnels(self: &Arc<Self>) -> Vec<Box<dyn Channel>> {
        (0..self.shared.inboxes.len())
            .map(|w| {
                Box::new(TunnelChannel {
                    worker: w as u32,
                    tx: Arc::clone(&self.shared.tx),
                    inbox: Arc::clone(&self.shared.inboxes[w]),
                }) as Box<dyn Channel>
            })
            .collect()
    }

    /// Probes the server's shared plan cache.
    pub fn cache_probe(&self, key: u64) -> Result<Option<CachedEntry>> {
        let shared = &self.shared;
        let _serial = shared.cache_lock.lock().expect("cache probe lock");
        {
            let mut slot = shared.cache_slot.lock().expect("cache slot lock");
            slot.reply = None;
        }
        shared.send(&ClientFrame::CacheProbe { key })?;
        let mut slot = shared.cache_slot.lock().expect("cache slot lock");
        while slot.reply.is_none() && !slot.closed {
            slot = shared.cache_cond.wait(slot).expect("cache slot lock");
        }
        match slot.reply.take() {
            Some(ServerFrame::CacheHit {
                privacy,
                releasable,
                value,
            }) => Ok(Some(CachedEntry {
                value: Arc::new(value),
                privacy,
                releasable,
            })),
            Some(ServerFrame::CacheMiss) => Ok(None),
            _ => Err(FedError::Network("attach connection lost".into())),
        }
    }

    /// Publishes a computed plan result into the shared cache
    /// (fire-and-forget).
    pub fn cache_put(&self, key: u64, entry: &CachedEntry) -> Result<()> {
        self.shared.send(&ClientFrame::CachePut {
            key,
            privacy: entry.privacy,
            releasable: entry.releasable,
            value: (*entry.value).clone(),
        })
    }

    /// Asks the service to recover worker `w` (after this session
    /// observed it dead), then waits up to `timeout` for the server's
    /// `WorkerUp`.
    pub fn recover(&self, w: usize, timeout: Duration) -> Result<()> {
        self.shared
            .send(&ClientFrame::Recover { worker: w as u32 })?;
        if self.wait_worker_up(w, timeout) {
            Ok(())
        } else {
            Err(FedError::WorkerDead {
                worker: w,
                msg: "server could not recover the worker in time".into(),
            })
        }
    }

    /// Waits until the server reports worker `w` serviceable.
    pub fn wait_worker_up(&self, w: usize, timeout: Duration) -> bool {
        let Some(inbox) = self.shared.inboxes.get(w) else {
            return false;
        };
        let deadline = Instant::now() + timeout;
        let mut st = inbox.state.lock().expect("inbox lock");
        while st.down && !st.closed {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            st = inbox
                .cond
                .wait_timeout(st, deadline - now)
                .expect("inbox lock")
                .0;
        }
        !st.closed
    }

    /// Detaches cleanly: the server reaps this session's namespace and
    /// acknowledges. Idempotent; also invoked on drop.
    pub fn detach(&self) {
        self.shared.detach();
    }
}

impl Drop for AttachedClient {
    fn drop(&mut self) {
        self.shared.detach();
    }
}

/// A per-worker [`Channel`] whose frames travel over the shared attach
/// socket. Send writes a tagged `Data` frame; receive pops this
/// worker's inbox. While the server reports the worker down, both fail
/// fast with `BrokenPipe` so the context's retry/recovery machinery
/// engages exactly as for a direct connection collapse.
pub struct TunnelChannel {
    worker: u32,
    tx: SharedTx,
    inbox: Arc<Inbox>,
}

impl Channel for TunnelChannel {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        {
            let st = self.inbox.state.lock().expect("inbox lock");
            if st.closed {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "attach connection closed",
                ));
            }
            if st.down {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "worker down (server notification)",
                ));
            }
        }
        self.tx.lock().expect("attach socket lock").send(
            &ClientFrame::Data {
                worker: self.worker,
                payload: payload.to_vec(),
            }
            .to_bytes(),
        )
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        let mut st = self.inbox.state.lock().expect("inbox lock");
        loop {
            if let Some(frame) = st.frames.pop_front() {
                return Ok(frame);
            }
            if st.closed {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "attach connection closed",
                ));
            }
            if st.down {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "worker down (server notification)",
                ));
            }
            st = self.inbox.cond.wait(st).expect("inbox lock");
        }
    }

    fn split(self: Box<Self>) -> SplitResult {
        let tx_half = TunnelSendHalf {
            worker: self.worker,
            tx: Arc::clone(&self.tx),
            inbox: Arc::clone(&self.inbox),
        };
        let rx_half = TunnelRecvHalf { inbox: self.inbox };
        SplitResult::Split(Box::new(tx_half), Box::new(rx_half))
    }
}

struct TunnelSendHalf {
    worker: u32,
    tx: SharedTx,
    inbox: Arc<Inbox>,
}

impl SendHalf for TunnelSendHalf {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        let mut ch = TunnelChannel {
            worker: self.worker,
            tx: Arc::clone(&self.tx),
            inbox: Arc::clone(&self.inbox),
        };
        ch.send(payload)
    }
}

struct TunnelRecvHalf {
    inbox: Arc<Inbox>,
}

impl exdra_net::transport::RecvHalf for TunnelRecvHalf {
    fn recv(&mut self) -> io::Result<Vec<u8>> {
        let mut st = self.inbox.state.lock().expect("inbox lock");
        loop {
            if let Some(frame) = st.frames.pop_front() {
                return Ok(frame);
            }
            if st.closed || st.down {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "attach tunnel unavailable",
                ));
            }
            st = self.inbox.cond.wait(st).expect("inbox lock");
        }
    }
}
