//! The multi-tenant coordinator as a deployable daemon: one shared
//! worker fleet, many attached sessions, and an operator-facing HTTP
//! ops endpoint.
//!
//! ```text
//! exdra-coordd --workers host:8001,host:8002 \
//!              [--attach 127.0.0.1:8101] [--ops 127.0.0.1:8102] \
//!              [--max-sessions 64] [--incidents-dir results/incidents]
//! ```
//!
//! Clients attach with `Session::attach("host:8101")`. `--mem-workers N`
//! stands up an in-process fleet instead of TCP workers — useful for
//! smoke tests and local exploration without separate worker processes.

use std::sync::Arc;

use exdra_coord::{CoordConfig, CoordServer, CoordService, FleetSource, OpsServer};
use exdra_core::coordinator::WorkerEndpoint;
use exdra_core::error::Result;
use exdra_core::worker::{Worker, WorkerConfig};
use exdra_net::transport::Channel;

struct Args {
    workers: Vec<String>,
    mem_workers: usize,
    attach: String,
    ops: Option<String>,
    max_sessions: usize,
    incidents_dir: Option<String>,
    metrics: bool,
}

fn parse_args() -> std::result::Result<Args, String> {
    let mut args = Args {
        workers: Vec::new(),
        mem_workers: 0,
        attach: "127.0.0.1:8101".into(),
        ops: None,
        max_sessions: 64,
        incidents_dir: None,
        metrics: true,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0usize;
    while i < argv.len() {
        let flag = argv[i].clone();
        let mut value = || -> std::result::Result<String, String> {
            i += 1;
            argv.get(i)
                .cloned()
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--workers" => {
                args.workers = value()?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect()
            }
            "--mem-workers" => {
                args.mem_workers = value()?
                    .parse()
                    .map_err(|e| format!("--mem-workers: {e}"))?
            }
            "--attach" => args.attach = value()?,
            "--ops" => args.ops = Some(value()?),
            "--max-sessions" => {
                args.max_sessions = value()?
                    .parse()
                    .map_err(|e| format!("--max-sessions: {e}"))?
            }
            "--incidents-dir" => args.incidents_dir = Some(value()?),
            "--no-metrics" => args.metrics = false,
            "--help" | "-h" => {
                println!(
                    "exdra-coordd: multi-tenant coordinator service\n\n\
                     --workers A,B,..    TCP worker endpoints of the fleet\n\
                     --mem-workers N     in-process fleet instead (smoke/local)\n\
                     --attach ADDR       session attach endpoint (default 127.0.0.1:8101)\n\
                     --ops ADDR          HTTP ops endpoint (/healthz /metrics /sessions /incidents)\n\
                     --max-sessions N    admission limit (default 64)\n\
                     --incidents-dir D   flight-recorder bundle directory\n\
                     --no-metrics        leave runtime instrumentation disabled"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other} (see --help)")),
        }
        i += 1;
    }
    if args.workers.is_empty() && args.mem_workers == 0 {
        return Err("need --workers or --mem-workers (see --help)".into());
    }
    if !args.workers.is_empty() && args.mem_workers > 0 {
        return Err("--workers and --mem-workers are mutually exclusive".into());
    }
    Ok(args)
}

fn fleet_source(args: &Args) -> FleetSource {
    if args.mem_workers > 0 {
        let fleet: Arc<Vec<Arc<Worker>>> = Arc::new(
            (0..args.mem_workers)
                .map(|_| Worker::new(WorkerConfig::default()))
                .collect(),
        );
        let n_workers = fleet.len();
        FleetSource::Factory {
            n_workers,
            factory: Arc::new(move |w| -> Result<Box<dyn Channel>> {
                Ok(Box::new(fleet[w].serve_mem()))
            }),
        }
    } else {
        FleetSource::Tcp(
            args.workers
                .iter()
                .map(|addr| WorkerEndpoint::tcp(addr.clone()))
                .collect(),
        )
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("exdra-coordd: {e}");
            std::process::exit(2);
        }
    };
    if args.metrics {
        // The ops endpoint exports the process-global registry and the
        // flight recorder's incident log; both record only when their
        // enabled flags are on.
        exdra_obs::set_enabled(true);
        exdra_obs::recorder::set_enabled(true);
    }
    if let Some(dir) = &args.incidents_dir {
        exdra_obs::recorder::set_output_dir(dir);
    }
    let config = CoordConfig {
        max_sessions: args.max_sessions,
        ..CoordConfig::default()
    };
    let service = match CoordService::start(fleet_source(&args), config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("exdra-coordd: cannot start service: {e}");
            std::process::exit(1);
        }
    };
    let server = match CoordServer::serve(Arc::clone(&service), &args.attach) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("exdra-coordd: cannot bind --attach {}: {e}", args.attach);
            std::process::exit(1);
        }
    };
    if args.metrics {
        // Startup marker: guarantees the registry is non-empty from the
        // first /metrics scrape, before any RPC traffic flows.
        exdra_obs::global().inc("coordd.starts");
    }
    println!(
        "exdra-coordd attach endpoint on {} ({} workers, max {} sessions)",
        server.addr(),
        service.num_workers(),
        args.max_sessions
    );
    let _ops = args.ops.as_ref().map(|addr| {
        match OpsServer::serve(Arc::clone(&service), addr) {
            Ok(o) => {
                println!(
                    "exdra-coordd ops endpoint on http://{} (/healthz /metrics /sessions /incidents)",
                    o.addr()
                );
                o
            }
            Err(e) => {
                eprintln!("exdra-coordd: cannot bind --ops {addr}: {e}");
                std::process::exit(1);
            }
        }
    });
    // Standing server: serve until the process is terminated.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
