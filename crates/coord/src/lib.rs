//! Multi-tenant coordinator service: many concurrent sessions sharing
//! one federated worker fleet.
//!
//! ExDRa frames exploratory data science as *many analysts* iterating
//! against shared federated raw data (paper §2), but a plain
//! [`exdra_core::FedContext`] dedicates the whole fleet to one session.
//! This crate turns the coordinator into a long-lived service:
//!
//! * **Namespace isolation** — every admitted session receives a symbol
//!   namespace and allocates IDs from `(ns << NS_SHIFT) | 1` upward, so
//!   concurrent sessions draw from disjoint ID ranges. The workers'
//!   existing `Touched` read/write conflict model then guarantees two
//!   sessions can never alias each other's state; teardown is a single
//!   `CLEAR_NS` broadcast.
//! * **Shared plan cache** — one byte-budgeted, lineage-keyed
//!   [`exdra_core::lineage::LineageCache`] spans all sessions, so a plan
//!   one analyst already computed is a cache hit for the next; hits and
//!   misses are attributed per session.
//! * **Fair scheduling + admission control** — a per-session credit
//!   budget over the pipelined RPC windows ([`FairScheduler`]) keeps one
//!   heavy session from starving others, and a bounded admission queue
//!   rejects overload with the typed
//!   [`exdra_core::FedError::SessionRejected`].
//! * **Shared supervision** — exactly one supervisor owns the fleet's
//!   heartbeat/checkpoint streams; a replacement worker is restored from
//!   checkpoints spanning *every* namespace, then each session repairs
//!   its own connection.
//!
//! Sessions attach in process via [`CoordService::open_session`] or over
//! TCP via [`CoordServer`] + [`AttachedClient`] (the `Session::attach`
//! path in `exdra-api`).
//!
//! The service also exposes an operator-facing HTTP endpoint
//! ([`OpsServer`]): `/healthz`, `/metrics` (Prometheus, including
//! per-tenant `tenant.<ns>.*` series), `/sessions` (live session
//! table), and `/incidents` (flight-recorder bundles).

#![warn(missing_docs)]

mod client;
mod ops;
mod scheduler;
mod server;
mod service;
mod wire;

pub use client::{AttachedClient, TunnelChannel};
pub use ops::{sessions_json, OpsServer};
pub use scheduler::{FairScheduler, FairnessConfig, TenantGate};
pub use server::CoordServer;
pub use service::{
    ChannelFactory, CoordConfig, CoordService, FleetSource, SessionInfo, Tenant, TenantStats,
};
