//! HTTP ops endpoint of a [`CoordService`]: the operator-facing view of
//! a running multi-tenant coordinator.
//!
//! Four routes, all read-only:
//!
//! - `GET /healthz` — liveness probe with active-session and fleet
//!   counts;
//! - `GET /metrics` — the process-global `exdra-obs` registry in
//!   Prometheus text exposition format (per-tenant `tenant.<ns>.*`
//!   latency/queue-wait/credit-wait series included);
//! - `GET /sessions` — the live session table as JSON: namespace, kind
//!   (in-process tenant vs remote attach), admission time, and
//!   per-session shared-cache attribution;
//! - `GET /incidents` — recent flight-recorder incidents (kind, detail,
//!   time, bundle path) as JSON.
//!
//! Like the worker's endpoint, this is deliberately tiny: one accept
//! thread, one request per connection, no keep-alive — it serves probes
//! and scrapers, not application traffic.

use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use exdra_core::error::{FedError, Result};
use exdra_obs::export::json_escape_into;

use crate::service::{CoordService, SessionInfo};

/// A running ops endpoint (see module docs). Stops when dropped.
pub struct OpsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl OpsServer {
    /// Binds `addr` (port 0 for ephemeral) and starts serving the ops
    /// routes for `service` on a background thread.
    pub fn serve(service: Arc<CoordService>, addr: &str) -> Result<OpsServer> {
        let listener = std::net::TcpListener::bind(addr)
            .map_err(|e| FedError::Network(format!("bind {addr}: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| FedError::Network(e.to_string()))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_shutdown = Arc::clone(&shutdown);
        std::thread::Builder::new()
            .name("exdra-coord-ops".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    let Ok(mut stream) = stream else { return };
                    let service = Arc::clone(&service);
                    std::thread::spawn(move || {
                        let _ = serve_once(&service, &mut stream);
                    });
                }
            })
            .expect("spawn coord ops thread");
        Ok(OpsServer {
            addr: local,
            shutdown,
        })
    }

    /// The bound address of the endpoint.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting requests. Idempotent; called on drop.
    pub fn stop(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = std::net::TcpStream::connect(self.addr);
    }
}

impl Drop for OpsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Renders the live session table as a JSON array.
pub fn sessions_json(sessions: &[SessionInfo]) -> String {
    let mut out = String::from("[");
    for (i, s) in sessions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"ns\":{},\"kind\":", s.ns));
        json_escape_into(&mut out, s.kind);
        out.push_str(&format!(
            ",\"opened_unix_ms\":{},\"cache_hits\":{},\"cache_misses\":{}}}",
            s.opened_unix_ms,
            s.stats.cache_hits.load(Ordering::Relaxed),
            s.stats.cache_misses.load(Ordering::Relaxed)
        ));
    }
    out.push(']');
    out
}

fn serve_once(service: &Arc<CoordService>, stream: &mut std::net::TcpStream) -> io::Result<()> {
    use std::io::{BufRead, BufReader, Write};
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut line = String::new();
    BufReader::new(&mut *stream).read_line(&mut line)?;
    let path = line.split_whitespace().nth(1).unwrap_or("");
    let (status, content_type, body) = match path {
        "/healthz" => (
            "200 OK",
            "text/plain; charset=utf-8",
            format!(
                "ok sessions={} workers={} inflight={}\n",
                service.active_sessions(),
                service.num_workers(),
                service.scheduler().inflight()
            ),
        ),
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            exdra_obs::export::to_prometheus(&exdra_obs::global().snapshot()),
        ),
        "/sessions" => (
            "200 OK",
            "application/json",
            sessions_json(&service.sessions()),
        ),
        "/incidents" => (
            "200 OK",
            "application/json",
            exdra_obs::recorder::incidents_json(),
        ),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".into(),
        ),
    };
    write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use exdra_obs::export::Json;

    #[test]
    fn sessions_json_renders_and_parses() {
        let stats = Arc::new(crate::service::TenantStats::default());
        stats.record_probe(true);
        stats.record_probe(false);
        let rows = vec![
            SessionInfo {
                ns: 1,
                kind: "tenant",
                opened_unix_ms: 42,
                stats: Arc::clone(&stats),
            },
            SessionInfo {
                ns: 2,
                kind: "remote",
                opened_unix_ms: 43,
                stats,
            },
        ];
        let doc = Json::parse(&sessions_json(&rows)).expect("valid json");
        let Json::Arr(items) = doc else {
            panic!("array expected")
        };
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].get("ns").and_then(Json::as_f64), Some(1.0));
        assert_eq!(items[1].get("kind").and_then(Json::as_str), Some("remote"));
        assert_eq!(items[0].get("cache_hits").and_then(Json::as_f64), Some(1.0));
        assert!(Json::parse(&sessions_json(&[])).is_ok());
    }
}
