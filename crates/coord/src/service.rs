//! The coordinator service: session admission, namespace allocation,
//! the shared plan cache, and fleet-wide supervision.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use parking_lot::Mutex;
// Admission queueing needs a condition variable, which the vendored
// parking_lot compatibility crate does not provide.
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex};

use exdra_core::coordinator::{FedContext, WorkerEndpoint};
use exdra_core::error::{FedError, Result};
use exdra_core::lineage::{CacheScope, LineageCache};
use exdra_core::protocol::Request;
use exdra_core::supervision::{SupervisionPolicy, Supervisor};
use exdra_net::transport::Channel;
use exdra_obs as obs;

use crate::scheduler::{FairScheduler, FairnessConfig, TenantGate};

/// Builds a fresh channel to worker `w` (used for per-session
/// connections and for supervisor reconnection after a worker restart).
pub type ChannelFactory = Arc<dyn Fn(usize) -> Result<Box<dyn Channel>> + Send + Sync>;

/// What a remote attach handshake yields: the allocated namespace, one
/// fresh channel per worker, and the session's stats handle.
pub(crate) type RawSession = (u64, Vec<Box<dyn Channel>>, Arc<TenantStats>);

/// How the service reaches its worker fleet.
#[derive(Clone)]
pub enum FleetSource {
    /// Standing TCP workers; every session gets its own connections.
    Tcp(Vec<WorkerEndpoint>),
    /// A channel factory (in-process or custom transports). The factory
    /// is consulted for every new session connection *and* by the
    /// supervisor when it reconnects a replaced worker, so tests swap in
    /// a replacement worker by swapping the factory
    /// ([`CoordService::set_channel_factory`]).
    Factory {
        /// Fleet size.
        n_workers: usize,
        /// Connection builder.
        factory: ChannelFactory,
    },
}

/// Tunables of a [`CoordService`].
#[derive(Clone)]
pub struct CoordConfig {
    /// Maximum concurrently admitted sessions.
    pub max_sessions: usize,
    /// How many session requests may queue for admission once
    /// `max_sessions` are active; beyond this the service answers with
    /// the typed [`FedError::SessionRejected`]. `0` rejects immediately.
    pub admission_queue: usize,
    /// Byte budget of the shared cross-session plan cache.
    pub plan_cache_bytes: usize,
    /// Per-tenant / global in-flight request limits.
    pub fairness: FairnessConfig,
    /// Supervision (heartbeat + checkpoint) policy for the fleet.
    pub supervision: SupervisionPolicy,
    /// RPC pipelining window handed to every session context.
    pub rpc_window: usize,
}

impl Default for CoordConfig {
    fn default() -> Self {
        Self {
            max_sessions: 64,
            admission_queue: 16,
            plan_cache_bytes: 256 * 1024 * 1024,
            fairness: FairnessConfig::default(),
            supervision: SupervisionPolicy::default(),
            rpc_window: 8,
        }
    }
}

/// Per-session counters (cache attribution and RPC accounting).
#[derive(Debug, Default)]
pub struct TenantStats {
    /// Shared-plan-cache hits attributed to this session.
    pub cache_hits: AtomicU64,
    /// Shared-plan-cache misses attributed to this session.
    pub cache_misses: AtomicU64,
}

impl TenantStats {
    /// Records one shared-cache probe outcome.
    pub fn record_probe(&self, hit: bool) {
        if hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// One row of the live session table (the `/sessions` ops endpoint).
#[derive(Debug, Clone)]
pub struct SessionInfo {
    /// The session's symbol namespace.
    pub ns: u64,
    /// `"tenant"` for in-process sessions, `"remote"` for TCP attaches.
    pub kind: &'static str,
    /// Wall-clock admission time, milliseconds since the unix epoch.
    pub opened_unix_ms: u64,
    /// The session's live counters (shared with the session itself).
    pub stats: Arc<TenantStats>,
}

fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

#[derive(Default)]
struct AdmitState {
    active: usize,
    waiting: usize,
}

/// A long-lived multi-tenant coordinator over one worker fleet.
///
/// Owns the only [`Supervisor`] of the fleet (heartbeats, incremental
/// checkpoints, recovery), the shared plan cache, the fair scheduler,
/// and the admission queue. Sessions join in process through
/// [`CoordService::open_session`] or remotely through
/// [`crate::CoordServer`].
pub struct CoordService {
    fleet: FleetSource,
    config: CoordConfig,
    /// Service-level context: supervision traffic and namespace teardown
    /// broadcasts travel here, never on tenant connections.
    ctx: Arc<FedContext>,
    supervisor: Arc<Supervisor>,
    sup_handle: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Shared cross-session plan cache (lineage-keyed).
    plan_cache: Arc<LineageCache>,
    scheduler: Arc<FairScheduler>,
    admit: StdMutex<AdmitState>,
    admit_cond: StdCondvar,
    next_ns: AtomicU64,
    /// Replaceable factory for Factory fleets (tests swap in replacement
    /// workers here).
    factory: Mutex<Option<ChannelFactory>>,
    /// Serializes worker recovery across tenants so one restart is
    /// restored once, not once per session that noticed.
    recovery: Mutex<()>,
    /// Live session table keyed by namespace (the `/sessions` endpoint).
    sessions: Mutex<BTreeMap<u64, SessionInfo>>,
    shutdown: AtomicBool,
}

impl CoordService {
    /// Starts a service over `fleet` and spawns its supervision loop.
    pub fn start(fleet: FleetSource, config: CoordConfig) -> Result<Arc<Self>> {
        let (ctx, factory) = match &fleet {
            FleetSource::Tcp(eps) => (FedContext::connect(eps)?, None),
            FleetSource::Factory { n_workers, factory } => {
                let channels = (0..*n_workers)
                    .map(|w| factory(w))
                    .collect::<Result<Vec<_>>>()?;
                (
                    FedContext::from_channels(channels)?,
                    Some(Arc::clone(factory)),
                )
            }
        };
        let supervisor = Supervisor::new(Arc::clone(&ctx), config.supervision);
        let plan_cache = Arc::new(LineageCache::new_scoped(
            config.plan_cache_bytes,
            true,
            CacheScope::Coordinator,
        ));
        let scheduler = FairScheduler::new(config.fairness);
        let service = Arc::new(Self {
            fleet,
            config,
            ctx,
            supervisor,
            sup_handle: Mutex::new(None),
            plan_cache,
            scheduler,
            admit: StdMutex::new(AdmitState::default()),
            admit_cond: StdCondvar::new(),
            next_ns: AtomicU64::new(1), // 0 = service/legacy namespace
            factory: Mutex::new(factory),
            recovery: Mutex::new(()),
            sessions: Mutex::new(BTreeMap::new()),
            shutdown: AtomicBool::new(false),
        });
        if service.factory.lock().is_some() {
            let weak = Arc::downgrade(&service);
            service.supervisor.set_reconnector(Box::new(move |w| {
                let service = weak.upgrade()?;
                let factory = service.factory.lock().clone()?;
                factory(w).ok()
            }));
        }
        *service.sup_handle.lock() = Some(service.supervisor.run());
        Ok(service)
    }

    /// Replaces the channel factory of a Factory fleet (the supervisor
    /// and all future session connections use the new one). Tests use
    /// this to stand in a replacement worker after killing one.
    pub fn set_channel_factory(&self, factory: ChannelFactory) {
        *self.factory.lock() = Some(factory);
    }

    /// The shared cross-session plan cache.
    pub fn plan_cache(&self) -> &Arc<LineageCache> {
        &self.plan_cache
    }

    /// The fair scheduler gating all tenant RPC traffic.
    pub fn scheduler(&self) -> &Arc<FairScheduler> {
        &self.scheduler
    }

    /// The fleet supervisor (one per service — see struct docs).
    pub fn supervisor(&self) -> &Arc<Supervisor> {
        &self.supervisor
    }

    /// The service-level context (supervision + teardown traffic).
    pub fn context(&self) -> &Arc<FedContext> {
        &self.ctx
    }

    /// Number of workers in the fleet.
    pub fn num_workers(&self) -> usize {
        self.ctx.num_workers()
    }

    /// Currently admitted sessions.
    pub fn active_sessions(&self) -> usize {
        self.admit.lock().expect("admission lock").active
    }

    fn admit_one(&self) -> Result<()> {
        let mut st = self.admit.lock().expect("admission lock");
        if st.active < self.config.max_sessions {
            st.active += 1;
            return Ok(());
        }
        if st.waiting >= self.config.admission_queue {
            obs::global().inc("coord.sessions.rejected");
            if obs::recorder::enabled() {
                obs::recorder::incident(
                    "session_rejected",
                    &format!(
                        "admission queue full: {} active / {} max, {} waiting",
                        st.active, self.config.max_sessions, st.waiting
                    ),
                );
            }
            return Err(FedError::SessionRejected {
                active: st.active,
                max: self.config.max_sessions,
            });
        }
        st.waiting += 1;
        while st.active >= self.config.max_sessions && !self.shutdown.load(Ordering::SeqCst) {
            st = self.admit_cond.wait(st).expect("admission lock");
        }
        st.waiting -= 1;
        if self.shutdown.load(Ordering::SeqCst) {
            return Err(FedError::SessionRejected {
                active: st.active,
                max: self.config.max_sessions,
            });
        }
        st.active += 1;
        Ok(())
    }

    fn release_slot(&self) {
        let mut st = self.admit.lock().expect("admission lock");
        st.active = st.active.saturating_sub(1);
        drop(st);
        self.admit_cond.notify_one();
    }

    fn make_channel(&self, w: usize) -> Result<Box<dyn Channel>> {
        match &self.fleet {
            FleetSource::Tcp(_) => self.ctx.connect_extra(w),
            FleetSource::Factory { .. } => {
                let factory = self.factory.lock().clone().ok_or_else(|| {
                    FedError::Invalid("factory fleet without a channel factory".into())
                })?;
                factory(w)
            }
        }
    }

    /// Admits a new in-process session: allocates a namespace, opens
    /// per-session connections to every worker, and installs the fair-
    /// scheduler gate. Returns [`FedError::SessionRejected`] when the
    /// admission queue is full.
    pub fn open_session(self: &Arc<Self>) -> Result<Arc<Tenant>> {
        self.admit_one()?;
        match self.open_admitted() {
            Ok(t) => Ok(t),
            Err(e) => {
                self.release_slot();
                Err(e)
            }
        }
    }

    fn open_admitted(self: &Arc<Self>) -> Result<Arc<Tenant>> {
        let ns = self.next_ns.fetch_add(1, Ordering::Relaxed);
        let ctx = match &self.fleet {
            // Tenant contexts over TCP keep their endpoints so plain RPC
            // retries can reconnect without service involvement.
            FleetSource::Tcp(eps) => FedContext::connect(eps)?,
            FleetSource::Factory { .. } => {
                let channels = (0..self.num_workers())
                    .map(|w| self.make_channel(w))
                    .collect::<Result<Vec<_>>>()?;
                FedContext::from_channels(channels)?
            }
        };
        ctx.set_namespace(ns);
        ctx.set_rpc_window(self.config.rpc_window);
        ctx.set_rpc_gate(Some(TenantGate::new(Arc::clone(&self.scheduler), ns)));
        obs::global().inc("coord.sessions.admitted");
        let stats = Arc::new(TenantStats::default());
        self.register_session(ns, "tenant", &stats);
        Ok(Arc::new(Tenant {
            ns,
            ctx,
            stats,
            service: Arc::clone(self),
            closed: AtomicBool::new(false),
        }))
    }

    fn register_session(&self, ns: u64, kind: &'static str, stats: &Arc<TenantStats>) {
        self.sessions.lock().insert(
            ns,
            SessionInfo {
                ns,
                kind,
                opened_unix_ms: unix_ms(),
                stats: Arc::clone(stats),
            },
        );
        if obs::recorder::enabled() {
            obs::recorder::event("coord", format!("session ns={ns} admitted ({kind})"));
        }
    }

    /// A snapshot of the live session table, namespace-ordered.
    pub fn sessions(&self) -> Vec<SessionInfo> {
        self.sessions.lock().values().cloned().collect()
    }

    /// Allocates a namespace + per-worker channels for a *remote*
    /// session (the TCP attach path, where the client runs its own
    /// context over tunneled channels). Same admission control as
    /// [`CoordService::open_session`].
    pub(crate) fn open_session_raw(self: &Arc<Self>) -> Result<RawSession> {
        self.admit_one()?;
        let ns = self.next_ns.fetch_add(1, Ordering::Relaxed);
        let channels = match (0..self.num_workers())
            .map(|w| self.make_channel(w))
            .collect::<Result<Vec<_>>>()
        {
            Ok(chs) => chs,
            Err(e) => {
                self.release_slot();
                return Err(e);
            }
        };
        obs::global().inc("coord.sessions.admitted");
        let stats = Arc::new(TenantStats::default());
        self.register_session(ns, "remote", &stats);
        Ok((ns, channels, stats))
    }

    /// Rebuilds one worker channel for a remote session (after the
    /// supervisor replaced the worker).
    pub(crate) fn remake_channel(&self, w: usize) -> Result<Box<dyn Channel>> {
        self.make_channel(w)
    }

    /// Reaps namespace `ns` on every worker and frees its admission
    /// slot. Broadcast on the service's own connections, so it works
    /// even when the departing session's channels are dead.
    pub(crate) fn close_namespace(&self, ns: u64) {
        for w in 0..self.num_workers() {
            let _ = self.ctx.call(w, &[Request::ClearNamespace { ns }]);
        }
        self.scheduler.forget_tenant(ns);
        self.sessions.lock().remove(&ns);
        self.release_slot();
        obs::global().inc("coord.sessions.closed");
        if obs::recorder::enabled() {
            obs::recorder::event("coord", format!("session ns={ns} closed"));
        }
    }

    /// Service-level worker recovery: exactly one tenant drives the
    /// supervisor (restore covers *every* namespace, because checkpoints
    /// span the whole symbol table); the rest observe the held mutex and
    /// find the worker healthy again. Callers then repair their own
    /// session connection to the replacement worker.
    pub fn recover_worker(&self, w: usize) -> Result<()> {
        let _guard = self.recovery.lock();
        // The reporting tenant saw a failure the background heartbeat
        // may not have caught yet: while the detector still claims
        // Healthy, verify with a direct probe before concluding that
        // nothing needs recovering.
        if self.supervisor.detector().state(w) == exdra_fault::HealthState::Healthy
            && self.ctx.heartbeat(w).is_err()
        {
            self.supervisor.notify_worker_dead(w);
        }
        if self.supervisor.detector().state(w) != exdra_fault::HealthState::Healthy {
            self.supervisor.wait_recoveries();
        }
        Ok(())
    }

    /// Stops the supervision loop. Idempotent; called on drop.
    pub fn stop(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.admit_cond.notify_all();
        self.supervisor.stop();
        if let Some(h) = self.sup_handle.lock().take() {
            let _ = h.join();
        }
    }
}

impl Drop for CoordService {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One admitted in-process session: a namespaced, gated [`FedContext`]
/// plus per-session cache attribution. Dropping (or [`Tenant::close`])
/// reaps the namespace on every worker and frees the admission slot.
pub struct Tenant {
    ns: u64,
    ctx: Arc<FedContext>,
    stats: Arc<TenantStats>,
    service: Arc<CoordService>,
    closed: AtomicBool,
}

impl Tenant {
    /// The session's symbol namespace.
    pub fn namespace(&self) -> u64 {
        self.ns
    }

    /// The session's own federated context (namespaced and gated).
    pub fn context(&self) -> &Arc<FedContext> {
        &self.ctx
    }

    /// Per-session counters.
    pub fn stats(&self) -> &Arc<TenantStats> {
        &self.stats
    }

    /// The owning service.
    pub fn service(&self) -> &Arc<CoordService> {
        &self.service
    }

    /// Recovers worker `w` after this session observed it dead: drives
    /// the shared supervisor (at most once fleet-wide per failure), then
    /// repairs this session's own channel to the replacement.
    pub fn recover_worker(&self, w: usize) -> Result<()> {
        self.service.recover_worker(w)?;
        match &self.service.fleet {
            FleetSource::Tcp(_) => self.ctx.reconnect(w),
            FleetSource::Factory { .. } => {
                let fresh = self.service.remake_channel(w)?;
                self.ctx.replace_channel(w, fresh)
            }
        }
    }

    /// Waits (bounded) for the supervisor's heartbeat to see `w`
    /// healthy, re-checking on every completed supervision sweep rather
    /// than polling wall clock.
    pub fn await_healthy(&self, w: usize, timeout: Duration) -> bool {
        let sup = &self.service.supervisor;
        sup.wait_until(timeout, || {
            sup.detector().state(w) == exdra_fault::HealthState::Healthy
        })
    }

    /// Closes the session: reaps the namespace on every worker and frees
    /// the admission slot. Idempotent.
    pub fn close(&self) {
        if self.closed.swap(true, Ordering::SeqCst) {
            return;
        }
        self.service.close_namespace(self.ns);
    }
}

impl Drop for Tenant {
    fn drop(&mut self) {
        self.close();
    }
}
