//! TCP front door of a [`CoordService`].
//!
//! One socket per attached session carries the handshake, opaque
//! per-worker RPC payloads, shared-cache probes, and worker liveness
//! notices (see [`crate::wire`]). The server never decodes tenant RPC
//! traffic: a `Data` frame is forwarded verbatim to the session's
//! dedicated connection for that worker, and every worker reply is
//! pumped back tagged with its worker index. Fairness is enforced here,
//! at dispatch: each forwarded request takes one credit from the
//! session's [`crate::FairScheduler`] budget, released when its reply
//! (or the worker's death) comes back.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use exdra_core::error::{FedError, Result};
use exdra_core::lineage::CachedEntry;
use exdra_net::codec::Wire;
use exdra_net::transport::{Channel, SendHalf, SplitResult, TcpServer};

use crate::service::CoordService;
use crate::wire::{ClientFrame, ServerFrame, ATTACH_MAGIC, ATTACH_VERSION};

/// A listening coordinator endpoint accepting [`crate::AttachedClient`]
/// sessions for its [`CoordService`].
pub struct CoordServer {
    service: Arc<CoordService>,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl CoordServer {
    /// Binds `addr` (port 0 for ephemeral) and starts accepting
    /// sessions on a background thread.
    pub fn serve(service: Arc<CoordService>, addr: &str) -> Result<Arc<Self>> {
        let listener = TcpServer::bind(addr).map_err(FedError::from)?;
        let local = listener.local_addr().map_err(FedError::from)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_service = Arc::clone(&service);
        let accept_shutdown = Arc::clone(&shutdown);
        std::thread::Builder::new()
            .name("exdra-coord-accept".into())
            .spawn(move || loop {
                match listener.accept() {
                    Ok(ch) => {
                        if accept_shutdown.load(Ordering::SeqCst) {
                            return;
                        }
                        let service = Arc::clone(&accept_service);
                        std::thread::spawn(move || {
                            serve_client(service, Box::new(ch));
                        });
                    }
                    Err(_) => return,
                }
            })
            .expect("spawn coord accept thread");
        Ok(Arc::new(Self {
            service,
            addr: local,
            shutdown,
        }))
    }

    /// The bound address clients attach to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service behind this endpoint.
    pub fn service(&self) -> &Arc<CoordService> {
        &self.service
    }

    /// Stops accepting new sessions (existing sessions keep running).
    pub fn stop(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = std::net::TcpStream::connect(self.addr);
    }
}

impl Drop for CoordServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Dispatch side of one session's dedicated connection to one worker.
struct WorkerLink {
    /// Send half; `None` while the worker is down.
    tx: Mutex<Option<Box<dyn SendHalf>>>,
    /// Requests forwarded but not yet answered (credits to return if
    /// the pump dies).
    outstanding: Arc<AtomicU64>,
}

type SharedTx = Arc<Mutex<Box<dyn SendHalf>>>;

fn send_frame(tx: &SharedTx, frame: &ServerFrame) -> std::io::Result<()> {
    tx.lock().send(&frame.to_bytes())
}

/// Starts the reply pump for one (session, worker) channel: forwards
/// every worker reply to the client, returning one scheduler credit
/// each. On channel death it returns all outstanding credits and
/// notifies the client with `WorkerDown`.
fn spawn_pump(
    service: &Arc<CoordService>,
    ns: u64,
    worker: u32,
    mut rx: Box<dyn exdra_net::transport::RecvHalf>,
    client_tx: SharedTx,
    outstanding: Arc<AtomicU64>,
) {
    let service = Arc::clone(service);
    std::thread::Builder::new()
        .name(format!("exdra-coord-pump-{ns}-{worker}"))
        .spawn(move || loop {
            match rx.recv() {
                Ok(payload) => {
                    // Floor at zero: the connection loop may already have
                    // swept this link's credits during teardown.
                    let swept = outstanding
                        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
                        .is_err();
                    if !swept {
                        service.scheduler().release(ns, 1);
                    }
                    if send_frame(&client_tx, &ServerFrame::Data { worker, payload }).is_err() {
                        return; // client gone; connection loop cleans up
                    }
                }
                Err(_) => {
                    let leaked = outstanding.swap(0, Ordering::SeqCst);
                    service.scheduler().release(ns, leaked);
                    let _ = send_frame(&client_tx, &ServerFrame::WorkerDown { worker });
                    return;
                }
            }
        })
        .expect("spawn coord pump thread");
}

/// Splits a fresh worker channel into a dispatch half + running pump.
fn install_link(
    service: &Arc<CoordService>,
    ns: u64,
    worker: u32,
    channel: Box<dyn Channel>,
    client_tx: &SharedTx,
) -> WorkerLink {
    let outstanding = Arc::new(AtomicU64::new(0));
    match channel.split() {
        SplitResult::Split(tx, rx) => {
            spawn_pump(
                service,
                ns,
                worker,
                rx,
                Arc::clone(client_tx),
                Arc::clone(&outstanding),
            );
            WorkerLink {
                tx: Mutex::new(Some(tx)),
                outstanding,
            }
        }
        SplitResult::Whole(_) => {
            // Every production transport splits; an unsplittable channel
            // cannot pipeline, so treat it as immediately down.
            let _ = send_frame(client_tx, &ServerFrame::WorkerDown { worker });
            WorkerLink {
                tx: Mutex::new(None),
                outstanding,
            }
        }
    }
}

fn serve_client(service: Arc<CoordService>, channel: Box<dyn Channel>) {
    let (client_tx, mut client_rx) = match channel.split() {
        SplitResult::Split(tx, rx) => (Arc::new(Mutex::new(tx)), rx),
        SplitResult::Whole(_) => return,
    };

    // Handshake.
    let Ok(first) = client_rx.recv() else { return };
    match ClientFrame::from_bytes(&first) {
        Ok(ClientFrame::Attach { magic, version })
            if magic == ATTACH_MAGIC && version == ATTACH_VERSION => {}
        _ => return,
    }
    let (ns, channels, stats) = match service.open_session_raw() {
        Ok(granted) => granted,
        Err(FedError::SessionRejected { active, max }) => {
            let _ = send_frame(
                &client_tx,
                &ServerFrame::Rejected {
                    active: active as u64,
                    max: max as u64,
                },
            );
            return;
        }
        Err(_) => return,
    };
    let n_workers = channels.len() as u32;
    let mut links: Vec<WorkerLink> = channels
        .into_iter()
        .enumerate()
        .map(|(w, ch)| install_link(&service, ns, w as u32, ch, &client_tx))
        .collect();
    if send_frame(&client_tx, &ServerFrame::Granted { ns, n_workers }).is_err() {
        service.close_namespace(ns);
        return;
    }

    // Session loop: ends on Detach or client disconnect; either way the
    // namespace is reaped (a killed client must not leak worker state).
    while let Ok(raw) = client_rx.recv() {
        let Ok(frame) = ClientFrame::from_bytes(&raw) else {
            break;
        };
        match frame {
            ClientFrame::Data { worker, payload } => {
                let Some(link) = links.get(worker as usize) else {
                    break;
                };
                let obs_on = exdra_obs::enabled();
                // One span per forwarded frame, parented under the
                // remote client's rpc span (its context leads every
                // envelope, visible through the correlation tag), so
                // stitched traces show the coordinator hop between
                // `rpc.call` and `worker.batch`.
                let mut fwd = if obs_on {
                    exdra_net::framing::peek_trace(&payload).map(|(trace_id, span_id)| {
                        let mut s = exdra_obs::span_child_of(
                            exdra_obs::SpanKind::Other,
                            "coord.forward",
                            exdra_obs::TraceContext { trace_id, span_id },
                        );
                        s.attr("ns", ns);
                        s.attr("worker", worker);
                        s.attr("bytes", payload.len());
                        s
                    })
                } else {
                    None
                };
                let t_credit = obs_on.then(std::time::Instant::now);
                service.scheduler().acquire(ns, 1);
                if let Some(t) = t_credit {
                    let wait = t.elapsed().as_nanos() as u64;
                    let reg = exdra_obs::global();
                    reg.record("coord.credit_wait", wait);
                    reg.record(&format!("tenant.{ns}.credit_wait_nanos"), wait);
                    if let Some(s) = fwd.as_mut() {
                        s.attr("credit_wait_nanos", wait);
                    }
                }
                link.outstanding.fetch_add(1, Ordering::SeqCst);
                let failed = {
                    let mut tx = link.tx.lock();
                    match tx.as_mut() {
                        Some(t) => t.send(&payload).is_err(),
                        None => true,
                    }
                };
                if failed {
                    let swept = link
                        .outstanding
                        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
                        .is_err();
                    if !swept {
                        service.scheduler().release(ns, 1);
                    }
                    *link.tx.lock() = None;
                    let _ = send_frame(&client_tx, &ServerFrame::WorkerDown { worker });
                }
            }
            ClientFrame::CacheProbe { key } => {
                let reply = match service.plan_cache().probe(key) {
                    Some(entry) => {
                        stats.record_probe(true);
                        ServerFrame::CacheHit {
                            privacy: entry.privacy,
                            releasable: entry.releasable,
                            value: (*entry.value).clone(),
                        }
                    }
                    None => {
                        stats.record_probe(false);
                        ServerFrame::CacheMiss
                    }
                };
                if send_frame(&client_tx, &reply).is_err() {
                    break;
                }
            }
            ClientFrame::CachePut {
                key,
                privacy,
                releasable,
                value,
            } => {
                service.plan_cache().insert(
                    key,
                    CachedEntry {
                        value: Arc::new(value),
                        privacy,
                        releasable,
                    },
                );
            }
            ClientFrame::Recover { worker } => {
                let w = worker as usize;
                let up = service.recover_worker(w).is_ok()
                    && match service.remake_channel(w) {
                        Ok(fresh) => {
                            let link = install_link(&service, ns, worker, fresh, &client_tx);
                            links[w] = link;
                            true
                        }
                        Err(_) => false,
                    };
                let note = if up {
                    ServerFrame::WorkerUp { worker }
                } else {
                    ServerFrame::WorkerDown { worker }
                };
                if send_frame(&client_tx, &note).is_err() {
                    break;
                }
            }
            ClientFrame::Detach => {
                service.close_namespace(ns);
                let _ = send_frame(&client_tx, &ServerFrame::DetachAck);
                // Return any credit a dead pump failed to give back.
                for link in &links {
                    let leaked = link.outstanding.swap(0, Ordering::SeqCst);
                    service.scheduler().release(ns, leaked);
                }
                return;
            }
            ClientFrame::Attach { .. } => break, // double handshake
        }
    }
    // Abnormal exit (client killed mid-run): reap the namespace and
    // return leaked credits; other sessions are unaffected.
    for link in &links {
        let leaked = link.outstanding.swap(0, Ordering::SeqCst);
        service.scheduler().release(ns, leaked);
    }
    service.close_namespace(ns);
}
