//! Fair RPC scheduling across tenants.
//!
//! Every data-path RPC a session issues passes through its
//! [`TenantGate`], which draws *credits* (one per in-flight request)
//! from the service-wide [`FairScheduler`]. Two caps bound the system:
//! a per-tenant cap — no session may hold more than
//! [`FairnessConfig::per_tenant_inflight`] credits, so a saturating
//! tenant cannot occupy the fleet — and a global cap bounding total
//! in-flight work. Waiters queue FIFO, but a waiter whose tenant is at
//! its cap never blocks later waiters from other tenants (no
//! head-of-line blocking): admission order is FIFO *among currently
//! admissible waiters*.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
// std Mutex/Condvar (not parking_lot): the vendored parking_lot
// compatibility crate has no condition variables.
use std::sync::{Arc, Condvar, Mutex};

use exdra_core::coordinator::RpcGate;

/// Credit limits of the [`FairScheduler`].
#[derive(Debug, Clone, Copy)]
pub struct FairnessConfig {
    /// Maximum in-flight requests one tenant may hold across the fleet.
    pub per_tenant_inflight: u64,
    /// Maximum total in-flight requests across all tenants.
    pub global_inflight: u64,
}

impl Default for FairnessConfig {
    fn default() -> Self {
        Self {
            per_tenant_inflight: 64,
            global_inflight: 1024,
        }
    }
}

#[derive(Debug)]
struct Waiter {
    ticket: u64,
    tenant: u64,
    requests: u64,
}

#[derive(Debug, Default)]
struct SchedState {
    /// In-flight credits per tenant.
    inflight: HashMap<u64, u64>,
    /// Total in-flight credits.
    total: u64,
    /// FIFO queue of blocked acquisitions.
    waiting: VecDeque<Waiter>,
    next_ticket: u64,
}

impl SchedState {
    fn admissible(&self, cfg: &FairnessConfig, tenant: u64, requests: u64) -> bool {
        let mine = self.inflight.get(&tenant).copied().unwrap_or(0);
        // Oversized batches (> per-tenant cap) would deadlock under a
        // strict check; admit them whenever the tenant is otherwise idle.
        let tenant_ok = mine + requests <= cfg.per_tenant_inflight || mine == 0;
        let global_ok = self.total + requests <= cfg.global_inflight || self.total == 0;
        tenant_ok && global_ok
    }

    fn take(&mut self, tenant: u64, requests: u64) {
        *self.inflight.entry(tenant).or_insert(0) += requests;
        self.total += requests;
    }
}

/// Service-wide credit scheduler (see module docs).
#[derive(Debug)]
pub struct FairScheduler {
    cfg: FairnessConfig,
    state: Mutex<SchedState>,
    cond: Condvar,
    /// Number of acquisitions that had to wait (contention signal).
    waits: AtomicU64,
}

impl FairScheduler {
    /// Creates a scheduler with the given limits.
    pub fn new(cfg: FairnessConfig) -> Arc<Self> {
        Arc::new(Self {
            cfg,
            state: Mutex::new(SchedState::default()),
            cond: Condvar::new(),
            waits: AtomicU64::new(0),
        })
    }

    /// Blocks until `tenant` may put `requests` more requests in flight.
    pub fn acquire(&self, tenant: u64, requests: u64) {
        if requests == 0 {
            return;
        }
        let mut st = self.state.lock().expect("scheduler lock");
        if st.waiting.is_empty() && st.admissible(&self.cfg, tenant, requests) {
            st.take(tenant, requests);
            return;
        }
        self.waits.fetch_add(1, Ordering::Relaxed);
        // Per-tenant queue-wait attribution: only blocked acquisitions
        // are sampled (the uncontended fast path above stays
        // allocation-free), so the histogram answers "when this tenant
        // waited, how long?".
        let t_wait = exdra_obs::enabled().then(std::time::Instant::now);
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.waiting.push_back(Waiter {
            ticket,
            tenant,
            requests,
        });
        loop {
            // FIFO among admissible waiters: go only when no *earlier*
            // waiter could go right now — an earlier waiter whose tenant
            // is capped is skipped, not waited on.
            let me_admissible = st.admissible(&self.cfg, tenant, requests);
            let earlier_admissible = st
                .waiting
                .iter()
                .any(|w| w.ticket < ticket && st.admissible(&self.cfg, w.tenant, w.requests));
            if me_admissible && !earlier_admissible {
                st.waiting.retain(|w| w.ticket != ticket);
                st.take(tenant, requests);
                // Capacity may remain for the next admissible waiter.
                self.cond.notify_all();
                if let Some(t) = t_wait {
                    let nanos = t.elapsed().as_nanos() as u64;
                    let reg = exdra_obs::global();
                    reg.record("coord.queue_wait", nanos);
                    reg.record(&format!("tenant.{tenant}.queue_wait_nanos"), nanos);
                }
                return;
            }
            st = self.cond.wait(st).expect("scheduler lock");
        }
    }

    /// Returns credits taken by a matching [`FairScheduler::acquire`].
    pub fn release(&self, tenant: u64, requests: u64) {
        if requests == 0 {
            return;
        }
        let mut st = self.state.lock().expect("scheduler lock");
        if let Some(mine) = st.inflight.get_mut(&tenant) {
            *mine = mine.saturating_sub(requests);
            if *mine == 0 {
                st.inflight.remove(&tenant);
            }
        }
        st.total = st.total.saturating_sub(requests);
        drop(st);
        self.cond.notify_all();
    }

    /// Drops all bookkeeping for a departed tenant (defensive: a
    /// well-behaved tenant has already released everything).
    pub fn forget_tenant(&self, tenant: u64) {
        let mut st = self.state.lock().expect("scheduler lock");
        if let Some(mine) = st.inflight.remove(&tenant) {
            st.total = st.total.saturating_sub(mine);
        }
        st.waiting.retain(|w| w.tenant != tenant);
        drop(st);
        self.cond.notify_all();
    }

    /// Total in-flight credits right now.
    pub fn inflight(&self) -> u64 {
        self.state.lock().expect("scheduler lock").total
    }

    /// How many acquisitions had to wait for capacity so far.
    pub fn waits(&self) -> u64 {
        self.waits.load(Ordering::Relaxed)
    }

    /// The configured limits.
    pub fn config(&self) -> FairnessConfig {
        self.cfg
    }
}

/// Per-tenant adapter installing a [`FairScheduler`] as a session
/// context's [`RpcGate`].
#[derive(Debug)]
pub struct TenantGate {
    sched: Arc<FairScheduler>,
    tenant: u64,
}

impl TenantGate {
    /// Gate for `tenant` over `sched`.
    pub fn new(sched: Arc<FairScheduler>, tenant: u64) -> Arc<Self> {
        Arc::new(Self { sched, tenant })
    }
}

impl RpcGate for TenantGate {
    fn acquire(&self, _worker: usize, requests: u64) {
        self.sched.acquire(self.tenant, requests);
    }
    fn release(&self, _worker: usize, requests: u64) {
        self.sched.release(self.tenant, requests);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    fn sched(per_tenant: u64, global: u64) -> Arc<FairScheduler> {
        FairScheduler::new(FairnessConfig {
            per_tenant_inflight: per_tenant,
            global_inflight: global,
        })
    }

    #[test]
    fn uncontended_acquire_is_immediate() {
        let s = sched(4, 8);
        s.acquire(1, 4);
        assert_eq!(s.inflight(), 4);
        assert_eq!(s.waits(), 0);
        s.release(1, 4);
        assert_eq!(s.inflight(), 0);
    }

    #[test]
    fn per_tenant_cap_blocks_heavy_tenant_only() {
        let s = sched(2, 100);
        s.acquire(1, 2); // tenant 1 at cap
        let done = Arc::new(AtomicUsize::new(0));
        let (s2, d2) = (Arc::clone(&s), Arc::clone(&done));
        let heavy = std::thread::spawn(move || {
            s2.acquire(1, 1); // must wait
            d2.fetch_add(1, Ordering::SeqCst);
            s2.release(1, 1);
        });
        // A different tenant sails through while tenant 1 is capped.
        s.acquire(2, 2);
        assert_eq!(done.load(Ordering::SeqCst), 0);
        s.release(2, 2);
        s.release(1, 2); // frees tenant 1's cap; heavy proceeds
        heavy.join().unwrap();
        assert_eq!(done.load(Ordering::SeqCst), 1);
        assert_eq!(s.inflight(), 0);
        assert!(s.waits() >= 1);
    }

    #[test]
    fn capped_waiter_does_not_block_later_tenants() {
        let s = sched(2, 100);
        s.acquire(1, 2); // tenant 1 at cap
        let (s2, barrier) = (Arc::clone(&s), Arc::new(std::sync::Barrier::new(2)));
        let b2 = Arc::clone(&barrier);
        let waiter = std::thread::spawn(move || {
            b2.wait();
            s2.acquire(1, 1); // queues behind the cap
            s2.release(1, 1);
        });
        barrier.wait();
        std::thread::sleep(Duration::from_millis(30)); // let it enqueue
                                                       // Tenant 2 arrives later but skips past the capped waiter.
        s.acquire(2, 1);
        s.release(2, 1);
        s.release(1, 2);
        waiter.join().unwrap();
    }

    #[test]
    fn oversized_batch_admitted_when_tenant_idle() {
        let s = sched(2, 4);
        // A batch larger than both caps must not deadlock.
        s.acquire(7, 10);
        assert_eq!(s.inflight(), 10);
        s.release(7, 10);
    }

    #[test]
    fn forget_tenant_frees_leaked_credit() {
        let s = sched(2, 2);
        s.acquire(1, 2);
        s.forget_tenant(1);
        assert_eq!(s.inflight(), 0);
        s.acquire(2, 2); // capacity is back
        s.release(2, 2);
    }
}
