//! Heterogeneous frames: the raw-data container of the federated runtime.
//!
//! A [`Frame`] holds named, typed columns (`f64`, `i64`, string, boolean).
//! Raw federated inputs (CSV files, streaming sinks) are read as frames at
//! the workers and converted to numeric matrices by the feature
//! transformations of `exdra-transform`. Missing values are represented as
//! `None` cells, which encode to NaN when a column is viewed numerically.

use crate::dense::DenseMatrix;
use crate::error::{MatrixError, Result};

/// Value type of a frame column (SystemDS "value types").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// Double-precision float.
    F64,
    /// 64-bit integer.
    I64,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
}

impl ValueType {
    /// Lower-case name used in schemas and metadata files.
    pub fn name(self) -> &'static str {
        match self {
            ValueType::F64 => "f64",
            ValueType::I64 => "i64",
            ValueType::Str => "string",
            ValueType::Bool => "bool",
        }
    }

    /// Parses a schema token.
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "f64" | "double" => Ok(ValueType::F64),
            "i64" | "int" => Ok(ValueType::I64),
            "string" | "str" => Ok(ValueType::Str),
            "bool" | "boolean" => Ok(ValueType::Bool),
            other => Err(MatrixError::Parse {
                line: 0,
                msg: format!("unknown value type '{other}'"),
            }),
        }
    }
}

/// A typed column; `None` cells are missing values.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameColumn {
    /// Float column.
    F64(Vec<Option<f64>>),
    /// Integer column.
    I64(Vec<Option<i64>>),
    /// String column.
    Str(Vec<Option<String>>),
    /// Boolean column.
    Bool(Vec<Option<bool>>),
}

impl FrameColumn {
    /// Number of cells.
    pub fn len(&self) -> usize {
        match self {
            FrameColumn::F64(v) => v.len(),
            FrameColumn::I64(v) => v.len(),
            FrameColumn::Str(v) => v.len(),
            FrameColumn::Bool(v) => v.len(),
        }
    }

    /// True when the column has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value type of the column.
    pub fn value_type(&self) -> ValueType {
        match self {
            FrameColumn::F64(_) => ValueType::F64,
            FrameColumn::I64(_) => ValueType::I64,
            FrameColumn::Str(_) => ValueType::Str,
            FrameColumn::Bool(_) => ValueType::Bool,
        }
    }

    /// True when the cell at `row` is missing.
    pub fn is_missing(&self, row: usize) -> bool {
        match self {
            FrameColumn::F64(v) => v[row].is_none(),
            FrameColumn::I64(v) => v[row].is_none(),
            FrameColumn::Str(v) => v[row].is_none(),
            FrameColumn::Bool(v) => v[row].is_none(),
        }
    }

    /// Number of missing cells.
    pub fn missing_count(&self) -> usize {
        (0..self.len()).filter(|&r| self.is_missing(r)).count()
    }

    /// Numeric view of the cell (missing -> NaN, strings -> error).
    pub fn numeric(&self, row: usize) -> Result<f64> {
        match self {
            FrameColumn::F64(v) => Ok(v[row].unwrap_or(f64::NAN)),
            FrameColumn::I64(v) => Ok(v[row].map_or(f64::NAN, |x| x as f64)),
            FrameColumn::Bool(v) => Ok(v[row].map_or(f64::NAN, |b| if b { 1.0 } else { 0.0 })),
            FrameColumn::Str(_) => Err(MatrixError::TypeMismatch {
                expected: "numeric",
                actual: "string",
            }),
        }
    }

    /// String rendering of the cell; missing cells render as `""`.
    pub fn render(&self, row: usize) -> String {
        match self {
            FrameColumn::F64(v) => v[row].map_or(String::new(), |x| format!("{x}")),
            FrameColumn::I64(v) => v[row].map_or(String::new(), |x| format!("{x}")),
            FrameColumn::Str(v) => v[row].clone().unwrap_or_default(),
            FrameColumn::Bool(v) => v[row].map_or(String::new(), |b| b.to_string()),
        }
    }

    /// Categorical token of the cell for recoding: `None` for missing,
    /// otherwise the canonical string form.
    pub fn token(&self, row: usize) -> Option<String> {
        if self.is_missing(row) {
            None
        } else {
            Some(self.render(row))
        }
    }

    /// Extracts the half-open row range as a new column.
    pub fn slice(&self, lo: usize, hi: usize) -> FrameColumn {
        match self {
            FrameColumn::F64(v) => FrameColumn::F64(v[lo..hi].to_vec()),
            FrameColumn::I64(v) => FrameColumn::I64(v[lo..hi].to_vec()),
            FrameColumn::Str(v) => FrameColumn::Str(v[lo..hi].to_vec()),
            FrameColumn::Bool(v) => FrameColumn::Bool(v[lo..hi].to_vec()),
        }
    }

    /// Appends another column of the same type.
    pub fn append(&mut self, other: &FrameColumn) -> Result<()> {
        match (self, other) {
            (FrameColumn::F64(a), FrameColumn::F64(b)) => a.extend_from_slice(b),
            (FrameColumn::I64(a), FrameColumn::I64(b)) => a.extend_from_slice(b),
            (FrameColumn::Str(a), FrameColumn::Str(b)) => a.extend_from_slice(b),
            (FrameColumn::Bool(a), FrameColumn::Bool(b)) => a.extend_from_slice(b),
            (a, b) => {
                return Err(MatrixError::TypeMismatch {
                    expected: a.value_type().name(),
                    actual: b.value_type().name(),
                })
            }
        }
        Ok(())
    }
}

/// A heterogeneous frame of named, typed columns of equal length.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Frame {
    names: Vec<String>,
    columns: Vec<FrameColumn>,
}

impl Frame {
    /// Creates a frame from `(name, column)` pairs, validating equal lengths
    /// and unique names.
    pub fn new(columns: Vec<(String, FrameColumn)>) -> Result<Self> {
        let mut names = Vec::with_capacity(columns.len());
        let mut cols = Vec::with_capacity(columns.len());
        let mut len: Option<usize> = None;
        for (name, col) in columns {
            if names.contains(&name) {
                return Err(MatrixError::InvalidArgument {
                    op: "Frame::new",
                    msg: format!("duplicate column name '{name}'"),
                });
            }
            match len {
                None => len = Some(col.len()),
                Some(l) if l != col.len() => {
                    return Err(MatrixError::InvalidArgument {
                        op: "Frame::new",
                        msg: format!("column '{name}' has {} rows, expected {l}", col.len()),
                    })
                }
                _ => {}
            }
            names.push(name);
            cols.push(col);
        }
        Ok(Self {
            names,
            columns: cols,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, FrameColumn::len)
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.columns.len()
    }

    /// Column names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Schema as `(name, type)` pairs.
    pub fn schema(&self) -> Vec<(String, ValueType)> {
        self.names
            .iter()
            .zip(&self.columns)
            .map(|(n, c)| (n.clone(), c.value_type()))
            .collect()
    }

    /// Column by position.
    pub fn column(&self, idx: usize) -> Result<&FrameColumn> {
        self.columns.get(idx).ok_or(MatrixError::IndexOutOfBounds {
            op: "Frame::column",
            index: idx,
            bound: self.columns.len(),
        })
    }

    /// Column index by name.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| MatrixError::InvalidArgument {
                op: "Frame::column_index",
                msg: format!("no column named '{name}'"),
            })
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&FrameColumn> {
        let idx = self.column_index(name)?;
        self.column(idx)
    }

    /// Vertical concatenation of two frames with identical schemas.
    pub fn rbind(&self, other: &Frame) -> Result<Frame> {
        if self.schema() != other.schema() {
            return Err(MatrixError::InvalidArgument {
                op: "Frame::rbind",
                msg: "schemas differ".into(),
            });
        }
        let mut out = self.clone();
        for (a, b) in out.columns.iter_mut().zip(&other.columns) {
            a.append(b)?;
        }
        Ok(out)
    }

    /// Extracts a half-open row range.
    pub fn slice_rows(&self, lo: usize, hi: usize) -> Result<Frame> {
        if lo > hi || hi > self.rows() {
            return Err(MatrixError::IndexOutOfBounds {
                op: "Frame::slice_rows",
                index: hi,
                bound: self.rows(),
            });
        }
        Ok(Frame {
            names: self.names.clone(),
            columns: self.columns.iter().map(|c| c.slice(lo, hi)).collect(),
        })
    }

    /// Projects a subset of columns by name (federated feature selection).
    pub fn select(&self, names: &[&str]) -> Result<Frame> {
        let mut cols = Vec::with_capacity(names.len());
        for &n in names {
            let idx = self.column_index(n)?;
            cols.push((n.to_string(), self.columns[idx].clone()));
        }
        Frame::new(cols)
    }

    /// Converts all-numeric frames to a dense matrix (missing -> NaN).
    pub fn to_matrix(&self) -> Result<DenseMatrix> {
        let rows = self.rows();
        let cols = self.cols();
        let mut out = DenseMatrix::zeros(rows, cols);
        for (c, col) in self.columns.iter().enumerate() {
            for r in 0..rows {
                out.set(r, c, col.numeric(r)?);
            }
        }
        Ok(out)
    }

    /// Builds a single-type frame from a dense matrix.
    pub fn from_matrix(m: &DenseMatrix, prefix: &str) -> Frame {
        let columns = (0..m.cols())
            .map(|c| {
                let data: Vec<Option<f64>> = (0..m.rows())
                    .map(|r| {
                        let v = m.get(r, c);
                        if v.is_nan() {
                            None
                        } else {
                            Some(v)
                        }
                    })
                    .collect();
                (format!("{prefix}{}", c + 1), FrameColumn::F64(data))
            })
            .collect();
        Frame::new(columns).expect("consistent construction")
    }

    /// Estimated in-memory size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.columns
            .iter()
            .map(|c| match c {
                FrameColumn::F64(v) => v.len() * 16,
                FrameColumn::I64(v) => v.len() * 16,
                FrameColumn::Bool(v) => v.len() * 2,
                FrameColumn::Str(v) => v
                    .iter()
                    .map(|s| 24 + s.as_ref().map_or(0, String::len))
                    .sum(),
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame::new(vec![
            (
                "recipe".into(),
                FrameColumn::Str(vec![
                    Some("R101".into()),
                    Some("C7".into()),
                    None,
                    Some("R101".into()),
                ]),
            ),
            (
                "power".into(),
                FrameColumn::F64(vec![Some(2100.0), Some(4350.0), Some(5500.0), None]),
            ),
            (
                "batch".into(),
                FrameColumn::I64(vec![Some(1), Some(2), Some(3), Some(4)]),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Frame::new(vec![
            ("a".into(), FrameColumn::F64(vec![Some(1.0)])),
            ("a".into(), FrameColumn::F64(vec![Some(2.0)])),
        ])
        .is_err());
        assert!(Frame::new(vec![
            ("a".into(), FrameColumn::F64(vec![Some(1.0)])),
            ("b".into(), FrameColumn::F64(vec![Some(2.0), Some(3.0)])),
        ])
        .is_err());
    }

    #[test]
    fn missing_values_tracked() {
        let f = sample();
        assert_eq!(f.column_by_name("recipe").unwrap().missing_count(), 1);
        assert!(f.column_by_name("power").unwrap().is_missing(3));
        assert_eq!(f.column_by_name("batch").unwrap().missing_count(), 0);
    }

    #[test]
    fn tokens_for_recoding() {
        let f = sample();
        let c = f.column_by_name("recipe").unwrap();
        assert_eq!(c.token(0).as_deref(), Some("R101"));
        assert_eq!(c.token(2), None);
    }

    #[test]
    fn rbind_and_slice() {
        let f = sample();
        let both = f.rbind(&f).unwrap();
        assert_eq!(both.rows(), 8);
        let tail = both.slice_rows(4, 8).unwrap();
        assert_eq!(tail.rows(), 4);
        assert_eq!(
            tail.column_by_name("recipe").unwrap().token(0).as_deref(),
            Some("R101")
        );
    }

    #[test]
    fn select_projects_columns() {
        let f = sample();
        let p = f.select(&["batch", "power"]).unwrap();
        assert_eq!(p.names(), &["batch".to_string(), "power".to_string()]);
        assert!(f.select(&["nope"]).is_err());
    }

    #[test]
    fn numeric_conversion() {
        let f = sample().select(&["power", "batch"]).unwrap();
        let m = f.to_matrix().unwrap();
        assert_eq!(m.get(0, 0), 2100.0);
        assert!(m.get(3, 0).is_nan());
        assert_eq!(m.get(3, 1), 4.0);
        // String columns refuse numeric conversion.
        assert!(sample().to_matrix().is_err());
    }

    #[test]
    fn matrix_roundtrip_preserves_nan_as_missing() {
        let mut m = DenseMatrix::zeros(2, 2);
        m.set(1, 1, f64::NAN);
        m.set(0, 0, 5.0);
        let f = Frame::from_matrix(&m, "c");
        assert!(f.column(1).unwrap().is_missing(1));
        assert_eq!(f.column(0).unwrap().numeric(0).unwrap(), 5.0);
    }
}
