//! Representation-polymorphic matrix wrapper.
//!
//! [`Matrix`] is what flows through worker symbol tables: the runtime does
//! not care whether a value is dense or CSR, and workers may transparently
//! compact cached intermediates into the compressed representation
//! (see [`crate::compress`]).

use crate::compress::CompressedMatrix;
use crate::dense::DenseMatrix;
use crate::error::Result;
use crate::sparse::{SparseMatrix, SPARSITY_THRESHOLD};

/// A matrix in one of the runtime's physical representations.
#[derive(Debug, Clone, PartialEq)]
pub enum Matrix {
    /// Row-major dense representation.
    Dense(DenseMatrix),
    /// CSR sparse representation.
    Sparse(SparseMatrix),
    /// Losslessly compressed column groups (cached intermediates).
    Compressed(CompressedMatrix),
}

impl Matrix {
    /// Wraps a dense matrix, picking CSR automatically when sparsity is
    /// below [`SPARSITY_THRESHOLD`] (mirroring SystemDS' internal threshold).
    pub fn from_dense_auto(d: DenseMatrix) -> Self {
        if d.len() >= 64 && d.sparsity() < SPARSITY_THRESHOLD {
            Matrix::Sparse(SparseMatrix::from_dense(&d))
        } else {
            Matrix::Dense(d)
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        match self {
            Matrix::Dense(d) => d.rows(),
            Matrix::Sparse(s) => s.rows(),
            Matrix::Compressed(c) => c.rows(),
        }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        match self {
            Matrix::Dense(d) => d.cols(),
            Matrix::Sparse(s) => s.cols(),
            Matrix::Compressed(c) => c.cols(),
        }
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows(), self.cols())
    }

    /// Number of non-zero cells.
    pub fn nnz(&self) -> usize {
        match self {
            Matrix::Dense(d) => d.nnz(),
            Matrix::Sparse(s) => s.nnz(),
            Matrix::Compressed(c) => c.decompress().nnz(),
        }
    }

    /// Fraction of non-zero cells.
    pub fn sparsity(&self) -> f64 {
        let cells = self.rows() * self.cols();
        if cells == 0 {
            1.0
        } else {
            self.nnz() as f64 / cells as f64
        }
    }

    /// Materializes the dense representation (cloning for `Dense`).
    pub fn to_dense(&self) -> DenseMatrix {
        match self {
            Matrix::Dense(d) => d.clone(),
            Matrix::Sparse(s) => s.to_dense(),
            Matrix::Compressed(c) => c.decompress(),
        }
    }

    /// Consumes the matrix, producing the dense representation without a
    /// copy when already dense.
    pub fn into_dense(self) -> DenseMatrix {
        match self {
            Matrix::Dense(d) => d,
            Matrix::Sparse(s) => s.to_dense(),
            Matrix::Compressed(c) => c.decompress(),
        }
    }

    /// Borrows the dense payload if this is the dense representation.
    pub fn as_dense(&self) -> Option<&DenseMatrix> {
        match self {
            Matrix::Dense(d) => Some(d),
            _ => None,
        }
    }

    /// Physical representation name (for explain output and stats).
    pub fn repr_name(&self) -> &'static str {
        match self {
            Matrix::Dense(_) => "dense",
            Matrix::Sparse(_) => "sparse",
            Matrix::Compressed(_) => "compressed",
        }
    }

    /// Estimated in-memory size in bytes.
    pub fn size_bytes(&self) -> usize {
        match self {
            Matrix::Dense(d) => d.size_bytes(),
            Matrix::Sparse(s) => s.size_bytes(),
            Matrix::Compressed(c) => c.size_bytes(),
        }
    }

    /// Matrix multiplication dispatching on representation: keeps CSR fast
    /// paths for `sparse * dense` and falls back to dense kernels otherwise.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        let out = match (self, rhs) {
            (Matrix::Sparse(s), Matrix::Dense(d)) => s.matmul_dense(d)?,
            (Matrix::Sparse(s), r) => s.matmul_dense(&r.to_dense())?,
            (l, r) => crate::kernels::matmul::matmul(&l.to_dense_ref(), &r.to_dense_ref())?,
        };
        Ok(Matrix::Dense(out))
    }

    /// Dense view that avoids cloning when already dense.
    fn to_dense_ref(&self) -> std::borrow::Cow<'_, DenseMatrix> {
        match self {
            Matrix::Dense(d) => std::borrow::Cow::Borrowed(d),
            other => std::borrow::Cow::Owned(other.to_dense()),
        }
    }
}

impl From<DenseMatrix> for Matrix {
    fn from(d: DenseMatrix) -> Self {
        Matrix::Dense(d)
    }
}

impl From<SparseMatrix> for Matrix {
    fn from(s: SparseMatrix) -> Self {
        Matrix::Sparse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{rand_matrix, sprand_matrix};

    #[test]
    fn auto_representation_by_sparsity() {
        let dense = rand_matrix(10, 10, 0.5, 1.0, 1);
        assert_eq!(Matrix::from_dense_auto(dense).repr_name(), "dense");
        let sparse = sprand_matrix(10, 10, 0.5, 1.0, 0.05, 2);
        assert_eq!(Matrix::from_dense_auto(sparse).repr_name(), "sparse");
        // Tiny matrices stay dense regardless of sparsity.
        let tiny = DenseMatrix::zeros(2, 2);
        assert_eq!(Matrix::from_dense_auto(tiny).repr_name(), "dense");
    }

    #[test]
    fn matmul_dispatch_consistent() {
        let a = sprand_matrix(12, 8, -1.0, 1.0, 0.2, 3);
        let b = rand_matrix(8, 5, -1.0, 1.0, 4);
        let want = crate::kernels::matmul::matmul(&a, &b).unwrap();
        let got = Matrix::from_dense_auto(a)
            .matmul(&Matrix::Dense(b))
            .unwrap();
        assert!(got.to_dense().max_abs_diff(&want) < 1e-12);
    }

    #[test]
    fn size_reporting() {
        let d = rand_matrix(10, 10, 0.0, 1.0, 5);
        let m = Matrix::Dense(d);
        assert_eq!(m.size_bytes(), 800);
        assert_eq!(m.shape(), (10, 10));
    }
}
