//! Row-major dense `f64` matrices.
//!
//! [`DenseMatrix`] is the workhorse value type of the local runtime: the
//! federated backend ships these (or their CSR counterparts) between the
//! coordinator and workers, and every Table-1 kernel has a dense
//! implementation in [`crate::kernels`].

use crate::error::{MatrixError, Result};

/// A dense, row-major matrix of `f64` values.
///
/// Invariants: `data.len() == rows * cols`. Vectors are represented as
/// `n x 1` (column vector) or `1 x n` (row vector) matrices, matching the
/// SystemDS convention the paper's plans assume.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a matrix from a row-major value buffer.
    ///
    /// Returns [`MatrixError::InvalidArgument`] when the buffer length does
    /// not equal `rows * cols`.
    pub fn new(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MatrixError::InvalidArgument {
                op: "DenseMatrix::new",
                msg: format!(
                    "buffer length {} does not match {}x{}",
                    data.len(),
                    rows,
                    cols
                ),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a column vector from a slice.
    pub fn col_vector(values: &[f64]) -> Self {
        Self {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Creates a row vector from a slice.
    pub fn row_vector(values: &[f64]) -> Self {
        Self {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Creates a column vector `from, from+incr, ...` up to and including
    /// `to` (SystemDS `seq`).
    pub fn seq(from: f64, to: f64, incr: f64) -> Result<Self> {
        if incr == 0.0 {
            return Err(MatrixError::InvalidArgument {
                op: "seq",
                msg: "increment must be non-zero".into(),
            });
        }
        let n = (((to - from) / incr).floor().max(-1.0) as i64 + 1).max(0) as usize;
        let data: Vec<f64> = (0..n).map(|i| from + i as f64 * incr).collect();
        Ok(Self {
            rows: n,
            cols: 1,
            data,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has zero cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// True when the matrix is a row or column vector.
    #[inline]
    pub fn is_vector(&self) -> bool {
        self.rows == 1 || self.cols == 1
    }

    /// True when the matrix is `1 x 1`.
    #[inline]
    pub fn is_scalar(&self) -> bool {
        self.rows == 1 && self.cols == 1
    }

    /// Underlying row-major buffer.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.data
    }

    /// Mutable row-major buffer.
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_values(self) -> Vec<f64> {
        self.data
    }

    /// Unchecked cell access (debug-asserted).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Unchecked cell assignment (debug-asserted).
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Checked cell access.
    pub fn try_get(&self, r: usize, c: usize) -> Result<f64> {
        if r >= self.rows {
            return Err(MatrixError::IndexOutOfBounds {
                op: "get",
                index: r,
                bound: self.rows,
            });
        }
        if c >= self.cols {
            return Err(MatrixError::IndexOutOfBounds {
                op: "get",
                index: c,
                bound: self.cols,
            });
        }
        Ok(self.data[r * self.cols + c])
    }

    /// A row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over row slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// The value of a `1 x 1` matrix.
    pub fn as_scalar(&self) -> Result<f64> {
        if self.is_scalar() {
            Ok(self.data[0])
        } else {
            Err(MatrixError::InvalidArgument {
                op: "as_scalar",
                msg: format!("matrix is {}x{}, not 1x1", self.rows, self.cols),
            })
        }
    }

    /// Number of non-zero cells.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|v| **v != 0.0).count()
    }

    /// Fraction of non-zero cells (1.0 for empty matrices).
    pub fn sparsity(&self) -> f64 {
        if self.data.is_empty() {
            1.0
        } else {
            self.nnz() as f64 / self.data.len() as f64
        }
    }

    /// Applies `f` to every cell, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every cell in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise combination with an equally-shaped matrix.
    pub fn zip(&self, other: &Self, op: &'static str, f: impl Fn(f64, f64) -> f64) -> Result<Self> {
        if self.shape() != other.shape() {
            return Err(MatrixError::DimensionMismatch {
                op,
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Self {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Maximum absolute element-wise difference to another matrix
    /// (`f64::INFINITY` on shape mismatch). Used pervasively by tests to
    /// compare federated against local results.
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        if self.shape() != other.shape() {
            return f64::INFINITY;
        }
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Reinterprets the buffer with a new shape of equal cell count
    /// (row-major `reshape`).
    pub fn reshape(&self, rows: usize, cols: usize) -> Result<Self> {
        if rows * cols != self.data.len() {
            return Err(MatrixError::DimensionMismatch {
                op: "reshape",
                lhs: self.shape(),
                rhs: (rows, cols),
            });
        }
        Ok(Self {
            rows,
            cols,
            data: self.data.clone(),
        })
    }

    /// Estimated in-memory size in bytes (buffer only).
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }
}

impl std::fmt::Display for DenseMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "DenseMatrix {}x{}", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for r in 0..show_rows {
            let row = self.row(r);
            let shown: Vec<String> = row.iter().take(8).map(|v| format!("{v:.4}")).collect();
            let ellipsis = if self.cols > 8 { " ..." } else { "" };
            writeln!(f, "  [{}{}]", shown.join(", "), ellipsis)?;
        }
        if self.rows > show_rows {
            writeln!(f, "  ...")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_checks_buffer_length() {
        assert!(DenseMatrix::new(2, 3, vec![0.0; 6]).is_ok());
        assert!(DenseMatrix::new(2, 3, vec![0.0; 5]).is_err());
    }

    #[test]
    fn identity_has_unit_diagonal() {
        let i = DenseMatrix::identity(4);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(i.get(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn seq_inclusive_bounds() {
        let s = DenseMatrix::seq(1.0, 5.0, 2.0).unwrap();
        assert_eq!(s.values(), &[1.0, 3.0, 5.0]);
        let s = DenseMatrix::seq(1.0, 6.0, 2.0).unwrap();
        assert_eq!(s.values(), &[1.0, 3.0, 5.0]);
        let s = DenseMatrix::seq(5.0, 1.0, -2.0).unwrap();
        assert_eq!(s.values(), &[5.0, 3.0, 1.0]);
    }

    #[test]
    fn seq_empty_when_unreachable() {
        let s = DenseMatrix::seq(5.0, 1.0, 1.0).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn reshape_preserves_row_major_order() {
        let m = DenseMatrix::new(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let r = m.reshape(3, 2).unwrap();
        assert_eq!(r.row(0), &[1., 2.]);
        assert_eq!(r.row(2), &[5., 6.]);
        assert!(m.reshape(4, 2).is_err());
    }

    #[test]
    fn sparsity_counts_nonzeros() {
        let m = DenseMatrix::new(2, 2, vec![0., 1., 0., 2.]).unwrap();
        assert_eq!(m.nnz(), 2);
        assert!((m.sparsity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn max_abs_diff_detects_shape_mismatch() {
        let a = DenseMatrix::zeros(2, 2);
        let b = DenseMatrix::zeros(2, 3);
        assert_eq!(a.max_abs_diff(&b), f64::INFINITY);
    }
}
