//! Numerical routines: symmetric eigen-decomposition (cyclic Jacobi) and a
//! Cholesky solver.
//!
//! PCA in the paper computes "an Eigen decomposition of XᵀX"; LM's direct
//! solver (used when `ncol(X) <= 1024`) needs a symmetric positive-definite
//! solve. Both are implemented here without external numeric dependencies.

use crate::dense::DenseMatrix;
use crate::error::{MatrixError, Result};

/// Result of a symmetric eigen-decomposition: `values[i]` belongs to column
/// `i` of `vectors`, sorted by descending eigenvalue.
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues in descending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors as matrix columns, aligned with `values`.
    pub vectors: DenseMatrix,
}

/// Cyclic Jacobi eigen-decomposition of a symmetric matrix.
///
/// Converges quadratically for symmetric inputs; `max_sweeps` bounds the
/// number of full off-diagonal sweeps (15 is ample for the sizes PCA
/// produces: `cols x cols` Gram matrices).
pub fn eigen_symmetric(a: &DenseMatrix, max_sweeps: usize) -> Result<EigenDecomposition> {
    let n = a.rows();
    if a.cols() != n {
        return Err(MatrixError::DimensionMismatch {
            op: "eigen_symmetric",
            lhs: a.shape(),
            rhs: a.shape(),
        });
    }
    let mut m = a.clone();
    let mut v = DenseMatrix::identity(n);
    let tol = 1e-12 * frobenius(&m).max(1.0);
    for _ in 0..max_sweeps {
        let mut off = 0.0;
        for p in 0..n {
            for q in (p + 1)..n {
                off += m.get(p, q).abs();
            }
        }
        if off < tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation G(p,q,theta) on both sides of m.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }
    // Extract and sort by descending eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m.get(i, i)).collect();
    order.sort_by(|&x, &y| {
        diag[y]
            .partial_cmp(&diag[x])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut vectors = DenseMatrix::zeros(n, n);
    for (new_c, &old_c) in order.iter().enumerate() {
        for r in 0..n {
            vectors.set(r, new_c, v.get(r, old_c));
        }
    }
    Ok(EigenDecomposition { values, vectors })
}

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite
/// matrix; returns the lower factor.
pub fn cholesky(a: &DenseMatrix) -> Result<DenseMatrix> {
    let n = a.rows();
    if a.cols() != n {
        return Err(MatrixError::DimensionMismatch {
            op: "cholesky",
            lhs: a.shape(),
            rhs: a.shape(),
        });
    }
    let mut l = DenseMatrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j);
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(MatrixError::Numerical {
                        op: "cholesky",
                        msg: format!("matrix not positive definite at pivot {i} ({sum})"),
                    });
                }
                l.set(i, j, sum.sqrt());
            } else {
                l.set(i, j, sum / l.get(j, j));
            }
        }
    }
    Ok(l)
}

/// Solves `A x = b` for symmetric positive-definite `A` via Cholesky.
pub fn solve_spd(a: &DenseMatrix, b: &DenseMatrix) -> Result<DenseMatrix> {
    let l = cholesky(a)?;
    let n = a.rows();
    if b.rows() != n {
        return Err(MatrixError::DimensionMismatch {
            op: "solve_spd",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let m = b.cols();
    // Forward substitution: L y = b.
    let mut y = DenseMatrix::zeros(n, m);
    for col in 0..m {
        for i in 0..n {
            let mut sum = b.get(i, col);
            for k in 0..i {
                sum -= l.get(i, k) * y.get(k, col);
            }
            y.set(i, col, sum / l.get(i, i));
        }
    }
    // Back substitution: Lᵀ x = y.
    let mut x = DenseMatrix::zeros(n, m);
    for col in 0..m {
        for i in (0..n).rev() {
            let mut sum = y.get(i, col);
            for k in (i + 1)..n {
                sum -= l.get(k, i) * x.get(k, col);
            }
            x.set(i, col, sum / l.get(i, i));
        }
    }
    Ok(x)
}

fn frobenius(m: &DenseMatrix) -> f64 {
    m.values().iter().map(|v| v * v).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::matmul::{matmul, matmul_naive, tsmm};
    use crate::kernels::reorg::transpose;
    use crate::rng::rand_matrix;

    /// Random symmetric positive-definite matrix `XᵀX + n I`.
    fn spd(n: usize, seed: u64) -> DenseMatrix {
        let x = rand_matrix(n + 5, n, -1.0, 1.0, seed);
        let mut g = tsmm(&x, true).unwrap();
        for i in 0..n {
            let v = g.get(i, i);
            g.set(i, i, v + n as f64);
        }
        g
    }

    #[test]
    fn eigen_reconstructs_input() {
        let a = spd(8, 41);
        let e = eigen_symmetric(&a, 30).unwrap();
        // A V = V diag(lambda)
        let av = matmul_naive(&a, &e.vectors).unwrap();
        let mut vl = e.vectors.clone();
        for r in 0..8 {
            for c in 0..8 {
                let v = vl.get(r, c) * e.values[c];
                vl.set(r, c, v);
            }
        }
        assert!(av.max_abs_diff(&vl) < 1e-8);
    }

    #[test]
    fn eigen_vectors_orthonormal() {
        let a = spd(10, 42);
        let e = eigen_symmetric(&a, 30).unwrap();
        let vtv = matmul(&transpose(&e.vectors), &e.vectors).unwrap();
        assert!(vtv.max_abs_diff(&DenseMatrix::identity(10)) < 1e-9);
    }

    #[test]
    fn eigen_values_descending() {
        let a = spd(12, 43);
        let e = eigen_symmetric(&a, 30).unwrap();
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn eigen_known_2x2() {
        let a = DenseMatrix::new(2, 2, vec![2., 1., 1., 2.]).unwrap();
        let e = eigen_symmetric(&a, 20).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd(9, 44);
        let l = cholesky(&a).unwrap();
        let llt = matmul_naive(&l, &transpose(&l)).unwrap();
        assert!(llt.max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = DenseMatrix::new(2, 2, vec![1., 2., 2., 1.]).unwrap();
        assert!(cholesky(&a).is_err());
    }

    #[test]
    fn solve_spd_matches_direct() {
        let a = spd(7, 45);
        let xtrue = rand_matrix(7, 2, -1.0, 1.0, 46);
        let b = matmul_naive(&a, &xtrue).unwrap();
        let x = solve_spd(&a, &b).unwrap();
        assert!(x.max_abs_diff(&xtrue) < 1e-8);
    }
}
