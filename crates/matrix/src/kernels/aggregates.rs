//! Aggregate kernels (Table 1 "Aggregates" row): full, row-wise, and
//! column-wise `sum/min/max/mean/var/sd`, plus index-of aggregates.
//!
//! The federated runtime decomposes these over partitions; the partial
//! statistics combined by the coordinator (count/sum/sum-of-squares for
//! variance) are produced by the same kernels, so partition-combine laws are
//! property-tested here.

use crate::dense::DenseMatrix;
use crate::error::{MatrixError, Result};

/// Aggregate function selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggOp {
    /// Sum of values.
    Sum,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
    /// Arithmetic mean.
    Mean,
    /// Unbiased sample variance.
    Var,
    /// Unbiased sample standard deviation.
    Sd,
    /// Sum of squared values (internal partial for Var/Sd; also `sumSq`).
    SumSq,
}

impl AggOp {
    /// Canonical instruction name.
    pub fn name(self) -> &'static str {
        match self {
            AggOp::Sum => "sum",
            AggOp::Min => "min",
            AggOp::Max => "max",
            AggOp::Mean => "mean",
            AggOp::Var => "var",
            AggOp::Sd => "sd",
            AggOp::SumSq => "sumSq",
        }
    }
}

/// Aggregation direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggDir {
    /// Aggregate over all cells to a `1 x 1` result.
    Full,
    /// Aggregate each row to an `r x 1` column vector (`rowSums`, ...).
    Row,
    /// Aggregate each column to a `1 x c` row vector (`colSums`, ...).
    Col,
}

pub(crate) fn finish(op: AggOp, sum: f64, sumsq: f64, min: f64, max: f64, n: f64) -> f64 {
    match op {
        AggOp::Sum => sum,
        AggOp::SumSq => sumsq,
        AggOp::Min => min,
        AggOp::Max => max,
        AggOp::Mean => sum / n,
        AggOp::Var | AggOp::Sd => {
            if n < 2.0 {
                return f64::NAN;
            }
            let var = (sumsq - sum * sum / n) / (n - 1.0);
            let var = var.max(0.0); // guard tiny negative from cancellation
            if op == AggOp::Var {
                var
            } else {
                var.sqrt()
            }
        }
    }
}

/// Computes an aggregate of `x` along `dir`.
///
/// Full aggregates return a `1 x 1` matrix so the result can flow through
/// matrix-typed plans (the runtime unwraps scalars where needed). Empty
/// inputs are rejected for min/max/mean/var/sd.
pub fn aggregate(x: &DenseMatrix, op: AggOp, dir: AggDir) -> Result<DenseMatrix> {
    let needs_data = !matches!(op, AggOp::Sum | AggOp::SumSq);
    if x.is_empty() && needs_data {
        return Err(MatrixError::InvalidArgument {
            op: op.name(),
            msg: "aggregate of empty matrix".into(),
        });
    }
    let (r, c) = x.shape();
    match dir {
        AggDir::Full => {
            let mut sum = 0.0;
            let mut sumsq = 0.0;
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            for &v in x.values() {
                sum += v;
                sumsq += v * v;
                min = min.min(v);
                max = max.max(v);
            }
            Ok(DenseMatrix::filled(
                1,
                1,
                finish(op, sum, sumsq, min, max, (r * c) as f64),
            ))
        }
        AggDir::Row => {
            // One output cell per row: fan row blocks out across the pool;
            // each row reduces left-to-right exactly as the serial loop.
            let mut out = DenseMatrix::zeros(r, 1);
            let xv = x.values();
            let rows_per_chunk = exdra_par::chunk_len(r, super::par_floor(4 * c));
            exdra_par::par_chunks_mut(out.values_mut(), rows_per_chunk, |_, i0, chunk| {
                for (d, o) in chunk.iter_mut().enumerate() {
                    let mut sum = 0.0;
                    let mut sumsq = 0.0;
                    let mut min = f64::INFINITY;
                    let mut max = f64::NEG_INFINITY;
                    for &v in &xv[(i0 + d) * c..(i0 + d + 1) * c] {
                        sum += v;
                        sumsq += v * v;
                        min = min.min(v);
                        max = max.max(v);
                    }
                    *o = finish(op, sum, sumsq, min, max, c as f64);
                }
            });
            Ok(out)
        }
        AggDir::Col => {
            // Disjoint column blocks: each block scans rows top-to-bottom
            // keeping per-column running stats, so every column reduces in
            // the same i-ascending order as the serial sweep — identical
            // bits at any thread count.
            let mut out = DenseMatrix::zeros(1, c);
            let xv = x.values();
            let cols_per_chunk = exdra_par::chunk_len(c, super::par_floor(4 * r));
            exdra_par::par_chunks_mut(out.values_mut(), cols_per_chunk, |_, j0, ochunk| {
                let width = ochunk.len();
                let mut sum = vec![0.0; width];
                let mut sumsq = vec![0.0; width];
                let mut min = vec![f64::INFINITY; width];
                let mut max = vec![f64::NEG_INFINITY; width];
                for i in 0..r {
                    let seg = &xv[i * c + j0..i * c + j0 + width];
                    for (jj, &v) in seg.iter().enumerate() {
                        sum[jj] += v;
                        sumsq[jj] += v * v;
                        if v < min[jj] {
                            min[jj] = v;
                        }
                        if v > max[jj] {
                            max[jj] = v;
                        }
                    }
                }
                for (jj, o) in ochunk.iter_mut().enumerate() {
                    *o = finish(op, sum[jj], sumsq[jj], min[jj], max[jj], r as f64);
                }
            });
            Ok(out)
        }
    }
}

/// Row-wise index of the maximum value, 1-based as in SystemDS `rowIndexMax`.
pub fn row_index_max(x: &DenseMatrix) -> Result<DenseMatrix> {
    row_index_by(x, |a, b| a > b)
}

/// Row-wise index of the minimum value, 1-based (`rowIndexMin`).
pub fn row_index_min(x: &DenseMatrix) -> Result<DenseMatrix> {
    row_index_by(x, |a, b| a < b)
}

fn row_index_by(x: &DenseMatrix, better: impl Fn(f64, f64) -> bool) -> Result<DenseMatrix> {
    if x.cols() == 0 {
        return Err(MatrixError::InvalidArgument {
            op: "rowIndex",
            msg: "matrix has zero columns".into(),
        });
    }
    let mut out = DenseMatrix::zeros(x.rows(), 1);
    for r in 0..x.rows() {
        let row = x.row(r);
        let mut best = 0usize;
        for (j, &v) in row.iter().enumerate() {
            if better(v, row[best]) {
                best = j;
            }
        }
        out.set(r, 0, (best + 1) as f64);
    }
    Ok(out)
}

/// Trace of a square matrix.
pub fn trace(x: &DenseMatrix) -> Result<f64> {
    if x.rows() != x.cols() {
        return Err(MatrixError::DimensionMismatch {
            op: "trace",
            lhs: x.shape(),
            rhs: x.shape(),
        });
    }
    Ok((0..x.rows()).map(|i| x.get(i, i)).sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rand_matrix;

    fn sample() -> DenseMatrix {
        DenseMatrix::new(2, 3, vec![1., 5., 3., 2., 4., 6.]).unwrap()
    }

    #[test]
    fn full_aggregates() {
        let x = sample();
        assert_eq!(
            aggregate(&x, AggOp::Sum, AggDir::Full).unwrap().get(0, 0),
            21.0
        );
        assert_eq!(
            aggregate(&x, AggOp::Min, AggDir::Full).unwrap().get(0, 0),
            1.0
        );
        assert_eq!(
            aggregate(&x, AggOp::Max, AggDir::Full).unwrap().get(0, 0),
            6.0
        );
        assert_eq!(
            aggregate(&x, AggOp::Mean, AggDir::Full).unwrap().get(0, 0),
            3.5
        );
        assert!((aggregate(&x, AggOp::Var, AggDir::Full).unwrap().get(0, 0) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn row_and_col_aggregates() {
        let x = sample();
        assert_eq!(
            aggregate(&x, AggOp::Sum, AggDir::Row).unwrap().values(),
            &[9.0, 12.0]
        );
        assert_eq!(
            aggregate(&x, AggOp::Max, AggDir::Col).unwrap().values(),
            &[2.0, 5.0, 6.0]
        );
        assert_eq!(
            aggregate(&x, AggOp::Mean, AggDir::Col).unwrap().values(),
            &[1.5, 4.5, 4.5]
        );
    }

    #[test]
    fn variance_matches_two_pass_reference() {
        let x = rand_matrix(31, 9, -5.0, 5.0, 13);
        let got = aggregate(&x, AggOp::Var, AggDir::Full).unwrap().get(0, 0);
        let n = x.len() as f64;
        let mean = x.values().iter().sum::<f64>() / n;
        let want = x.values().iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
        assert!((got - want).abs() < 1e-9);
    }

    #[test]
    fn row_index_max_is_one_based() {
        let x = sample();
        assert_eq!(row_index_max(&x).unwrap().values(), &[2.0, 3.0]);
        assert_eq!(row_index_min(&x).unwrap().values(), &[1.0, 1.0]);
    }

    #[test]
    fn row_index_max_ties_pick_first() {
        let x = DenseMatrix::new(1, 3, vec![7., 7., 1.]).unwrap();
        assert_eq!(row_index_max(&x).unwrap().get(0, 0), 1.0);
    }

    #[test]
    fn empty_min_rejected_empty_sum_zero() {
        let x = DenseMatrix::zeros(0, 3);
        assert!(aggregate(&x, AggOp::Min, AggDir::Full).is_err());
        assert_eq!(
            aggregate(&x, AggOp::Sum, AggDir::Full).unwrap().get(0, 0),
            0.0
        );
    }

    #[test]
    fn trace_square_only() {
        let x = DenseMatrix::new(2, 2, vec![1., 2., 3., 4.]).unwrap();
        assert_eq!(trace(&x).unwrap(), 5.0);
        assert!(trace(&sample()).is_err());
    }
}
