//! Element-wise unary and binary kernels (Table 1 "Unary"/"Binary" rows),
//! including row/column-vector broadcasting as used by the federated plans
//! (e.g. `X - colMeans(X)` broadcasts a `1 x c` vector over rows).

use super::PAR_MIN_WORK;
use crate::dense::DenseMatrix;
use crate::error::{MatrixError, Result};

/// Cell-parallel map: fills a fresh matrix from `x`'s cells through `f`
/// over disjoint output chunks. Each cell depends on exactly one input
/// cell, so the result is bitwise identical at any thread count.
fn map_cells(x: &DenseMatrix, f: impl Fn(f64) -> f64 + Sync) -> DenseMatrix {
    let mut out = DenseMatrix::zeros(x.rows(), x.cols());
    let xv = x.values();
    let chunk = exdra_par::chunk_len(xv.len(), PAR_MIN_WORK);
    exdra_par::par_chunks_mut(out.values_mut(), chunk, |_, c0, part| {
        for (d, o) in part.iter_mut().enumerate() {
            *o = f(xv[c0 + d]);
        }
    });
    out
}

/// Unary element-wise operations of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Absolute value.
    Abs,
    /// Cosine.
    Cos,
    /// Sine.
    Sin,
    /// Tangent.
    Tan,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Log,
    /// Square root.
    Sqrt,
    /// Round half away from zero.
    Round,
    /// Floor.
    Floor,
    /// Ceiling.
    Ceil,
    /// Sign (-1, 0, 1).
    Sign,
    /// Logical negation: `x == 0 -> 1`, else `0`.
    Not,
    /// 1.0 where the value is NaN, 0.0 otherwise (`isNA`).
    IsNa,
    /// Logistic sigmoid `1 / (1 + e^-x)`.
    Sigmoid,
    /// Unary minus.
    Neg,
    /// Square (`x * x`), a common fused shorthand.
    Square,
}

impl UnaryOp {
    /// Scalar semantics of the operation.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            UnaryOp::Abs => x.abs(),
            UnaryOp::Cos => x.cos(),
            UnaryOp::Sin => x.sin(),
            UnaryOp::Tan => x.tan(),
            UnaryOp::Exp => x.exp(),
            UnaryOp::Log => x.ln(),
            UnaryOp::Sqrt => x.sqrt(),
            UnaryOp::Round => {
                if x >= 0.0 {
                    (x + 0.5).floor()
                } else {
                    (x - 0.5).ceil()
                }
            }
            UnaryOp::Floor => x.floor(),
            UnaryOp::Ceil => x.ceil(),
            UnaryOp::Sign => {
                if x > 0.0 {
                    1.0
                } else if x < 0.0 {
                    -1.0
                } else {
                    0.0
                }
            }
            UnaryOp::Not => {
                if x == 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            UnaryOp::IsNa => {
                if x.is_nan() {
                    1.0
                } else {
                    0.0
                }
            }
            UnaryOp::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            UnaryOp::Neg => -x,
            UnaryOp::Square => x * x,
        }
    }

    /// Canonical instruction name (used by plan explain strings).
    pub fn name(self) -> &'static str {
        match self {
            UnaryOp::Abs => "abs",
            UnaryOp::Cos => "cos",
            UnaryOp::Sin => "sin",
            UnaryOp::Tan => "tan",
            UnaryOp::Exp => "exp",
            UnaryOp::Log => "log",
            UnaryOp::Sqrt => "sqrt",
            UnaryOp::Round => "round",
            UnaryOp::Floor => "floor",
            UnaryOp::Ceil => "ceil",
            UnaryOp::Sign => "sign",
            UnaryOp::Not => "!",
            UnaryOp::IsNa => "isNA",
            UnaryOp::Sigmoid => "sigmoid",
            UnaryOp::Neg => "-",
            UnaryOp::Square => "sq",
        }
    }
}

/// Applies a unary operation cell-wise.
pub fn unary(x: &DenseMatrix, op: UnaryOp) -> DenseMatrix {
    map_cells(x, |v| op.apply(v))
}

/// Row-wise softmax: `exp(x - rowMax) / rowSum(exp(..))`, numerically stable.
///
/// Listed in Table 1's unary row; operates per row as in SystemDS. Rows are
/// independent, so they fan out in row-aligned blocks.
pub fn softmax(x: &DenseMatrix) -> DenseMatrix {
    let (rows, cols) = x.shape();
    let mut out = DenseMatrix::zeros(rows, cols);
    if rows == 0 || cols == 0 {
        return out;
    }
    let xv = x.values();
    let rows_per_chunk = exdra_par::chunk_len(rows, super::par_floor(3 * cols));
    exdra_par::par_chunks_mut(out.values_mut(), rows_per_chunk * cols, |_, cell0, part| {
        let r0 = cell0 / cols;
        for (dr, orow) in part.chunks_mut(cols).enumerate() {
            let row = &xv[(r0 + dr) * cols..(r0 + dr + 1) * cols];
            let mx = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut sum = 0.0;
            for (o, &v) in orow.iter_mut().zip(row) {
                *o = (v - mx).exp();
                sum += *o;
            }
            if sum > 0.0 {
                for o in orow.iter_mut() {
                    *o /= sum;
                }
            }
        }
    });
    out
}

/// Binary element-wise operations of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication (Hadamard).
    Mul,
    /// Division.
    Div,
    /// Integer division (`%/%`).
    IntDiv,
    /// Modulus (`%%`).
    Mod,
    /// Power (`^`).
    Pow,
    /// Element-wise minimum.
    Min,
    /// Element-wise maximum.
    Max,
    /// Equality comparison producing 0/1.
    Eq,
    /// Inequality comparison producing 0/1.
    Neq,
    /// Less-than producing 0/1.
    Lt,
    /// Less-or-equal producing 0/1.
    Le,
    /// Greater-than producing 0/1.
    Gt,
    /// Greater-or-equal producing 0/1.
    Ge,
    /// Logical and (non-zero = true) producing 0/1.
    And,
    /// Logical or producing 0/1.
    Or,
    /// Logical xor producing 0/1.
    Xor,
    /// Logarithm of `lhs` to base `rhs` (`log(x, base)`).
    LogBase,
}

impl BinaryOp {
    /// Scalar semantics of the operation.
    #[inline]
    pub fn apply(self, a: f64, b: f64) -> f64 {
        let t = |c: bool| if c { 1.0 } else { 0.0 };
        match self {
            BinaryOp::Add => a + b,
            BinaryOp::Sub => a - b,
            BinaryOp::Mul => a * b,
            BinaryOp::Div => a / b,
            BinaryOp::IntDiv => (a / b).floor(),
            BinaryOp::Mod => a - (a / b).floor() * b,
            BinaryOp::Pow => a.powf(b),
            BinaryOp::Min => a.min(b),
            BinaryOp::Max => a.max(b),
            BinaryOp::Eq => t(a == b),
            BinaryOp::Neq => t(a != b),
            BinaryOp::Lt => t(a < b),
            BinaryOp::Le => t(a <= b),
            BinaryOp::Gt => t(a > b),
            BinaryOp::Ge => t(a >= b),
            BinaryOp::And => t(a != 0.0 && b != 0.0),
            BinaryOp::Or => t(a != 0.0 || b != 0.0),
            BinaryOp::Xor => t((a != 0.0) ^ (b != 0.0)),
            BinaryOp::LogBase => a.ln() / b.ln(),
        }
    }

    /// Canonical instruction name.
    pub fn name(self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::IntDiv => "%/%",
            BinaryOp::Mod => "%%",
            BinaryOp::Pow => "^",
            BinaryOp::Min => "min",
            BinaryOp::Max => "max",
            BinaryOp::Eq => "==",
            BinaryOp::Neq => "!=",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::And => "&",
            BinaryOp::Or => "|",
            BinaryOp::Xor => "xor",
            BinaryOp::LogBase => "log",
        }
    }

    /// True when the op is commutative (used by plan canonicalization for
    /// lineage-based reuse).
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinaryOp::Add
                | BinaryOp::Mul
                | BinaryOp::Min
                | BinaryOp::Max
                | BinaryOp::Eq
                | BinaryOp::Neq
                | BinaryOp::And
                | BinaryOp::Or
                | BinaryOp::Xor
        )
    }
}

/// Broadcasting shapes supported by [`binary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Broadcast {
    /// Both operands share the same shape.
    None,
    /// Right operand is a `1 x c` row vector broadcast over rows.
    RowVector,
    /// Right operand is an `r x 1` column vector broadcast over columns.
    ColVector,
    /// Right operand is `1 x 1`.
    Scalar,
}

fn classify(lhs: &DenseMatrix, rhs: &DenseMatrix) -> Option<Broadcast> {
    if lhs.shape() == rhs.shape() {
        Some(Broadcast::None)
    } else if rhs.is_scalar() {
        Some(Broadcast::Scalar)
    } else if rhs.rows() == 1 && rhs.cols() == lhs.cols() {
        Some(Broadcast::RowVector)
    } else if rhs.cols() == 1 && rhs.rows() == lhs.rows() {
        Some(Broadcast::ColVector)
    } else {
        None
    }
}

/// Matrix-matrix binary operation with SystemDS-style broadcasting: the right
/// operand may be an equally-shaped matrix, a row vector (`1 x c`), a column
/// vector (`r x 1`), or a `1 x 1` scalar.
pub fn binary(lhs: &DenseMatrix, op: BinaryOp, rhs: &DenseMatrix) -> Result<DenseMatrix> {
    let bc = classify(lhs, rhs).ok_or(MatrixError::DimensionMismatch {
        op: "binary",
        lhs: lhs.shape(),
        rhs: rhs.shape(),
    })?;
    let (rows, cols) = lhs.shape();
    let mut out = DenseMatrix::zeros(rows, cols);
    if rows == 0 || cols == 0 {
        return Ok(out);
    }
    let lv = lhs.values();
    // Each arm fans disjoint output chunks (cell-aligned for cell-wise
    // arms, row-aligned when a vector broadcasts along rows/columns) out
    // across the pool; every cell reads fixed inputs, so bits are
    // identical at any thread count.
    match bc {
        Broadcast::None => {
            let bv = rhs.values();
            let chunk = exdra_par::chunk_len(lv.len(), PAR_MIN_WORK);
            exdra_par::par_chunks_mut(out.values_mut(), chunk, |_, c0, part| {
                for (d, o) in part.iter_mut().enumerate() {
                    *o = op.apply(lv[c0 + d], bv[c0 + d]);
                }
            });
        }
        Broadcast::Scalar => {
            let b = rhs.values()[0];
            let chunk = exdra_par::chunk_len(lv.len(), PAR_MIN_WORK);
            exdra_par::par_chunks_mut(out.values_mut(), chunk, |_, c0, part| {
                for (d, o) in part.iter_mut().enumerate() {
                    *o = op.apply(lv[c0 + d], b);
                }
            });
        }
        Broadcast::RowVector => {
            let bv = rhs.values();
            let rows_per_chunk = exdra_par::chunk_len(rows, super::par_floor(cols));
            exdra_par::par_chunks_mut(out.values_mut(), rows_per_chunk * cols, |_, c0, part| {
                for (dr, orow) in part.chunks_mut(cols).enumerate() {
                    let lrow = &lv[(c0 / cols + dr) * cols..][..cols];
                    for ((o, &a), &b) in orow.iter_mut().zip(lrow).zip(bv) {
                        *o = op.apply(a, b);
                    }
                }
            });
        }
        Broadcast::ColVector => {
            let bv = rhs.values();
            let rows_per_chunk = exdra_par::chunk_len(rows, super::par_floor(cols));
            exdra_par::par_chunks_mut(out.values_mut(), rows_per_chunk * cols, |_, c0, part| {
                for (dr, orow) in part.chunks_mut(cols).enumerate() {
                    let r = c0 / cols + dr;
                    let b = bv[r];
                    let lrow = &lv[r * cols..(r + 1) * cols];
                    for (o, &a) in orow.iter_mut().zip(lrow) {
                        *o = op.apply(a, b);
                    }
                }
            });
        }
    }
    Ok(out)
}

/// Matrix-scalar binary operation; `swap` computes `scalar op matrix`
/// instead of `matrix op scalar` (needed for non-commutative ops like `1-X`).
pub fn scalar(lhs: &DenseMatrix, op: BinaryOp, s: f64, swap: bool) -> DenseMatrix {
    if swap {
        map_cells(lhs, |v| op.apply(s, v))
    } else {
        map_cells(lhs, |v| op.apply(v, s))
    }
}

/// Covariance between two equal-length vectors (Table 1 `cov`), using the
/// unbiased (n-1) estimator.
pub fn cov(a: &DenseMatrix, b: &DenseMatrix) -> Result<f64> {
    if a.len() != b.len() || a.len() < 2 {
        return Err(MatrixError::InvalidArgument {
            op: "cov",
            msg: format!(
                "need equal-length vectors of >=2 cells, got {} and {}",
                a.len(),
                b.len()
            ),
        });
    }
    let n = a.len() as f64;
    let ma = a.values().iter().sum::<f64>() / n;
    let mb = b.values().iter().sum::<f64>() / n;
    let s: f64 = a
        .values()
        .iter()
        .zip(b.values())
        .map(|(&x, &y)| (x - ma) * (y - mb))
        .sum();
    Ok(s / (n - 1.0))
}

/// Central moment of order 2..4 of a vector (Table 1 `cm`).
pub fn central_moment(a: &DenseMatrix, order: u32) -> Result<f64> {
    if a.is_empty() {
        return Err(MatrixError::InvalidArgument {
            op: "cm",
            msg: "empty input".into(),
        });
    }
    if !(2..=4).contains(&order) {
        return Err(MatrixError::InvalidArgument {
            op: "cm",
            msg: format!("order {order} not in 2..=4"),
        });
    }
    let n = a.len() as f64;
    let mean = a.values().iter().sum::<f64>() / n;
    let s: f64 = a
        .values()
        .iter()
        .map(|&x| (x - mean).powi(order as i32))
        .sum();
    Ok(s / n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rand_matrix;

    #[test]
    fn unary_ops_scalar_semantics() {
        assert_eq!(UnaryOp::Round.apply(2.5), 3.0);
        assert_eq!(UnaryOp::Round.apply(-2.5), -3.0);
        assert_eq!(UnaryOp::Sign.apply(-0.3), -1.0);
        assert_eq!(UnaryOp::Not.apply(0.0), 1.0);
        assert_eq!(UnaryOp::IsNa.apply(f64::NAN), 1.0);
        assert_eq!(UnaryOp::IsNa.apply(1.0), 0.0);
        assert!((UnaryOp::Sigmoid.apply(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = rand_matrix(5, 7, -3.0, 3.0, 11);
        let s = softmax(&x);
        for r in 0..5 {
            let sum: f64 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
            assert!(s.row(r).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn binary_broadcast_row_vector() {
        let x = DenseMatrix::new(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let v = DenseMatrix::row_vector(&[10., 20., 30.]);
        let got = binary(&x, BinaryOp::Add, &v).unwrap();
        assert_eq!(got.values(), &[11., 22., 33., 14., 25., 36.]);
    }

    #[test]
    fn binary_broadcast_col_vector() {
        let x = DenseMatrix::new(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let v = DenseMatrix::col_vector(&[10., 100.]);
        let got = binary(&x, BinaryOp::Mul, &v).unwrap();
        assert_eq!(got.values(), &[10., 20., 30., 400., 500., 600.]);
    }

    #[test]
    fn binary_broadcast_scalar_matrix() {
        let x = DenseMatrix::new(1, 3, vec![1., 2., 3.]).unwrap();
        let s = DenseMatrix::filled(1, 1, 2.0);
        let got = binary(&x, BinaryOp::Pow, &s).unwrap();
        assert_eq!(got.values(), &[1., 4., 9.]);
    }

    #[test]
    fn binary_rejects_incompatible_shapes() {
        let x = DenseMatrix::zeros(2, 3);
        let y = DenseMatrix::zeros(3, 2);
        assert!(binary(&x, BinaryOp::Add, &y).is_err());
    }

    #[test]
    fn scalar_swap_order() {
        let x = DenseMatrix::new(1, 2, vec![1., 4.]).unwrap();
        let a = scalar(&x, BinaryOp::Sub, 1.0, false);
        assert_eq!(a.values(), &[0., 3.]);
        let b = scalar(&x, BinaryOp::Sub, 1.0, true);
        assert_eq!(b.values(), &[0., -3.]);
    }

    #[test]
    fn modulus_matches_r_semantics() {
        // R-style %%: result has the sign of the divisor.
        assert_eq!(BinaryOp::Mod.apply(5.0, 3.0), 2.0);
        assert_eq!(BinaryOp::Mod.apply(-5.0, 3.0), 1.0);
        assert_eq!(BinaryOp::IntDiv.apply(-5.0, 3.0), -2.0);
    }

    #[test]
    fn cov_matches_manual() {
        let a = DenseMatrix::col_vector(&[1., 2., 3., 4.]);
        let b = DenseMatrix::col_vector(&[2., 4., 6., 8.]);
        // cov(a, 2a) = 2 var(a); var([1..4]) = 5/3
        assert!((cov(&a, &b).unwrap() - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn central_moment_order2_is_population_variance() {
        let a = DenseMatrix::col_vector(&[1., 2., 3., 4.]);
        assert!((central_moment(&a, 2).unwrap() - 1.25).abs() < 1e-12);
        assert!(central_moment(&a, 5).is_err());
    }
}
