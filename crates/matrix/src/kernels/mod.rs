//! Dense kernels backing the Table-1 instruction surface.
//!
//! Modules mirror the paper's operation-type rows:
//!
//! | Table 1 row            | Module |
//! |------------------------|--------|
//! | Matmult (mm/tsmm/mmchain) | [`matmul`] |
//! | Aggregates             | [`aggregates`] |
//! | Unary                  | [`elementwise`] ([`elementwise::unary`]) |
//! | Binary                 | [`elementwise`] (matrix/vector/scalar with broadcasting) |
//! | Ternary                | [`ternary`] (`ctable`, `ifelse`, `+*`, `-*`) |
//! | Quaternary             | [`quaternary`] (`wsloss`, `wsigmoid`, `wdivmm`, `wcemm`) |
//! | Transform/Reorg        | [`reorg`] (`rbind`, `cbind`, `t`, `removeEmpty`, `replace`, `reshape`, indexing) |

pub mod aggregates;
pub mod elementwise;
pub mod matmul;
pub mod quaternary;
pub mod reorg;
pub mod ternary;

/// Minimum per-chunk work (in multiply-add units) before a kernel fans
/// out across the [`exdra_par`] pool: below this, spawn/steal overhead
/// dominates and the kernels stay single-chunk (= exactly serial).
pub(crate) const PAR_MIN_WORK: usize = 1 << 15;

/// Smallest chunk size (in items) for a kernel whose per-item cost is
/// `cost_per_item` multiply-adds, derived from [`PAR_MIN_WORK`].
pub(crate) fn par_floor(cost_per_item: usize) -> usize {
    (PAR_MIN_WORK / cost_per_item.max(1)).max(1)
}
