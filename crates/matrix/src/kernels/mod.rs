//! Dense kernels backing the Table-1 instruction surface.
//!
//! Modules mirror the paper's operation-type rows:
//!
//! | Table 1 row            | Module |
//! |------------------------|--------|
//! | Matmult (mm/tsmm/mmchain) | [`matmul`] |
//! | Aggregates             | [`aggregates`] |
//! | Unary                  | [`elementwise`] ([`elementwise::unary`]) |
//! | Binary                 | [`elementwise`] (matrix/vector/scalar with broadcasting) |
//! | Ternary                | [`ternary`] (`ctable`, `ifelse`, `+*`, `-*`) |
//! | Quaternary             | [`quaternary`] (`wsloss`, `wsigmoid`, `wdivmm`, `wcemm`) |
//! | Transform/Reorg        | [`reorg`] (`rbind`, `cbind`, `t`, `removeEmpty`, `replace`, `reshape`, indexing) |

pub mod aggregates;
pub mod elementwise;
pub mod matmul;
pub mod quaternary;
pub mod reorg;
pub mod ternary;
