//! Matrix multiplication kernels: `mm`, `tsmm` (transpose-self), and
//! `mmchain` (the fused `Xᵀ (w ⊙ (X v))` pattern used by LM and MLogReg).

// Parallel-array index loops are intentional in the hot kernels below:
// iterator zips over 3+ arrays obscure the access pattern.
#![allow(clippy::needless_range_loop)]

use super::par_floor;
use crate::dense::DenseMatrix;
use crate::error::{MatrixError, Result};

/// Cache-blocking tile edge (in elements) for the general kernel.
const TILE: usize = 64;

/// General matrix multiplication `lhs (m x k) * rhs (k x n)`.
///
/// Uses an i-k-j loop order with tiling over `k` so the inner loop streams
/// both the `rhs` row and the output row — the standard dense layout-friendly
/// schedule for row-major data. Output rows are split into disjoint blocks
/// fanned out across the `exdra_par` pool; every output cell accumulates in
/// k-ascending order regardless of the split, so the result is bitwise
/// identical at any thread count.
pub fn matmul(lhs: &DenseMatrix, rhs: &DenseMatrix) -> Result<DenseMatrix> {
    if lhs.cols() != rhs.rows() {
        return Err(MatrixError::DimensionMismatch {
            op: "matmul",
            lhs: lhs.shape(),
            rhs: rhs.shape(),
        });
    }
    let (m, k) = lhs.shape();
    let n = rhs.cols();
    let mut out = DenseMatrix::zeros(m, n);
    if m == 0 || n == 0 {
        return Ok(out);
    }
    let lv = lhs.values();
    let rv = rhs.values();
    // Fast path: matrix-vector. One dot product per output cell, written
    // straight through disjoint `values_mut()` chunks.
    if n == 1 {
        let rows_per_chunk = exdra_par::chunk_len(m, par_floor(k));
        exdra_par::par_chunks_mut(out.values_mut(), rows_per_chunk, |_, row0, chunk| {
            for (d, o) in chunk.iter_mut().enumerate() {
                let lrow = &lv[(row0 + d) * k..(row0 + d + 1) * k];
                let mut acc = 0.0;
                for (a, b) in lrow.iter().zip(rv) {
                    acc += a * b;
                }
                *o = acc;
            }
        });
        return Ok(out);
    }
    let rows_per_chunk = exdra_par::chunk_len(m, par_floor(k * n));
    exdra_par::par_chunks_mut(out.values_mut(), rows_per_chunk * n, |_, cell0, ochunk| {
        let i0 = cell0 / n;
        let rows = ochunk.len() / n;
        for kb in (0..k).step_by(TILE) {
            let kend = (kb + TILE).min(k);
            for di in 0..rows {
                let lrow = &lv[(i0 + di) * k..(i0 + di + 1) * k];
                let orow = &mut ochunk[di * n..(di + 1) * n];
                for kk in kb..kend {
                    let a = lrow[kk];
                    if a == 0.0 {
                        continue;
                    }
                    let rrow = &rv[kk * n..(kk + 1) * n];
                    for (o, &b) in orow.iter_mut().zip(rrow) {
                        *o += a * b;
                    }
                }
            }
        }
    });
    Ok(out)
}

/// Transpose-self matrix multiplication `tsmm`: computes `Xᵀ X` (`left=true`)
/// or `X Xᵀ` (`left=false`) exploiting the symmetry of the result.
pub fn tsmm(x: &DenseMatrix, left: bool) -> Result<DenseMatrix> {
    if left {
        let (m, n) = x.shape();
        let mut out = DenseMatrix::zeros(n, n);
        if n == 0 {
            return Ok(out);
        }
        let xv = x.values();
        // Output rows of the upper triangle are disjoint, so fan them out
        // in blocks; each cell still accumulates in r-ascending order with
        // the same zero-skip, keeping bits identical to the serial r-i-j
        // schedule. Upper rows carry more columns, but the pool's shared
        // queue lets early-finishing threads steal the cheap tail chunks.
        let rows_per_chunk = exdra_par::chunk_len(n, par_floor(m * (n / 2 + 1)));
        exdra_par::par_chunks_mut(out.values_mut(), rows_per_chunk * n, |_, cell0, ochunk| {
            let i0 = cell0 / n;
            let rows = ochunk.len() / n;
            for r in 0..m {
                let row = &xv[r * n..(r + 1) * n];
                for di in 0..rows {
                    let a = row[i0 + di];
                    if a == 0.0 {
                        continue;
                    }
                    let orow = &mut ochunk[di * n..(di + 1) * n];
                    for j in (i0 + di)..n {
                        orow[j] += a * row[j];
                    }
                }
            }
        });
        // Mirror the upper triangle.
        for i in 0..n {
            for j in (i + 1)..n {
                let v = out.get(i, j);
                out.set(j, i, v);
            }
        }
        Ok(out)
    } else {
        let xt = super::reorg::transpose(x);
        tsmm(&xt, true)
    }
}

/// Fused matrix-multiplication chain `Xᵀ (w ⊙ (X v))`.
///
/// With `w = None` this is `Xᵀ (X v)` — the conjugate-gradient inner step of
/// the paper's LM algorithm. The fusion avoids materializing `X v` twice and
/// is the exact `mmchain` instruction of Table 1.
pub fn mmchain(x: &DenseMatrix, v: &DenseMatrix, w: Option<&DenseMatrix>) -> Result<DenseMatrix> {
    if x.cols() != v.rows() || v.cols() != 1 {
        return Err(MatrixError::DimensionMismatch {
            op: "mmchain",
            lhs: x.shape(),
            rhs: v.shape(),
        });
    }
    if let Some(w) = w {
        if w.rows() != x.rows() || w.cols() != 1 {
            return Err(MatrixError::DimensionMismatch {
                op: "mmchain",
                lhs: x.shape(),
                rhs: w.shape(),
            });
        }
    }
    let (m, n) = x.shape();
    let vv = v.values();
    let xv = x.values();
    let wv = w.map(|w| w.values());
    let mut out = DenseMatrix::zeros(n, 1);
    if m == 0 || n == 0 {
        return Ok(out);
    }
    // Phase 1: q = (X v) ⊙ w — one dot product per row, row-disjoint.
    let mut q = vec![0.0; m];
    exdra_par::par_chunks_mut(
        &mut q,
        exdra_par::chunk_len(m, par_floor(n)),
        |_, i0, chunk| {
            for (d, qi) in chunk.iter_mut().enumerate() {
                let row = &xv[(i0 + d) * n..(i0 + d + 1) * n];
                let mut acc = 0.0;
                for (a, b) in row.iter().zip(vv) {
                    acc += a * b;
                }
                if let Some(wv) = wv {
                    acc *= wv[i0 + d];
                }
                *qi = acc;
            }
        },
    );
    // Phase 2: out = Xᵀ q over disjoint column blocks of the output;
    // each out[j] accumulates i-ascending with the same q≠0 skip as the
    // fused serial loop, so bits match at any split.
    let q = &q;
    let cols_per_chunk = exdra_par::chunk_len(n, par_floor(m));
    exdra_par::par_chunks_mut(out.values_mut(), cols_per_chunk, |_, j0, ochunk| {
        let width = ochunk.len();
        for (i, &qi) in q.iter().enumerate() {
            if qi == 0.0 {
                continue;
            }
            let seg = &xv[i * n + j0..i * n + j0 + width];
            for (o, &a) in ochunk.iter_mut().zip(seg) {
                *o += qi * a;
            }
        }
    });
    Ok(out)
}

/// Naive triple-loop reference used by tests to validate the tiled kernel.
pub fn matmul_naive(lhs: &DenseMatrix, rhs: &DenseMatrix) -> Result<DenseMatrix> {
    if lhs.cols() != rhs.rows() {
        return Err(MatrixError::DimensionMismatch {
            op: "matmul_naive",
            lhs: lhs.shape(),
            rhs: rhs.shape(),
        });
    }
    let (m, k) = lhs.shape();
    let n = rhs.cols();
    let mut out = DenseMatrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for kk in 0..k {
                acc += lhs.get(i, kk) * rhs.get(kk, j);
            }
            out.set(i, j, acc);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rand_matrix;

    #[test]
    fn tiled_matches_naive() {
        let a = rand_matrix(37, 113, 0.0, 1.0, 1);
        let b = rand_matrix(113, 29, -1.0, 1.0, 2);
        let got = matmul(&a, &b).unwrap();
        let want = matmul_naive(&a, &b).unwrap();
        assert!(got.max_abs_diff(&want) < 1e-9);
    }

    #[test]
    fn matmul_dimension_check() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn matrix_vector_fast_path() {
        let a = rand_matrix(64, 16, 0.0, 1.0, 3);
        let v = rand_matrix(16, 1, 0.0, 1.0, 4);
        let got = matmul(&a, &v).unwrap();
        let want = matmul_naive(&a, &v).unwrap();
        assert!(got.max_abs_diff(&want) < 1e-10);
    }

    #[test]
    fn tsmm_left_matches_explicit() {
        let x = rand_matrix(50, 7, -2.0, 2.0, 5);
        let got = tsmm(&x, true).unwrap();
        let xt = super::super::reorg::transpose(&x);
        let want = matmul_naive(&xt, &x).unwrap();
        assert!(got.max_abs_diff(&want) < 1e-9);
    }

    #[test]
    fn tsmm_right_matches_explicit() {
        let x = rand_matrix(9, 20, -2.0, 2.0, 6);
        let got = tsmm(&x, false).unwrap();
        let xt = super::super::reorg::transpose(&x);
        let want = matmul_naive(&x, &xt).unwrap();
        assert!(got.max_abs_diff(&want) < 1e-9);
    }

    #[test]
    fn mmchain_matches_composition() {
        let x = rand_matrix(40, 11, -1.0, 1.0, 7);
        let v = rand_matrix(11, 1, -1.0, 1.0, 8);
        let w = rand_matrix(40, 1, 0.0, 1.0, 9);
        let xt = super::super::reorg::transpose(&x);

        let got = mmchain(&x, &v, None).unwrap();
        let want = matmul_naive(&xt, &matmul_naive(&x, &v).unwrap()).unwrap();
        assert!(got.max_abs_diff(&want) < 1e-9);

        let got_w = mmchain(&x, &v, Some(&w)).unwrap();
        let xv = matmul_naive(&x, &v).unwrap();
        let wxv = w.zip(&xv, "mul", |a, b| a * b).unwrap();
        let want_w = matmul_naive(&xt, &wxv).unwrap();
        assert!(got_w.max_abs_diff(&want_w) < 1e-9);
    }
}
