//! Matrix multiplication kernels: `mm`, `tsmm` (transpose-self), and
//! `mmchain` (the fused `Xᵀ (w ⊙ (X v))` pattern used by LM and MLogReg).

// Parallel-array index loops are intentional in the hot kernels below:
// iterator zips over 3+ arrays obscure the access pattern.
#![allow(clippy::needless_range_loop)]

use crate::dense::DenseMatrix;
use crate::error::{MatrixError, Result};

/// Cache-blocking tile edge (in elements) for the general kernel.
const TILE: usize = 64;

/// General matrix multiplication `lhs (m x k) * rhs (k x n)`.
///
/// Uses an i-k-j loop order with tiling over `k` so the inner loop streams
/// both the `rhs` row and the output row — the standard dense layout-friendly
/// schedule for row-major data.
pub fn matmul(lhs: &DenseMatrix, rhs: &DenseMatrix) -> Result<DenseMatrix> {
    if lhs.cols() != rhs.rows() {
        return Err(MatrixError::DimensionMismatch {
            op: "matmul",
            lhs: lhs.shape(),
            rhs: rhs.shape(),
        });
    }
    let (m, k) = lhs.shape();
    let n = rhs.cols();
    let mut out = DenseMatrix::zeros(m, n);
    // Fast path: matrix-vector.
    if n == 1 {
        let rv = rhs.values();
        for i in 0..m {
            let row = lhs.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(rv) {
                acc += a * b;
            }
            out.set(i, 0, acc);
        }
        return Ok(out);
    }
    for kb in (0..k).step_by(TILE) {
        let kend = (kb + TILE).min(k);
        for i in 0..m {
            let lrow = lhs.row(i);
            // Split borrows: copy the output row pointer once per (i, kb).
            let orow_start = i * n;
            let out_vals = out.values_mut();
            for kk in kb..kend {
                let a = lrow[kk];
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(kk);
                let orow = &mut out_vals[orow_start..orow_start + n];
                for (o, &b) in orow.iter_mut().zip(rrow) {
                    *o += a * b;
                }
            }
        }
    }
    Ok(out)
}

/// Transpose-self matrix multiplication `tsmm`: computes `Xᵀ X` (`left=true`)
/// or `X Xᵀ` (`left=false`) exploiting the symmetry of the result.
pub fn tsmm(x: &DenseMatrix, left: bool) -> Result<DenseMatrix> {
    if left {
        let (m, n) = x.shape();
        let mut out = DenseMatrix::zeros(n, n);
        for r in 0..m {
            let row = x.row(r);
            for i in 0..n {
                let a = row[i];
                if a == 0.0 {
                    continue;
                }
                let orow_start = i * n;
                let out_vals = out.values_mut();
                for j in i..n {
                    out_vals[orow_start + j] += a * row[j];
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..n {
            for j in (i + 1)..n {
                let v = out.get(i, j);
                out.set(j, i, v);
            }
        }
        Ok(out)
    } else {
        let xt = super::reorg::transpose(x);
        tsmm(&xt, true)
    }
}

/// Fused matrix-multiplication chain `Xᵀ (w ⊙ (X v))`.
///
/// With `w = None` this is `Xᵀ (X v)` — the conjugate-gradient inner step of
/// the paper's LM algorithm. The fusion avoids materializing `X v` twice and
/// is the exact `mmchain` instruction of Table 1.
pub fn mmchain(x: &DenseMatrix, v: &DenseMatrix, w: Option<&DenseMatrix>) -> Result<DenseMatrix> {
    if x.cols() != v.rows() || v.cols() != 1 {
        return Err(MatrixError::DimensionMismatch {
            op: "mmchain",
            lhs: x.shape(),
            rhs: v.shape(),
        });
    }
    if let Some(w) = w {
        if w.rows() != x.rows() || w.cols() != 1 {
            return Err(MatrixError::DimensionMismatch {
                op: "mmchain",
                lhs: x.shape(),
                rhs: w.shape(),
            });
        }
    }
    let (m, n) = x.shape();
    let vv = v.values();
    let mut out = DenseMatrix::zeros(n, 1);
    let out_vals = out.values_mut();
    for i in 0..m {
        let row = x.row(i);
        let mut q = 0.0;
        for (a, b) in row.iter().zip(vv) {
            q += a * b;
        }
        if let Some(w) = w {
            q *= w.values()[i];
        }
        if q != 0.0 {
            for (o, &a) in out_vals.iter_mut().zip(row) {
                *o += q * a;
            }
        }
    }
    Ok(out)
}

/// Naive triple-loop reference used by tests to validate the tiled kernel.
pub fn matmul_naive(lhs: &DenseMatrix, rhs: &DenseMatrix) -> Result<DenseMatrix> {
    if lhs.cols() != rhs.rows() {
        return Err(MatrixError::DimensionMismatch {
            op: "matmul_naive",
            lhs: lhs.shape(),
            rhs: rhs.shape(),
        });
    }
    let (m, k) = lhs.shape();
    let n = rhs.cols();
    let mut out = DenseMatrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for kk in 0..k {
                acc += lhs.get(i, kk) * rhs.get(kk, j);
            }
            out.set(i, j, acc);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rand_matrix;

    #[test]
    fn tiled_matches_naive() {
        let a = rand_matrix(37, 113, 0.0, 1.0, 1);
        let b = rand_matrix(113, 29, -1.0, 1.0, 2);
        let got = matmul(&a, &b).unwrap();
        let want = matmul_naive(&a, &b).unwrap();
        assert!(got.max_abs_diff(&want) < 1e-9);
    }

    #[test]
    fn matmul_dimension_check() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn matrix_vector_fast_path() {
        let a = rand_matrix(64, 16, 0.0, 1.0, 3);
        let v = rand_matrix(16, 1, 0.0, 1.0, 4);
        let got = matmul(&a, &v).unwrap();
        let want = matmul_naive(&a, &v).unwrap();
        assert!(got.max_abs_diff(&want) < 1e-10);
    }

    #[test]
    fn tsmm_left_matches_explicit() {
        let x = rand_matrix(50, 7, -2.0, 2.0, 5);
        let got = tsmm(&x, true).unwrap();
        let xt = super::super::reorg::transpose(&x);
        let want = matmul_naive(&xt, &x).unwrap();
        assert!(got.max_abs_diff(&want) < 1e-9);
    }

    #[test]
    fn tsmm_right_matches_explicit() {
        let x = rand_matrix(9, 20, -2.0, 2.0, 6);
        let got = tsmm(&x, false).unwrap();
        let xt = super::super::reorg::transpose(&x);
        let want = matmul_naive(&x, &xt).unwrap();
        assert!(got.max_abs_diff(&want) < 1e-9);
    }

    #[test]
    fn mmchain_matches_composition() {
        let x = rand_matrix(40, 11, -1.0, 1.0, 7);
        let v = rand_matrix(11, 1, -1.0, 1.0, 8);
        let w = rand_matrix(40, 1, 0.0, 1.0, 9);
        let xt = super::super::reorg::transpose(&x);

        let got = mmchain(&x, &v, None).unwrap();
        let want = matmul_naive(&xt, &matmul_naive(&x, &v).unwrap()).unwrap();
        assert!(got.max_abs_diff(&want) < 1e-9);

        let got_w = mmchain(&x, &v, Some(&w)).unwrap();
        let xv = matmul_naive(&x, &v).unwrap();
        let wxv = w.zip(&xv, "mul", |a, b| a * b).unwrap();
        let want_w = matmul_naive(&xt, &wxv).unwrap();
        assert!(got_w.max_abs_diff(&want_w) < 1e-9);
    }
}
