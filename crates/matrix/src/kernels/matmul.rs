//! Matrix multiplication kernels: `mm`, `tsmm` (transpose-self), and
//! `mmchain` (the fused `Xᵀ (w ⊙ (X v))` pattern used by LM and MLogReg).
//!
//! The general kernel is a cache- and register-blocked GEMM (DESIGN.md
//! §4k): `lhs` micro-panels and `rhs` column panels are packed into
//! contiguous buffers, tiled over `k` in [`KC`]-deep slabs, and reduced by
//! a fully-unrolled [`MR`]`x`[`NR`] register micro-tile. Every output
//! cell still accumulates its `a*b` terms as one left-to-right chain in
//! k-ascending order — blocking changes *where* the operands come from,
//! never the order they are added — so the result is bitwise identical to
//! [`matmul_naive`] at every thread count (the PR 4 determinism
//! contract).
//!
//! The hot bodies are compiled twice: once for the portable baseline and
//! once with AVX2 enabled (plus a hand-vectorized AVX-512 micro-tile),
//! selected by runtime CPU detection. The wide paths perform the exact
//! same lane-wise multiplies and adds — no fused multiply-add is ever
//! emitted — so every dispatch target rounds identically; the proptest
//! oracle suite pins all of them to `matmul_naive` bit for bit.

// Parallel-array index loops are intentional in the hot kernels below:
// iterator zips over 3+ arrays obscure the access pattern.
#![allow(clippy::needless_range_loop)]

use super::par_floor;
use crate::dense::DenseMatrix;
use crate::error::{MatrixError, Result};

/// Cache-blocking tile edge (in elements) of the pre-blocking kernel,
/// kept for [`matmul_unblocked`].
const TILE: usize = 64;

/// Rows of the register micro-tile (unroll factor in the M direction).
pub const MR: usize = 4;
/// Columns of the register micro-tile (unroll factor in the N direction):
/// one AVX-512 lane group, or two AVX2 lane groups, per tile row. The
/// `MR x NR` accumulator gives eight independent AVX2 add chains, enough
/// to cover the `vaddpd` latency that a 4-wide tile stalls on.
pub const NR: usize = 8;
/// Depth of one packed k-slab: a [`NR`]-wide rhs panel is `KC * NR`
/// doubles (16 KiB) and stays L1-resident while every micro-tile of the
/// row block reduces against it.
pub const KC: usize = 256;

/// The fully-unrolled `MR x NR` micro-kernel: `acc[i][j] += a[i] * b[j]`
/// for each of the `kc` packed depth steps. Terms are added one at a
/// time in t-ascending order, so each cell's accumulation chain is
/// exactly the k-ascending chain of the naive kernel. Dispatches to a
/// hand-vectorized twin when the CPU allows; all twins perform the same
/// lane-wise IEEE-754 multiplies and adds, so the choice never changes a
/// single output bit.
#[inline(always)]
fn micro_tile(kc: usize, ap: &[f64], bp: &[f64], acc: &mut [[f64; NR]; MR]) {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: each call is guarded by its runtime feature
        // detection; panel bounds are asserted inside the twins.
        if avx512_available() {
            unsafe { micro_tile_avx512(kc, ap, bp, acc) };
            return;
        }
        if avx2_available() {
            unsafe { micro_tile_avx2(kc, ap, bp, acc) };
            return;
        }
    }
    micro_tile_scalar(kc, ap, bp, acc);
}

/// Portable body of [`micro_tile`]: accumulates in a by-value copy so
/// the tile lives in registers for the whole depth loop instead of
/// round-tripping through the stack.
#[inline(always)]
fn micro_tile_scalar(kc: usize, ap: &[f64], bp: &[f64], acc: &mut [[f64; NR]; MR]) {
    let mut c = *acc;
    let panels = ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(kc);
    for (a, b) in panels {
        for i in 0..MR {
            let ai = a[i];
            for j in 0..NR {
                c[i][j] += ai * b[j];
            }
        }
    }
    *acc = c;
}

// The vector twins hard-code two 256-bit (one 512-bit) lane groups per
// tile row.
#[cfg(target_arch = "x86_64")]
const _: () = assert!(MR == 4 && NR == 8, "vector micro-tiles assume a 4x8 tile");

/// AVX2 twin of [`micro_tile`]: the same 32 `acc[i][j] += a[i] * b[j]`
/// updates per depth step, issued as broadcast/`vmulpd`/`vaddpd` triples
/// over two 4-lane groups per tile row. Multiply and add are lane-wise
/// IEEE-754 operations — lane `j` computes exactly the scalar
/// `acc[i][j] + a[i] * b[j]` with the same rounding, and no fused
/// multiply-add is ever emitted — so the twin is bitwise identical to
/// [`micro_tile_scalar`] by construction (and the proptest oracle suite
/// pins it to `matmul_naive`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn micro_tile_avx2(kc: usize, ap: &[f64], bp: &[f64], acc: &mut [[f64; NR]; MR]) {
    use core::arch::x86_64::*;
    assert!(
        ap.len() >= kc * MR && bp.len() >= kc * NR,
        "packed panel underflow"
    );
    // SAFETY (for the raw loads below): each row of `acc` is NR = 8
    // contiguous doubles, and every `ap`/`bp` offset stays inside the
    // panel lengths asserted above.
    let mut c00 = _mm256_loadu_pd(acc[0].as_ptr());
    let mut c01 = _mm256_loadu_pd(acc[0].as_ptr().add(4));
    let mut c10 = _mm256_loadu_pd(acc[1].as_ptr());
    let mut c11 = _mm256_loadu_pd(acc[1].as_ptr().add(4));
    let mut c20 = _mm256_loadu_pd(acc[2].as_ptr());
    let mut c21 = _mm256_loadu_pd(acc[2].as_ptr().add(4));
    let mut c30 = _mm256_loadu_pd(acc[3].as_ptr());
    let mut c31 = _mm256_loadu_pd(acc[3].as_ptr().add(4));
    for t in 0..kc {
        let b0 = _mm256_loadu_pd(bp.as_ptr().add(t * NR));
        let b1 = _mm256_loadu_pd(bp.as_ptr().add(t * NR + 4));
        let a = ap.as_ptr().add(t * MR);
        let a0 = _mm256_set1_pd(*a);
        c00 = _mm256_add_pd(c00, _mm256_mul_pd(a0, b0));
        c01 = _mm256_add_pd(c01, _mm256_mul_pd(a0, b1));
        let a1 = _mm256_set1_pd(*a.add(1));
        c10 = _mm256_add_pd(c10, _mm256_mul_pd(a1, b0));
        c11 = _mm256_add_pd(c11, _mm256_mul_pd(a1, b1));
        let a2 = _mm256_set1_pd(*a.add(2));
        c20 = _mm256_add_pd(c20, _mm256_mul_pd(a2, b0));
        c21 = _mm256_add_pd(c21, _mm256_mul_pd(a2, b1));
        let a3 = _mm256_set1_pd(*a.add(3));
        c30 = _mm256_add_pd(c30, _mm256_mul_pd(a3, b0));
        c31 = _mm256_add_pd(c31, _mm256_mul_pd(a3, b1));
    }
    _mm256_storeu_pd(acc[0].as_mut_ptr(), c00);
    _mm256_storeu_pd(acc[0].as_mut_ptr().add(4), c01);
    _mm256_storeu_pd(acc[1].as_mut_ptr(), c10);
    _mm256_storeu_pd(acc[1].as_mut_ptr().add(4), c11);
    _mm256_storeu_pd(acc[2].as_mut_ptr(), c20);
    _mm256_storeu_pd(acc[2].as_mut_ptr().add(4), c21);
    _mm256_storeu_pd(acc[3].as_mut_ptr(), c30);
    _mm256_storeu_pd(acc[3].as_mut_ptr().add(4), c31);
}

/// AVX-512 twin of [`micro_tile`]: one 8-lane group per tile row, four
/// broadcast/`vmulpd`/`vaddpd` triples per depth step. Same lane-wise
/// rounding argument as [`micro_tile_avx2`] — no FMA, no reassociation —
/// so it too is bitwise identical to the scalar body.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn micro_tile_avx512(kc: usize, ap: &[f64], bp: &[f64], acc: &mut [[f64; NR]; MR]) {
    use core::arch::x86_64::*;
    assert!(
        ap.len() >= kc * MR && bp.len() >= kc * NR,
        "packed panel underflow"
    );
    // SAFETY: as in [`micro_tile_avx2`] — NR = 8 doubles per `acc` row,
    // offsets bounded by the assert above.
    let mut c0 = _mm512_loadu_pd(acc[0].as_ptr());
    let mut c1 = _mm512_loadu_pd(acc[1].as_ptr());
    let mut c2 = _mm512_loadu_pd(acc[2].as_ptr());
    let mut c3 = _mm512_loadu_pd(acc[3].as_ptr());
    for t in 0..kc {
        let b = _mm512_loadu_pd(bp.as_ptr().add(t * NR));
        let a = ap.as_ptr().add(t * MR);
        c0 = _mm512_add_pd(c0, _mm512_mul_pd(_mm512_set1_pd(*a), b));
        c1 = _mm512_add_pd(c1, _mm512_mul_pd(_mm512_set1_pd(*a.add(1)), b));
        c2 = _mm512_add_pd(c2, _mm512_mul_pd(_mm512_set1_pd(*a.add(2)), b));
        c3 = _mm512_add_pd(c3, _mm512_mul_pd(_mm512_set1_pd(*a.add(3)), b));
    }
    _mm512_storeu_pd(acc[0].as_mut_ptr(), c0);
    _mm512_storeu_pd(acc[1].as_mut_ptr(), c1);
    _mm512_storeu_pd(acc[2].as_mut_ptr(), c2);
    _mm512_storeu_pd(acc[3].as_mut_ptr(), c3);
}

/// Edge-tile micro-kernel for ragged `mr x nr` remainders
/// (`mr <= MR, nr <= NR`); same packed layout and reduction order as
/// [`micro_tile`].
#[inline(always)]
fn micro_tail(kc: usize, mr: usize, nr: usize, ap: &[f64], bp: &[f64], acc: &mut [[f64; NR]; MR]) {
    for t in 0..kc {
        let a: &[f64; MR] = ap[t * MR..t * MR + MR].try_into().unwrap();
        let b: &[f64; NR] = bp[t * NR..t * NR + NR].try_into().unwrap();
        for i in 0..mr {
            for j in 0..nr {
                acc[i][j] += a[i] * b[j];
            }
        }
    }
}

/// True when the running CPU supports AVX2. The default `x86-64` target
/// only assumes SSE2, which halves f64 SIMD width; the blocked kernels
/// therefore carry a second compilation of the *same* Rust body gated on
/// AVX2 and dispatch here at runtime. Rust never contracts `a * b + c`
/// into a fused multiply-add, so both compilations round every term
/// identically — the wider path is bitwise-equal by construction (and
/// the proptest oracle suite enforces it).
#[inline]
fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// True when the running CPU supports the AVX-512 foundation subset,
/// which is all [`micro_tile_avx512`] uses.
#[cfg(target_arch = "x86_64")]
#[inline]
fn avx512_available() -> bool {
    std::arch::is_x86_feature_detected!("avx512f")
}

/// Expands an AVX2-compiled twin of an `#[inline(always)]` kernel body
/// plus a dispatcher that picks it when the CPU allows. The body is
/// written once; the twin differs only in the instructions LLVM may
/// select, never in operation order or rounding.
macro_rules! avx2_twin {
    ($dispatch:ident / $twin:ident => $body:ident ($($arg:ident: $ty:ty),* $(,)?)) => {
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2")]
        unsafe fn $twin($($arg: $ty),*) {
            $body($($arg),*);
        }

        #[inline]
        fn $dispatch($($arg: $ty),*) {
            #[cfg(target_arch = "x86_64")]
            if avx2_available() {
                // SAFETY: guarded by the runtime AVX2 detection above;
                // the body itself is plain safe Rust.
                unsafe { $twin($($arg),*) };
                return;
            }
            $body($($arg),*);
        }
    };
}

/// General matrix multiplication `lhs (m x k) * rhs (k x n)`.
///
/// Blocked schedule: output rows split into disjoint blocks fanned out
/// across the `exdra_par` pool; within a block, `k` is tiled in [`KC`]
/// slabs, the rhs slab is packed into [`NR`]-wide column panels, each
/// [`MR`]-row lhs micro-panel is packed depth-major, and an `MR x NR`
/// register tile reduces the slab. Every cell's terms are added in
/// k-ascending order with the output cell carried through the slabs, so
/// the result is bitwise identical to [`matmul_naive`] at any thread
/// count and any block geometry.
pub fn matmul(lhs: &DenseMatrix, rhs: &DenseMatrix) -> Result<DenseMatrix> {
    if lhs.cols() != rhs.rows() {
        return Err(MatrixError::DimensionMismatch {
            op: "matmul",
            lhs: lhs.shape(),
            rhs: rhs.shape(),
        });
    }
    let (m, k) = lhs.shape();
    let n = rhs.cols();
    let mut out = DenseMatrix::zeros(m, n);
    if m == 0 || n == 0 {
        return Ok(out);
    }
    let lv = lhs.values();
    let rv = rhs.values();
    // Fast path: matrix-vector. One dot product per output cell, written
    // straight through disjoint `values_mut()` chunks.
    if n == 1 {
        let rows_per_chunk = exdra_par::chunk_len(m, par_floor(k));
        exdra_par::par_chunks_mut(out.values_mut(), rows_per_chunk, |_, row0, chunk| {
            matvec_chunk(lv, rv, k, row0, chunk);
        });
        return Ok(out);
    }
    let rows_per_chunk = exdra_par::chunk_len(m, par_floor(k * n));
    let npanels = n.div_ceil(NR);
    exdra_par::par_chunks_mut(out.values_mut(), rows_per_chunk * n, |_, cell0, ochunk| {
        gemm_chunk(lv, rv, k, n, npanels, cell0 / n, ochunk);
    });
    Ok(out)
}

/// One parallel chunk of the matrix-vector fast path.
#[inline(always)]
fn matvec_chunk_body(lv: &[f64], rv: &[f64], k: usize, row0: usize, chunk: &mut [f64]) {
    for (d, o) in chunk.iter_mut().enumerate() {
        let lrow = &lv[(row0 + d) * k..(row0 + d + 1) * k];
        let mut acc = 0.0;
        for (a, b) in lrow.iter().zip(rv) {
            acc += a * b;
        }
        *o = acc;
    }
}
avx2_twin!(matvec_chunk / matvec_chunk_avx2 => matvec_chunk_body(
    lv: &[f64], rv: &[f64], k: usize, row0: usize, chunk: &mut [f64]
));

/// One parallel chunk of the blocked GEMM: pack the rhs slab into
/// NR-wide column panels, each MR-row lhs micro-panel depth-major, and
/// reduce with the register micro-tile, carrying output cells through
/// the k-slabs.
#[inline(always)]
fn gemm_chunk_body(
    lv: &[f64],
    rv: &[f64],
    k: usize,
    n: usize,
    npanels: usize,
    i0: usize,
    ochunk: &mut [f64],
) {
    let rows = ochunk.len() / n;
    // Packed buffers are per chunk: no cross-thread sharing, and the
    // rhs panel layout is identical however the rows are split.
    let mut bpack = vec![0.0f64; npanels * KC * NR];
    let mut apack = vec![0.0f64; KC * MR];
    for kb in (0..k).step_by(KC) {
        let kc = (kb + KC).min(k) - kb;
        // Pack the rhs slab into NR-wide column panels, depth-major
        // within each panel. Ragged tail lanes stay at the buffer's
        // initial 0.0 and are never read back.
        for t in 0..kc {
            let rrow = &rv[(kb + t) * n..(kb + t + 1) * n];
            for (jp, colseg) in rrow.chunks(NR).enumerate() {
                bpack[jp * KC * NR + t * NR..][..colseg.len()].copy_from_slice(colseg);
            }
        }
        for ip in (0..rows).step_by(MR) {
            let mr = (ip + MR).min(rows) - ip;
            // Pack the lhs micro-panel, MR-interleaved: apack[t*MR+i]
            // holds lhs[i0+ip+i][kb+t]. Stale tail lanes (mr < MR)
            // feed accumulator rows that are never stored.
            for lane in 0..mr {
                let lrow = &lv[(i0 + ip + lane) * k + kb..][..kc];
                for t in 0..kc {
                    apack[t * MR + lane] = lrow[t];
                }
            }
            for jp in 0..npanels {
                let j0 = jp * NR;
                let nr = (j0 + NR).min(n) - j0;
                let bp = &bpack[jp * KC * NR..][..kc * NR];
                // Carry the output micro-tile through the k-slabs:
                // load, extend each cell's chain term by term, store.
                let mut acc = [[0.0f64; NR]; MR];
                for i in 0..mr {
                    let orow = &ochunk[(ip + i) * n + j0..];
                    acc[i][..nr].copy_from_slice(&orow[..nr]);
                }
                if mr == MR && nr == NR {
                    micro_tile(kc, &apack, bp, &mut acc);
                } else {
                    micro_tail(kc, mr, nr, &apack, bp, &mut acc);
                }
                for i in 0..mr {
                    let orow = &mut ochunk[(ip + i) * n + j0..];
                    orow[..nr].copy_from_slice(&acc[i][..nr]);
                }
            }
        }
    }
}
avx2_twin!(gemm_chunk / gemm_chunk_avx2 => gemm_chunk_body(
    lv: &[f64], rv: &[f64], k: usize, n: usize, npanels: usize, i0: usize, ochunk: &mut [f64]
));

/// The pre-blocking general kernel (i-k-j with a k tile and a zero-skip),
/// kept as the measured baseline for `kernel_bench`'s blocked-vs-serial
/// comparison. Not dispatched by any production path.
pub fn matmul_unblocked(lhs: &DenseMatrix, rhs: &DenseMatrix) -> Result<DenseMatrix> {
    if lhs.cols() != rhs.rows() {
        return Err(MatrixError::DimensionMismatch {
            op: "matmul_unblocked",
            lhs: lhs.shape(),
            rhs: rhs.shape(),
        });
    }
    let (m, k) = lhs.shape();
    let n = rhs.cols();
    let mut out = DenseMatrix::zeros(m, n);
    if m == 0 || n == 0 {
        return Ok(out);
    }
    let lv = lhs.values();
    let rv = rhs.values();
    let rows_per_chunk = exdra_par::chunk_len(m, par_floor(k * n));
    exdra_par::par_chunks_mut(out.values_mut(), rows_per_chunk * n, |_, cell0, ochunk| {
        let i0 = cell0 / n;
        let rows = ochunk.len() / n;
        for kb in (0..k).step_by(TILE) {
            let kend = (kb + TILE).min(k);
            for di in 0..rows {
                let lrow = &lv[(i0 + di) * k..(i0 + di + 1) * k];
                let orow = &mut ochunk[di * n..(di + 1) * n];
                for kk in kb..kend {
                    let a = lrow[kk];
                    if a == 0.0 {
                        continue;
                    }
                    let rrow = &rv[kk * n..(kk + 1) * n];
                    for (o, &b) in orow.iter_mut().zip(rrow) {
                        *o += a * b;
                    }
                }
            }
        }
    });
    Ok(out)
}

/// Transpose-self matrix multiplication `tsmm`: computes `Xᵀ X` (`left=true`)
/// or `X Xᵀ` (`left=false`) exploiting the symmetry of the result.
///
/// Uses the same packed-panel blocking as [`matmul`] with `X`'s rows as
/// the reduction dimension: both operands of the micro-tile are column
/// panels of `X`. Only micro-tiles intersecting the upper triangle are
/// reduced, and only their upper cells stored; each upper cell's chain is
/// the full r-ascending sum, bitwise stable across thread counts.
pub fn tsmm(x: &DenseMatrix, left: bool) -> Result<DenseMatrix> {
    if left {
        let (m, n) = x.shape();
        let mut out = DenseMatrix::zeros(n, n);
        if n == 0 {
            return Ok(out);
        }
        let xv = x.values();
        // Output rows of the upper triangle are disjoint, so fan them out
        // in blocks. Upper rows carry more columns, but the pool's shared
        // queue lets early-finishing threads steal the cheap tail chunks.
        let rows_per_chunk = exdra_par::chunk_len(n, par_floor(m * (n / 2 + 1)));
        let npanels = n.div_ceil(NR);
        exdra_par::par_chunks_mut(out.values_mut(), rows_per_chunk * n, |_, cell0, ochunk| {
            tsmm_chunk(xv, m, n, npanels, cell0 / n, ochunk);
        });
        // Mirror the upper triangle into the lower half: snapshot the
        // finished rows once, then fill each lower row slice in parallel
        // over disjoint output rows (replaces the serial get/set loop).
        let upper = out.values().to_vec();
        let mirror_rows = exdra_par::chunk_len(n, par_floor(n / 2 + 1));
        exdra_par::par_chunks_mut(out.values_mut(), mirror_rows * n, |_, cell0, ochunk| {
            let j0 = cell0 / n;
            for (dj, orow) in ochunk.chunks_mut(n).enumerate() {
                let j = j0 + dj;
                for (i, o) in orow[..j].iter_mut().enumerate() {
                    *o = upper[i * n + j];
                }
            }
        });
        Ok(out)
    } else {
        let xt = super::reorg::transpose(x);
        tsmm(&xt, true)
    }
}

/// One parallel chunk of blocked `tsmm`: identical packing to
/// [`gemm_chunk_body`] with `X`'s rows as the reduction dimension and
/// both operands drawn from `X`'s column panels; only micro-tiles
/// touching the upper triangle are reduced and only upper cells stored.
#[inline(always)]
fn tsmm_chunk_body(xv: &[f64], m: usize, n: usize, npanels: usize, i0: usize, ochunk: &mut [f64]) {
    let rows = ochunk.len() / n;
    let mut bpack = vec![0.0f64; npanels * KC * NR];
    let mut apack = vec![0.0f64; KC * MR];
    for rb in (0..m).step_by(KC) {
        let kc = (rb + KC).min(m) - rb;
        for t in 0..kc {
            let xrow = &xv[(rb + t) * n..(rb + t + 1) * n];
            for (jp, colseg) in xrow.chunks(NR).enumerate() {
                bpack[jp * KC * NR + t * NR..][..colseg.len()].copy_from_slice(colseg);
            }
        }
        for ip in (0..rows).step_by(MR) {
            let mr = (ip + MR).min(rows) - ip;
            for t in 0..kc {
                let xrow = &xv[(rb + t) * n..];
                for lane in 0..mr {
                    apack[t * MR + lane] = xrow[i0 + ip + lane];
                }
            }
            // Skip panels strictly left of the upper triangle.
            for jp in ((i0 + ip) / NR)..npanels {
                let j0 = jp * NR;
                let nr = (j0 + NR).min(n) - j0;
                let bp = &bpack[jp * KC * NR..][..kc * NR];
                let mut acc = [[0.0f64; NR]; MR];
                for i in 0..mr {
                    let orow = &ochunk[(ip + i) * n + j0..];
                    acc[i][..nr].copy_from_slice(&orow[..nr]);
                }
                if mr == MR && nr == NR {
                    micro_tile(kc, &apack, bp, &mut acc);
                } else {
                    micro_tail(kc, mr, nr, &apack, bp, &mut acc);
                }
                // Diagonal-crossing tiles compute a few lower
                // cells; those are discarded here (their slots
                // reload 0.0 next slab), upper cells carry on.
                for i in 0..mr {
                    let ig = i0 + ip + i;
                    let orow = &mut ochunk[(ip + i) * n + j0..];
                    for j in 0..nr {
                        if j0 + j >= ig {
                            orow[j] = acc[i][j];
                        }
                    }
                }
            }
        }
    }
}
avx2_twin!(tsmm_chunk / tsmm_chunk_avx2 => tsmm_chunk_body(
    xv: &[f64], m: usize, n: usize, npanels: usize, i0: usize, ochunk: &mut [f64]
));

/// Fused matrix-multiplication chain `Xᵀ (w ⊙ (X v))`.
///
/// With `w = None` this is `Xᵀ (X v)` — the conjugate-gradient inner step of
/// the paper's LM algorithm. The fusion avoids materializing `X v` twice and
/// is the exact `mmchain` instruction of Table 1.
///
/// Both phases unroll by 4 (rows in phase 1, reduction steps in phase 2)
/// without reordering any cell's chain, and phase 2 adds every `q[i]`
/// term unconditionally — no zero-skip — so the compressed-domain
/// `mmchain` (DESIGN.md §4k) can reproduce the chain bit for bit.
pub fn mmchain(x: &DenseMatrix, v: &DenseMatrix, w: Option<&DenseMatrix>) -> Result<DenseMatrix> {
    if x.cols() != v.rows() || v.cols() != 1 {
        return Err(MatrixError::DimensionMismatch {
            op: "mmchain",
            lhs: x.shape(),
            rhs: v.shape(),
        });
    }
    if let Some(w) = w {
        if w.rows() != x.rows() || w.cols() != 1 {
            return Err(MatrixError::DimensionMismatch {
                op: "mmchain",
                lhs: x.shape(),
                rhs: w.shape(),
            });
        }
    }
    let (m, n) = x.shape();
    let vv = v.values();
    let xv = x.values();
    let wv = w.map(|w| w.values());
    let mut out = DenseMatrix::zeros(n, 1);
    if m == 0 || n == 0 {
        return Ok(out);
    }
    // Phase 1: q = (X v) ⊙ w — one dot product per row, row-disjoint,
    // 4 rows at a time sharing each streamed v element.
    let mut q = vec![0.0; m];
    exdra_par::par_chunks_mut(
        &mut q,
        exdra_par::chunk_len(m, par_floor(n)),
        |_, i0, chunk| {
            mmchain_q_chunk(xv, vv, wv, n, i0, chunk);
        },
    );
    // Phase 2: out = Xᵀ q over disjoint column blocks of the output.
    let q = &q;
    let cols_per_chunk = exdra_par::chunk_len(n, par_floor(m));
    exdra_par::par_chunks_mut(out.values_mut(), cols_per_chunk, |_, j0, ochunk| {
        mmchain_xtq_chunk(xv, q, m, n, j0, ochunk);
    });
    Ok(out)
}

/// One parallel chunk of mmchain phase 1: `q[i] = w[i] * (x[i] · v)`.
#[inline(always)]
fn mmchain_q_chunk_body(
    xv: &[f64],
    vv: &[f64],
    wv: Option<&[f64]>,
    n: usize,
    i0: usize,
    chunk: &mut [f64],
) {
    let rows = chunk.len();
    let mut d = 0;
    while d + 4 <= rows {
        let base = (i0 + d) * n;
        let r0 = &xv[base..base + n];
        let r1 = &xv[base + n..base + 2 * n];
        let r2 = &xv[base + 2 * n..base + 3 * n];
        let r3 = &xv[base + 3 * n..base + 4 * n];
        let (mut a0, mut a1, mut a2, mut a3) = (0.0, 0.0, 0.0, 0.0);
        for (c, &b) in vv.iter().enumerate() {
            a0 += r0[c] * b;
            a1 += r1[c] * b;
            a2 += r2[c] * b;
            a3 += r3[c] * b;
        }
        if let Some(wv) = wv {
            a0 *= wv[i0 + d];
            a1 *= wv[i0 + d + 1];
            a2 *= wv[i0 + d + 2];
            a3 *= wv[i0 + d + 3];
        }
        chunk[d] = a0;
        chunk[d + 1] = a1;
        chunk[d + 2] = a2;
        chunk[d + 3] = a3;
        d += 4;
    }
    while d < rows {
        let row = &xv[(i0 + d) * n..(i0 + d + 1) * n];
        let mut acc = 0.0;
        for (a, b) in row.iter().zip(vv) {
            acc += a * b;
        }
        if let Some(wv) = wv {
            acc *= wv[i0 + d];
        }
        chunk[d] = acc;
        d += 1;
    }
}
avx2_twin!(mmchain_q_chunk / mmchain_q_chunk_avx2 => mmchain_q_chunk_body(
    xv: &[f64], vv: &[f64], wv: Option<&[f64]>, n: usize, i0: usize, chunk: &mut [f64]
));

/// One parallel chunk of mmchain phase 2: `out[j] += Σ_i q[i]·x[i][j]`.
/// Each out[j] accumulates i-ascending, one term at a time (4 rows per
/// pass, cell held in a register between the adds), so bits match at any
/// split — and match the compressed-domain walk.
#[inline(always)]
fn mmchain_xtq_chunk_body(
    xv: &[f64],
    q: &[f64],
    m: usize,
    n: usize,
    j0: usize,
    ochunk: &mut [f64],
) {
    let width = ochunk.len();
    let mut i = 0;
    while i + 4 <= m {
        let (q0, q1, q2, q3) = (q[i], q[i + 1], q[i + 2], q[i + 3]);
        let r0 = &xv[i * n + j0..i * n + j0 + width];
        let r1 = &xv[(i + 1) * n + j0..(i + 1) * n + j0 + width];
        let r2 = &xv[(i + 2) * n + j0..(i + 2) * n + j0 + width];
        let r3 = &xv[(i + 3) * n + j0..(i + 3) * n + j0 + width];
        for (d, o) in ochunk.iter_mut().enumerate() {
            let mut t = *o;
            t += q0 * r0[d];
            t += q1 * r1[d];
            t += q2 * r2[d];
            t += q3 * r3[d];
            *o = t;
        }
        i += 4;
    }
    while i < m {
        let qi = q[i];
        let seg = &xv[i * n + j0..i * n + j0 + width];
        for (o, &a) in ochunk.iter_mut().zip(seg) {
            *o += qi * a;
        }
        i += 1;
    }
}
avx2_twin!(mmchain_xtq_chunk / mmchain_xtq_chunk_avx2 => mmchain_xtq_chunk_body(
    xv: &[f64], q: &[f64], m: usize, n: usize, j0: usize, ochunk: &mut [f64]
));

/// Naive triple-loop reference used by tests to validate the tiled kernel.
pub fn matmul_naive(lhs: &DenseMatrix, rhs: &DenseMatrix) -> Result<DenseMatrix> {
    if lhs.cols() != rhs.rows() {
        return Err(MatrixError::DimensionMismatch {
            op: "matmul_naive",
            lhs: lhs.shape(),
            rhs: rhs.shape(),
        });
    }
    let (m, k) = lhs.shape();
    let n = rhs.cols();
    let mut out = DenseMatrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for kk in 0..k {
                acc += lhs.get(i, kk) * rhs.get(kk, j);
            }
            out.set(i, j, acc);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rand_matrix;

    #[test]
    fn tiled_matches_naive() {
        let a = rand_matrix(37, 113, 0.0, 1.0, 1);
        let b = rand_matrix(113, 29, -1.0, 1.0, 2);
        let got = matmul(&a, &b).unwrap();
        let want = matmul_naive(&a, &b).unwrap();
        assert!(got.max_abs_diff(&want) < 1e-9);
    }

    #[test]
    fn blocked_is_bitwise_naive() {
        // The blocked kernel extends each cell's chain term by term in
        // k-ascending order: not just close to naive — identical bits.
        for (m, k, n, seed) in [
            (37, 513, 29, 1),
            (4, 4, 4, 2),
            (65, 256, 9, 3),
            (3, 700, 5, 4),
        ] {
            let a = rand_matrix(m, k, -1.0, 1.0, seed);
            let b = rand_matrix(k, n, -1.0, 1.0, seed + 100);
            let got = matmul(&a, &b).unwrap();
            let want = matmul_naive(&a, &b).unwrap();
            let same = got
                .values()
                .iter()
                .zip(want.values())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "{m}x{k}x{n}: blocked != naive bitwise");
        }
    }

    #[test]
    fn unblocked_matches_blocked() {
        let a = rand_matrix(53, 131, -1.0, 1.0, 11);
        let b = rand_matrix(131, 41, -1.0, 1.0, 12);
        let got = matmul_unblocked(&a, &b).unwrap();
        let want = matmul(&a, &b).unwrap();
        assert!(got.max_abs_diff(&want) < 1e-12);
    }

    #[test]
    fn matmul_dimension_check() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul_unblocked(&a, &b).is_err());
    }

    #[test]
    fn matrix_vector_fast_path() {
        let a = rand_matrix(64, 16, 0.0, 1.0, 3);
        let v = rand_matrix(16, 1, 0.0, 1.0, 4);
        let got = matmul(&a, &v).unwrap();
        let want = matmul_naive(&a, &v).unwrap();
        assert!(got.max_abs_diff(&want) < 1e-10);
    }

    #[test]
    fn tsmm_left_matches_explicit() {
        let x = rand_matrix(50, 7, -2.0, 2.0, 5);
        let got = tsmm(&x, true).unwrap();
        let xt = super::super::reorg::transpose(&x);
        let want = matmul_naive(&xt, &x).unwrap();
        assert!(got.max_abs_diff(&want) < 1e-9);
    }

    #[test]
    fn tsmm_mirror_is_exact() {
        // The parallel mirror must leave a perfectly symmetric matrix.
        let x = rand_matrix(300, 37, -2.0, 2.0, 13);
        let got = tsmm(&x, true).unwrap();
        for i in 0..37 {
            for j in 0..37 {
                assert_eq!(got.get(i, j).to_bits(), got.get(j, i).to_bits());
            }
        }
    }

    #[test]
    fn tsmm_right_matches_explicit() {
        let x = rand_matrix(9, 20, -2.0, 2.0, 6);
        let got = tsmm(&x, false).unwrap();
        let xt = super::super::reorg::transpose(&x);
        let want = matmul_naive(&x, &xt).unwrap();
        assert!(got.max_abs_diff(&want) < 1e-9);
    }

    #[test]
    fn micro_tile_twins_are_bitwise_equal() {
        // The dispatcher picks the widest available twin, so the
        // narrower paths need pinning explicitly: same packed panels,
        // same bits out of every implementation the CPU can run.
        let kc = KC - 3;
        let noise = rand_matrix(kc, MR + NR, -1.0, 1.0, 99);
        let ap: Vec<f64> = (0..kc * MR)
            .map(|i| noise.values()[i % noise.values().len()])
            .collect();
        let bp: Vec<f64> = (0..kc * NR)
            .map(|i| noise.values()[(i * 7 + 3) % noise.values().len()])
            .collect();
        let seed = |s: f64| {
            let mut acc = [[0.0f64; NR]; MR];
            for (i, row) in acc.iter_mut().enumerate() {
                for (j, c) in row.iter_mut().enumerate() {
                    *c = s * (i * NR + j) as f64;
                }
            }
            acc
        };
        let bits = |acc: &[[f64; NR]; MR]| {
            acc.iter()
                .flatten()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        };
        let mut want = seed(0.25);
        micro_tile_scalar(kc, &ap, &bp, &mut want);
        #[cfg(target_arch = "x86_64")]
        {
            if avx2_available() {
                let mut got = seed(0.25);
                unsafe { micro_tile_avx2(kc, &ap, &bp, &mut got) };
                assert_eq!(bits(&got), bits(&want), "avx2 twin differs");
            }
            if avx512_available() {
                let mut got = seed(0.25);
                unsafe { micro_tile_avx512(kc, &ap, &bp, &mut got) };
                assert_eq!(bits(&got), bits(&want), "avx512 twin differs");
            }
        }
        let mut via_dispatch = seed(0.25);
        micro_tile(kc, &ap, &bp, &mut via_dispatch);
        assert_eq!(bits(&via_dispatch), bits(&want));
    }

    #[test]
    #[ignore = "manual perf probe"]
    fn gemm_speed_probe() {
        let n = 1024;
        let a = rand_matrix(n, n, -1.0, 1.0, 1);
        let b = rand_matrix(n, n, -1.0, 1.0, 2);
        let flops = 2.0 * (n as f64).powi(3);
        exdra_par::with_threads(1, || {
            for (name, f) in [
                (
                    "blocked",
                    &matmul as &dyn Fn(&DenseMatrix, &DenseMatrix) -> _,
                ),
                ("unblocked", &matmul_unblocked),
            ] {
                let mut best = f64::MAX;
                for _ in 0..3 {
                    let t0 = std::time::Instant::now();
                    let out = f(&a, &b).unwrap();
                    let dt = t0.elapsed().as_secs_f64();
                    assert!(out.get(0, 0).is_finite());
                    best = best.min(dt);
                }
                println!("{name}: {best:.3}s {:.2} GF/s", flops / best / 1e9);
            }
        });
    }

    #[test]
    fn mmchain_matches_composition() {
        let x = rand_matrix(40, 11, -1.0, 1.0, 7);
        let v = rand_matrix(11, 1, -1.0, 1.0, 8);
        let w = rand_matrix(40, 1, 0.0, 1.0, 9);
        let xt = super::super::reorg::transpose(&x);

        let got = mmchain(&x, &v, None).unwrap();
        let want = matmul_naive(&xt, &matmul_naive(&x, &v).unwrap()).unwrap();
        assert!(got.max_abs_diff(&want) < 1e-9);

        let got_w = mmchain(&x, &v, Some(&w)).unwrap();
        let xv = matmul_naive(&x, &v).unwrap();
        let wxv = w.zip(&xv, "mul", |a, b| a * b).unwrap();
        let want_w = matmul_naive(&xt, &wxv).unwrap();
        assert!(got_w.max_abs_diff(&want_w) < 1e-9);
    }
}
