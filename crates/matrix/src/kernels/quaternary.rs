//! Quaternary fused kernels (Table 1 "Quaternary" row): the weighted
//! factorization operators `wsloss`, `wsigmoid`, `wdivmm`, and `wcemm`.
//!
//! These fuse a large product `U Vᵀ` with a sparse weighting matrix `W` so
//! that only cells where `W != 0` are ever computed — the same rationale as
//! SystemDS' weighted ops for matrix-factorization workloads.

use crate::dense::DenseMatrix;
use crate::error::{MatrixError, Result};

fn check_factors(
    w: &DenseMatrix,
    u: &DenseMatrix,
    v: &DenseMatrix,
    op: &'static str,
) -> Result<()> {
    if u.rows() != w.rows() || v.rows() != w.cols() || u.cols() != v.cols() {
        return Err(MatrixError::DimensionMismatch {
            op,
            lhs: w.shape(),
            rhs: (u.rows(), v.rows()),
        });
    }
    Ok(())
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Weighted squared loss `wsloss`: `sum(W ⊙ (X - U Vᵀ)^2)` computed only
/// over cells with non-zero weight.
pub fn wsloss(x: &DenseMatrix, w: &DenseMatrix, u: &DenseMatrix, v: &DenseMatrix) -> Result<f64> {
    if x.shape() != w.shape() {
        return Err(MatrixError::DimensionMismatch {
            op: "wsloss",
            lhs: x.shape(),
            rhs: w.shape(),
        });
    }
    check_factors(w, u, v, "wsloss")?;
    let mut loss = 0.0;
    for i in 0..w.rows() {
        let urow = u.row(i);
        for j in 0..w.cols() {
            let wij = w.get(i, j);
            if wij != 0.0 {
                let pred = dot(urow, v.row(j));
                let d = x.get(i, j) - pred;
                loss += wij * d * d;
            }
        }
    }
    Ok(loss)
}

/// Weighted sigmoid `wsigmoid`: `W ⊙ sigmoid(U Vᵀ)`, evaluated only at
/// non-zero weights; the output is dense but zero where `W` is zero.
pub fn wsigmoid(w: &DenseMatrix, u: &DenseMatrix, v: &DenseMatrix) -> Result<DenseMatrix> {
    check_factors(w, u, v, "wsigmoid")?;
    let (rows, cols) = w.shape();
    let mut out = DenseMatrix::zeros(rows, cols);
    if rows == 0 || cols == 0 {
        return Ok(out);
    }
    // Output rows are disjoint; each costs ~nnz(W row) * k dot-product
    // work, so fan row blocks out across the pool.
    let wv = w.values();
    let rows_per_chunk = exdra_par::chunk_len(rows, super::par_floor(cols * u.cols().max(1)));
    exdra_par::par_chunks_mut(out.values_mut(), rows_per_chunk * cols, |_, cell0, part| {
        let i0 = cell0 / cols;
        for (di, orow) in part.chunks_mut(cols).enumerate() {
            let urow = u.row(i0 + di);
            let wrow = &wv[(i0 + di) * cols..(i0 + di + 1) * cols];
            for (j, (o, &wij)) in orow.iter_mut().zip(wrow).enumerate() {
                if wij != 0.0 {
                    let s = 1.0 / (1.0 + (-dot(urow, v.row(j))).exp());
                    *o = wij * s;
                }
            }
        }
    });
    Ok(out)
}

/// Weighted divide matrix-multiply `wdivmm` (left variant): computes
/// `(W / (U Vᵀ))ᵀ U`, the V-gradient step of weighted matrix factorization,
/// without materializing `U Vᵀ`.
pub fn wdivmm_left(w: &DenseMatrix, u: &DenseMatrix, v: &DenseMatrix) -> Result<DenseMatrix> {
    check_factors(w, u, v, "wdivmm")?;
    let k = u.cols();
    let mut out = DenseMatrix::zeros(v.rows(), k);
    for i in 0..w.rows() {
        let urow = u.row(i);
        for j in 0..w.cols() {
            let wij = w.get(i, j);
            if wij != 0.0 {
                let pred = dot(urow, v.row(j));
                let q = wij / pred;
                let orow = out.row_mut(j);
                for (o, &uu) in orow.iter_mut().zip(urow) {
                    *o += q * uu;
                }
            }
        }
    }
    Ok(out)
}

/// Weighted cross-entropy matrix-multiply `wcemm`:
/// `sum(W ⊙ log(U Vᵀ + eps))` over non-zero weights.
pub fn wcemm(w: &DenseMatrix, u: &DenseMatrix, v: &DenseMatrix, eps: f64) -> Result<f64> {
    check_factors(w, u, v, "wcemm")?;
    let mut loss = 0.0;
    for i in 0..w.rows() {
        let urow = u.row(i);
        for j in 0..w.cols() {
            let wij = w.get(i, j);
            if wij != 0.0 {
                loss += wij * (dot(urow, v.row(j)) + eps).ln();
            }
        }
    }
    Ok(loss)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::matmul::matmul_naive;
    use crate::kernels::reorg::transpose;
    use crate::rng::rand_matrix;

    fn setup() -> (DenseMatrix, DenseMatrix, DenseMatrix, DenseMatrix) {
        let mut w = rand_matrix(8, 6, 0.0, 1.0, 21);
        // Sparsify the weights.
        w.map_inplace(|v| if v > 0.5 { 1.0 } else { 0.0 });
        let x = rand_matrix(8, 6, 0.0, 1.0, 22);
        let u = rand_matrix(8, 3, 0.1, 1.0, 23);
        let v = rand_matrix(6, 3, 0.1, 1.0, 24);
        (x, w, u, v)
    }

    #[test]
    fn wsloss_matches_unfused() {
        let (x, w, u, v) = setup();
        let got = wsloss(&x, &w, &u, &v).unwrap();
        let pred = matmul_naive(&u, &transpose(&v)).unwrap();
        let mut want = 0.0;
        for i in 0..8 {
            for j in 0..6 {
                let d = x.get(i, j) - pred.get(i, j);
                want += w.get(i, j) * d * d;
            }
        }
        assert!((got - want).abs() < 1e-9);
    }

    #[test]
    fn wsigmoid_matches_unfused() {
        let (_, w, u, v) = setup();
        let got = wsigmoid(&w, &u, &v).unwrap();
        let pred = matmul_naive(&u, &transpose(&v)).unwrap();
        for i in 0..8 {
            for j in 0..6 {
                let want = w.get(i, j) / (1.0 + (-pred.get(i, j)).exp());
                assert!((got.get(i, j) - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn wdivmm_matches_unfused() {
        let (_, w, u, v) = setup();
        let got = wdivmm_left(&w, &u, &v).unwrap();
        let pred = matmul_naive(&u, &transpose(&v)).unwrap();
        let ratio = w
            .zip(&pred, "div", |a, b| if a != 0.0 { a / b } else { 0.0 })
            .unwrap();
        let want = matmul_naive(&transpose(&ratio), &u).unwrap();
        assert!(got.max_abs_diff(&want) < 1e-9);
    }

    #[test]
    fn wcemm_matches_unfused() {
        let (_, w, u, v) = setup();
        let got = wcemm(&w, &u, &v, 1e-15).unwrap();
        let pred = matmul_naive(&u, &transpose(&v)).unwrap();
        let mut want = 0.0;
        for i in 0..8 {
            for j in 0..6 {
                if w.get(i, j) != 0.0 {
                    want += w.get(i, j) * (pred.get(i, j) + 1e-15).ln();
                }
            }
        }
        assert!((got - want).abs() < 1e-9);
    }

    #[test]
    fn factor_shape_checks() {
        let w = DenseMatrix::zeros(4, 5);
        let u = DenseMatrix::zeros(4, 2);
        let bad_v = DenseMatrix::zeros(3, 2);
        assert!(wsigmoid(&w, &u, &bad_v).is_err());
    }
}
