//! Reorganization kernels (Table 1 "Transform/Reorg" row): `t`, `rbind`,
//! `cbind`, `removeEmpty`, `replace`, matrix indexing, `diag`, `order`,
//! and permutation application (used by the federated train/test split's
//! selection-matrix-multiply).

use crate::dense::DenseMatrix;
use crate::error::{MatrixError, Result};

/// Cache-blocking tile edge for transpose.
const TILE: usize = 32;

/// Blocked transpose.
pub fn transpose(x: &DenseMatrix) -> DenseMatrix {
    let (r, c) = x.shape();
    let mut out = DenseMatrix::zeros(c, r);
    for rb in (0..r).step_by(TILE) {
        for cb in (0..c).step_by(TILE) {
            for i in rb..(rb + TILE).min(r) {
                for j in cb..(cb + TILE).min(c) {
                    out.set(j, i, x.get(i, j));
                }
            }
        }
    }
    out
}

/// Vertical concatenation (`rbind`).
pub fn rbind(a: &DenseMatrix, b: &DenseMatrix) -> Result<DenseMatrix> {
    if a.cols() != b.cols() && !a.is_empty() && !b.is_empty() {
        return Err(MatrixError::DimensionMismatch {
            op: "rbind",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    if a.is_empty() {
        return Ok(b.clone());
    }
    if b.is_empty() {
        return Ok(a.clone());
    }
    let mut data = Vec::with_capacity(a.len() + b.len());
    data.extend_from_slice(a.values());
    data.extend_from_slice(b.values());
    DenseMatrix::new(a.rows() + b.rows(), a.cols(), data)
}

/// Horizontal concatenation (`cbind`).
pub fn cbind(a: &DenseMatrix, b: &DenseMatrix) -> Result<DenseMatrix> {
    if a.rows() != b.rows() && !a.is_empty() && !b.is_empty() {
        return Err(MatrixError::DimensionMismatch {
            op: "cbind",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    if a.is_empty() {
        return Ok(b.clone());
    }
    if b.is_empty() {
        return Ok(a.clone());
    }
    let cols = a.cols() + b.cols();
    let mut data = Vec::with_capacity(a.rows() * cols);
    for r in 0..a.rows() {
        data.extend_from_slice(a.row(r));
        data.extend_from_slice(b.row(r));
    }
    DenseMatrix::new(a.rows(), cols, data)
}

/// Margin for [`remove_empty`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Margin {
    /// Remove all-zero rows.
    Rows,
    /// Remove all-zero columns.
    Cols,
}

/// `removeEmpty`: drops all-zero rows or columns. An optional 0/1 `select`
/// vector overrides the emptiness test (a row/column is kept iff the
/// corresponding select entry is non-zero).
pub fn remove_empty(
    x: &DenseMatrix,
    margin: Margin,
    select: Option<&DenseMatrix>,
) -> Result<DenseMatrix> {
    let n = match margin {
        Margin::Rows => x.rows(),
        Margin::Cols => x.cols(),
    };
    if let Some(s) = select {
        if s.len() != n {
            return Err(MatrixError::DimensionMismatch {
                op: "removeEmpty",
                lhs: x.shape(),
                rhs: s.shape(),
            });
        }
    }
    let keep: Vec<usize> = (0..n)
        .filter(|&i| match select {
            Some(s) => s.values()[i] != 0.0,
            None => match margin {
                Margin::Rows => x.row(i).iter().any(|&v| v != 0.0),
                Margin::Cols => (0..x.rows()).any(|r| x.get(r, i) != 0.0),
            },
        })
        .collect();
    match margin {
        Margin::Rows => {
            let mut data = Vec::with_capacity(keep.len() * x.cols());
            for &r in &keep {
                data.extend_from_slice(x.row(r));
            }
            DenseMatrix::new(keep.len(), x.cols(), data)
        }
        Margin::Cols => {
            let mut out = DenseMatrix::zeros(x.rows(), keep.len());
            for r in 0..x.rows() {
                let row = x.row(r);
                let orow = out.row_mut(r);
                for (o, &c) in orow.iter_mut().zip(&keep) {
                    *o = row[c];
                }
            }
            Ok(out)
        }
    }
}

/// `replace(target, pattern, replacement)`; `pattern` may be NaN, which
/// matches NaN cells (the usual missing-value encoding in raw imports).
pub fn replace(x: &DenseMatrix, pattern: f64, replacement: f64) -> DenseMatrix {
    if pattern.is_nan() {
        x.map(|v| if v.is_nan() { replacement } else { v })
    } else {
        x.map(|v| if v == pattern { replacement } else { v })
    }
}

/// Right matrix indexing `X[rl:ru, cl:cu]` with half-open 0-based ranges
/// (the runtime translates SystemDS' 1-based inclusive ranges).
pub fn index(
    x: &DenseMatrix,
    row_lo: usize,
    row_hi: usize,
    col_lo: usize,
    col_hi: usize,
) -> Result<DenseMatrix> {
    if row_lo > row_hi || row_hi > x.rows() {
        return Err(MatrixError::IndexOutOfBounds {
            op: "index",
            index: row_hi,
            bound: x.rows(),
        });
    }
    if col_lo > col_hi || col_hi > x.cols() {
        return Err(MatrixError::IndexOutOfBounds {
            op: "index",
            index: col_hi,
            bound: x.cols(),
        });
    }
    let rows = row_hi - row_lo;
    let cols = col_hi - col_lo;
    let mut data = Vec::with_capacity(rows * cols);
    for r in row_lo..row_hi {
        data.extend_from_slice(&x.row(r)[col_lo..col_hi]);
    }
    DenseMatrix::new(rows, cols, data)
}

/// Left matrix indexing `X[rl:ru, cl:cu] = Y`: returns a copy of `x` with
/// the given half-open region overwritten by `y`.
pub fn index_assign(
    x: &DenseMatrix,
    row_lo: usize,
    col_lo: usize,
    y: &DenseMatrix,
) -> Result<DenseMatrix> {
    if row_lo + y.rows() > x.rows() || col_lo + y.cols() > x.cols() {
        return Err(MatrixError::DimensionMismatch {
            op: "index_assign",
            lhs: x.shape(),
            rhs: y.shape(),
        });
    }
    let mut out = x.clone();
    for r in 0..y.rows() {
        let dst = &mut out.row_mut(row_lo + r)[col_lo..col_lo + y.cols()];
        dst.copy_from_slice(y.row(r));
    }
    Ok(out)
}

/// `diag`: for a vector input, builds the diagonal matrix; for a square
/// matrix input, extracts the diagonal as a column vector.
pub fn diag(x: &DenseMatrix) -> Result<DenseMatrix> {
    if x.cols() == 1 {
        let n = x.rows();
        let mut out = DenseMatrix::zeros(n, n);
        for i in 0..n {
            out.set(i, i, x.get(i, 0));
        }
        Ok(out)
    } else if x.rows() == x.cols() {
        let mut out = DenseMatrix::zeros(x.rows(), 1);
        for i in 0..x.rows() {
            out.set(i, 0, x.get(i, i));
        }
        Ok(out)
    } else {
        Err(MatrixError::InvalidArgument {
            op: "diag",
            msg: format!(
                "need vector or square matrix, got {}x{}",
                x.rows(),
                x.cols()
            ),
        })
    }
}

/// `order`: sorts rows of `x` by column `by` (0-based), ascending or
/// descending. When `index_return` is true, returns the 1-based permutation
/// instead of the reordered data. The sort is stable.
pub fn order(
    x: &DenseMatrix,
    by: usize,
    decreasing: bool,
    index_return: bool,
) -> Result<DenseMatrix> {
    if by >= x.cols() {
        return Err(MatrixError::IndexOutOfBounds {
            op: "order",
            index: by,
            bound: x.cols(),
        });
    }
    let mut perm: Vec<usize> = (0..x.rows()).collect();
    perm.sort_by(|&a, &b| {
        let va = x.get(a, by);
        let vb = x.get(b, by);
        let ord = va.partial_cmp(&vb).unwrap_or(std::cmp::Ordering::Equal);
        if decreasing {
            ord.reverse()
        } else {
            ord
        }
    });
    if index_return {
        let data: Vec<f64> = perm.iter().map(|&p| (p + 1) as f64).collect();
        return DenseMatrix::new(x.rows(), 1, data);
    }
    let mut data = Vec::with_capacity(x.len());
    for &p in &perm {
        data.extend_from_slice(x.row(p));
    }
    DenseMatrix::new(x.rows(), x.cols(), data)
}

/// Gathers rows by a 1-based index vector (`X[idx, ]`), the dense equivalent
/// of multiplying by a selection matrix.
pub fn gather_rows(x: &DenseMatrix, idx: &DenseMatrix) -> Result<DenseMatrix> {
    if idx.cols() != 1 {
        return Err(MatrixError::InvalidArgument {
            op: "gather_rows",
            msg: "index must be a column vector".into(),
        });
    }
    let mut data = Vec::with_capacity(idx.rows() * x.cols());
    for i in 0..idx.rows() {
        let v = idx.get(i, 0);
        if v < 1.0 || v.fract() != 0.0 || v as usize > x.rows() {
            return Err(MatrixError::IndexOutOfBounds {
                op: "gather_rows",
                index: v as usize,
                bound: x.rows(),
            });
        }
        data.extend_from_slice(x.row(v as usize - 1));
    }
    DenseMatrix::new(idx.rows(), x.cols(), data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rand_matrix;

    #[test]
    fn transpose_involution() {
        let x = rand_matrix(17, 43, -1.0, 1.0, 31);
        let tt = transpose(&transpose(&x));
        assert!(tt.max_abs_diff(&x) < 1e-15);
        assert_eq!(transpose(&x).shape(), (43, 17));
    }

    #[test]
    fn rbind_cbind_roundtrip_with_index() {
        let a = rand_matrix(3, 4, 0.0, 1.0, 32);
        let b = rand_matrix(2, 4, 0.0, 1.0, 33);
        let ab = rbind(&a, &b).unwrap();
        assert_eq!(ab.shape(), (5, 4));
        assert!(index(&ab, 0, 3, 0, 4).unwrap().max_abs_diff(&a) < 1e-15);
        assert!(index(&ab, 3, 5, 0, 4).unwrap().max_abs_diff(&b) < 1e-15);

        let c = rand_matrix(3, 2, 0.0, 1.0, 34);
        let ac = cbind(&a, &c).unwrap();
        assert_eq!(ac.shape(), (3, 6));
        assert!(index(&ac, 0, 3, 4, 6).unwrap().max_abs_diff(&c) < 1e-15);
    }

    #[test]
    fn rbind_with_empty_operand() {
        let a = rand_matrix(3, 4, 0.0, 1.0, 35);
        let e = DenseMatrix::zeros(0, 0);
        assert!(rbind(&a, &e).unwrap().max_abs_diff(&a) < 1e-15);
        assert!(rbind(&e, &a).unwrap().max_abs_diff(&a) < 1e-15);
    }

    #[test]
    fn remove_empty_rows_and_cols() {
        let x = DenseMatrix::new(3, 3, vec![1., 0., 0., 0., 0., 0., 2., 0., 3.]).unwrap();
        let rows = remove_empty(&x, Margin::Rows, None).unwrap();
        assert_eq!(rows.shape(), (2, 3));
        assert_eq!(rows.row(1), &[2., 0., 3.]);
        let cols = remove_empty(&x, Margin::Cols, None).unwrap();
        assert_eq!(cols.shape(), (3, 2));
    }

    #[test]
    fn remove_empty_with_select() {
        let x = DenseMatrix::new(3, 1, vec![1., 2., 3.]).unwrap();
        let sel = DenseMatrix::col_vector(&[1., 0., 1.]);
        let got = remove_empty(&x, Margin::Rows, Some(&sel)).unwrap();
        assert_eq!(got.values(), &[1., 3.]);
    }

    #[test]
    fn replace_handles_nan_pattern() {
        let x = DenseMatrix::new(1, 3, vec![1.0, f64::NAN, 3.0]).unwrap();
        let got = replace(&x, f64::NAN, 0.0);
        assert_eq!(got.values(), &[1., 0., 3.]);
        let got2 = replace(&x, 1.0, 9.0);
        assert_eq!(got2.values()[0], 9.0);
    }

    #[test]
    fn index_assign_overwrites_region() {
        let x = DenseMatrix::zeros(3, 3);
        let y = DenseMatrix::filled(2, 2, 7.0);
        let got = index_assign(&x, 1, 1, &y).unwrap();
        assert_eq!(got.get(0, 0), 0.0);
        assert_eq!(got.get(1, 1), 7.0);
        assert_eq!(got.get(2, 2), 7.0);
        assert!(index_assign(&x, 2, 2, &y).is_err());
    }

    #[test]
    fn diag_both_directions() {
        let v = DenseMatrix::col_vector(&[1., 2., 3.]);
        let d = diag(&v).unwrap();
        assert_eq!(d.get(1, 1), 2.0);
        assert_eq!(d.get(0, 1), 0.0);
        let back = diag(&d).unwrap();
        assert_eq!(back.values(), v.values());
    }

    #[test]
    fn order_rows_and_indexes() {
        let x = DenseMatrix::new(3, 2, vec![3., 30., 1., 10., 2., 20.]).unwrap();
        let sorted = order(&x, 0, false, false).unwrap();
        assert_eq!(sorted.row(0), &[1., 10.]);
        assert_eq!(sorted.row(2), &[3., 30.]);
        let idx = order(&x, 0, true, true).unwrap();
        assert_eq!(idx.values(), &[1., 3., 2.]);
    }

    #[test]
    fn gather_rows_one_based() {
        let x = DenseMatrix::new(3, 2, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let idx = DenseMatrix::col_vector(&[3., 1.]);
        let got = gather_rows(&x, &idx).unwrap();
        assert_eq!(got.row(0), &[5., 6.]);
        assert_eq!(got.row(1), &[1., 2.]);
        let bad = DenseMatrix::col_vector(&[4.]);
        assert!(gather_rows(&x, &bad).is_err());
    }
}
