//! Ternary kernels (Table 1 "Ternary" row): `ctable`, `ifelse`, and the
//! fused axpy-style `+*` / `-*` operations.

use crate::dense::DenseMatrix;
use crate::error::{MatrixError, Result};

/// Contingency table `ctable(a, b, w)`: builds a matrix `O` with
/// `O[a[i], b[i]] += w[i]` over 1-based index vectors `a`, `b`.
///
/// `a` and `b` must be column vectors of equal length with positive integer
/// values; `w` defaults to all-ones. The output is sized by the max observed
/// indices, or by `(out_rows, out_cols)` when given (entries beyond the
/// requested size are ignored, matching SystemDS).
pub fn ctable(
    a: &DenseMatrix,
    b: &DenseMatrix,
    w: Option<&DenseMatrix>,
    out_dims: Option<(usize, usize)>,
) -> Result<DenseMatrix> {
    if a.cols() != 1 || b.cols() != 1 || a.rows() != b.rows() {
        return Err(MatrixError::DimensionMismatch {
            op: "ctable",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    if let Some(w) = w {
        if w.rows() != a.rows() || w.cols() != 1 {
            return Err(MatrixError::DimensionMismatch {
                op: "ctable",
                lhs: a.shape(),
                rhs: w.shape(),
            });
        }
    }
    let to_idx = |v: f64, what: &'static str| -> Result<usize> {
        if v < 1.0 || v.fract() != 0.0 || !v.is_finite() {
            return Err(MatrixError::InvalidArgument {
                op: "ctable",
                msg: format!("{what} value {v} is not a positive integer"),
            });
        }
        Ok(v as usize)
    };
    let mut entries = Vec::with_capacity(a.rows());
    let mut max_r = 0usize;
    let mut max_c = 0usize;
    for i in 0..a.rows() {
        let ri = to_idx(a.get(i, 0), "row")?;
        let ci = to_idx(b.get(i, 0), "col")?;
        let wi = w.map_or(1.0, |w| w.get(i, 0));
        max_r = max_r.max(ri);
        max_c = max_c.max(ci);
        entries.push((ri, ci, wi));
    }
    let (rows, cols) = out_dims.unwrap_or((max_r, max_c));
    let mut out = DenseMatrix::zeros(rows, cols);
    for (ri, ci, wi) in entries {
        if ri <= rows && ci <= cols {
            let cur = out.get(ri - 1, ci - 1);
            out.set(ri - 1, ci - 1, cur + wi);
        }
    }
    Ok(out)
}

/// Element-wise conditional `ifelse(cond, then, else)` with scalar or
/// matrix branches; `cond` is non-zero = true.
pub fn ifelse(
    cond: &DenseMatrix,
    then_m: &DenseMatrix,
    else_m: &DenseMatrix,
) -> Result<DenseMatrix> {
    let pick = |m: &DenseMatrix, r: usize, c: usize| -> f64 {
        if m.is_scalar() {
            m.values()[0]
        } else {
            m.get(r, c)
        }
    };
    for m in [then_m, else_m] {
        if !m.is_scalar() && m.shape() != cond.shape() {
            return Err(MatrixError::DimensionMismatch {
                op: "ifelse",
                lhs: cond.shape(),
                rhs: m.shape(),
            });
        }
    }
    let (rows, cols) = cond.shape();
    let mut out = DenseMatrix::zeros(rows, cols);
    if cols == 0 {
        return Ok(out);
    }
    // Cell-wise select over disjoint output chunks.
    let cv = cond.values();
    let chunk = exdra_par::chunk_len(cv.len(), super::PAR_MIN_WORK);
    exdra_par::par_chunks_mut(out.values_mut(), chunk, |_, c0, part| {
        for (d, o) in part.iter_mut().enumerate() {
            let idx = c0 + d;
            let (r, c) = (idx / cols, idx % cols);
            *o = if cv[idx] != 0.0 {
                pick(then_m, r, c)
            } else {
                pick(else_m, r, c)
            };
        }
    });
    Ok(out)
}

/// Fused `X + s*Y` (`+*` when `sub=false`) or `X - s*Y` (`-*` when
/// `sub=true`); avoids materializing the scaled intermediate.
pub fn axpy(x: &DenseMatrix, s: f64, y: &DenseMatrix, sub: bool) -> Result<DenseMatrix> {
    if x.shape() != y.shape() {
        return Err(MatrixError::DimensionMismatch {
            op: if sub { "-*" } else { "+*" },
            lhs: x.shape(),
            rhs: y.shape(),
        });
    }
    let factor = if sub { -s } else { s };
    let mut out = DenseMatrix::zeros(x.rows(), x.cols());
    let xv = x.values();
    let yv = y.values();
    let chunk = exdra_par::chunk_len(xv.len(), super::PAR_MIN_WORK);
    exdra_par::par_chunks_mut(out.values_mut(), chunk, |_, c0, part| {
        for (d, o) in part.iter_mut().enumerate() {
            *o = xv[c0 + d] + factor * yv[c0 + d];
        }
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctable_counts_pairs() {
        let a = DenseMatrix::col_vector(&[1., 2., 1., 3.]);
        let b = DenseMatrix::col_vector(&[2., 1., 2., 3.]);
        let t = ctable(&a, &b, None, None).unwrap();
        assert_eq!(t.shape(), (3, 3));
        assert_eq!(t.get(0, 1), 2.0);
        assert_eq!(t.get(1, 0), 1.0);
        assert_eq!(t.get(2, 2), 1.0);
        assert_eq!(t.get(0, 0), 0.0);
    }

    #[test]
    fn ctable_weights_and_fixed_dims() {
        let a = DenseMatrix::col_vector(&[1., 2.]);
        let b = DenseMatrix::col_vector(&[1., 5.]);
        let w = DenseMatrix::col_vector(&[0.5, 2.0]);
        // Fixed 2x2 output: the (2,5) entry falls outside and is dropped.
        let t = ctable(&a, &b, Some(&w), Some((2, 2))).unwrap();
        assert_eq!(t.shape(), (2, 2));
        assert_eq!(t.get(0, 0), 0.5);
        assert_eq!(t.values().iter().sum::<f64>(), 0.5);
    }

    #[test]
    fn ctable_rejects_non_integer() {
        let a = DenseMatrix::col_vector(&[1.5]);
        let b = DenseMatrix::col_vector(&[1.0]);
        assert!(ctable(&a, &b, None, None).is_err());
        let z = DenseMatrix::col_vector(&[0.0]);
        assert!(ctable(&z, &b, None, None).is_err());
    }

    #[test]
    fn ifelse_scalar_and_matrix_branches() {
        let cond = DenseMatrix::new(1, 3, vec![1., 0., 2.]).unwrap();
        let t = DenseMatrix::filled(1, 1, 10.0);
        let e = DenseMatrix::new(1, 3, vec![-1., -2., -3.]).unwrap();
        let got = ifelse(&cond, &t, &e).unwrap();
        assert_eq!(got.values(), &[10., -2., 10.]);
    }

    #[test]
    fn axpy_plus_minus() {
        let x = DenseMatrix::new(1, 2, vec![1., 2.]).unwrap();
        let y = DenseMatrix::new(1, 2, vec![10., 20.]).unwrap();
        assert_eq!(axpy(&x, 0.5, &y, false).unwrap().values(), &[6., 12.]);
        assert_eq!(axpy(&x, 0.5, &y, true).unwrap().values(), &[-4., -8.]);
    }
}
