//! Error type shared by all matrix/frame operations.

use std::fmt;

/// Convenient result alias for matrix operations.
pub type Result<T> = std::result::Result<T, MatrixError>;

/// Errors raised by the local matrix/frame substrate.
///
/// Dimension checks are performed eagerly by every kernel so that federated
/// dispatch errors surface at the operation that caused them rather than deep
/// inside a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// Operand shapes are incompatible for the requested operation.
    DimensionMismatch {
        /// Operation name, e.g. `"matmul"`.
        op: &'static str,
        /// Shape of the left/first operand.
        lhs: (usize, usize),
        /// Shape of the right/second operand.
        rhs: (usize, usize),
    },
    /// An index (row, column, or range bound) is out of bounds.
    IndexOutOfBounds {
        /// Operation name.
        op: &'static str,
        /// The offending index.
        index: usize,
        /// The exclusive bound that was violated.
        bound: usize,
    },
    /// The requested operation is undefined for the input
    /// (e.g. empty input to an aggregate that requires data).
    InvalidArgument {
        /// Operation name.
        op: &'static str,
        /// Human-readable description.
        msg: String,
    },
    /// A numerical routine failed to converge or produced a singular system.
    Numerical {
        /// Routine name, e.g. `"eigen_jacobi"`.
        op: &'static str,
        /// Human-readable description.
        msg: String,
    },
    /// An I/O error while reading or writing matrix/frame data.
    Io(String),
    /// A parse error in a raw input file (CSV, binary header, ...).
    Parse {
        /// 1-based line number when known, 0 otherwise.
        line: usize,
        /// Human-readable description.
        msg: String,
    },
    /// Frame column type does not match the requested access.
    TypeMismatch {
        /// Requested value type name.
        expected: &'static str,
        /// Actual value type name.
        actual: &'static str,
    },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "{op}: dimension mismatch {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            MatrixError::IndexOutOfBounds { op, index, bound } => {
                write!(f, "{op}: index {index} out of bounds {bound}")
            }
            MatrixError::InvalidArgument { op, msg } => write!(f, "{op}: {msg}"),
            MatrixError::Numerical { op, msg } => write!(f, "{op}: numerical failure: {msg}"),
            MatrixError::Io(msg) => write!(f, "io error: {msg}"),
            MatrixError::Parse { line, msg } => write!(f, "parse error (line {line}): {msg}"),
            MatrixError::TypeMismatch { expected, actual } => {
                write!(f, "type mismatch: expected {expected}, found {actual}")
            }
        }
    }
}

impl std::error::Error for MatrixError {}

impl From<std::io::Error> for MatrixError {
    fn from(e: std::io::Error) -> Self {
        MatrixError::Io(e.to_string())
    }
}
