//! Seeded random matrix generation (SystemDS `rand`), used by data
//! generators, model initialization, and tests.

use crate::dense::DenseMatrix;
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform random matrix in `[lo, hi)` with a fixed seed.
pub fn rand_matrix(rows: usize, cols: usize, lo: f64, hi: f64, seed: u64) -> DenseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = Uniform::new_inclusive(lo, hi);
    let data: Vec<f64> = (0..rows * cols).map(|_| dist.sample(&mut rng)).collect();
    DenseMatrix::new(rows, cols, data).expect("consistent dims")
}

/// Standard-normal random matrix (Box-Muller over the seeded generator).
pub fn randn_matrix(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rows * cols;
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        data.push(r * theta.cos());
        if data.len() < n {
            data.push(r * theta.sin());
        }
    }
    DenseMatrix::new(rows, cols, data).expect("consistent dims")
}

/// Sparse uniform random matrix: each cell is non-zero with probability
/// `sparsity`, drawn from `[lo, hi)` otherwise zero.
pub fn sprand_matrix(
    rows: usize,
    cols: usize,
    lo: f64,
    hi: f64,
    sparsity: f64,
    seed: u64,
) -> DenseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = Uniform::new_inclusive(lo, hi);
    let data: Vec<f64> = (0..rows * cols)
        .map(|_| {
            if rng.gen::<f64>() < sparsity {
                dist.sample(&mut rng)
            } else {
                0.0
            }
        })
        .collect();
    DenseMatrix::new(rows, cols, data).expect("consistent dims")
}

/// A uniformly sampled permutation of `1..=n` as a column vector, used for
/// shuffling and for the selection-matrix train/test split of pipeline P2.
pub fn rand_permutation(n: usize, seed: u64) -> DenseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (1..=n).collect();
    // Fisher-Yates shuffle.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    DenseMatrix::new(n, 1, idx.into_iter().map(|v| v as f64).collect()).expect("consistent dims")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rand_matrix_is_deterministic_per_seed() {
        let a = rand_matrix(5, 5, 0.0, 1.0, 42);
        let b = rand_matrix(5, 5, 0.0, 1.0, 42);
        let c = rand_matrix(5, 5, 0.0, 1.0, 43);
        assert_eq!(a, b);
        assert!(a.max_abs_diff(&c) > 0.0);
    }

    #[test]
    fn rand_matrix_respects_range() {
        let a = rand_matrix(20, 20, -2.0, 3.0, 1);
        assert!(a.values().iter().all(|&v| (-2.0..=3.0).contains(&v)));
    }

    #[test]
    fn randn_has_roughly_zero_mean() {
        let a = randn_matrix(100, 100, 7);
        let mean = a.values().iter().sum::<f64>() / a.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn sprand_sparsity_close_to_target() {
        let a = sprand_matrix(100, 100, 1.0, 2.0, 0.1, 3);
        let frac = a.nnz() as f64 / a.len() as f64;
        assert!((frac - 0.1).abs() < 0.03, "sparsity {frac}");
    }

    #[test]
    fn permutation_contains_all_indices() {
        let p = rand_permutation(100, 5);
        let mut seen = [false; 101];
        for &v in p.values() {
            seen[v as usize] = true;
        }
        assert!(seen[1..].iter().all(|&s| s));
    }
}
