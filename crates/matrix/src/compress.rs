//! Lossless column compression for cached intermediates (paper §4.4,
//! "Compression": federated workers use free cycles for asynchronous,
//! lossless compression and compaction of intermediates).
//!
//! The scheme follows compressed linear algebra (Elgohary et al.): each
//! column is encoded independently with the cheapest of
//!
//! * **DDC** (dense dictionary coding) — a dictionary of distinct values plus
//!   one code per row (u8 or u16 depending on dictionary size),
//! * **RLE** (run-length encoding) — `(value, run_length)` pairs,
//! * **UC** (uncompressed) — fallback when neither pays off.
//!
//! The compressed form is an *execution* representation, not just
//! storage (DESIGN.md §4k): scalar/element-wise ops, row/col/full
//! aggregates, `matvec`/`t_vecmat`, and the fused `mmchain` all run
//! directly on the column groups. Element-wise ops transform only the
//! distinct values (dictionary entries / run values) in O(distinct)
//! per column; the reduction ops walk the codes in exactly the same
//! per-cell order as the corresponding dense kernel — no reassociation,
//! no shortcut over run lengths — so every result is bitwise identical
//! to decompress-then-operate. The wins are the 4-8x smaller memory
//! traffic of 1-2 byte codes and the avoided decompress allocation,
//! not a reduced op count.

use crate::dense::DenseMatrix;
use crate::error::{MatrixError, Result};
use crate::kernels::aggregates::{finish, AggDir, AggOp};
use crate::kernels::par_floor;

/// One encoded column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnGroup {
    /// Dense dictionary coding with u8 codes (≤ 256 distinct values).
    Ddc8 {
        /// Distinct values, index = code.
        dict: Vec<f64>,
        /// One code per row.
        codes: Vec<u8>,
    },
    /// Dense dictionary coding with u16 codes (≤ 65,536 distinct values).
    Ddc16 {
        /// Distinct values, index = code.
        dict: Vec<f64>,
        /// One code per row.
        codes: Vec<u16>,
    },
    /// Run-length encoding as `(value, run_length)` pairs.
    Rle {
        /// Runs of equal values covering the column top to bottom.
        runs: Vec<(f64, u32)>,
    },
    /// Uncompressed fallback.
    Uc {
        /// Raw column values.
        values: Vec<f64>,
    },
}

impl ColumnGroup {
    /// Encoded size in bytes (used by the compression planner).
    pub fn size_bytes(&self) -> usize {
        match self {
            ColumnGroup::Ddc8 { dict, codes } => dict.len() * 8 + codes.len(),
            ColumnGroup::Ddc16 { dict, codes } => dict.len() * 8 + codes.len() * 2,
            ColumnGroup::Rle { runs } => runs.len() * 12,
            ColumnGroup::Uc { values } => values.len() * 8,
        }
    }

    /// Scheme name for stats output.
    pub fn scheme(&self) -> &'static str {
        match self {
            ColumnGroup::Ddc8 { .. } => "DDC8",
            ColumnGroup::Ddc16 { .. } => "DDC16",
            ColumnGroup::Rle { .. } => "RLE",
            ColumnGroup::Uc { .. } => "UC",
        }
    }

    fn decode_into(&self, out: &mut [f64], stride: usize) {
        match self {
            ColumnGroup::Ddc8 { dict, codes } => {
                for (r, &code) in codes.iter().enumerate() {
                    out[r * stride] = dict[code as usize];
                }
            }
            ColumnGroup::Ddc16 { dict, codes } => {
                for (r, &code) in codes.iter().enumerate() {
                    out[r * stride] = dict[code as usize];
                }
            }
            ColumnGroup::Rle { runs } => {
                let mut r = 0usize;
                for &(v, len) in runs {
                    for _ in 0..len {
                        out[r * stride] = v;
                        r += 1;
                    }
                }
            }
            ColumnGroup::Uc { values } => {
                for (r, &v) in values.iter().enumerate() {
                    out[r * stride] = v;
                }
            }
        }
    }

    /// Applies `f` to every *distinct* stored value, keeping the code /
    /// run structure — the O(distinct) element-wise fast path. Bitwise
    /// equivalent to decode-map-encode because decoding reads values
    /// straight out of the dictionary (or run) that `f` transformed.
    fn map_values(&self, f: &(impl Fn(f64) -> f64 + ?Sized)) -> ColumnGroup {
        match self {
            ColumnGroup::Ddc8 { dict, codes } => ColumnGroup::Ddc8 {
                dict: dict.iter().map(|&v| f(v)).collect(),
                codes: codes.clone(),
            },
            ColumnGroup::Ddc16 { dict, codes } => ColumnGroup::Ddc16 {
                dict: dict.iter().map(|&v| f(v)).collect(),
                codes: codes.clone(),
            },
            ColumnGroup::Rle { runs } => ColumnGroup::Rle {
                runs: runs.iter().map(|&(v, len)| (f(v), len)).collect(),
            },
            ColumnGroup::Uc { values } => ColumnGroup::Uc {
                values: values.iter().map(|&v| f(v)).collect(),
            },
        }
    }

    /// Walks the decoded values of rows `lo..hi` in ascending row order,
    /// calling `f(r, value)` — the building block of every compressed
    /// reduction. Emitting rows strictly in order is what makes the
    /// compressed chains bitwise identical to the dense kernels'.
    fn for_each_range(&self, lo: usize, hi: usize, mut f: impl FnMut(usize, f64)) {
        match self {
            ColumnGroup::Ddc8 { dict, codes } => {
                for (d, &code) in codes[lo..hi].iter().enumerate() {
                    f(lo + d, dict[code as usize]);
                }
            }
            ColumnGroup::Ddc16 { dict, codes } => {
                for (d, &code) in codes[lo..hi].iter().enumerate() {
                    f(lo + d, dict[code as usize]);
                }
            }
            ColumnGroup::Rle { runs } => {
                let mut r = 0usize;
                for &(v, len) in runs {
                    let end = r + len as usize;
                    if end > lo {
                        for rr in r.max(lo)..end.min(hi) {
                            f(rr, v);
                        }
                        if end >= hi {
                            break;
                        }
                    }
                    r = end;
                }
            }
            ColumnGroup::Uc { values } => {
                for (d, &v) in values[lo..hi].iter().enumerate() {
                    f(lo + d, v);
                }
            }
        }
    }

    /// Visits each *distinct* stored value once. Every dictionary entry
    /// and run value is present in at least one row, so an order-blind
    /// reduction over distinct values (min/max with the Col-aggregate
    /// comparison, which ignores NaN on both sides) equals the dense
    /// row-walk result.
    fn for_each_distinct(&self, mut f: impl FnMut(f64)) {
        match self {
            ColumnGroup::Ddc8 { dict, .. } => dict.iter().for_each(|&v| f(v)),
            ColumnGroup::Ddc16 { dict, .. } => dict.iter().for_each(|&v| f(v)),
            ColumnGroup::Rle { runs } => runs.iter().for_each(|&(v, _)| f(v)),
            ColumnGroup::Uc { values } => values.iter().for_each(|&v| f(v)),
        }
    }
}

/// Streaming row cursor over one column group: `next()` yields the value
/// of the next row in O(1). Used by the row-major full-aggregate walk,
/// which must interleave columns in the dense kernel's cell order.
enum Cursor<'a> {
    Ddc8 {
        /// Distinct values of the column.
        dict: &'a [f64],
        /// Remaining codes, front = next row.
        codes: std::slice::Iter<'a, u8>,
    },
    Ddc16 {
        /// Distinct values of the column.
        dict: &'a [f64],
        /// Remaining codes, front = next row.
        codes: std::slice::Iter<'a, u16>,
    },
    Rle {
        /// Remaining runs, front = current run.
        runs: std::slice::Iter<'a, (f64, u32)>,
        /// Value of the current run.
        value: f64,
        /// Rows left in the current run.
        left: u32,
    },
    Uc {
        /// Remaining values, front = next row.
        values: std::slice::Iter<'a, f64>,
    },
}

impl<'a> Cursor<'a> {
    fn new(g: &'a ColumnGroup) -> Self {
        match g {
            ColumnGroup::Ddc8 { dict, codes } => Cursor::Ddc8 {
                dict,
                codes: codes.iter(),
            },
            ColumnGroup::Ddc16 { dict, codes } => Cursor::Ddc16 {
                dict,
                codes: codes.iter(),
            },
            ColumnGroup::Rle { runs } => Cursor::Rle {
                runs: runs.iter(),
                value: 0.0,
                left: 0,
            },
            ColumnGroup::Uc { values } => Cursor::Uc {
                values: values.iter(),
            },
        }
    }

    fn next(&mut self) -> f64 {
        match self {
            Cursor::Ddc8 { dict, codes } => dict[*codes.next().expect("rows in bounds") as usize],
            Cursor::Ddc16 { dict, codes } => dict[*codes.next().expect("rows in bounds") as usize],
            Cursor::Rle { runs, value, left } => {
                while *left == 0 {
                    let &(v, len) = runs.next().expect("rows in bounds");
                    *value = v;
                    *left = len;
                }
                *left -= 1;
                *value
            }
            Cursor::Uc { values } => *values.next().expect("rows in bounds"),
        }
    }
}

/// A losslessly compressed matrix: one [`ColumnGroup`] per column.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedMatrix {
    rows: usize,
    groups: Vec<ColumnGroup>,
}

/// Compression planner decision for one column (returned by
/// [`CompressedMatrix::plan`] for observability).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnPlan {
    /// Chosen scheme name.
    pub scheme: &'static str,
    /// Encoded bytes under the chosen scheme.
    pub bytes: usize,
}

impl CompressedMatrix {
    /// Compresses a dense matrix column by column, choosing per column the
    /// scheme with the smallest encoded size.
    pub fn compress(d: &DenseMatrix) -> Self {
        let (rows, cols) = d.shape();
        // Columns encode independently: gather + encode fan out in column
        // blocks over the `exdra_par` pool, and `map_chunks` returns the
        // blocks in column order, so the group layout matches the serial
        // sweep exactly.
        let min_cols = (crate::kernels::PAR_MIN_WORK / rows.max(1)).max(1);
        let chunk = exdra_par::chunk_len(cols, min_cols);
        let groups = exdra_par::map_chunks(cols, chunk, |_, range| {
            range
                .map(|c| {
                    let col: Vec<f64> = (0..rows).map(|r| d.get(r, c)).collect();
                    Self::encode_column(col)
                })
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();
        Self { rows, groups }
    }

    fn encode_column(col: Vec<f64>) -> ColumnGroup {
        // Candidate 1: RLE.
        let mut runs: Vec<(f64, u32)> = Vec::new();
        for &v in &col {
            match runs.last_mut() {
                // Compare bit patterns so NaN runs compress too.
                Some((last, len)) if last.to_bits() == v.to_bits() && *len < u32::MAX => *len += 1,
                _ => runs.push((v, 1)),
            }
        }
        let rle_bytes = runs.len() * 12;

        // Candidate 2: DDC. Build dictionary on value bit patterns.
        let mut dict: Vec<f64> = Vec::new();
        let mut lookup = std::collections::HashMap::new();
        let mut codes: Vec<u32> = Vec::with_capacity(col.len());
        for &v in &col {
            let next = dict.len() as u32;
            let code = *lookup.entry(v.to_bits()).or_insert_with(|| {
                dict.push(v);
                next
            });
            codes.push(code);
        }
        let ddc_bytes = if dict.len() <= 256 {
            dict.len() * 8 + codes.len()
        } else if dict.len() <= 65_536 {
            dict.len() * 8 + codes.len() * 2
        } else {
            usize::MAX
        };

        let uc_bytes = col.len() * 8;
        let best = rle_bytes.min(ddc_bytes).min(uc_bytes);
        if best == uc_bytes {
            ColumnGroup::Uc { values: col }
        } else if best == ddc_bytes {
            if dict.len() <= 256 {
                ColumnGroup::Ddc8 {
                    dict,
                    codes: codes.into_iter().map(|c| c as u8).collect(),
                }
            } else {
                ColumnGroup::Ddc16 {
                    dict,
                    codes: codes.into_iter().map(|c| c as u16).collect(),
                }
            }
        } else {
            ColumnGroup::Rle { runs }
        }
    }

    /// Per-column planner decisions (scheme + size).
    pub fn plan(&self) -> Vec<ColumnPlan> {
        self.groups
            .iter()
            .map(|g| ColumnPlan {
                scheme: g.scheme(),
                bytes: g.size_bytes(),
            })
            .collect()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.groups.len()
    }

    /// Total encoded bytes.
    pub fn size_bytes(&self) -> usize {
        self.groups.iter().map(ColumnGroup::size_bytes).sum()
    }

    /// Compression ratio relative to dense f64 storage.
    pub fn ratio(&self) -> f64 {
        let dense = (self.rows * self.groups.len() * 8) as f64;
        if dense == 0.0 {
            1.0
        } else {
            dense / self.size_bytes() as f64
        }
    }

    /// Materializes the dense matrix.
    pub fn decompress(&self) -> DenseMatrix {
        let cols = self.groups.len();
        let mut out = DenseMatrix::zeros(self.rows, cols);
        for (c, g) in self.groups.iter().enumerate() {
            g.decode_into(&mut out.values_mut()[c..], cols);
        }
        out
    }

    /// Per-group parallel chunk size: columns per block sized so each
    /// block carries at least `PAR_MIN_WORK` row visits.
    fn group_chunk(&self) -> usize {
        let min_cols = (crate::kernels::PAR_MIN_WORK / self.rows.max(1)).max(1);
        exdra_par::chunk_len(self.cols(), min_cols)
    }

    /// Applies an element-wise function to every cell *without decoding*:
    /// only the distinct values of each column group are transformed, in
    /// O(distinct) per column, and the result stays compressed. This is
    /// the compressed-domain execution path for scalar ops, unary ops,
    /// `replace`, and fused element-wise chains.
    pub fn map_cells(&self, f: impl Fn(f64) -> f64 + Sync) -> CompressedMatrix {
        let chunk = self.group_chunk();
        let groups = exdra_par::map_chunks(self.cols(), chunk, |_, range| {
            range
                .map(|c| self.groups[c].map_values(&f))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();
        CompressedMatrix {
            rows: self.rows,
            groups,
        }
    }

    /// Computes an aggregate directly on the compressed representation,
    /// bitwise identical to `aggregates::aggregate(&self.decompress(), ..)`:
    /// every cell is visited in the same order, with the same running
    /// stats, as the corresponding dense arm (min/max column aggregates
    /// shortcut over distinct values, which is order-blind and exact).
    pub fn aggregate(&self, op: AggOp, dir: AggDir) -> Result<DenseMatrix> {
        let (r, c) = (self.rows, self.cols());
        let needs_data = !matches!(op, AggOp::Sum | AggOp::SumSq);
        if r * c == 0 && needs_data {
            return Err(MatrixError::InvalidArgument {
                op: op.name(),
                msg: "aggregate of empty matrix".into(),
            });
        }
        match dir {
            AggDir::Full => {
                // Row-major cell order via one streaming cursor per
                // column — the dense Full arm's exact chain.
                let mut cursors: Vec<Cursor> = self.groups.iter().map(Cursor::new).collect();
                let mut sum = 0.0;
                let mut sumsq = 0.0;
                let mut min = f64::INFINITY;
                let mut max = f64::NEG_INFINITY;
                for _ in 0..r {
                    for cur in cursors.iter_mut() {
                        let v = cur.next();
                        sum += v;
                        sumsq += v * v;
                        min = min.min(v);
                        max = max.max(v);
                    }
                }
                Ok(DenseMatrix::filled(
                    1,
                    1,
                    finish(op, sum, sumsq, min, max, (r * c) as f64),
                ))
            }
            AggDir::Row => {
                // Column-outer walk over disjoint row blocks: each row's
                // stats update in c-ascending order — the dense Row arm's
                // left-to-right chain, `f64::min`/`f64::max` style.
                let mut out = DenseMatrix::zeros(r, 1);
                let rows_per_chunk = exdra_par::chunk_len(r, par_floor(4 * c));
                exdra_par::par_chunks_mut(out.values_mut(), rows_per_chunk, |_, lo, chunk| {
                    let hi = lo + chunk.len();
                    let w = chunk.len();
                    let mut sum = vec![0.0; w];
                    let mut sumsq = vec![0.0; w];
                    let mut min = vec![f64::INFINITY; w];
                    let mut max = vec![f64::NEG_INFINITY; w];
                    for g in &self.groups {
                        g.for_each_range(lo, hi, |row, v| {
                            let d = row - lo;
                            sum[d] += v;
                            sumsq[d] += v * v;
                            min[d] = min[d].min(v);
                            max[d] = max[d].max(v);
                        });
                    }
                    for (d, o) in chunk.iter_mut().enumerate() {
                        *o = finish(op, sum[d], sumsq[d], min[d], max[d], c as f64);
                    }
                });
                Ok(out)
            }
            AggDir::Col => {
                // One output cell per group, groups disjoint. Sum-based
                // ops walk rows top-to-bottom (the dense Col arm's
                // i-ascending chain); min/max scan distinct values with
                // the Col arm's `<`/`>` comparisons, which is set-based
                // and therefore order-independent.
                let mut out = DenseMatrix::zeros(1, c);
                let chunk = self.group_chunk();
                exdra_par::par_chunks_mut(out.values_mut(), chunk, |_, c0, ochunk| {
                    for (d, o) in ochunk.iter_mut().enumerate() {
                        let g = &self.groups[c0 + d];
                        let mut sum = 0.0;
                        let mut sumsq = 0.0;
                        let mut min = f64::INFINITY;
                        let mut max = f64::NEG_INFINITY;
                        match op {
                            AggOp::Min | AggOp::Max => g.for_each_distinct(|v| {
                                if v < min {
                                    min = v;
                                }
                                if v > max {
                                    max = v;
                                }
                            }),
                            _ => g.for_each_range(0, r, |_, v| {
                                sum += v;
                                sumsq += v * v;
                            }),
                        }
                        *o = finish(op, sum, sumsq, min, max, r as f64);
                    }
                });
                Ok(out)
            }
        }
    }

    /// Matrix-vector product `self * v` executed directly on the
    /// compressed representation: column-outer, every column visited in
    /// ascending order with no zero-skip, each term `x * v[c]` added
    /// individually — the dense matvec fast path's per-row k-ascending
    /// chain, bit for bit, reading 1-2 byte codes instead of 8-byte cells.
    pub fn matvec(&self, v: &DenseMatrix) -> Result<DenseMatrix> {
        if v.rows() != self.cols() || v.cols() != 1 {
            return Err(MatrixError::DimensionMismatch {
                op: "compressed_matvec",
                lhs: (self.rows, self.cols()),
                rhs: v.shape(),
            });
        }
        let vv = v.values();
        let mut out = vec![0.0; self.rows];
        let chunk = exdra_par::chunk_len(self.rows, par_floor(self.cols()));
        exdra_par::par_chunks_mut(&mut out, chunk, |_, lo, oseg| {
            let hi = lo + oseg.len();
            for (c, g) in self.groups.iter().enumerate() {
                let scale = vv[c];
                g.for_each_range(lo, hi, |row, x| oseg[row - lo] += x * scale);
            }
        });
        DenseMatrix::new(self.rows, 1, out)
    }

    /// Vector-matrix product `wᵀ * self` on the compressed representation:
    /// per column, one r-ascending chain `acc += w[r] * x` — exactly the
    /// blocked GEMM's per-cell k-ascending order for `t(w) %*% X`.
    pub fn t_vecmat(&self, w: &DenseMatrix) -> Result<DenseMatrix> {
        if w.rows() != self.rows || w.cols() != 1 {
            return Err(MatrixError::DimensionMismatch {
                op: "compressed_vecmat",
                lhs: (self.rows, self.cols()),
                rhs: w.shape(),
            });
        }
        let wv = w.values();
        let mut out = vec![0.0; self.cols()];
        let chunk = self.group_chunk();
        exdra_par::par_chunks_mut(&mut out, chunk, |_, c0, ochunk| {
            for (d, o) in ochunk.iter_mut().enumerate() {
                let mut acc = 0.0;
                self.groups[c0 + d].for_each_range(0, self.rows, |row, x| acc += wv[row] * x);
                *o = acc;
            }
        });
        DenseMatrix::new(1, self.cols(), out)
    }

    /// Fused chain `Xᵀ (w ⊙ (X v))` on the compressed representation,
    /// phase for phase the dense `mmchain` kernel: phase 1 accumulates
    /// each row's dot c-ascending (column-outer) then applies `w`; phase
    /// 2 reduces each output column r-ascending with `q[r]` as the left
    /// operand. Bitwise identical to decompress-then-`mmchain`.
    pub fn mmchain(&self, v: &DenseMatrix, w: Option<&DenseMatrix>) -> Result<DenseMatrix> {
        if v.rows() != self.cols() || v.cols() != 1 {
            return Err(MatrixError::DimensionMismatch {
                op: "compressed_mmchain",
                lhs: (self.rows, self.cols()),
                rhs: v.shape(),
            });
        }
        if let Some(w) = w {
            if w.rows() != self.rows || w.cols() != 1 {
                return Err(MatrixError::DimensionMismatch {
                    op: "compressed_mmchain",
                    lhs: (self.rows, self.cols()),
                    rhs: w.shape(),
                });
            }
        }
        let (m, n) = (self.rows, self.cols());
        let mut out = DenseMatrix::zeros(n, 1);
        if m == 0 || n == 0 {
            return Ok(out);
        }
        let vv = v.values();
        let wv = w.map(|w| w.values());
        // Phase 1: q = (X v) ⊙ w, column-outer over disjoint row blocks.
        let mut q = vec![0.0; m];
        let chunk = exdra_par::chunk_len(m, par_floor(n));
        exdra_par::par_chunks_mut(&mut q, chunk, |_, lo, qseg| {
            let hi = lo + qseg.len();
            for (c, g) in self.groups.iter().enumerate() {
                let scale = vv[c];
                g.for_each_range(lo, hi, |row, x| qseg[row - lo] += x * scale);
            }
            if let Some(wv) = wv {
                for (d, qi) in qseg.iter_mut().enumerate() {
                    *qi *= wv[lo + d];
                }
            }
        });
        // Phase 2: out = Xᵀ q, one r-ascending chain per column.
        let q = &q;
        let chunk = self.group_chunk();
        exdra_par::par_chunks_mut(out.values_mut(), chunk, |_, c0, ochunk| {
            for (d, o) in ochunk.iter_mut().enumerate() {
                let mut acc = 0.0;
                self.groups[c0 + d].for_each_range(0, m, |row, x| acc += q[row] * x);
                *o = acc;
            }
        });
        Ok(out)
    }

    /// Column sums computed on the compressed representation.
    pub fn col_sums(&self) -> DenseMatrix {
        self.aggregate(AggOp::Sum, AggDir::Col)
            .expect("sum aggregate cannot fail")
    }

    /// Full sum computed on the compressed representation.
    pub fn sum(&self) -> f64 {
        self.aggregate(AggOp::Sum, AggDir::Full)
            .expect("sum aggregate cannot fail")
            .get(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::matmul::matmul_naive;
    use crate::kernels::reorg::transpose;
    use crate::rng::rand_matrix;

    /// Matrix with low-cardinality and constant columns (compressible) plus
    /// one random column (incompressible).
    fn mixed_matrix(rows: usize) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(rows, 4);
        for r in 0..rows {
            d.set(r, 0, (r % 3) as f64); // 3 distinct values -> DDC8
            d.set(r, 1, 7.0); // constant -> RLE
            d.set(r, 2, if r < rows / 2 { 1.0 } else { 2.0 }); // 2 runs -> RLE
        }
        let noise = rand_matrix(rows, 1, 0.0, 1.0, 99);
        for r in 0..rows {
            d.set(r, 3, noise.get(r, 0)); // random -> UC
        }
        d
    }

    #[test]
    fn roundtrip_lossless() {
        let d = mixed_matrix(500);
        let c = CompressedMatrix::compress(&d);
        assert!(c.decompress().max_abs_diff(&d) == 0.0);
    }

    #[test]
    fn planner_picks_expected_schemes() {
        let d = mixed_matrix(500);
        let c = CompressedMatrix::compress(&d);
        let plan = c.plan();
        assert_eq!(plan[0].scheme, "DDC8");
        assert_eq!(plan[1].scheme, "RLE");
        assert_eq!(plan[2].scheme, "RLE");
        assert_eq!(plan[3].scheme, "UC");
        assert!(c.ratio() > 2.0, "ratio {}", c.ratio());
    }

    #[test]
    fn nan_columns_roundtrip() {
        let mut d = DenseMatrix::zeros(10, 1);
        for r in 0..5 {
            d.set(r, 0, f64::NAN);
        }
        let c = CompressedMatrix::compress(&d);
        let back = c.decompress();
        for r in 0..10 {
            assert_eq!(back.get(r, 0).is_nan(), r < 5);
        }
    }

    #[test]
    fn compressed_matvec_matches_dense() {
        let d = mixed_matrix(100);
        let c = CompressedMatrix::compress(&d);
        let v = rand_matrix(4, 1, -1.0, 1.0, 5);
        let got = c.matvec(&v).unwrap();
        let want = matmul_naive(&d, &v).unwrap();
        assert!(got.max_abs_diff(&want) < 1e-12);
    }

    #[test]
    fn compressed_vecmat_matches_dense() {
        let d = mixed_matrix(100);
        let c = CompressedMatrix::compress(&d);
        let w = rand_matrix(100, 1, -1.0, 1.0, 6);
        let got = c.t_vecmat(&w).unwrap();
        let want = matmul_naive(&transpose(&w), &d).unwrap();
        assert!(got.max_abs_diff(&want) < 1e-10);
    }

    #[test]
    fn compressed_aggregates_match_dense() {
        let d = mixed_matrix(64);
        let c = CompressedMatrix::compress(&d);
        let want = crate::kernels::aggregates::aggregate(
            &d,
            crate::kernels::aggregates::AggOp::Sum,
            crate::kernels::aggregates::AggDir::Col,
        )
        .unwrap();
        assert!(c.col_sums().max_abs_diff(&want) < 1e-10);
        assert!((c.sum() - d.values().iter().sum::<f64>()).abs() < 1e-10);
    }

    fn same_bits(a: &DenseMatrix, b: &DenseMatrix) -> bool {
        a.shape() == b.shape()
            && a.values()
                .iter()
                .zip(b.values())
                .all(|(x, y)| x.to_bits() == y.to_bits())
    }

    #[test]
    fn every_aggregate_is_bitwise_identical_to_dense() {
        use crate::kernels::aggregates::{aggregate, AggDir, AggOp};
        let d = mixed_matrix(97);
        let c = CompressedMatrix::compress(&d);
        for op in [
            AggOp::Sum,
            AggOp::Min,
            AggOp::Max,
            AggOp::Mean,
            AggOp::Var,
            AggOp::Sd,
            AggOp::SumSq,
        ] {
            for dir in [AggDir::Full, AggDir::Row, AggDir::Col] {
                let got = c.aggregate(op, dir).unwrap();
                let want = aggregate(&d, op, dir).unwrap();
                assert!(same_bits(&got, &want), "{:?} {:?} differs", op, dir);
            }
        }
    }

    #[test]
    fn matvec_vecmat_mmchain_bitwise_match_dense_kernels() {
        use crate::kernels::matmul::{matmul, mmchain};
        let d = mixed_matrix(150);
        let c = CompressedMatrix::compress(&d);
        let v = rand_matrix(4, 1, -1.0, 1.0, 5);
        let w = rand_matrix(150, 1, 0.0, 1.0, 6);
        assert!(same_bits(&c.matvec(&v).unwrap(), &matmul(&d, &v).unwrap()));
        let want_vm = matmul(&transpose(&w), &d).unwrap();
        assert!(same_bits(&c.t_vecmat(&w).unwrap(), &want_vm));
        for weights in [None, Some(&w)] {
            let got = c.mmchain(&v, weights).unwrap();
            let want = mmchain(&d, &v, weights).unwrap();
            assert!(same_bits(&got, &want));
        }
    }

    #[test]
    fn map_cells_stays_compressed_and_matches_dense_map() {
        let d = mixed_matrix(120);
        let c = CompressedMatrix::compress(&d);
        let got = c.map_cells(|v| (v * 2.0).abs());
        // Structure preserved: same schemes, no decode.
        let before: Vec<_> = c.plan().iter().map(|p| p.scheme).collect();
        let after: Vec<_> = got.plan().iter().map(|p| p.scheme).collect();
        assert_eq!(before, after);
        let want = d.map(|v| (v * 2.0).abs());
        assert!(same_bits(&got.decompress(), &want));
    }
}
