//! Lossless column compression for cached intermediates (paper §4.4,
//! "Compression": federated workers use free cycles for asynchronous,
//! lossless compression and compaction of intermediates).
//!
//! The scheme follows compressed linear algebra (Elgohary et al.): each
//! column is encoded independently with the cheapest of
//!
//! * **DDC** (dense dictionary coding) — a dictionary of distinct values plus
//!   one code per row (u8 or u16 depending on dictionary size),
//! * **RLE** (run-length encoding) — `(value, run_length)` pairs,
//! * **UC** (uncompressed) — fallback when neither pays off.
//!
//! A handful of linear-algebra ops execute *directly* on the compressed
//! form (`matrix-vector`, `col_sums`, `sum`), which is what makes compressed
//! caching attractive: repeated pipeline runs can reuse compacted
//! intermediates without decompressing.

use crate::dense::DenseMatrix;

/// One encoded column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnGroup {
    /// Dense dictionary coding with u8 codes (≤ 256 distinct values).
    Ddc8 {
        /// Distinct values, index = code.
        dict: Vec<f64>,
        /// One code per row.
        codes: Vec<u8>,
    },
    /// Dense dictionary coding with u16 codes (≤ 65,536 distinct values).
    Ddc16 {
        /// Distinct values, index = code.
        dict: Vec<f64>,
        /// One code per row.
        codes: Vec<u16>,
    },
    /// Run-length encoding as `(value, run_length)` pairs.
    Rle {
        /// Runs of equal values covering the column top to bottom.
        runs: Vec<(f64, u32)>,
    },
    /// Uncompressed fallback.
    Uc {
        /// Raw column values.
        values: Vec<f64>,
    },
}

impl ColumnGroup {
    /// Encoded size in bytes (used by the compression planner).
    pub fn size_bytes(&self) -> usize {
        match self {
            ColumnGroup::Ddc8 { dict, codes } => dict.len() * 8 + codes.len(),
            ColumnGroup::Ddc16 { dict, codes } => dict.len() * 8 + codes.len() * 2,
            ColumnGroup::Rle { runs } => runs.len() * 12,
            ColumnGroup::Uc { values } => values.len() * 8,
        }
    }

    /// Scheme name for stats output.
    pub fn scheme(&self) -> &'static str {
        match self {
            ColumnGroup::Ddc8 { .. } => "DDC8",
            ColumnGroup::Ddc16 { .. } => "DDC16",
            ColumnGroup::Rle { .. } => "RLE",
            ColumnGroup::Uc { .. } => "UC",
        }
    }

    fn decode_into(&self, out: &mut [f64], stride: usize) {
        match self {
            ColumnGroup::Ddc8 { dict, codes } => {
                for (r, &code) in codes.iter().enumerate() {
                    out[r * stride] = dict[code as usize];
                }
            }
            ColumnGroup::Ddc16 { dict, codes } => {
                for (r, &code) in codes.iter().enumerate() {
                    out[r * stride] = dict[code as usize];
                }
            }
            ColumnGroup::Rle { runs } => {
                let mut r = 0usize;
                for &(v, len) in runs {
                    for _ in 0..len {
                        out[r * stride] = v;
                        r += 1;
                    }
                }
            }
            ColumnGroup::Uc { values } => {
                for (r, &v) in values.iter().enumerate() {
                    out[r * stride] = v;
                }
            }
        }
    }

    /// Dot product of this column with a dense vector of row weights
    /// (core of compressed matrix-vector multiplication).
    fn dot(&self, weights: &[f64]) -> f64 {
        match self {
            ColumnGroup::Ddc8 { dict, codes } => {
                // Accumulate weights per code, then one pass over the dict.
                let mut acc = vec![0.0; dict.len()];
                for (r, &code) in codes.iter().enumerate() {
                    acc[code as usize] += weights[r];
                }
                acc.iter().zip(dict).map(|(&a, &d)| a * d).sum()
            }
            ColumnGroup::Ddc16 { dict, codes } => {
                let mut acc = vec![0.0; dict.len()];
                for (r, &code) in codes.iter().enumerate() {
                    acc[code as usize] += weights[r];
                }
                acc.iter().zip(dict).map(|(&a, &d)| a * d).sum()
            }
            ColumnGroup::Rle { runs } => {
                let mut r = 0usize;
                let mut total = 0.0;
                for &(v, len) in runs {
                    if v != 0.0 {
                        let s: f64 = weights[r..r + len as usize].iter().sum();
                        total += v * s;
                    }
                    r += len as usize;
                }
                total
            }
            ColumnGroup::Uc { values } => values.iter().zip(weights).map(|(&v, &w)| v * w).sum(),
        }
    }

    /// Sum of the column values.
    fn sum(&self, rows: usize) -> f64 {
        match self {
            ColumnGroup::Ddc8 { dict, codes } => {
                let mut counts = vec![0usize; dict.len()];
                for &c in codes {
                    counts[c as usize] += 1;
                }
                counts.iter().zip(dict).map(|(&n, &d)| n as f64 * d).sum()
            }
            ColumnGroup::Ddc16 { dict, codes } => {
                let mut counts = vec![0usize; dict.len()];
                for &c in codes {
                    counts[c as usize] += 1;
                }
                counts.iter().zip(dict).map(|(&n, &d)| n as f64 * d).sum()
            }
            ColumnGroup::Rle { runs } => runs.iter().map(|&(v, len)| v * len as f64).sum(),
            ColumnGroup::Uc { values } => {
                debug_assert_eq!(values.len(), rows);
                values.iter().sum()
            }
        }
    }
}

/// A losslessly compressed matrix: one [`ColumnGroup`] per column.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedMatrix {
    rows: usize,
    groups: Vec<ColumnGroup>,
}

/// Compression planner decision for one column (returned by
/// [`CompressedMatrix::plan`] for observability).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnPlan {
    /// Chosen scheme name.
    pub scheme: &'static str,
    /// Encoded bytes under the chosen scheme.
    pub bytes: usize,
}

impl CompressedMatrix {
    /// Compresses a dense matrix column by column, choosing per column the
    /// scheme with the smallest encoded size.
    pub fn compress(d: &DenseMatrix) -> Self {
        let (rows, cols) = d.shape();
        // Columns encode independently: gather + encode fan out in column
        // blocks over the `exdra_par` pool, and `map_chunks` returns the
        // blocks in column order, so the group layout matches the serial
        // sweep exactly.
        let min_cols = (crate::kernels::PAR_MIN_WORK / rows.max(1)).max(1);
        let chunk = exdra_par::chunk_len(cols, min_cols);
        let groups = exdra_par::map_chunks(cols, chunk, |_, range| {
            range
                .map(|c| {
                    let col: Vec<f64> = (0..rows).map(|r| d.get(r, c)).collect();
                    Self::encode_column(col)
                })
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();
        Self { rows, groups }
    }

    fn encode_column(col: Vec<f64>) -> ColumnGroup {
        // Candidate 1: RLE.
        let mut runs: Vec<(f64, u32)> = Vec::new();
        for &v in &col {
            match runs.last_mut() {
                // Compare bit patterns so NaN runs compress too.
                Some((last, len)) if last.to_bits() == v.to_bits() && *len < u32::MAX => *len += 1,
                _ => runs.push((v, 1)),
            }
        }
        let rle_bytes = runs.len() * 12;

        // Candidate 2: DDC. Build dictionary on value bit patterns.
        let mut dict: Vec<f64> = Vec::new();
        let mut lookup = std::collections::HashMap::new();
        let mut codes: Vec<u32> = Vec::with_capacity(col.len());
        for &v in &col {
            let next = dict.len() as u32;
            let code = *lookup.entry(v.to_bits()).or_insert_with(|| {
                dict.push(v);
                next
            });
            codes.push(code);
        }
        let ddc_bytes = if dict.len() <= 256 {
            dict.len() * 8 + codes.len()
        } else if dict.len() <= 65_536 {
            dict.len() * 8 + codes.len() * 2
        } else {
            usize::MAX
        };

        let uc_bytes = col.len() * 8;
        let best = rle_bytes.min(ddc_bytes).min(uc_bytes);
        if best == uc_bytes {
            ColumnGroup::Uc { values: col }
        } else if best == ddc_bytes {
            if dict.len() <= 256 {
                ColumnGroup::Ddc8 {
                    dict,
                    codes: codes.into_iter().map(|c| c as u8).collect(),
                }
            } else {
                ColumnGroup::Ddc16 {
                    dict,
                    codes: codes.into_iter().map(|c| c as u16).collect(),
                }
            }
        } else {
            ColumnGroup::Rle { runs }
        }
    }

    /// Per-column planner decisions (scheme + size).
    pub fn plan(&self) -> Vec<ColumnPlan> {
        self.groups
            .iter()
            .map(|g| ColumnPlan {
                scheme: g.scheme(),
                bytes: g.size_bytes(),
            })
            .collect()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.groups.len()
    }

    /// Total encoded bytes.
    pub fn size_bytes(&self) -> usize {
        self.groups.iter().map(ColumnGroup::size_bytes).sum()
    }

    /// Compression ratio relative to dense f64 storage.
    pub fn ratio(&self) -> f64 {
        let dense = (self.rows * self.groups.len() * 8) as f64;
        if dense == 0.0 {
            1.0
        } else {
            dense / self.size_bytes() as f64
        }
    }

    /// Materializes the dense matrix.
    pub fn decompress(&self) -> DenseMatrix {
        let cols = self.groups.len();
        let mut out = DenseMatrix::zeros(self.rows, cols);
        for (c, g) in self.groups.iter().enumerate() {
            g.decode_into(&mut out.values_mut()[c..], cols);
        }
        out
    }

    /// Matrix-vector product `self * v` executed directly on the compressed
    /// representation (one dictionary-aggregated dot per column).
    ///
    /// Note: this evaluates `selfᵀ`-major, so it is most efficient when the
    /// matrix is tall; it returns the exact same result as the dense kernel.
    pub fn matvec(&self, v: &DenseMatrix) -> crate::error::Result<DenseMatrix> {
        if v.rows() != self.cols() || v.cols() != 1 {
            return Err(crate::error::MatrixError::DimensionMismatch {
                op: "compressed_matvec",
                lhs: (self.rows, self.cols()),
                rhs: v.shape(),
            });
        }
        // out[r] = sum_c value(r,c) * v[c]; evaluate column-wise with scaling.
        let mut out = vec![0.0; self.rows];
        let mut colbuf = vec![0.0; self.rows];
        for (c, g) in self.groups.iter().enumerate() {
            let scale = v.get(c, 0);
            if scale == 0.0 {
                continue;
            }
            g.decode_into(&mut colbuf, 1);
            for (o, &x) in out.iter_mut().zip(&colbuf) {
                *o += scale * x;
            }
        }
        DenseMatrix::new(self.rows, 1, out)
    }

    /// Vector-matrix product `wᵀ * self` on the compressed representation;
    /// this is the fast path (per-code weight aggregation, no decode).
    pub fn t_vecmat(&self, w: &DenseMatrix) -> crate::error::Result<DenseMatrix> {
        if w.rows() != self.rows || w.cols() != 1 {
            return Err(crate::error::MatrixError::DimensionMismatch {
                op: "compressed_vecmat",
                lhs: (self.rows, self.cols()),
                rhs: w.shape(),
            });
        }
        let data: Vec<f64> = self.groups.iter().map(|g| g.dot(w.values())).collect();
        DenseMatrix::new(1, self.cols(), data)
    }

    /// Column sums computed on the compressed representation.
    pub fn col_sums(&self) -> DenseMatrix {
        let data: Vec<f64> = self.groups.iter().map(|g| g.sum(self.rows)).collect();
        DenseMatrix::new(1, self.cols(), data).expect("consistent dims")
    }

    /// Full sum computed on the compressed representation.
    pub fn sum(&self) -> f64 {
        self.groups.iter().map(|g| g.sum(self.rows)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::matmul::matmul_naive;
    use crate::kernels::reorg::transpose;
    use crate::rng::rand_matrix;

    /// Matrix with low-cardinality and constant columns (compressible) plus
    /// one random column (incompressible).
    fn mixed_matrix(rows: usize) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(rows, 4);
        for r in 0..rows {
            d.set(r, 0, (r % 3) as f64); // 3 distinct values -> DDC8
            d.set(r, 1, 7.0); // constant -> RLE
            d.set(r, 2, if r < rows / 2 { 1.0 } else { 2.0 }); // 2 runs -> RLE
        }
        let noise = rand_matrix(rows, 1, 0.0, 1.0, 99);
        for r in 0..rows {
            d.set(r, 3, noise.get(r, 0)); // random -> UC
        }
        d
    }

    #[test]
    fn roundtrip_lossless() {
        let d = mixed_matrix(500);
        let c = CompressedMatrix::compress(&d);
        assert!(c.decompress().max_abs_diff(&d) == 0.0);
    }

    #[test]
    fn planner_picks_expected_schemes() {
        let d = mixed_matrix(500);
        let c = CompressedMatrix::compress(&d);
        let plan = c.plan();
        assert_eq!(plan[0].scheme, "DDC8");
        assert_eq!(plan[1].scheme, "RLE");
        assert_eq!(plan[2].scheme, "RLE");
        assert_eq!(plan[3].scheme, "UC");
        assert!(c.ratio() > 2.0, "ratio {}", c.ratio());
    }

    #[test]
    fn nan_columns_roundtrip() {
        let mut d = DenseMatrix::zeros(10, 1);
        for r in 0..5 {
            d.set(r, 0, f64::NAN);
        }
        let c = CompressedMatrix::compress(&d);
        let back = c.decompress();
        for r in 0..10 {
            assert_eq!(back.get(r, 0).is_nan(), r < 5);
        }
    }

    #[test]
    fn compressed_matvec_matches_dense() {
        let d = mixed_matrix(100);
        let c = CompressedMatrix::compress(&d);
        let v = rand_matrix(4, 1, -1.0, 1.0, 5);
        let got = c.matvec(&v).unwrap();
        let want = matmul_naive(&d, &v).unwrap();
        assert!(got.max_abs_diff(&want) < 1e-12);
    }

    #[test]
    fn compressed_vecmat_matches_dense() {
        let d = mixed_matrix(100);
        let c = CompressedMatrix::compress(&d);
        let w = rand_matrix(100, 1, -1.0, 1.0, 6);
        let got = c.t_vecmat(&w).unwrap();
        let want = matmul_naive(&transpose(&w), &d).unwrap();
        assert!(got.max_abs_diff(&want) < 1e-10);
    }

    #[test]
    fn compressed_aggregates_match_dense() {
        let d = mixed_matrix(64);
        let c = CompressedMatrix::compress(&d);
        let want = crate::kernels::aggregates::aggregate(
            &d,
            crate::kernels::aggregates::AggOp::Sum,
            crate::kernels::aggregates::AggDir::Col,
        )
        .unwrap();
        assert!(c.col_sums().max_abs_diff(&want) < 1e-10);
        assert!((c.sum() - d.values().iter().sum::<f64>()).abs() < 1e-10);
    }
}
