//! Raw-data access: CSV and binary readers/writers plus positional maps for
//! partial parsing.
//!
//! ExDRa executes ML pipelines directly on raw files at the federated sites.
//! Inspired by NoDB-style query processing on raw data (paper §1/§4.4), the
//! reader can build a [`PositionalMap`] of row byte offsets on first access
//! so later passes parse only the requested row ranges.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::dense::DenseMatrix;
use crate::error::{MatrixError, Result};
use crate::frame::{Frame, FrameColumn, ValueType};

const BIN_MAGIC: &[u8; 8] = b"EXDRAMT1";

/// Writes a matrix as headerless CSV.
pub fn write_matrix_csv(m: &DenseMatrix, path: &Path) -> Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    let mut line = String::new();
    for r in 0..m.rows() {
        line.clear();
        for (i, v) in m.row(r).iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            // Shortest roundtrip formatting.
            line.push_str(&format!("{v}"));
        }
        line.push('\n');
        w.write_all(line.as_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a headerless numeric CSV as a matrix. Empty cells and the literal
/// `NA` become NaN.
pub fn read_matrix_csv(path: &Path) -> Result<DenseMatrix> {
    let r = BufReader::new(File::open(path)?);
    let mut data = Vec::new();
    let mut cols = 0usize;
    let mut rows = 0usize;
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let mut n = 0usize;
        for cell in line.split(',') {
            data.push(parse_numeric_cell(cell, lineno + 1)?);
            n += 1;
        }
        if rows == 0 {
            cols = n;
        } else if n != cols {
            return Err(MatrixError::Parse {
                line: lineno + 1,
                msg: format!("expected {cols} cells, found {n}"),
            });
        }
        rows += 1;
    }
    DenseMatrix::new(rows, cols, data)
}

fn parse_numeric_cell(cell: &str, line: usize) -> Result<f64> {
    let t = cell.trim();
    if t.is_empty() || t == "NA" || t == "NULL" {
        return Ok(f64::NAN);
    }
    t.parse::<f64>().map_err(|_| MatrixError::Parse {
        line,
        msg: format!("invalid numeric cell '{t}'"),
    })
}

/// Writes a matrix in the binary format (`EXDRAMT1` magic, u64 dims,
/// little-endian f64 payload). This is the fast path the workers use for
/// retained intermediates and what the experiments' "I/O from binary files"
/// refers to.
pub fn write_matrix_bin(m: &DenseMatrix, path: &Path) -> Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(BIN_MAGIC)?;
    w.write_all(&(m.rows() as u64).to_le_bytes())?;
    w.write_all(&(m.cols() as u64).to_le_bytes())?;
    for v in m.values() {
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a matrix from the binary format.
pub fn read_matrix_bin(path: &Path) -> Result<DenseMatrix> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != BIN_MAGIC {
        return Err(MatrixError::Parse {
            line: 0,
            msg: "bad magic in binary matrix file".into(),
        });
    }
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)?;
    let rows = u64::from_le_bytes(buf8) as usize;
    r.read_exact(&mut buf8)?;
    let cols = u64::from_le_bytes(buf8) as usize;
    let mut data = vec![0.0f64; rows * cols];
    for v in &mut data {
        r.read_exact(&mut buf8)?;
        *v = f64::from_le_bytes(buf8);
    }
    DenseMatrix::new(rows, cols, data)
}

/// Writes a frame as CSV with a header line; missing cells are empty.
pub fn write_frame_csv(f: &Frame, path: &Path) -> Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "{}", f.names().join(","))?;
    for r in 0..f.rows() {
        let mut line = String::new();
        for c in 0..f.cols() {
            if c > 0 {
                line.push(',');
            }
            line.push_str(&f.column(c)?.render(r));
        }
        writeln!(w, "{line}")?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a CSV with header into a frame using an explicit schema (one
/// [`ValueType`] per column). Empty cells, `NA`, and `NULL` parse as missing.
pub fn read_frame_csv(path: &Path, schema: &[ValueType]) -> Result<Frame> {
    let mut r = BufReader::new(File::open(path)?);
    let mut header = String::new();
    r.read_line(&mut header)?;
    let names: Vec<String> = header.trim_end().split(',').map(str::to_string).collect();
    if names.len() != schema.len() {
        return Err(MatrixError::Parse {
            line: 1,
            msg: format!(
                "header has {} columns, schema has {}",
                names.len(),
                schema.len()
            ),
        });
    }
    let mut cols: Vec<FrameColumn> = schema
        .iter()
        .map(|t| match t {
            ValueType::F64 => FrameColumn::F64(Vec::new()),
            ValueType::I64 => FrameColumn::I64(Vec::new()),
            ValueType::Str => FrameColumn::Str(Vec::new()),
            ValueType::Bool => FrameColumn::Bool(Vec::new()),
        })
        .collect();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        parse_frame_line(&line, lineno + 2, &mut cols)?;
    }
    Frame::new(names.into_iter().zip(cols).collect())
}

fn parse_frame_line(line: &str, lineno: usize, cols: &mut [FrameColumn]) -> Result<()> {
    let mut n = 0usize;
    for (c, cell) in line.split(',').enumerate() {
        let col = cols.get_mut(c).ok_or(MatrixError::Parse {
            line: lineno,
            msg: format!("too many cells (expected {})", n),
        })?;
        let t = cell.trim();
        let missing = t.is_empty() || t == "NA" || t == "NULL";
        match col {
            FrameColumn::F64(v) => v.push(if missing {
                None
            } else {
                Some(t.parse().map_err(|_| MatrixError::Parse {
                    line: lineno,
                    msg: format!("invalid f64 '{t}'"),
                })?)
            }),
            FrameColumn::I64(v) => v.push(if missing {
                None
            } else {
                Some(t.parse().map_err(|_| MatrixError::Parse {
                    line: lineno,
                    msg: format!("invalid i64 '{t}'"),
                })?)
            }),
            FrameColumn::Bool(v) => v.push(if missing {
                None
            } else {
                Some(match t {
                    "true" | "TRUE" | "1" => true,
                    "false" | "FALSE" | "0" => false,
                    other => {
                        return Err(MatrixError::Parse {
                            line: lineno,
                            msg: format!("invalid bool '{other}'"),
                        })
                    }
                })
            }),
            FrameColumn::Str(v) => v.push(if missing { None } else { Some(t.to_string()) }),
        }
        n += 1;
    }
    if n != cols.len() {
        return Err(MatrixError::Parse {
            line: lineno,
            msg: format!("expected {} cells, found {n}", cols.len()),
        });
    }
    Ok(())
}

/// Infers a per-column schema from the first `sample_rows` data rows of a
/// CSV-with-header: i64 if all sampled cells parse as integers, else f64 if
/// numeric, else bool, else string. Missing cells are ignored for inference.
pub fn infer_schema(path: &Path, sample_rows: usize) -> Result<Vec<ValueType>> {
    let mut r = BufReader::new(File::open(path)?);
    let mut header = String::new();
    r.read_line(&mut header)?;
    let ncols = header.trim_end().split(',').count();
    // Start at the most specific type and widen.
    let mut types = vec![ValueType::I64; ncols];
    let mut seen = vec![false; ncols];
    for line in r.lines().take(sample_rows) {
        let line = line?;
        for (c, cell) in line.split(',').enumerate().take(ncols) {
            let t = cell.trim();
            if t.is_empty() || t == "NA" || t == "NULL" {
                continue;
            }
            seen[c] = true;
            types[c] = widen(types[c], t);
        }
    }
    // Columns never observed default to string (safest).
    for (c, &s) in seen.iter().enumerate() {
        if !s {
            types[c] = ValueType::Str;
        }
    }
    Ok(types)
}

fn widen(current: ValueType, cell: &str) -> ValueType {
    let fits = |t: ValueType| match t {
        ValueType::I64 => cell.parse::<i64>().is_ok(),
        ValueType::F64 => cell.parse::<f64>().is_ok(),
        ValueType::Bool => matches!(cell, "true" | "false" | "TRUE" | "FALSE"),
        ValueType::Str => true,
    };
    // Widening order: i64 -> f64 -> str; bool only via explicit literals.
    let order = [current, ValueType::F64, ValueType::Bool, ValueType::Str];
    for t in order {
        if fits(t) {
            return t;
        }
    }
    ValueType::Str
}

/// Byte offsets of row starts in a raw CSV file, built once on first access
/// and reused for partial parsing of later row-range reads.
#[derive(Debug, Clone)]
pub struct PositionalMap {
    /// `offsets[i]` is the byte offset of data row `i` (header excluded).
    offsets: Vec<u64>,
    /// Total file length in bytes.
    file_len: u64,
    /// Whether the file's first line is a header (skipped in `offsets`).
    has_header: bool,
}

impl PositionalMap {
    /// Scans the file once, recording the byte offset of every data row.
    pub fn build(path: &Path, has_header: bool) -> Result<Self> {
        let mut r = BufReader::new(File::open(path)?);
        let mut offsets = Vec::new();
        let mut pos = 0u64;
        let mut line = String::new();
        let mut first = true;
        loop {
            line.clear();
            let n = r.read_line(&mut line)?;
            if n == 0 {
                break;
            }
            if (!first || !has_header) && !line.trim_end().is_empty() {
                offsets.push(pos);
            }
            first = false;
            pos += n as u64;
        }
        Ok(Self {
            offsets,
            file_len: pos,
            has_header,
        })
    }

    /// Number of data rows.
    pub fn rows(&self) -> usize {
        self.offsets.len()
    }

    /// True when the map was built over a headered file.
    pub fn has_header(&self) -> bool {
        self.has_header
    }

    /// Reads the half-open data-row range `[lo, hi)` as a numeric matrix,
    /// seeking directly to the first requested row — partial parsing.
    pub fn read_rows_matrix(&self, path: &Path, lo: usize, hi: usize) -> Result<DenseMatrix> {
        if lo > hi || hi > self.rows() {
            return Err(MatrixError::IndexOutOfBounds {
                op: "positional_read",
                index: hi,
                bound: self.rows(),
            });
        }
        if lo == hi {
            return DenseMatrix::new(0, 0, Vec::new());
        }
        let mut f = File::open(path)?;
        let start = self.offsets[lo];
        let end = if hi < self.rows() {
            self.offsets[hi]
        } else {
            self.file_len
        };
        f.seek(SeekFrom::Start(start))?;
        let mut buf = vec![0u8; (end - start) as usize];
        f.read_exact(&mut buf)?;
        let text = String::from_utf8_lossy(&buf);
        let mut data = Vec::new();
        let mut cols = 0usize;
        let mut rows = 0usize;
        for (i, line) in text.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            let mut n = 0usize;
            for cell in line.split(',') {
                data.push(parse_numeric_cell(cell, lo + i + 1)?);
                n += 1;
            }
            if rows == 0 {
                cols = n;
            } else if n != cols {
                return Err(MatrixError::Parse {
                    line: lo + i + 1,
                    msg: format!("expected {cols} cells, found {n}"),
                });
            }
            rows += 1;
        }
        DenseMatrix::new(rows, cols, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rand_matrix;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("exdra_io_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn matrix_csv_roundtrip() {
        let m = rand_matrix(20, 5, -10.0, 10.0, 61);
        let p = tmp("m.csv");
        write_matrix_csv(&m, &p).unwrap();
        let back = read_matrix_csv(&p).unwrap();
        assert!(back.max_abs_diff(&m) < 1e-12);
    }

    #[test]
    fn matrix_csv_missing_as_nan() {
        let p = tmp("na.csv");
        std::fs::write(&p, "1,NA,3\n4,,6\n").unwrap();
        let m = read_matrix_csv(&p).unwrap();
        assert!(m.get(0, 1).is_nan());
        assert!(m.get(1, 1).is_nan());
        assert_eq!(m.get(1, 2), 6.0);
    }

    #[test]
    fn matrix_csv_ragged_rejected() {
        let p = tmp("ragged.csv");
        std::fs::write(&p, "1,2\n3\n").unwrap();
        assert!(read_matrix_csv(&p).is_err());
    }

    #[test]
    fn matrix_bin_roundtrip_exact() {
        let m = rand_matrix(33, 7, -1.0, 1.0, 62);
        let p = tmp("m.bin");
        write_matrix_bin(&m, &p).unwrap();
        let back = read_matrix_bin(&p).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn bin_bad_magic_rejected() {
        let p = tmp("bad.bin");
        std::fs::write(&p, b"NOTMAGIC\x00\x00").unwrap();
        assert!(read_matrix_bin(&p).is_err());
    }

    #[test]
    fn frame_csv_roundtrip_with_missing() {
        let f = Frame::new(vec![
            (
                "cat".into(),
                FrameColumn::Str(vec![Some("X".into()), None, Some("Z".into())]),
            ),
            (
                "val".into(),
                FrameColumn::F64(vec![Some(1.5), Some(2.0), None]),
            ),
            (
                "n".into(),
                FrameColumn::I64(vec![Some(1), Some(2), Some(3)]),
            ),
        ])
        .unwrap();
        let p = tmp("f.csv");
        write_frame_csv(&f, &p).unwrap();
        let back = read_frame_csv(&p, &[ValueType::Str, ValueType::F64, ValueType::I64]).unwrap();
        assert_eq!(back.rows(), 3);
        assert!(back.column(0).unwrap().is_missing(1));
        assert!(back.column(1).unwrap().is_missing(2));
        assert_eq!(back.column(2).unwrap().numeric(2).unwrap(), 3.0);
    }

    #[test]
    fn schema_inference() {
        let p = tmp("infer.csv");
        std::fs::write(&p, "a,b,c,d\n1,1.5,X,true\n2,NA,Y,false\n3,2.5,Z,true\n").unwrap();
        let s = infer_schema(&p, 100).unwrap();
        assert_eq!(
            s,
            vec![
                ValueType::I64,
                ValueType::F64,
                ValueType::Str,
                ValueType::Bool
            ]
        );
    }

    #[test]
    fn positional_map_partial_read() {
        let m = rand_matrix(50, 3, 0.0, 1.0, 63);
        let p = tmp("pm.csv");
        write_matrix_csv(&m, &p).unwrap();
        let pm = PositionalMap::build(&p, false).unwrap();
        assert_eq!(pm.rows(), 50);
        let mid = pm.read_rows_matrix(&p, 10, 20).unwrap();
        assert_eq!(mid.shape(), (10, 3));
        let want = crate::kernels::reorg::index(&m, 10, 20, 0, 3).unwrap();
        assert!(mid.max_abs_diff(&want) < 1e-12);
        // Empty range.
        assert_eq!(pm.read_rows_matrix(&p, 5, 5).unwrap().rows(), 0);
        // Out of bounds.
        assert!(pm.read_rows_matrix(&p, 0, 51).is_err());
    }

    #[test]
    fn positional_map_skips_header() {
        let p = tmp("pmh.csv");
        std::fs::write(&p, "h1,h2\n1,2\n3,4\n").unwrap();
        let pm = PositionalMap::build(&p, true).unwrap();
        assert_eq!(pm.rows(), 2);
        let all = pm.read_rows_matrix(&p, 0, 2).unwrap();
        assert_eq!(all.get(0, 0), 1.0);
        assert_eq!(all.get(1, 1), 4.0);
    }
}
