#![warn(missing_docs)]
//! # exdra-matrix
//!
//! Local matrix/frame substrate of the ExDRa reproduction: the equivalent of
//! Apache SystemDS' in-memory runtime that the federated backend builds on.
//!
//! The crate provides:
//!
//! * [`DenseMatrix`] — row-major `f64` matrices with the full kernel surface
//!   of the paper's Table 1 (matrix multiplication, aggregates, element-wise
//!   unary/binary/ternary/quaternary ops, and reorganizations),
//! * [`SparseMatrix`] — CSR sparse matrices with conversions and the kernels
//!   that matter for sparse data (matmul, element-wise, aggregates),
//! * [`Matrix`] — a representation-polymorphic wrapper used by the runtime,
//! * [`Frame`] — heterogeneous frames (string/f64/i64/bool columns) backing
//!   raw-data access and feature transformations,
//! * [`compress`] — lossless column compression (DDC/RLE) used by federated
//!   workers to compact cached intermediates (paper §4.4),
//! * [`io`] — CSV and binary readers/writers with positional maps for partial
//!   parsing of raw files (paper §1, "query processing on raw data").
//!
//! All kernels are deterministic and tested against naive reference
//! implementations; property tests assert the algebraic identities the
//! federated runtime relies on (e.g. partition-wise aggregation laws).

pub mod compress;
pub mod dense;
pub mod eigen;
pub mod error;
pub mod frame;
pub mod io;
pub mod kernels;
pub mod matrix;
pub mod rng;
pub mod sparse;

pub use dense::DenseMatrix;
pub use error::{MatrixError, Result};
pub use frame::{Frame, FrameColumn, ValueType};
pub use matrix::Matrix;
pub use sparse::SparseMatrix;
