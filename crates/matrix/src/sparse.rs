//! Compressed sparse row (CSR) matrices.
//!
//! The CNN experiment of the paper notes that MNIST-like data sits "just
//! below the internal sparsity threshold"; the runtime therefore needs a real
//! sparse representation with conversions and the kernels that profit from
//! sparsity (matrix-vector products, aggregates, element-wise scaling).

use crate::dense::DenseMatrix;
use crate::error::{MatrixError, Result};

/// Sparsity threshold below which [`Matrix::from_dense_auto`] chooses CSR,
/// mirroring SystemDS' internal threshold the paper mentions for conv ops.
///
/// [`Matrix::from_dense_auto`]: crate::matrix::Matrix::from_dense_auto
pub const SPARSITY_THRESHOLD: f64 = 0.4;

/// A CSR (compressed sparse row) matrix of `f64` values.
///
/// Invariants: `row_ptr.len() == rows + 1`, `row_ptr[0] == 0`,
/// `row_ptr[rows] == col_idx.len() == values.len()`, column indices strictly
/// increasing within each row, and no explicit zeros are stored.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Builds a CSR matrix from raw parts, validating all invariants.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Result<Self> {
        if row_ptr.len() != rows + 1
            || row_ptr.first() != Some(&0)
            || *row_ptr.last().unwrap_or(&0) != values.len()
            || col_idx.len() != values.len()
        {
            return Err(MatrixError::InvalidArgument {
                op: "SparseMatrix::from_parts",
                msg: "inconsistent CSR arrays".into(),
            });
        }
        for r in 0..rows {
            if row_ptr[r] > row_ptr[r + 1] {
                return Err(MatrixError::InvalidArgument {
                    op: "SparseMatrix::from_parts",
                    msg: format!("row_ptr not monotone at row {r}"),
                });
            }
            let mut prev: i64 = -1;
            for &c in &col_idx[row_ptr[r]..row_ptr[r + 1]] {
                if (c as usize) >= cols || (c as i64) <= prev {
                    return Err(MatrixError::InvalidArgument {
                        op: "SparseMatrix::from_parts",
                        msg: format!("bad column index {c} in row {r}"),
                    });
                }
                prev = c as i64;
            }
        }
        Ok(Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Converts a dense matrix, dropping zero cells.
    pub fn from_dense(d: &DenseMatrix) -> Self {
        let (rows, cols) = d.shape();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..rows {
            for (c, &v) in d.row(r).iter().enumerate() {
                if v != 0.0 {
                    col_idx.push(c as u32);
                    values.push(v);
                }
            }
            row_ptr.push(values.len());
        }
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Materializes the matrix densely.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                d.set(r, self.col_idx[k] as usize, self.values[k]);
            }
        }
        d
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored (non-zero) cells.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of non-zero cells.
    pub fn sparsity(&self) -> f64 {
        let cells = self.rows * self.cols;
        if cells == 0 {
            1.0
        } else {
            self.nnz() as f64 / cells as f64
        }
    }

    /// Iterator over `(col, value)` pairs of one row.
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        self.col_idx[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Sparse matrix times dense matrix: `self (r x k) * rhs (k x c)`.
    ///
    /// This is the hot kernel for one-hot encoded federated features.
    pub fn matmul_dense(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != rhs.rows() {
            return Err(MatrixError::DimensionMismatch {
                op: "sp_matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let n = rhs.cols();
        let mut out = DenseMatrix::zeros(self.rows, n);
        if self.rows == 0 || n == 0 {
            return Ok(out);
        }
        // Output rows are disjoint, so fan row blocks out across the pool;
        // each row accumulates its stored entries in CSR order exactly as
        // the serial loop does. Chunks are sized for the *average* row
        // cost; skewed rows rebalance through the shared steal queue.
        let avg_row_work = (self.nnz() * n / self.rows).max(1);
        let rows_per_chunk =
            exdra_par::chunk_len(self.rows, crate::kernels::par_floor(avg_row_work));
        exdra_par::par_chunks_mut(out.values_mut(), rows_per_chunk * n, |_, cell0, ochunk| {
            let r0 = cell0 / n;
            for (dr, out_row) in ochunk.chunks_mut(n).enumerate() {
                let r = r0 + dr;
                for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                    let v = self.values[k];
                    let rr = rhs.row(self.col_idx[k] as usize);
                    for (o, &x) in out_row.iter_mut().zip(rr) {
                        *o += v * x;
                    }
                }
            }
        });
        Ok(out)
    }

    /// Transposed-sparse times dense: `selfᵀ (k x r) * rhs (r x c)`.
    ///
    /// Avoids materializing the transpose; used for `t(P) %*% X` style
    /// aggregation products on sparse assignment matrices (paper Example 3).
    ///
    /// Builds a transient CSC view of `self` with a stable counting sort
    /// (entries of each column stay in ascending-row order), then fans
    /// the output rows — `self`'s columns, which are disjoint under CSC —
    /// across the pool. Each output cell accumulates its contributions in
    /// the same r-ascending order as the old serial row-outer scatter, so
    /// the result is bitwise identical at every thread count.
    pub fn t_matmul_dense(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        if self.rows != rhs.rows() {
            return Err(MatrixError::DimensionMismatch {
                op: "sp_t_matmul",
                lhs: (self.cols, self.rows),
                rhs: rhs.shape(),
            });
        }
        let n = rhs.cols();
        let mut out = DenseMatrix::zeros(self.cols, n);
        let nnz = self.nnz();
        if self.cols == 0 || n == 0 || nnz == 0 {
            return Ok(out);
        }
        let mut col_ptr = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            col_ptr[c as usize + 1] += 1;
        }
        for c in 0..self.cols {
            col_ptr[c + 1] += col_ptr[c];
        }
        let mut next = col_ptr.clone();
        let mut row_idx = vec![0u32; nnz];
        let mut vals = vec![0.0f64; nnz];
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let slot = &mut next[self.col_idx[k] as usize];
                row_idx[*slot] = r as u32;
                vals[*slot] = self.values[k];
                *slot += 1;
            }
        }
        let avg_row_work = (nnz * n / self.cols).max(1);
        let rows_per_chunk =
            exdra_par::chunk_len(self.cols, crate::kernels::par_floor(avg_row_work));
        exdra_par::par_chunks_mut(out.values_mut(), rows_per_chunk * n, |_, cell0, ochunk| {
            let c0 = cell0 / n;
            for (dc, out_row) in ochunk.chunks_mut(n).enumerate() {
                for k in col_ptr[c0 + dc]..col_ptr[c0 + dc + 1] {
                    let v = vals[k];
                    let rr = rhs.row(row_idx[k] as usize);
                    for (o, &x) in out_row.iter_mut().zip(rr) {
                        *o += v * x;
                    }
                }
            }
        });
        Ok(out)
    }

    /// Per-row sums as an `r x 1` vector.
    pub fn row_sums(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, 1);
        for r in 0..self.rows {
            let s: f64 = self.values[self.row_ptr[r]..self.row_ptr[r + 1]]
                .iter()
                .sum();
            out.set(r, 0, s);
        }
        out
    }

    /// Per-column sums as a `1 x c` vector.
    pub fn col_sums(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(1, self.cols);
        for (k, &c) in self.col_idx.iter().enumerate() {
            out.values_mut()[c as usize] += self.values[k];
        }
        out
    }

    /// Sum over all cells.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Multiplies every stored value by a scalar (zeros stay zero).
    pub fn scale(&self, s: f64) -> Self {
        let mut out = self.clone();
        for v in &mut out.values {
            *v *= s;
        }
        out
    }

    /// Vertical concatenation of two CSR matrices with equal column counts.
    pub fn rbind(&self, other: &Self) -> Result<Self> {
        if self.cols != other.cols {
            return Err(MatrixError::DimensionMismatch {
                op: "sp_rbind",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut row_ptr = self.row_ptr.clone();
        let base = *row_ptr.last().unwrap();
        row_ptr.extend(other.row_ptr[1..].iter().map(|p| p + base));
        let mut col_idx = self.col_idx.clone();
        col_idx.extend_from_slice(&other.col_idx);
        let mut values = self.values.clone();
        values.extend_from_slice(&other.values);
        Ok(Self {
            rows: self.rows + other.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Extracts a half-open row range as a new CSR matrix.
    pub fn slice_rows(&self, lo: usize, hi: usize) -> Result<Self> {
        if lo > hi || hi > self.rows {
            return Err(MatrixError::IndexOutOfBounds {
                op: "sp_slice_rows",
                index: hi,
                bound: self.rows,
            });
        }
        let base = self.row_ptr[lo];
        let end = self.row_ptr[hi];
        let row_ptr: Vec<usize> = self.row_ptr[lo..=hi].iter().map(|p| p - base).collect();
        Ok(Self {
            rows: hi - lo,
            cols: self.cols,
            row_ptr,
            col_idx: self.col_idx[base..end].to_vec(),
            values: self.values[base..end].to_vec(),
        })
    }

    /// Estimated in-memory size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.col_idx.len() * std::mem::size_of::<u32>()
            + self.values.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix {
        DenseMatrix::new(3, 4, vec![1., 0., 2., 0., 0., 0., 0., 3., 4., 0., 0., 5.]).unwrap()
    }

    #[test]
    fn dense_roundtrip() {
        let d = sample();
        let s = SparseMatrix::from_dense(&d);
        assert_eq!(s.nnz(), 5);
        assert_eq!(s.to_dense(), d);
    }

    #[test]
    fn from_parts_rejects_bad_inputs() {
        // row_ptr wrong length
        assert!(SparseMatrix::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        // column out of range
        assert!(SparseMatrix::from_parts(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
        // duplicate column in a row
        assert!(SparseMatrix::from_parts(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]).is_err());
        // valid
        assert!(SparseMatrix::from_parts(1, 3, vec![0, 2], vec![0, 2], vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn matmul_matches_dense() {
        let d = sample();
        let s = SparseMatrix::from_dense(&d);
        let rhs = DenseMatrix::new(4, 2, (0..8).map(|i| i as f64).collect()).unwrap();
        let got = s.matmul_dense(&rhs).unwrap();
        let want = crate::kernels::matmul::matmul(&d, &rhs).unwrap();
        assert!(got.max_abs_diff(&want) < 1e-12);
    }

    #[test]
    fn t_matmul_matches_dense() {
        let d = sample();
        let s = SparseMatrix::from_dense(&d);
        let rhs = DenseMatrix::new(3, 2, (0..6).map(|i| i as f64).collect()).unwrap();
        let got = s.t_matmul_dense(&rhs).unwrap();
        let dt = crate::kernels::reorg::transpose(&d);
        let want = crate::kernels::matmul::matmul(&dt, &rhs).unwrap();
        assert!(got.max_abs_diff(&want) < 1e-12);
    }

    #[test]
    fn t_matmul_csc_is_bitwise_stable_across_widths() {
        let d = crate::rng::sprand_matrix(400, 37, -1.0, 1.0, 0.05, 21);
        let s = SparseMatrix::from_dense(&d);
        let rhs = crate::rng::rand_matrix(400, 9, -1.0, 1.0, 22);
        let serial = exdra_par::with_threads(1, || s.t_matmul_dense(&rhs).unwrap());
        for width in [3, 8] {
            let got = exdra_par::with_threads(width, || s.t_matmul_dense(&rhs).unwrap());
            let same = got
                .values()
                .iter()
                .zip(serial.values())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "width {width} differs bitwise");
        }
    }

    #[test]
    fn aggregates_match_dense() {
        let d = sample();
        let s = SparseMatrix::from_dense(&d);
        assert_eq!(s.sum(), d.values().iter().sum::<f64>());
        assert_eq!(s.row_sums().get(2, 0), 9.0);
        assert_eq!(s.col_sums().get(0, 3), 8.0);
    }

    #[test]
    fn rbind_and_slice() {
        let d = sample();
        let s = SparseMatrix::from_dense(&d);
        let both = s.rbind(&s).unwrap();
        assert_eq!(both.rows(), 6);
        assert_eq!(both.to_dense().row(4), d.row(1));
        let mid = both.slice_rows(2, 4).unwrap();
        assert_eq!(mid.to_dense().row(0), d.row(2));
        assert_eq!(mid.to_dense().row(1), d.row(0));
    }
}
