//! Property tests for the blocked GEMM micro-kernels and the
//! compressed-domain execution paths (DESIGN.md §4k).
//!
//! Two oracles, both bitwise:
//!
//! * the register-blocked `matmul`/`tsmm` agree with `matmul_naive`
//!   exactly — the packed panels preserve the k-ascending per-cell
//!   reduction chain — across ragged shapes that straddle the `MR`/`NR`
//!   tile and `KC` slab boundaries, at pool widths {1, 3, 8};
//! * every compressed op agrees with decompress-then-dense-op exactly,
//!   so the worker may execute on column groups without changing a
//!   single output bit.

use exdra_matrix::compress::CompressedMatrix;
use exdra_matrix::kernels::aggregates::{aggregate, AggDir, AggOp};
use exdra_matrix::kernels::elementwise::{scalar, unary, BinaryOp, UnaryOp};
use exdra_matrix::kernels::matmul::{matmul, matmul_naive, mmchain, tsmm, KC, MR, NR};
use exdra_matrix::kernels::reorg::transpose;
use exdra_matrix::rng::rand_matrix;
use exdra_matrix::DenseMatrix;
use proptest::prelude::*;

/// Pool widths exercised against the serial schedule (same contract as
/// `proptest_par.rs`): odd width with ragged tails, and a wide one.
const WIDTHS: [usize; 2] = [3, 8];

fn same_bits(a: &DenseMatrix, b: &DenseMatrix) -> bool {
    a.shape() == b.shape()
        && a.values()
            .iter()
            .zip(b.values())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Runs `f` at width 1 and at each test width, asserting bitwise-equal
/// outputs, and returns the serial result for oracle comparison.
fn widths_agree(label: &str, f: impl Fn() -> DenseMatrix) -> DenseMatrix {
    let serial = exdra_par::with_threads(1, &f);
    for w in WIDTHS {
        let par = exdra_par::with_threads(w, &f);
        assert!(
            same_bits(&serial, &par),
            "{label}: width {w} differs bitwise from serial"
        );
    }
    serial
}

/// Shapes biased toward micro-kernel boundaries: exact multiples of the
/// register tile, one off either side, and tiny degenerate sizes.
fn tile_dim(scale: usize) -> impl Strategy<Value = usize> {
    prop_oneof![
        1usize..=(2 * MR.max(NR) + 1),
        Just(scale * MR),
        Just(scale * MR + 1),
        Just(scale * NR - 1),
        (scale * MR)..=(scale * MR + 2 * NR),
    ]
}

/// Reduction depths on both sides of the `KC` cache slab.
fn depth_dim() -> impl Strategy<Value = usize> {
    prop_oneof![
        1usize..=24,
        (KC - 3)..=(KC + 3),
        (2 * KC - 2)..=(2 * KC + 2),
    ]
}

/// A compressible mix: categorical, constant, run-structured, and
/// incompressible columns, so DDC, RLE and UC groups all participate.
fn mixed_matrix(rows: usize, seed: u64) -> DenseMatrix {
    let noise = rand_matrix(rows, 1, -1.0, 1.0, seed);
    let mut x = DenseMatrix::zeros(rows, 4);
    for r in 0..rows {
        x.set(r, 0, (r % 5) as f64 - 2.0);
        x.set(r, 1, 3.25);
        x.set(r, 2, if r < rows / 2 { -1.5 } else { 4.0 });
        x.set(r, 3, noise.get(r, 0));
    }
    x
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn blocked_gemm_is_bitwise_naive_over_ragged_shapes(
        m in tile_dim(9),
        k in depth_dim(),
        n in tile_dim(7),
        seed in 0u64..1_000_000,
    ) {
        let a = rand_matrix(m, k, -1.0, 1.0, seed);
        let b = rand_matrix(k, n, -1.0, 1.0, seed + 1);
        let out = widths_agree("blocked-gemm", || matmul(&a, &b).expect("shapes"));
        let oracle = matmul_naive(&a, &b).expect("shapes");
        prop_assert!(same_bits(&out, &oracle), "blocked differs from naive chain");
    }

    #[test]
    fn blocked_tsmm_is_bitwise_explicit_product(
        m in depth_dim(),
        n in tile_dim(6),
        left in proptest::bool::ANY,
        seed in 0u64..1_000_000,
    ) {
        let x = rand_matrix(m, n, -1.0, 1.0, seed);
        let out = widths_agree("blocked-tsmm", || tsmm(&x, left).expect("shapes"));
        // The mirrored lower triangle must hold exactly the upper bits.
        for i in 0..out.rows() {
            for j in 0..i {
                prop_assert_eq!(out.get(i, j).to_bits(), out.get(j, i).to_bits());
            }
        }
        let xt = transpose(&x);
        let oracle = if left {
            matmul_naive(&xt, &x).expect("shapes")
        } else {
            matmul_naive(&x, &xt).expect("shapes")
        };
        // Upper triangle comes straight out of the k-ascending kernel.
        for i in 0..out.rows() {
            for j in i..out.cols() {
                prop_assert_eq!(out.get(i, j).to_bits(), oracle.get(i, j).to_bits());
            }
        }
    }

    #[test]
    fn compressed_aggregates_match_decompressed_oracle(
        rows in 2usize..=300,
        seed in 0u64..1_000_000,
    ) {
        let d = mixed_matrix(rows, seed);
        let c = CompressedMatrix::compress(&d);
        for op in [AggOp::Sum, AggOp::SumSq, AggOp::Min, AggOp::Max, AggOp::Mean, AggOp::Var, AggOp::Sd] {
            for dir in [AggDir::Full, AggDir::Row, AggDir::Col] {
                let got = widths_agree("c-agg", || c.aggregate(op, dir).expect("agg"));
                let want = aggregate(&d, op, dir).expect("agg");
                prop_assert!(same_bits(&got, &want), "{}/{:?} differs", op.name(), dir);
            }
        }
    }

    #[test]
    fn compressed_map_cells_matches_decompressed_elementwise(
        rows in 1usize..=300,
        s in -2.0f64..2.0,
        seed in 0u64..1_000_000,
    ) {
        let d = mixed_matrix(rows, seed);
        let c = CompressedMatrix::compress(&d);
        for op in [UnaryOp::Exp, UnaryOp::Sigmoid, UnaryOp::Abs, UnaryOp::Round] {
            let got = widths_agree("c-unary", || c.map_cells(|v| op.apply(v)).decompress());
            prop_assert!(same_bits(&got, &unary(&d, op)));
        }
        let got = widths_agree("c-scalar", || {
            c.map_cells(move |v| BinaryOp::Mul.apply(v, s)).decompress()
        });
        prop_assert!(same_bits(&got, &scalar(&d, BinaryOp::Mul, s, false)));
    }

    #[test]
    fn compressed_products_match_dense_kernels(
        rows in 1usize..=300,
        weighted in proptest::bool::ANY,
        seed in 0u64..1_000_000,
    ) {
        let d = mixed_matrix(rows, seed);
        let c = CompressedMatrix::compress(&d);
        let v = rand_matrix(d.cols(), 1, -1.0, 1.0, seed + 1);
        let w = rand_matrix(rows, 1, 0.0, 1.0, seed + 2);

        let got = widths_agree("c-matvec", || c.matvec(&v).expect("shapes"));
        prop_assert!(same_bits(&got, &matmul(&d, &v).expect("shapes")));

        let got = widths_agree("c-vecmat", || c.t_vecmat(&w).expect("shapes"));
        prop_assert!(same_bits(&got, &matmul(&transpose(&w), &d).expect("shapes")));

        let wm = weighted.then_some(&w);
        let got = widths_agree("c-mmchain", || c.mmchain(&v, wm).expect("shapes"));
        prop_assert!(same_bits(&got, &mmchain(&d, &v, wm).expect("shapes")));
    }
}
