//! Property tests for the determinism contract of every parallelized
//! kernel (DESIGN.md §4f): at any pool width the output is bitwise
//! identical to the width-1 serial schedule, across ragged shapes that
//! land on both sides of each kernel's parallelization threshold.
//!
//! Widths are pinned per-run via `exdra_par::with_threads`, so the tests
//! hold regardless of `EXDRA_THREADS` (the CI par-determinism job runs
//! this suite under several settings on top).

use exdra_matrix::kernels::aggregates::{aggregate, AggDir, AggOp};
use exdra_matrix::kernels::elementwise::{binary, scalar, softmax, unary, BinaryOp, UnaryOp};
use exdra_matrix::kernels::matmul::{matmul, matmul_naive, mmchain, tsmm};
use exdra_matrix::kernels::quaternary::wsigmoid;
use exdra_matrix::kernels::ternary::{axpy, ifelse};
use exdra_matrix::rng::{rand_matrix, sprand_matrix};
use exdra_matrix::{DenseMatrix, SparseMatrix};
use proptest::prelude::*;

/// Pool widths exercised against the serial schedule: an odd width that
/// leaves ragged tails and one wider than the chunks-per-thread target.
const WIDTHS: [usize; 2] = [3, 8];

fn same_bits(a: &DenseMatrix, b: &DenseMatrix) -> bool {
    a.shape() == b.shape()
        && a.values()
            .iter()
            .zip(b.values())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Runs `f` at width 1 and at each test width, asserting bitwise-equal
/// dense outputs, and returns the serial result for oracle checks.
fn widths_agree(label: &str, f: impl Fn() -> DenseMatrix) -> DenseMatrix {
    let serial = exdra_par::with_threads(1, &f);
    for w in WIDTHS {
        let par = exdra_par::with_threads(w, &f);
        assert!(
            same_bits(&serial, &par),
            "{label}: width {w} differs bitwise from serial ({:?} vs {:?})",
            serial.shape(),
            par.shape()
        );
    }
    serial
}

fn scalar_m(v: f64) -> DenseMatrix {
    DenseMatrix::new(1, 1, vec![v]).expect("1x1")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_bitwise_and_matches_naive_oracle(
        m in 1usize..=97,
        k in 1usize..=64,
        n in 1usize..=64,
        seed in 0u64..1_000_000,
    ) {
        let a = rand_matrix(m, k, -1.0, 1.0, seed);
        let b = rand_matrix(k, n, -1.0, 1.0, seed + 1);
        let out = widths_agree("matmul", || matmul(&a, &b).expect("shapes"));
        // The tiled kernel keeps k-ascending per-cell accumulation, so it
        // agrees with the naive triple loop exactly (not just to an eps).
        let oracle = matmul_naive(&a, &b).expect("shapes");
        prop_assert_eq!(out.shape(), oracle.shape());
        prop_assert_eq!(out.max_abs_diff(&oracle), 0.0);
    }

    #[test]
    fn matvec_fast_path_bitwise(m in 1usize..=400, k in 1usize..=97, seed in 0u64..1_000_000) {
        let a = rand_matrix(m, k, -1.0, 1.0, seed);
        let v = rand_matrix(k, 1, -1.0, 1.0, seed + 1);
        let out = widths_agree("matvec", || matmul(&a, &v).expect("shapes"));
        let oracle = matmul_naive(&a, &v).expect("shapes");
        prop_assert_eq!(out.max_abs_diff(&oracle), 0.0);
    }

    #[test]
    fn tsmm_bitwise(m in 1usize..=200, n in 1usize..=97, seed in 0u64..1_000_000) {
        let x = rand_matrix(m, n, -1.0, 1.0, seed);
        widths_agree("tsmm-left", || tsmm(&x, true).expect("shapes"));
        widths_agree("tsmm-right", || tsmm(&x, false).expect("shapes"));
    }

    #[test]
    fn mmchain_bitwise(
        m in 1usize..=300,
        n in 1usize..=97,
        weighted in proptest::bool::ANY,
        seed in 0u64..1_000_000,
    ) {
        let x = rand_matrix(m, n, -1.0, 1.0, seed);
        let v = rand_matrix(n, 1, -1.0, 1.0, seed + 1);
        let w = weighted.then(|| rand_matrix(m, 1, 0.0, 1.0, seed + 2));
        widths_agree("mmchain", || mmchain(&x, &v, w.as_ref()).expect("shapes"));
    }

    #[test]
    fn sparse_matmul_dense_bitwise(
        m in 1usize..=200,
        k in 1usize..=97,
        n in 1usize..=48,
        density in 0.02f64..0.4,
        seed in 0u64..1_000_000,
    ) {
        let s = SparseMatrix::from_dense(&sprand_matrix(m, k, -1.0, 1.0, density, seed));
        let d = rand_matrix(k, n, -1.0, 1.0, seed + 1);
        widths_agree("sparse-mm", || s.matmul_dense(&d).expect("shapes"));
    }

    #[test]
    fn elementwise_unary_and_scalar_bitwise(
        r in 1usize..=400,
        c in 1usize..=200,
        seed in 0u64..1_000_000,
        s in -2.0f64..2.0,
    ) {
        let x = rand_matrix(r, c, -2.0, 2.0, seed);
        for op in [UnaryOp::Exp, UnaryOp::Sigmoid, UnaryOp::Abs, UnaryOp::Round] {
            widths_agree("unary", || unary(&x, op));
        }
        widths_agree("scalar", || scalar(&x, BinaryOp::Mul, s, false));
        widths_agree("scalar-swap", || scalar(&x, BinaryOp::Sub, s, true));
        widths_agree("softmax", || softmax(&x));
    }

    #[test]
    fn elementwise_binary_broadcasts_bitwise(
        r in 1usize..=400,
        c in 1usize..=200,
        seed in 0u64..1_000_000,
    ) {
        let x = rand_matrix(r, c, -2.0, 2.0, seed);
        let full = rand_matrix(r, c, -2.0, 2.0, seed + 1);
        let rowv = rand_matrix(1, c, -2.0, 2.0, seed + 2);
        let colv = rand_matrix(r, 1, -2.0, 2.0, seed + 3);
        let one = scalar_m(1.5);
        for rhs in [&full, &rowv, &colv, &one] {
            widths_agree("binary", || binary(&x, BinaryOp::Add, rhs).expect("shapes"));
            widths_agree("binary-max", || binary(&x, BinaryOp::Max, rhs).expect("shapes"));
        }
    }

    #[test]
    fn aggregates_row_col_bitwise(
        r in 1usize..=400,
        c in 1usize..=64,
        seed in 0u64..1_000_000,
    ) {
        let x = rand_matrix(r, c, -2.0, 2.0, seed);
        for op in [AggOp::Sum, AggOp::Mean, AggOp::Min, AggOp::Max, AggOp::Var] {
            widths_agree("agg-row", || aggregate(&x, op, AggDir::Row).expect("shapes"));
            widths_agree("agg-col", || aggregate(&x, op, AggDir::Col).expect("shapes"));
        }
    }

    #[test]
    fn ternary_ifelse_axpy_bitwise(
        r in 1usize..=300,
        c in 1usize..=150,
        factor in -2.0f64..2.0,
        seed in 0u64..1_000_000,
    ) {
        let cond = sprand_matrix(r, c, 1.0, 2.0, 0.5, seed);
        let a = rand_matrix(r, c, -2.0, 2.0, seed + 1);
        let b = rand_matrix(r, c, -2.0, 2.0, seed + 2);
        widths_agree("ifelse", || ifelse(&cond, &a, &b).expect("shapes"));
        widths_agree("ifelse-scalar", || {
            ifelse(&cond, &scalar_m(1.0), &b).expect("shapes")
        });
        widths_agree("axpy", || axpy(&a, factor, &b, false).expect("shapes"));
        widths_agree("axpy-sub", || axpy(&a, factor, &b, true).expect("shapes"));
    }

    #[test]
    fn wsigmoid_bitwise(
        m in 1usize..=200,
        n in 1usize..=64,
        rank in 1usize..=8,
        seed in 0u64..1_000_000,
    ) {
        let w = sprand_matrix(m, n, -1.0, 1.0, 0.5, seed);
        let u = rand_matrix(m, rank, -1.0, 1.0, seed + 1);
        let v = rand_matrix(n, rank, -1.0, 1.0, seed + 2);
        widths_agree("wsigmoid", || wsigmoid(&w, &u, &v).expect("shapes"));
    }

    #[test]
    fn compression_identical_at_any_width(
        r in 1usize..=80,
        c in 1usize..=500,
        card in 1.0f64..16.0,
        seed in 0u64..1_000_000,
    ) {
        use exdra_matrix::compress::CompressedMatrix;
        // Low-cardinality columns so DDC/RLE groups actually form.
        let x = rand_matrix(r, c, 0.0, card, seed).map(f64::floor);
        let f = || CompressedMatrix::compress(&x);
        let serial = exdra_par::with_threads(1, f);
        for w in WIDTHS {
            let par = exdra_par::with_threads(w, f);
            prop_assert_eq!(&serial, &par);
            prop_assert!(same_bits(&serial.decompress(), &par.decompress()));
        }
    }
}
