//! Principal component analysis (SystemDS `pca`).
//!
//! Non-iterative: the covariance is assembled from a federated `tsmm`
//! (`XᵀX`) and federated column means, the eigen decomposition runs at the
//! coordinator (`cols x cols` is aggregate-sized), and the projection is
//! another federated matrix multiplication — "with large number of rows,
//! the two matrix multiplications dominate the runtime" (paper §6.2).

use exdra_core::{Result, Tensor};
use exdra_matrix::eigen::eigen_symmetric;
use exdra_matrix::kernels::elementwise::BinaryOp;
use exdra_matrix::DenseMatrix;

/// A fitted PCA model.
#[derive(Debug, Clone)]
pub struct PcaModel {
    /// Column means used for centering (`1 x d`).
    pub means: DenseMatrix,
    /// Principal components as columns (`d x k`).
    pub components: DenseMatrix,
    /// Eigenvalues of the kept components, descending.
    pub eigenvalues: Vec<f64>,
    /// Fraction of total variance captured by the kept components.
    pub explained_variance: f64,
}

/// Fits PCA with `k` components on (possibly federated) data.
pub fn pca(x: &Tensor, k: usize) -> Result<PcaModel> {
    let n = x.rows();
    let d = x.cols();
    assert!(k >= 1 && k <= d, "1 <= k <= cols required");
    // Federated aggregates: XᵀX and column means.
    let gram = x.tsmm()?;
    let mu = x.col_means()?.to_local()?;
    // Cov = (XᵀX - n muᵀmu) / (n - 1)
    let mut cov = gram;
    let nf = n as f64;
    for i in 0..d {
        for j in 0..d {
            let v = (cov.get(i, j) - nf * mu.get(0, i) * mu.get(0, j)) / (nf - 1.0);
            cov.set(i, j, v);
        }
    }
    let eig = eigen_symmetric(&cov, 30)?;
    let total: f64 = eig.values.iter().map(|v| v.max(0.0)).sum();
    let kept: f64 = eig.values.iter().take(k).map(|v| v.max(0.0)).sum();
    let components = exdra_matrix::kernels::reorg::index(&eig.vectors, 0, d, 0, k)?;
    Ok(PcaModel {
        means: mu,
        components,
        eigenvalues: eig.values[..k].to_vec(),
        explained_variance: if total > 0.0 { kept / total } else { 0.0 },
    })
}

/// Projects (possibly federated) data onto the principal components:
/// `(X - mu) %*% V` — a federated broadcast subtraction plus a federated
/// matrix multiplication.
pub fn transform(x: &Tensor, model: &PcaModel) -> Result<Tensor> {
    let centered = x.binary(BinaryOp::Sub, &Tensor::Local(model.means.clone()))?;
    centered.matmul(&Tensor::Local(model.components.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use exdra_core::fed::FedMatrix;
    use exdra_core::testutil::mem_federation;
    use exdra_core::PrivacyLevel;
    use exdra_matrix::kernels::matmul::matmul;
    use exdra_matrix::rng::{rand_matrix, randn_matrix};

    /// Data with strong variance along a planted direction.
    fn planted(n: usize, d: usize, seed: u64) -> DenseMatrix {
        let dir = rand_matrix(1, d, -1.0, 1.0, seed);
        let coef = randn_matrix(n, 1, seed + 1);
        let noise = randn_matrix(n, d, seed + 2);
        let mut x = matmul(&coef, &dir).unwrap();
        for (xv, nv) in x.values_mut().iter_mut().zip(noise.values()) {
            *xv = 5.0 * *xv + 0.1 * nv;
        }
        x
    }

    #[test]
    fn first_component_captures_planted_direction() {
        let x = planted(500, 6, 61);
        let model = pca(&Tensor::Local(x), 2).unwrap();
        assert!(model.explained_variance > 0.95);
        assert!(model.eigenvalues[0] > 10.0 * model.eigenvalues[1].max(1e-9));
    }

    #[test]
    fn federated_equals_local() {
        let x = planted(300, 5, 62);
        let local = pca(&Tensor::Local(x.clone()), 3).unwrap();
        let (ctx, _workers) = mem_federation(3);
        let fed = FedMatrix::scatter_rows(&ctx, &x, PrivacyLevel::Public).unwrap();
        let fed_model = pca(&Tensor::Fed(fed.clone()), 3).unwrap();
        // Eigenvectors are sign-ambiguous: compare absolute values.
        let a = local.components.map(f64::abs);
        let b = fed_model.components.map(f64::abs);
        assert!(a.max_abs_diff(&b) < 1e-7, "diff {}", a.max_abs_diff(&b));
        // Projections agree up to sign per column.
        let pl = transform(&Tensor::Local(x), &local)
            .unwrap()
            .to_local()
            .unwrap();
        let pf = transform(&Tensor::Fed(fed), &fed_model)
            .unwrap()
            .to_local()
            .unwrap();
        assert!(pl.map(f64::abs).max_abs_diff(&pf.map(f64::abs)) < 1e-6);
    }

    #[test]
    fn projection_shape_and_centering() {
        let x = planted(200, 4, 63);
        let model = pca(&Tensor::Local(x.clone()), 2).unwrap();
        let p = transform(&Tensor::Local(x), &model)
            .unwrap()
            .to_local()
            .unwrap();
        assert_eq!(p.shape(), (200, 2));
        // Projected data is centered.
        for c in 0..2 {
            let mean: f64 = (0..200).map(|r| p.get(r, c)).sum::<f64>() / 200.0;
            assert!(mean.abs() < 1e-8, "column {c} mean {mean}");
        }
    }

    #[test]
    fn components_are_orthonormal() {
        let x = planted(150, 5, 64);
        let model = pca(&Tensor::Local(x), 3).unwrap();
        let vt = exdra_matrix::kernels::reorg::transpose(&model.components);
        let gram = matmul(&vt, &model.components).unwrap();
        assert!(gram.max_abs_diff(&DenseMatrix::identity(3)) < 1e-9);
    }
}
