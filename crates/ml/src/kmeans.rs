//! K-Means clustering (SystemDS `kmeans`), the paper's Example 3.
//!
//! The inner loop is a verbatim transcription of the paper's DML snippet:
//! distances via `X %*% t(C)` (federated matrix-matrix), assignment via
//! `rowMins`/comparison (federated element-wise), and the new centroids via
//! `colSums(P)` and the *aligned* federated `t(P) %*% X` — the only values
//! that ever reach the coordinator are `k x d` and `1 x k` aggregates.

use exdra_core::{Result, Tensor};
use exdra_matrix::kernels::aggregates::{AggDir, AggOp};
use exdra_matrix::kernels::elementwise::BinaryOp;
use exdra_matrix::kernels::reorg::transpose;
use exdra_matrix::DenseMatrix;

/// Hyperparameters for K-Means.
#[derive(Debug, Clone, Copy)]
pub struct KMeansParams {
    /// Number of centroids.
    pub k: usize,
    /// Maximum iterations per run.
    pub max_iter: usize,
    /// Number of independent runs (best WCSS wins).
    pub runs: usize,
    /// Relative WCSS-decrease tolerance for convergence.
    pub tol: f64,
    /// RNG seed for centroid initialization.
    pub seed: u64,
}

impl Default for KMeansParams {
    fn default() -> Self {
        Self {
            k: 5,
            max_iter: 25,
            runs: 1,
            tol: 1e-6,
            seed: 7,
        }
    }
}

/// A fitted K-Means model.
#[derive(Debug, Clone)]
pub struct KMeansModel {
    /// Centroids (`k x d`).
    pub centroids: DenseMatrix,
    /// Within-cluster sum of squares of the winning run.
    pub wcss: f64,
    /// Iterations of the winning run.
    pub iterations: usize,
}

/// Centroid initialization: k rows sampled without replacement when the
/// privacy constraint permits raw-row transfer, moment-jitter otherwise.
fn init_centroids(x: &Tensor, k: usize, seed: u64) -> Result<DenseMatrix> {
    crate::init::rows_or_moments(x, k, seed)
}

/// One Lloyd iteration following the paper's script. Returns the new
/// centroids and the current WCSS. `x2_sum` is the loop-invariant
/// `sum(X^2)` term of the WCSS, computed once per run.
fn lloyd_step(x: &Tensor, c: &DenseMatrix, x2_sum: f64) -> Result<(DenseMatrix, f64)> {
    let k = c.rows();
    // D = -2 * (X %*% t(C)) + t(rowSums(C ^ 2))
    let ct = transpose(c);
    let c2 =
        exdra_matrix::kernels::aggregates::aggregate(&c.map(|v| v * v), AggOp::Sum, AggDir::Row)?;
    let c2t = transpose(&c2);
    let xc = x.matmul(&Tensor::Local(ct))?;
    let d = xc
        .scalar_op(BinaryOp::Mul, -2.0, false)?
        .binary(BinaryOp::Add, &Tensor::Local(c2t))?;
    // P = (D <= rowMins(D)); P = P / rowSums(P)
    let mins = d.row_mins()?;
    let p = d.binary(BinaryOp::Le, &mins)?;
    let psum = p.row_sums()?;
    let p = p.binary(BinaryOp::Div, &psum)?;
    // WCSS = sum(P ⊙ D) + sum(X^2) (D omits the loop-invariant x² term).
    let pd = p.binary(BinaryOp::Mul, &d)?;
    let wcss = pd.sum()? + x2_sum;
    // P_denom = colSums(P); C_new = (t(P) %*% X) / t(P_denom)
    let pdenom = p.col_sums()?.to_local()?;
    let ptx = p.t_matmul(x)?.to_local()?;
    let mut c_new = ptx;
    for r in 0..k {
        let denom = pdenom.get(0, r);
        if denom > 0.0 {
            for j in 0..c_new.cols() {
                let v = c_new.get(r, j) / denom;
                c_new.set(r, j, v);
            }
        } else {
            // Empty cluster: keep the previous centroid.
            for j in 0..c_new.cols() {
                c_new.set(r, j, c.get(r, j));
            }
        }
    }
    Ok((c_new, wcss))
}

/// Trains K-Means on (possibly federated) data, running
/// [`KMeansParams::runs`] independent initializations and keeping the best.
pub fn kmeans(x: &Tensor, params: &KMeansParams) -> Result<KMeansModel> {
    let mut best: Option<KMeansModel> = None;
    let x2_sum = x
        .unary(exdra_matrix::kernels::elementwise::UnaryOp::Square)?
        .sum()?;
    for run in 0..params.runs {
        let mut c = init_centroids(x, params.k, params.seed.wrapping_add(run as u64))?;
        let mut wcss = f64::INFINITY;
        let mut iterations = 0usize;
        while iterations < params.max_iter {
            let (c_new, w) = lloyd_step(x, &c, x2_sum)?;
            c = c_new;
            iterations += 1;
            if (wcss - w).abs() <= params.tol * wcss.abs().min(f64::MAX) {
                wcss = w;
                break;
            }
            wcss = w;
        }
        if best.as_ref().is_none_or(|b| wcss < b.wcss) {
            best = Some(KMeansModel {
                centroids: c,
                wcss,
                iterations,
            });
        }
    }
    Ok(best.expect("at least one run"))
}

/// Assigns each row its 1-based nearest-centroid index.
pub fn assign(x: &Tensor, model: &KMeansModel) -> Result<DenseMatrix> {
    let ct = transpose(&model.centroids);
    let c2 = exdra_matrix::kernels::aggregates::aggregate(
        &model.centroids.map(|v| v * v),
        AggOp::Sum,
        AggDir::Row,
    )?;
    let c2t = transpose(&c2);
    let d = x
        .matmul(&Tensor::Local(ct))?
        .scalar_op(BinaryOp::Mul, -2.0, false)?
        .binary(BinaryOp::Add, &Tensor::Local(c2t))?;
    // argmin = argmax of negated distances
    let neg = d.scalar_op(BinaryOp::Mul, -1.0, false)?;
    neg.row_index_max()?.to_local()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;
    use exdra_core::fed::FedMatrix;
    use exdra_core::testutil::mem_federation;
    use exdra_core::PrivacyLevel;

    #[test]
    fn separates_well_spread_blobs() {
        let (x, truth) = synth::blobs(400, 4, 3, 0.2, 51);
        let model = kmeans(
            &Tensor::Local(x.clone()),
            &KMeansParams {
                k: 3,
                runs: 3,
                ..KMeansParams::default()
            },
        )
        .unwrap();
        let labels = assign(&Tensor::Local(x), &model).unwrap();
        // Cluster purity: each found cluster dominated by one true class.
        let mut counts = [[0usize; 4]; 4];
        for i in 0..labels.rows() {
            counts[labels.get(i, 0) as usize][truth.get(i, 0) as usize] += 1;
        }
        let pure: usize = counts
            .iter()
            .skip(1)
            .map(|row| row.iter().max().copied().unwrap_or(0))
            .sum();
        assert!(pure as f64 / labels.rows() as f64 > 0.95);
    }

    #[test]
    fn federated_equals_local() {
        let (x, _) = synth::blobs(240, 3, 4, 0.5, 52);
        let params = KMeansParams {
            k: 4,
            max_iter: 10,
            runs: 1,
            tol: 0.0,
            seed: 9,
        };
        let local = kmeans(&Tensor::Local(x.clone()), &params).unwrap();
        let (ctx, _workers) = mem_federation(3);
        let fed = FedMatrix::scatter_rows(&ctx, &x, PrivacyLevel::Public).unwrap();
        let fed_model = kmeans(&Tensor::Fed(fed), &params).unwrap();
        assert!(
            fed_model.centroids.max_abs_diff(&local.centroids) < 1e-8,
            "diff {}",
            fed_model.centroids.max_abs_diff(&local.centroids)
        );
        assert!((fed_model.wcss - local.wcss).abs() < 1e-6);
    }

    #[test]
    fn wcss_decreases_over_iterations() {
        let (x, _) = synth::blobs(300, 4, 5, 0.8, 53);
        let t = Tensor::Local(x);
        let x2 = t
            .unary(exdra_matrix::kernels::elementwise::UnaryOp::Square)
            .unwrap()
            .sum()
            .unwrap();
        let mut c = init_centroids(&t, 5, 1).unwrap();
        let (_, w1) = lloyd_step(&t, &c, x2).unwrap();
        let (c2, _) = lloyd_step(&t, &c, x2).unwrap();
        c = c2;
        let (_, w2) = lloyd_step(&t, &c, x2).unwrap();
        assert!(w2 <= w1 + 1e-9, "WCSS must not increase: {w1} -> {w2}");
    }

    #[test]
    fn multiple_runs_never_worse() {
        let (x, _) = synth::blobs(200, 3, 4, 1.0, 54);
        let one = kmeans(
            &Tensor::Local(x.clone()),
            &KMeansParams {
                k: 4,
                runs: 1,
                seed: 3,
                ..KMeansParams::default()
            },
        )
        .unwrap();
        let many = kmeans(
            &Tensor::Local(x),
            &KMeansParams {
                k: 4,
                runs: 5,
                seed: 3,
                ..KMeansParams::default()
            },
        )
        .unwrap();
        assert!(many.wcss <= one.wcss + 1e-9);
    }
}
