//! Model initialization helpers that respect privacy constraints.
//!
//! Sampling raw rows as initial centroids/means is the classic strategy,
//! but raw rows of `PrivateAggregate`/`Private` federated data must not
//! leave their site. [`rows_or_moments`] therefore falls back to a
//! moment-based initialization — global column means jittered by column
//! standard deviations, both of which are releasable aggregates.

use exdra_core::{Result, RuntimeError, Tensor};
use exdra_matrix::kernels::aggregates::{AggDir, AggOp};
use exdra_matrix::rng::{rand_permutation, randn_matrix};
use exdra_matrix::DenseMatrix;

/// Draws `k` initial points: sampled raw rows when the data's privacy
/// constraint permits it, otherwise mean ± sd jitter (releasable
/// aggregates only).
pub fn rows_or_moments(x: &Tensor, k: usize, seed: u64) -> Result<DenseMatrix> {
    match sample_rows(x, k, seed) {
        Ok(c) => Ok(c),
        Err(RuntimeError::Privacy(_)) => moment_jitter(x, k, seed),
        Err(e) => Err(e),
    }
}

/// Samples `k` distinct rows (raw-data transfer; privacy-checked).
pub fn sample_rows(x: &Tensor, k: usize, seed: u64) -> Result<DenseMatrix> {
    let n = x.rows();
    let d = x.cols();
    if k > n {
        return Err(RuntimeError::Invalid(format!("k={k} > rows={n}")));
    }
    let perm = rand_permutation(n, seed);
    match x {
        Tensor::Local(m) => {
            let idx = exdra_matrix::kernels::reorg::index(&perm, 0, k, 0, 1)?;
            Ok(exdra_matrix::kernels::reorg::gather_rows(m, &idx)?)
        }
        Tensor::Compressed(c) => {
            let idx = exdra_matrix::kernels::reorg::index(&perm, 0, k, 0, 1)?;
            Ok(exdra_matrix::kernels::reorg::gather_rows(
                &c.decompress(),
                &idx,
            )?)
        }
        Tensor::Fed(_) => {
            let mut c = DenseMatrix::zeros(k, d);
            for i in 0..k {
                let r = perm.get(i, 0) as usize - 1;
                let row = x.index(r, r + 1, 0, d)?.to_local()?;
                for j in 0..d {
                    c.set(i, j, row.get(0, j));
                }
            }
            Ok(c)
        }
    }
}

/// Moment-based initialization: `mean + z * sd` per point, using only
/// releasable column aggregates.
pub fn moment_jitter(x: &Tensor, k: usize, seed: u64) -> Result<DenseMatrix> {
    let d = x.cols();
    let mu = x.agg(AggOp::Mean, AggDir::Col)?.to_local()?;
    let sd = x.agg(AggOp::Sd, AggDir::Col)?.to_local()?;
    let z = randn_matrix(k, d, seed);
    let mut out = DenseMatrix::zeros(k, d);
    for c in 0..k {
        for j in 0..d {
            out.set(c, j, mu.get(0, j) + z.get(c, j) * sd.get(0, j).max(1e-9));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exdra_core::fed::FedMatrix;
    use exdra_core::testutil::mem_federation;
    use exdra_core::PrivacyLevel;
    use exdra_matrix::rng::rand_matrix;

    #[test]
    fn public_data_samples_raw_rows() {
        let x = rand_matrix(50, 4, 0.0, 1.0, 1);
        let c = rows_or_moments(&Tensor::Local(x.clone()), 3, 2).unwrap();
        assert_eq!(c.shape(), (3, 4));
        // Each init point is an actual data row.
        for i in 0..3 {
            let found = (0..50).any(|r| (0..4).all(|j| (x.get(r, j) - c.get(i, j)).abs() < 1e-15));
            assert!(found, "init point {i} is not a data row");
        }
    }

    #[test]
    fn private_data_falls_back_to_moments() {
        let (ctx, _workers) = mem_federation(2);
        let x = rand_matrix(60, 3, 0.0, 1.0, 3);
        let fed =
            FedMatrix::scatter_rows(&ctx, &x, PrivacyLevel::PrivateAggregate { min_group: 10 })
                .unwrap();
        let c = rows_or_moments(&Tensor::Fed(fed), 4, 4).unwrap();
        assert_eq!(c.shape(), (4, 3));
        // Points are near the data distribution (mean 0.5, sd ~0.29).
        for v in c.values() {
            assert!((-1.5..=2.5).contains(v), "init point out of band: {v}");
        }
    }

    #[test]
    fn sample_rows_rejects_k_too_large() {
        let x = rand_matrix(3, 2, 0.0, 1.0, 5);
        assert!(sample_rows(&Tensor::Local(x), 5, 1).is_err());
    }
}
