//! Multinomial (multi-class) logistic regression (SystemDS `multiLogReg`).
//!
//! Newton-CG in spirit: each outer iteration computes class probabilities
//! and a gradient; the inner conjugate-gradient loop solves the Newton
//! system, where "each inner iteration performs an `Xᵀ(w ⊙ (Xv))` on the
//! federated X" (paper §6.2) — the weighted `mmchain` instruction. We run
//! one CG solve per class block against the diagonal Fisher approximation,
//! which preserves the exact federated access pattern.

use exdra_core::{Result, Tensor};
use exdra_matrix::kernels::elementwise::BinaryOp;
use exdra_matrix::DenseMatrix;

use crate::synth::one_hot;

/// Hyperparameters for multinomial logistic regression.
#[derive(Debug, Clone, Copy)]
pub struct MLogRegParams {
    /// L2 regularization strength.
    pub lambda: f64,
    /// Maximum outer (Newton) iterations.
    pub max_outer: usize,
    /// Maximum inner (CG) iterations per class and outer step.
    pub max_inner: usize,
    /// Gradient-norm convergence tolerance.
    pub tol: f64,
}

impl Default for MLogRegParams {
    fn default() -> Self {
        Self {
            lambda: 1e-3,
            max_outer: 10,
            max_inner: 5,
            tol: 1e-6,
        }
    }
}

/// A fitted multinomial logistic regression model.
#[derive(Debug, Clone)]
pub struct MLogRegModel {
    /// Weights (`d x k`).
    pub weights: DenseMatrix,
    /// Number of classes.
    pub classes: usize,
    /// Outer iterations performed.
    pub iterations: usize,
}

/// Class probabilities `softmax(X W)`; stays federated for federated `x`.
fn probabilities(x: &Tensor, w: &DenseMatrix) -> Result<Tensor> {
    x.matmul(&Tensor::Local(w.clone()))?.softmax()
}

/// Trains multinomial logistic regression on (possibly federated) features
/// with local 1-based labels.
pub fn mlogreg(
    x: &Tensor,
    y: &DenseMatrix,
    classes: usize,
    params: &MLogRegParams,
) -> Result<MLogRegModel> {
    let n = x.rows();
    let d = x.cols();
    assert_eq!(y.shape(), (n, 1), "labels must be n x 1, 1-based");
    let y1h = one_hot(y, classes);
    let mut w = DenseMatrix::zeros(d, classes);
    let mut iterations = 0usize;

    while iterations < params.max_outer {
        // P = softmax(X W) — federated when X is federated.
        let p = probabilities(x, &w)?;
        // Residual R = P - Y (co-partitioned with X when federated).
        let r = p.binary(BinaryOp::Sub, &Tensor::Local(y1h.clone()))?;
        // Gradient G = t(X) %*% R / n + lambda W — aligned federated
        // matmul of two co-partitioned matrices (paper §4.2).
        let mut g = x.t_matmul(&r)?.to_local()?;
        for (gv, wv) in g.values_mut().iter_mut().zip(w.values()) {
            *gv = *gv / n as f64 + params.lambda * wv;
        }
        let gnorm: f64 = g.values().iter().map(|v| v * v).sum::<f64>().sqrt();
        if gnorm < params.tol {
            break;
        }
        // Newton direction per class block via CG on the diagonal Fisher
        // approximation: H_c v = Xᵀ (q_c ⊙ (X v)) / n + lambda v, with
        // q_c = p_c (1 - p_c). The q_c vector is consolidated (size n, the
        // "vectors in the number of rows" exchange of §6.2).
        let pl = p.to_local()?;
        for c in 0..classes {
            let mut q = DenseMatrix::zeros(n, 1);
            for i in 0..n {
                let pc = pl.get(i, c);
                q.set(i, 0, (pc * (1.0 - pc)).max(1e-6));
            }
            // Solve H_c s = g_c by CG (few iterations suffice for a
            // Newton-CG step).
            let mut gc = DenseMatrix::zeros(d, 1);
            for j in 0..d {
                gc.set(j, 0, g.get(j, c));
            }
            let mut s = DenseMatrix::zeros(d, 1);
            let mut resid = gc.clone();
            let mut dir = resid.clone();
            let mut rr: f64 = resid.values().iter().map(|v| v * v).sum();
            for _ in 0..params.max_inner {
                if rr < 1e-18 {
                    break;
                }
                // Hd = Xᵀ (q ⊙ (X dir)) / n + lambda dir — weighted mmchain.
                let mut hd = x.mmchain(&dir, Some(&q))?;
                for (hv, dv) in hd.values_mut().iter_mut().zip(dir.values()) {
                    *hv = *hv / n as f64 + params.lambda * dv;
                }
                let dh: f64 = dir
                    .values()
                    .iter()
                    .zip(hd.values())
                    .map(|(&a, &b)| a * b)
                    .sum();
                let alpha = rr / dh.max(1e-300);
                for (sv, dv) in s.values_mut().iter_mut().zip(dir.values()) {
                    *sv += alpha * dv;
                }
                for (rv, hv) in resid.values_mut().iter_mut().zip(hd.values()) {
                    *rv -= alpha * hv;
                }
                let rr_new: f64 = resid.values().iter().map(|v| v * v).sum();
                let beta = rr_new / rr;
                for (dv, rv) in dir.values_mut().iter_mut().zip(resid.values()) {
                    *dv = rv + beta * *dv;
                }
                rr = rr_new;
            }
            for j in 0..d {
                let v = w.get(j, c) - s.get(j, 0);
                w.set(j, c, v);
            }
        }
        iterations += 1;
    }
    Ok(MLogRegModel {
        weights: w,
        classes,
        iterations,
    })
}

/// Predicts 1-based class labels.
pub fn predict(x: &Tensor, model: &MLogRegModel) -> Result<DenseMatrix> {
    let p = probabilities(x, &model.weights)?;
    p.row_index_max()?.to_local()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::accuracy;
    use crate::synth;
    use exdra_core::fed::FedMatrix;
    use exdra_core::testutil::mem_federation;
    use exdra_core::PrivacyLevel;

    #[test]
    fn blobs_classified_accurately() {
        let (x, y) = synth::multi_class(600, 5, 3, 0.4, 41);
        let model = mlogreg(&Tensor::Local(x.clone()), &y, 3, &MLogRegParams::default()).unwrap();
        let pred = predict(&Tensor::Local(x), &model).unwrap();
        assert!(accuracy(&pred, &y).unwrap() > 0.95, "acc too low");
    }

    #[test]
    fn federated_equals_local() {
        let (x, y) = synth::multi_class(300, 4, 3, 0.5, 42);
        let params = MLogRegParams {
            max_outer: 4,
            ..MLogRegParams::default()
        };
        let local = mlogreg(&Tensor::Local(x.clone()), &y, 3, &params).unwrap();
        let (ctx, _workers) = mem_federation(3);
        let fed = FedMatrix::scatter_rows(&ctx, &x, PrivacyLevel::Public).unwrap();
        let fed_model = mlogreg(&Tensor::Fed(fed), &y, 3, &params).unwrap();
        assert!(
            fed_model.weights.max_abs_diff(&local.weights) < 1e-7,
            "diff {}",
            fed_model.weights.max_abs_diff(&local.weights)
        );
    }

    #[test]
    fn more_outer_iterations_do_not_hurt() {
        let (x, y) = synth::multi_class(400, 4, 4, 0.6, 43);
        let short = mlogreg(
            &Tensor::Local(x.clone()),
            &y,
            4,
            &MLogRegParams {
                max_outer: 1,
                ..MLogRegParams::default()
            },
        )
        .unwrap();
        let long = mlogreg(&Tensor::Local(x.clone()), &y, 4, &MLogRegParams::default()).unwrap();
        let acc_s = accuracy(&predict(&Tensor::Local(x.clone()), &short).unwrap(), &y).unwrap();
        let acc_l = accuracy(&predict(&Tensor::Local(x), &long).unwrap(), &y).unwrap();
        assert!(acc_l >= acc_s - 0.02, "long {acc_l} vs short {acc_s}");
    }

    #[test]
    fn probabilities_rows_sum_to_one() {
        let (x, y) = synth::multi_class(100, 3, 3, 0.5, 44);
        let model = mlogreg(&Tensor::Local(x.clone()), &y, 3, &MLogRegParams::default()).unwrap();
        let p = probabilities(&Tensor::Local(x), &model.weights)
            .unwrap()
            .to_local()
            .unwrap();
        for r in 0..p.rows() {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-10);
        }
    }
}
