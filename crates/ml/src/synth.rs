//! Synthetic data generators for tests, examples, and the benchmark
//! harness (the paper itself evaluates on synthetic data resembling the
//! paper-production use case, §6.1).

use exdra_matrix::kernels::matmul::matmul;
use exdra_matrix::rng::{rand_matrix, randn_matrix};
use exdra_matrix::DenseMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Regression data: `y = X beta + noise`. Returns `(X, y, beta)`.
pub fn regression(
    n: usize,
    d: usize,
    noise: f64,
    seed: u64,
) -> (DenseMatrix, DenseMatrix, DenseMatrix) {
    let x = rand_matrix(n, d, -1.0, 1.0, seed);
    let beta = rand_matrix(d, 1, -2.0, 2.0, seed.wrapping_add(1));
    let eps = randn_matrix(n, 1, seed.wrapping_add(2));
    let mut y = matmul(&x, &beta).expect("shapes");
    for (yv, ev) in y.values_mut().iter_mut().zip(eps.values()) {
        *yv += noise * ev;
    }
    (x, y, beta)
}

/// Binary classification with labels in {-1, +1}, linearly separable up to
/// `flip` label noise. Returns `(X, y)`.
pub fn two_class(n: usize, d: usize, flip: f64, seed: u64) -> (DenseMatrix, DenseMatrix) {
    let x = rand_matrix(n, d, -1.0, 1.0, seed);
    let w = rand_matrix(d, 1, -1.0, 1.0, seed.wrapping_add(1));
    let score = matmul(&x, &w).expect("shapes");
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(2));
    let mut y = DenseMatrix::zeros(n, 1);
    for i in 0..n {
        let mut label = if score.get(i, 0) >= 0.0 { 1.0 } else { -1.0 };
        if rng.gen::<f64>() < flip {
            label = -label;
        }
        y.set(i, 0, label);
    }
    (x, y)
}

/// Multi-class classification with labels `1..=k` from Gaussian blobs.
/// Returns `(X, y)`.
pub fn multi_class(
    n: usize,
    d: usize,
    k: usize,
    spread: f64,
    seed: u64,
) -> (DenseMatrix, DenseMatrix) {
    let centers = rand_matrix(k, d, -5.0, 5.0, seed);
    let noise = randn_matrix(n, d, seed.wrapping_add(1));
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(2));
    let mut x = DenseMatrix::zeros(n, d);
    let mut y = DenseMatrix::zeros(n, 1);
    for i in 0..n {
        let c = rng.gen_range(0..k);
        y.set(i, 0, (c + 1) as f64);
        for j in 0..d {
            x.set(i, j, centers.get(c, j) + spread * noise.get(i, j));
        }
    }
    (x, y)
}

/// Gaussian blobs for clustering (K-Means / GMM): `k` clusters of equal
/// size with per-cluster spread. Returns `(X, assignment)` with 1-based
/// assignments.
pub fn blobs(n: usize, d: usize, k: usize, spread: f64, seed: u64) -> (DenseMatrix, DenseMatrix) {
    multi_class(n, d, k, spread, seed)
}

/// Synthetic image-classification data standing in for MNIST (see
/// DESIGN.md §4): `side x side` images of `k` classes, each class a
/// distinct bright rectangle pattern on a mostly-zero background — the same
/// shape and sparsity regime ("just below the internal sparsity threshold")
/// that drives the paper's CNN measurements. Returns `(X, y)` with X of
/// shape `n x side*side` and 1-based labels.
pub fn images(n: usize, side: usize, k: usize, seed: u64) -> (DenseMatrix, DenseMatrix) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = DenseMatrix::zeros(n, side * side);
    let mut y = DenseMatrix::zeros(n, 1);
    for i in 0..n {
        let c = rng.gen_range(0..k);
        y.set(i, 0, (c + 1) as f64);
        // Class-specific rectangle position derived from the class index.
        let base_r = (c * 3) % (side / 2);
        let base_c = (c * 5) % (side / 2);
        let h = side / 3;
        let w = side / 3;
        // Small jitter keeps the task non-trivial.
        let jr = rng.gen_range(0..3.min(side - base_r - h));
        let jc = rng.gen_range(0..3.min(side - base_c - w));
        for r in 0..h {
            for cc in 0..w {
                let val = 0.5 + 0.5 * rng.gen::<f64>();
                x.set(i, (base_r + jr + r) * side + (base_c + jc + cc), val);
            }
        }
    }
    (x, y)
}

/// One-hot encodes 1-based labels into an `n x k` indicator matrix.
pub fn one_hot(y: &DenseMatrix, k: usize) -> DenseMatrix {
    let mut out = DenseMatrix::zeros(y.rows(), k);
    for i in 0..y.rows() {
        let c = y.get(i, 0) as usize;
        debug_assert!((1..=k).contains(&c));
        out.set(i, c - 1, 1.0);
    }
    out
}

/// The paper-production-style raw frame of §6.3: `num_cat` categorical
/// signals (recipe IDs etc.) and `num_cont` continuous sensor signals, with
/// a missing-value rate. Returns the frame and a noisy linear target.
pub fn paper_production_frame(
    n: usize,
    num_cat: usize,
    cat_domain: usize,
    num_cont: usize,
    missing_rate: f64,
    seed: u64,
) -> (exdra_matrix::Frame, DenseMatrix) {
    use exdra_matrix::frame::FrameColumn;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut columns = Vec::new();
    for c in 0..num_cat {
        let vals: Vec<Option<String>> = (0..n)
            .map(|_| {
                if rng.gen::<f64>() < missing_rate {
                    None
                } else {
                    Some(format!("R{}", rng.gen_range(0..cat_domain)))
                }
            })
            .collect();
        columns.push((format!("recipe_{c}"), FrameColumn::Str(vals)));
    }
    let mut target = DenseMatrix::zeros(n, 1);
    for c in 0..num_cont {
        let weight = ((c % 7) as f64 - 3.0) / 3.0;
        let vals: Vec<Option<f64>> = (0..n)
            .map(|i| {
                if rng.gen::<f64>() < missing_rate {
                    None
                } else {
                    let v: f64 = rng.gen_range(-3.0..3.0);
                    let cur = target.get(i, 0);
                    target.set(i, 0, cur + weight * v);
                    Some(v * 100.0 + 2000.0) // sensor-style magnitudes
                }
            })
            .collect();
        columns.push((format!("signal_{c}"), FrameColumn::F64(vals)));
    }
    let frame = exdra_matrix::Frame::new(columns).expect("consistent columns");
    (frame, target)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regression_recoverable() {
        let (x, y, beta) = regression(500, 5, 0.0, 1);
        // Noise-free: y == X beta exactly.
        let yhat = matmul(&x, &beta).unwrap();
        assert!(y.max_abs_diff(&yhat) < 1e-12);
    }

    #[test]
    fn two_class_labels_pm_one() {
        let (_, y) = two_class(200, 4, 0.1, 2);
        assert!(y.values().iter().all(|&v| v == 1.0 || v == -1.0));
    }

    #[test]
    fn multi_class_labels_in_range() {
        let (x, y) = multi_class(300, 6, 4, 0.5, 3);
        assert_eq!(x.shape(), (300, 6));
        assert!(y.values().iter().all(|&v| (1.0..=4.0).contains(&v)));
        // Every class appears.
        for c in 1..=4 {
            assert!(y.values().contains(&(c as f64)), "class {c}");
        }
    }

    #[test]
    fn images_are_sparse_and_labeled() {
        let (x, y) = images(100, 28, 10, 4);
        assert_eq!(x.cols(), 784);
        let sp = x.sparsity();
        assert!(sp < 0.4, "images mostly zero, sparsity {sp}");
        assert!(y.values().iter().all(|&v| (1.0..=10.0).contains(&v)));
    }

    #[test]
    fn one_hot_rows_sum_to_one() {
        let y = DenseMatrix::col_vector(&[1., 3., 2.]);
        let oh = one_hot(&y, 3);
        assert_eq!(oh.values(), &[1., 0., 0., 0., 0., 1., 0., 1., 0.]);
    }

    #[test]
    fn paper_frame_has_missing_and_schema() {
        let (f, y) = paper_production_frame(200, 2, 5, 3, 0.1, 5);
        assert_eq!(f.cols(), 5);
        assert_eq!(y.rows(), 200);
        let missing: usize = (0..f.cols())
            .map(|c| f.column(c).unwrap().missing_count())
            .sum();
        assert!(missing > 0, "expected some missing cells");
    }
}
