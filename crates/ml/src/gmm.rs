//! Gaussian mixture models with diagonal covariance, trained by EM — the
//! unsupervised anomaly-detection model of the fertilizer-production use
//! case (paper §2.1: "these grinding mill data are used to create
//! unsupervised anomaly detection models (e.g., Gaussian mixture models)").
//!
//! Every EM quantity is expressed through the locality-agnostic tensor ops:
//! per-component Mahalanobis terms via broadcast arithmetic and `rowSums`,
//! responsibilities via federated `softmax`, and the M-step via aligned
//! `t(P) %*% X` — so the same code trains on local or federated data.

use exdra_core::{Result, RuntimeError, Tensor};
use exdra_matrix::kernels::elementwise::{BinaryOp, UnaryOp};
use exdra_matrix::kernels::reorg;
use exdra_matrix::DenseMatrix;

/// Hyperparameters for GMM training.
#[derive(Debug, Clone, Copy)]
pub struct GmmParams {
    /// Number of mixture components.
    pub k: usize,
    /// Maximum EM iterations.
    pub max_iter: usize,
    /// Log-likelihood relative-improvement tolerance.
    pub tol: f64,
    /// Variance floor preventing component collapse.
    pub var_floor: f64,
    /// Seed for mean initialization.
    pub seed: u64,
}

impl Default for GmmParams {
    fn default() -> Self {
        Self {
            k: 3,
            max_iter: 50,
            tol: 1e-6,
            var_floor: 1e-6,
            seed: 11,
        }
    }
}

/// A fitted diagonal-covariance Gaussian mixture model.
#[derive(Debug, Clone)]
pub struct GmmModel {
    /// Component means (`k x d`).
    pub means: DenseMatrix,
    /// Component variances (`k x d`, diagonal).
    pub variances: DenseMatrix,
    /// Mixing weights (`1 x k`).
    pub weights: DenseMatrix,
    /// Final average log-likelihood.
    pub log_likelihood: f64,
    /// EM iterations performed.
    pub iterations: usize,
}

/// Per-row, per-component log densities `n x k` (stays federated for
/// federated inputs).
fn log_densities(x: &Tensor, model: &GmmModel) -> Result<Tensor> {
    let d = x.cols();
    let k = model.means.rows();
    let mut cols: Option<Tensor> = None;
    for c in 0..k {
        let mu = reorg::index(&model.means, c, c + 1, 0, d)?;
        let var = reorg::index(&model.variances, c, c + 1, 0, d)?;
        // -(x - mu)^2 / (2 var), summed over features.
        let centered = x.binary(BinaryOp::Sub, &Tensor::Local(mu))?;
        let sq = centered.unary(UnaryOp::Square)?;
        let scaled = sq.binary(BinaryOp::Div, &Tensor::Local(var.map(|v| 2.0 * v)))?;
        let m_dist = scaled.row_sums()?; // n x 1
        let log_norm: f64 = var
            .values()
            .iter()
            .map(|&v| 0.5 * (2.0 * std::f64::consts::PI * v).ln())
            .sum();
        let log_pi = model.weights.get(0, c).max(1e-300).ln();
        let col = m_dist.scalar_op(BinaryOp::Mul, -1.0, false)?.scalar_op(
            BinaryOp::Add,
            log_pi - log_norm,
            false,
        )?;
        cols = Some(match cols {
            None => col,
            Some(acc) => acc.cbind(&col)?,
        });
    }
    cols.ok_or_else(|| RuntimeError::Invalid("k must be >= 1".into()))
}

/// Trains a diagonal GMM by expectation-maximization.
pub fn gmm(x: &Tensor, params: &GmmParams) -> Result<GmmModel> {
    let n = x.rows();
    let d = x.cols();
    let k = params.k;
    // Initialize means from sampled rows (or releasable moments when the
    // privacy constraint forbids raw-row transfer), unit variances,
    // uniform weights.
    let means = crate::init::rows_or_moments(x, k, params.seed)?;
    let mut model = GmmModel {
        means,
        variances: DenseMatrix::filled(k, d, 1.0),
        weights: DenseMatrix::filled(1, k, 1.0 / k as f64),
        log_likelihood: f64::NEG_INFINITY,
        iterations: 0,
    };
    // Precompute sum(x^2) per column for the variance M-step: t(P) %*% X².
    let x_sq = x.unary(UnaryOp::Square)?;

    for iter in 0..params.max_iter {
        // E-step: responsibilities P = softmax(log densities) row-wise.
        let ld = log_densities(x, &model)?;
        let p = ld.softmax()?;
        // Average log-likelihood: logsumexp per row == max + log sum exp;
        // softmax already normalized, recover via sum of densities:
        // ll = mean over rows of logsumexp(ld). Compute with the stable
        // decomposition max + log(sum(exp(ld - max))).
        let row_max = ld.agg(
            exdra_matrix::kernels::aggregates::AggOp::Max,
            exdra_matrix::kernels::aggregates::AggDir::Row,
        )?;
        let shifted = ld.binary(BinaryOp::Sub, &row_max)?;
        let sum_exp = shifted.unary(UnaryOp::Exp)?.row_sums()?;
        let log_sum = sum_exp
            .unary(UnaryOp::Log)?
            .binary(BinaryOp::Add, &row_max)?;
        let ll = log_sum.mean()?;

        // M-step (all aggregates): Nk = colSums(P); mu = t(P)X / Nk;
        // var = t(P)X² / Nk - mu².
        let nk = p.col_sums()?.to_local()?;
        let ptx = p.t_matmul(x)?.to_local()?;
        let ptx2 = p.t_matmul(&x_sq)?.to_local()?;
        for c in 0..k {
            let denom = nk.get(0, c).max(1e-10);
            model.weights.set(0, c, denom / n as f64);
            for j in 0..d {
                let mu = ptx.get(c, j) / denom;
                model.means.set(c, j, mu);
                let var = (ptx2.get(c, j) / denom - mu * mu).max(params.var_floor);
                model.variances.set(c, j, var);
            }
        }
        model.iterations = iter + 1;
        let improvement = ll - model.log_likelihood;
        let done = improvement.abs() < params.tol * model.log_likelihood.abs().max(1.0);
        model.log_likelihood = ll;
        if done && iter > 0 {
            break;
        }
    }
    Ok(model)
}

/// Per-row log-likelihood scores as a (possibly federated) tensor; low
/// scores indicate anomalies. Keeping the result federated lets deployed
/// pipelines flag anomalies at the sites and release only aggregate counts.
pub fn score_tensor(x: &Tensor, model: &GmmModel) -> Result<Tensor> {
    let ld = log_densities(x, model)?;
    let row_max = ld.agg(
        exdra_matrix::kernels::aggregates::AggOp::Max,
        exdra_matrix::kernels::aggregates::AggDir::Row,
    )?;
    let shifted = ld.binary(BinaryOp::Sub, &row_max)?;
    let sum_exp = shifted.unary(UnaryOp::Exp)?.row_sums()?;
    sum_exp.unary(UnaryOp::Log)?.binary(BinaryOp::Add, &row_max)
}

/// Per-row scores consolidated locally (privacy-checked for federated
/// inputs; see [`score_tensor`] for the federated deployment pattern).
pub fn score(x: &Tensor, model: &GmmModel) -> Result<DenseMatrix> {
    score_tensor(x, model)?.to_local()
}

/// Flags rows whose score is below the `quantile` of training scores.
/// Returns `(threshold, flags)` where flags are 0/1.
pub fn anomaly_threshold(scores: &DenseMatrix, quantile: f64) -> (f64, DenseMatrix) {
    let mut sorted: Vec<f64> = scores.values().to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let idx = ((sorted.len() as f64 - 1.0) * quantile).round() as usize;
    let threshold = sorted[idx.min(sorted.len() - 1)];
    let flags = scores.map(|v| if v < threshold { 1.0 } else { 0.0 });
    (threshold, flags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;
    use exdra_core::fed::FedMatrix;
    use exdra_core::testutil::mem_federation;
    use exdra_core::PrivacyLevel;

    #[test]
    fn recovers_blob_structure() {
        let (x, _) = synth::blobs(400, 3, 3, 0.3, 71);
        let model = gmm(
            &Tensor::Local(x),
            &GmmParams {
                k: 3,
                max_iter: 40,
                ..GmmParams::default()
            },
        )
        .unwrap();
        // Weights roughly uniform (equal-sized blobs) and variances small.
        for c in 0..3 {
            assert!(model.weights.get(0, c) > 0.15, "degenerate weight");
        }
        assert!(model.iterations > 1);
    }

    #[test]
    fn likelihood_increases_monotonically() {
        let (x, _) = synth::blobs(300, 3, 2, 0.5, 72);
        let t = Tensor::Local(x);
        let mut lls = Vec::new();
        for iters in [1usize, 3, 8] {
            let m = gmm(
                &t,
                &GmmParams {
                    k: 2,
                    max_iter: iters,
                    tol: 0.0,
                    ..GmmParams::default()
                },
            )
            .unwrap();
            lls.push(m.log_likelihood);
        }
        assert!(
            lls[1] >= lls[0] - 1e-9 && lls[2] >= lls[1] - 1e-9,
            "{lls:?}"
        );
    }

    #[test]
    fn federated_equals_local() {
        let (x, _) = synth::blobs(240, 3, 2, 0.4, 73);
        let params = GmmParams {
            k: 2,
            max_iter: 5,
            tol: 0.0,
            ..GmmParams::default()
        };
        let local = gmm(&Tensor::Local(x.clone()), &params).unwrap();
        let (ctx, _workers) = mem_federation(3);
        let fed = FedMatrix::scatter_rows(&ctx, &x, PrivacyLevel::Public).unwrap();
        let fed_model = gmm(&Tensor::Fed(fed), &params).unwrap();
        assert!(
            fed_model.means.max_abs_diff(&local.means) < 1e-7,
            "means diff {}",
            fed_model.means.max_abs_diff(&local.means)
        );
        assert!((fed_model.log_likelihood - local.log_likelihood).abs() < 1e-8);
    }

    #[test]
    fn anomalies_score_lower() {
        let (x, _) = synth::blobs(300, 4, 2, 0.3, 74);
        let model = gmm(
            &Tensor::Local(x.clone()),
            &GmmParams {
                k: 2,
                ..GmmParams::default()
            },
        )
        .unwrap();
        let normal_scores = score(&Tensor::Local(x), &model).unwrap();
        // Far-away outliers.
        let outliers = DenseMatrix::filled(10, 4, 50.0);
        let outlier_scores = score(&Tensor::Local(outliers), &model).unwrap();
        let avg_normal: f64 =
            normal_scores.values().iter().sum::<f64>() / normal_scores.len() as f64;
        let avg_out: f64 =
            outlier_scores.values().iter().sum::<f64>() / outlier_scores.len() as f64;
        assert!(avg_out < avg_normal - 10.0);
        let (_, flags) = anomaly_threshold(&normal_scores, 0.05);
        let flagged: f64 = flags.values().iter().sum();
        assert!((flagged / 300.0 - 0.05).abs() < 0.03);
    }
}

/// Task-parallel training of multiple GMM instances (paper §6.3: the
/// partially-supported pipelines include "the task-parallel training of
/// multiple GMM instances"): each hyperparameter configuration trains on
/// its own thread against the same (possibly federated) data. Federated
/// requests from concurrent tasks interleave at the standing workers.
pub fn gmm_task_parallel(x: &Tensor, configs: &[GmmParams]) -> Result<Vec<GmmModel>> {
    let mut results: Vec<Option<Result<GmmModel>>> = Vec::new();
    results.resize_with(configs.len(), || None);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(configs.len());
        for params in configs {
            let x = x.clone();
            handles.push(scope.spawn(move || gmm(&x, params)));
        }
        for (slot, h) in results.iter_mut().zip(handles) {
            *slot = Some(
                h.join()
                    .unwrap_or_else(|_| Err(RuntimeError::Network("gmm task panicked".into()))),
            );
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every slot written"))
        .collect()
}

#[cfg(test)]
mod task_parallel_tests {
    use super::*;
    use crate::synth;
    use exdra_core::fed::FedMatrix;
    use exdra_core::testutil::mem_federation;
    use exdra_core::PrivacyLevel;

    #[test]
    fn parallel_tasks_equal_sequential() {
        let (x, _) = synth::blobs(200, 3, 3, 0.4, 91);
        let configs: Vec<GmmParams> = (2..=4)
            .map(|k| GmmParams {
                k,
                max_iter: 4,
                tol: 0.0,
                seed: 5,
                ..GmmParams::default()
            })
            .collect();
        let t = Tensor::Local(x);
        let parallel = gmm_task_parallel(&t, &configs).unwrap();
        for (params, got) in configs.iter().zip(&parallel) {
            let want = gmm(&t, params).unwrap();
            assert!(got.means.max_abs_diff(&want.means) < 1e-12);
            assert_eq!(got.iterations, want.iterations);
        }
    }

    #[test]
    fn parallel_tasks_over_shared_federation() {
        // Concurrent federated tasks interleave safely at the workers.
        let (ctx, _w) = mem_federation(2);
        let (x, _) = synth::blobs(160, 3, 2, 0.4, 92);
        let fed = FedMatrix::scatter_rows(&ctx, &x, PrivacyLevel::Public).unwrap();
        let configs: Vec<GmmParams> = (0..3)
            .map(|i| GmmParams {
                k: 2,
                max_iter: 3,
                tol: 0.0,
                seed: 30 + i,
                ..GmmParams::default()
            })
            .collect();
        let fed_models = gmm_task_parallel(&Tensor::Fed(fed), &configs).unwrap();
        let local_models = gmm_task_parallel(&Tensor::Local(x), &configs).unwrap();
        for (f, l) in fed_models.iter().zip(&local_models) {
            assert!(
                f.means.max_abs_diff(&l.means) < 1e-7,
                "federated task diverged: {}",
                f.means.max_abs_diff(&l.means)
            );
        }
    }
}
