//! L2-regularized support vector machine (SystemDS `l2svm`).
//!
//! Nonlinear conjugate gradient on the squared-hinge objective with an
//! exact Newton line search — "two nested while loops, where each outer
//! iteration computes gradients, and the inner loop performs a line search
//! along the gradient" (paper §6.2). The federated matrix is touched only
//! by `X %*% s` (matrix-vector) and `t(X) %*% v` (vector-matrix) in the
//! outer loop; all inner-loop vector arithmetic is coordinator-local,
//! which is why the paper observes small federated overhead for L2SVM.

use exdra_core::{Result, Tensor};
use exdra_matrix::DenseMatrix;

/// Hyperparameters for L2SVM.
#[derive(Debug, Clone, Copy)]
pub struct L2SvmParams {
    /// L2 regularization strength.
    pub lambda: f64,
    /// Maximum outer iterations.
    pub max_iter: usize,
    /// Maximum inner line-search iterations.
    pub max_inner_iter: usize,
    /// Convergence tolerance on the relative objective decrease.
    pub tol: f64,
}

impl Default for L2SvmParams {
    fn default() -> Self {
        Self {
            lambda: 1e-2,
            max_iter: 50,
            max_inner_iter: 20,
            tol: 1e-9,
        }
    }
}

/// A fitted L2SVM model.
#[derive(Debug, Clone)]
pub struct L2SvmModel {
    /// Learned weights (`d x 1`).
    pub weights: DenseMatrix,
    /// Outer iterations performed.
    pub iterations: usize,
    /// Final objective value.
    pub objective: f64,
}

fn dot(a: &DenseMatrix, b: &DenseMatrix) -> f64 {
    a.values()
        .iter()
        .zip(b.values())
        .map(|(&x, &y)| x * y)
        .sum()
}

/// Trains L2SVM on (possibly federated) features with local ±1 labels.
pub fn l2svm(x: &Tensor, y: &DenseMatrix, params: &L2SvmParams) -> Result<L2SvmModel> {
    let n = x.rows();
    let d = x.cols();
    assert_eq!(y.shape(), (n, 1), "labels must be n x 1 in {{-1, +1}}");

    let mut w = DenseMatrix::zeros(d, 1);
    // g_old = t(X) %*% y
    let mut g_old = x.t_matmul(&Tensor::Local(y.clone()))?.to_local()?;
    let mut s = g_old.clone();
    let mut xw = DenseMatrix::zeros(n, 1);
    let mut objective = f64::INFINITY;
    let mut iterations = 0usize;

    while iterations < params.max_iter {
        // Xd = X %*% s — the only federated access of the outer loop;
        // the result is a vector in the number of rows (paper §6.2).
        let xd = x.matmul(&Tensor::Local(s.clone()))?.to_local()?;
        let wd = params.lambda * dot(&w, &s);
        let dd = params.lambda * dot(&s, &s);

        // Exact Newton line search on step size.
        let mut step = 0.0f64;
        let mut inner = 0usize;
        loop {
            // out = 1 - y ⊙ (Xw + step Xd); sv = out > 0
            let mut g = wd + step * dd;
            let mut h = dd;
            for i in 0..n {
                let out = 1.0 - y.get(i, 0) * (xw.get(i, 0) + step * xd.get(i, 0));
                if out > 0.0 {
                    g -= out * y.get(i, 0) * xd.get(i, 0);
                    h += xd.get(i, 0) * xd.get(i, 0);
                }
            }
            if h <= 0.0 || (g * g / h) <= params.tol || inner >= params.max_inner_iter {
                break;
            }
            step -= g / h;
            inner += 1;
        }

        for (wv, sv) in w.values_mut().iter_mut().zip(s.values()) {
            *wv += step * sv;
        }
        for (xv, dv) in xw.values_mut().iter_mut().zip(xd.values()) {
            *xv += step * dv;
        }

        // Objective and new gradient from the hinge residuals.
        let mut out = DenseMatrix::zeros(n, 1);
        let mut obj = 0.5 * params.lambda * dot(&w, &w);
        for i in 0..n {
            let o = 1.0 - y.get(i, 0) * xw.get(i, 0);
            if o > 0.0 {
                out.set(i, 0, o * y.get(i, 0)); // out ⊙ y ⊙ sv, fused
                obj += 0.5 * o * o;
            }
        }
        // g_new = t(X) %*% (out ⊙ y ⊙ sv) - lambda w
        let mut g_new = x.t_matmul(&Tensor::Local(out))?.to_local()?;
        for (gv, wv) in g_new.values_mut().iter_mut().zip(w.values()) {
            *gv -= params.lambda * wv;
        }

        iterations += 1;
        let rel_decrease = (objective - obj).abs() / obj.abs().max(1e-30);
        objective = obj;
        if rel_decrease < params.tol {
            break;
        }
        // Fletcher–Reeves conjugate direction update.
        let beta = dot(&g_new, &g_new) / dot(&g_old, &g_old).max(1e-300);
        for (sv, gv) in s.values_mut().iter_mut().zip(g_new.values()) {
            *sv = gv + beta * *sv;
        }
        g_old = g_new;
    }
    Ok(L2SvmModel {
        weights: w,
        iterations,
        objective,
    })
}

/// Predicts ±1 labels.
pub fn predict(x: &Tensor, model: &L2SvmModel) -> Result<DenseMatrix> {
    let scores = x
        .matmul(&Tensor::Local(model.weights.clone()))?
        .to_local()?;
    Ok(scores.map(|v| if v >= 0.0 { 1.0 } else { -1.0 }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::accuracy;
    use crate::synth;
    use exdra_core::fed::FedMatrix;
    use exdra_core::testutil::mem_federation;
    use exdra_core::PrivacyLevel;

    #[test]
    fn separable_data_high_accuracy() {
        let (x, y) = synth::two_class(400, 6, 0.0, 31);
        let model = l2svm(&Tensor::Local(x.clone()), &y, &L2SvmParams::default()).unwrap();
        let pred = predict(&Tensor::Local(x), &model).unwrap();
        assert!(accuracy(&pred, &y).unwrap() > 0.97);
        assert!(model.iterations > 0);
    }

    #[test]
    fn noisy_data_still_learns() {
        let (x, y) = synth::two_class(500, 5, 0.1, 32);
        let model = l2svm(&Tensor::Local(x.clone()), &y, &L2SvmParams::default()).unwrap();
        let pred = predict(&Tensor::Local(x), &model).unwrap();
        assert!(accuracy(&pred, &y).unwrap() > 0.8);
    }

    #[test]
    fn federated_equals_local() {
        let (x, y) = synth::two_class(300, 6, 0.05, 33);
        let params = L2SvmParams::default();
        let local = l2svm(&Tensor::Local(x.clone()), &y, &params).unwrap();
        let (ctx, _workers) = mem_federation(3);
        let fed = FedMatrix::scatter_rows(&ctx, &x, PrivacyLevel::Public).unwrap();
        let fed_model = l2svm(&Tensor::Fed(fed), &y, &params).unwrap();
        assert!(fed_model.weights.max_abs_diff(&local.weights) < 1e-8);
        assert_eq!(fed_model.iterations, local.iterations);
        assert!((fed_model.objective - local.objective).abs() < 1e-8);
    }

    #[test]
    fn objective_decreases_with_iterations() {
        let (x, y) = synth::two_class(300, 4, 0.05, 34);
        let short = l2svm(
            &Tensor::Local(x.clone()),
            &y,
            &L2SvmParams {
                max_iter: 1,
                ..L2SvmParams::default()
            },
        )
        .unwrap();
        let long = l2svm(
            &Tensor::Local(x),
            &y,
            &L2SvmParams {
                max_iter: 30,
                ..L2SvmParams::default()
            },
        )
        .unwrap();
        assert!(long.objective <= short.objective + 1e-12);
    }
}
