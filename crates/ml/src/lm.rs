//! Linear regression (SystemDS `lm`): conjugate-gradient solver for wide
//! data and a direct normal-equation solver for narrow data.
//!
//! The paper's LM "internally calls an iterative conjugate-gradient LM
//! method (used for ncol(X) > 1,024), where each iteration performs an
//! `Xᵀ(Xv)` over the federated data" — exactly the fused `mmchain`
//! instruction. The direct solver computes `XᵀX` via federated `tsmm`.

use exdra_core::{Result, Tensor};
use exdra_matrix::eigen::solve_spd;
use exdra_matrix::kernels::matmul::matmul;
use exdra_matrix::kernels::reorg::transpose;
use exdra_matrix::DenseMatrix;

/// Hyperparameters for linear regression.
#[derive(Debug, Clone, Copy)]
pub struct LmParams {
    /// L2 regularization strength.
    pub lambda: f64,
    /// Maximum CG iterations.
    pub max_iter: usize,
    /// Relative residual tolerance for CG convergence.
    pub tol: f64,
    /// Column threshold above which CG is used instead of the direct
    /// solver (SystemDS uses 1,024).
    pub cg_threshold: usize,
}

impl Default for LmParams {
    fn default() -> Self {
        Self {
            lambda: 1e-3,
            max_iter: 100,
            tol: 1e-9,
            cg_threshold: 1024,
        }
    }
}

/// A fitted linear model.
#[derive(Debug, Clone)]
pub struct LmModel {
    /// Learned weights (`d x 1`).
    pub weights: DenseMatrix,
    /// Iterations performed (0 for the direct solver).
    pub iterations: usize,
    /// Final squared-residual norm of the CG system (NaN for direct).
    pub residual: f64,
}

/// Trains linear regression on (possibly federated) features with local
/// labels, auto-selecting the solver by column count.
pub fn lm(x: &Tensor, y: &DenseMatrix, params: &LmParams) -> Result<LmModel> {
    if x.cols() > params.cg_threshold {
        lm_cg(x, y, params)
    } else {
        lm_direct(x, y, params)
    }
}

/// Conjugate-gradient solver for `(XᵀX + lambda I) w = Xᵀ y`.
pub fn lm_cg(x: &Tensor, y: &DenseMatrix, params: &LmParams) -> Result<LmModel> {
    let d = x.cols();
    // r = -t(X) %*% y  (negative gradient at w = 0)
    let xty = x.t_matmul(&Tensor::Local(y.clone()))?.to_local()?;
    let mut r = xty.map(|v| -v);
    let mut p = r.map(|v| -v);
    let mut w = DenseMatrix::zeros(d, 1);
    let mut norm_r2: f64 = r.values().iter().map(|v| v * v).sum();
    let norm_r2_init = norm_r2;
    let target = params.tol * params.tol * norm_r2_init;
    let mut iterations = 0usize;
    while iterations < params.max_iter && norm_r2 > target {
        // q = t(X) %*% (X %*% p) + lambda p — one fused federated mmchain.
        let mut q = x.mmchain(&p, None)?;
        for (qv, pv) in q.values_mut().iter_mut().zip(p.values()) {
            *qv += params.lambda * pv;
        }
        let pq: f64 = p
            .values()
            .iter()
            .zip(q.values())
            .map(|(&a, &b)| a * b)
            .sum();
        let alpha = norm_r2 / pq;
        for ((wv, pv), _) in w.values_mut().iter_mut().zip(p.values()).zip(0..d) {
            *wv += alpha * pv;
        }
        for (rv, qv) in r.values_mut().iter_mut().zip(q.values()) {
            *rv += alpha * qv;
        }
        let norm_r2_new: f64 = r.values().iter().map(|v| v * v).sum();
        let beta = norm_r2_new / norm_r2;
        for (pv, rv) in p.values_mut().iter_mut().zip(r.values()) {
            *pv = -rv + beta * *pv;
        }
        norm_r2 = norm_r2_new;
        iterations += 1;
    }
    Ok(LmModel {
        weights: w,
        iterations,
        residual: norm_r2,
    })
}

/// Direct solver via federated `tsmm` and a local Cholesky solve.
pub fn lm_direct(x: &Tensor, y: &DenseMatrix, params: &LmParams) -> Result<LmModel> {
    let mut gram = x.tsmm()?;
    for i in 0..gram.rows() {
        let v = gram.get(i, i);
        gram.set(i, i, v + params.lambda);
    }
    let xty = x.t_matmul(&Tensor::Local(y.clone()))?.to_local()?;
    let w = solve_spd(&gram, &xty)?;
    Ok(LmModel {
        weights: w,
        iterations: 0,
        residual: f64::NAN,
    })
}

/// Predicts `X w` (stays federated for federated inputs until
/// consolidated).
pub fn predict(x: &Tensor, model: &LmModel) -> Result<Tensor> {
    x.matmul(&Tensor::Local(model.weights.clone()))
}

/// Local prediction convenience.
pub fn predict_local(x: &DenseMatrix, model: &LmModel) -> Result<DenseMatrix> {
    Ok(matmul(x, &model.weights)?)
}

/// Squared loss of a model on local data (for tests).
pub fn loss_local(x: &DenseMatrix, y: &DenseMatrix, model: &LmModel) -> Result<f64> {
    let pred = predict_local(x, model)?;
    let d = pred.zip(y, "-", |a, b| a - b)?;
    Ok(d.values().iter().map(|v| v * v).sum::<f64>() / y.rows() as f64)
}

/// Reference solution via explicit normal equations (tests only).
pub fn normal_equations(x: &DenseMatrix, y: &DenseMatrix, lambda: f64) -> Result<DenseMatrix> {
    let xt = transpose(x);
    let mut gram = matmul(&xt, x)?;
    for i in 0..gram.rows() {
        let v = gram.get(i, i);
        gram.set(i, i, v + lambda);
    }
    let rhs = matmul(&xt, y)?;
    Ok(solve_spd(&gram, &rhs)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;
    use exdra_core::fed::FedMatrix;
    use exdra_core::testutil::mem_federation;
    use exdra_core::PrivacyLevel;

    #[test]
    fn cg_matches_normal_equations_local() {
        let (x, y, _) = synth::regression(300, 8, 0.1, 21);
        let params = LmParams {
            lambda: 1e-3,
            max_iter: 200,
            tol: 1e-12,
            cg_threshold: 0,
        };
        let model = lm(&Tensor::Local(x.clone()), &y, &params).unwrap();
        assert!(model.iterations > 0, "CG path taken");
        let direct = normal_equations(&x, &y, params.lambda).unwrap();
        assert!(model.weights.max_abs_diff(&direct) < 1e-6);
    }

    #[test]
    fn direct_solver_for_narrow_data() {
        let (x, y, _) = synth::regression(200, 5, 0.1, 22);
        let model = lm(&Tensor::Local(x.clone()), &y, &LmParams::default()).unwrap();
        assert_eq!(model.iterations, 0, "direct path taken");
        let want = normal_equations(&x, &y, LmParams::default().lambda).unwrap();
        assert!(model.weights.max_abs_diff(&want) < 1e-8);
    }

    #[test]
    fn recovers_true_weights_noiseless() {
        let (x, y, beta) = synth::regression(400, 6, 0.0, 23);
        let params = LmParams {
            lambda: 1e-9,
            ..LmParams::default()
        };
        let model = lm(&Tensor::Local(x), &y, &params).unwrap();
        assert!(model.weights.max_abs_diff(&beta) < 1e-5);
    }

    #[test]
    fn federated_cg_equals_local_cg() {
        let (x, y, _) = synth::regression(240, 7, 0.2, 24);
        let params = LmParams {
            lambda: 1e-2,
            max_iter: 50,
            tol: 1e-12,
            cg_threshold: 0,
        };
        let local = lm(&Tensor::Local(x.clone()), &y, &params).unwrap();
        let (ctx, _workers) = mem_federation(3);
        let fed = FedMatrix::scatter_rows(&ctx, &x, PrivacyLevel::Public).unwrap();
        let fed_model = lm(&Tensor::Fed(fed), &y, &params).unwrap();
        assert!(fed_model.weights.max_abs_diff(&local.weights) < 1e-9);
        assert_eq!(fed_model.iterations, local.iterations);
    }

    #[test]
    fn federated_direct_equals_local_direct() {
        let (x, y, _) = synth::regression(150, 4, 0.1, 25);
        let local = lm_direct(&Tensor::Local(x.clone()), &y, &LmParams::default()).unwrap();
        let (ctx, _workers) = mem_federation(2);
        let fed = FedMatrix::scatter_rows(&ctx, &x, PrivacyLevel::Public).unwrap();
        let fed_model = lm_direct(&Tensor::Fed(fed), &y, &LmParams::default()).unwrap();
        assert!(fed_model.weights.max_abs_diff(&local.weights) < 1e-9);
    }

    #[test]
    fn prediction_reduces_loss_vs_zero_model() {
        let (x, y, _) = synth::regression(200, 5, 0.5, 26);
        let model = lm(&Tensor::Local(x.clone()), &y, &LmParams::default()).unwrap();
        let zero = LmModel {
            weights: DenseMatrix::zeros(5, 1),
            iterations: 0,
            residual: f64::NAN,
        };
        assert!(loss_local(&x, &y, &model).unwrap() < loss_local(&x, &y, &zero).unwrap() / 2.0);
    }
}
