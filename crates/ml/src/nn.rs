//! Neural networks for the mini-batch experiments: a fully-connected
//! feed-forward network (FFN) and a convolutional network (CNN), trained
//! with SGD and Nesterov momentum (paper §6.1).
//!
//! Models are lists of weight/bias matrices — the same
//! `list(W1, W2, ..., b1, b2, ...)` representation the paper's
//! `paramserv` builtin passes around — so the federated parameter server of
//! `exdra-paramserv` can ship parameters and gradients as plain matrix
//! lists over the six-request protocol.

// Parallel-array index loops are intentional in the hot kernels below:
// iterator zips over 3+ arrays obscure the access pattern.
#![allow(clippy::needless_range_loop)]

use exdra_matrix::kernels::matmul::matmul;
use exdra_matrix::kernels::reorg::transpose;
use exdra_matrix::rng::randn_matrix;
use exdra_matrix::{DenseMatrix, MatrixError, Result};

/// One network layer.
#[derive(Debug, Clone)]
pub enum Layer {
    /// Affine layer `out = x W + b` with `W: in x out`, `b: 1 x out`.
    Dense {
        /// Weight matrix.
        w: DenseMatrix,
        /// Bias row vector.
        b: DenseMatrix,
    },
    /// Rectified linear activation.
    ReLU,
    /// 2D convolution over rows holding `(channels, h, w)` row-major
    /// feature maps, implemented via im2col.
    Conv2d {
        /// Filters as `out_ch x (in_ch * kh * kw)`.
        filters: DenseMatrix,
        /// Bias row vector `1 x out_ch`.
        bias: DenseMatrix,
        /// Input feature-map shape `(channels, height, width)`.
        in_shape: (usize, usize, usize),
        /// Kernel `(kh, kw)`.
        kernel: (usize, usize),
        /// Stride (same in both dimensions).
        stride: usize,
    },
    /// Max pooling over `(channels, h, w)` rows.
    MaxPool {
        /// Input feature-map shape `(channels, height, width)`.
        in_shape: (usize, usize, usize),
        /// Pool window edge (stride equals the window).
        size: usize,
    },
}

/// Output spatial size of a valid convolution/pool.
fn out_dim(input: usize, k: usize, stride: usize) -> usize {
    (input - k) / stride + 1
}

impl Layer {
    /// Output width (features per row) of this layer given its input width.
    pub fn out_features(&self, in_features: usize) -> usize {
        match self {
            Layer::Dense { w, .. } => w.cols(),
            Layer::ReLU => in_features,
            Layer::Conv2d {
                filters,
                in_shape,
                kernel,
                stride,
                ..
            } => {
                let oh = out_dim(in_shape.1, kernel.0, *stride);
                let ow = out_dim(in_shape.2, kernel.1, *stride);
                filters.rows() * oh * ow
            }
            Layer::MaxPool { in_shape, size } => {
                let oh = out_dim(in_shape.1, *size, *size);
                let ow = out_dim(in_shape.2, *size, *size);
                in_shape.0 * oh * ow
            }
        }
    }

    /// Number of trainable parameter matrices.
    pub fn num_params(&self) -> usize {
        match self {
            Layer::Dense { .. } | Layer::Conv2d { .. } => 2,
            Layer::ReLU | Layer::MaxPool { .. } => 0,
        }
    }
}

/// Saved forward state per layer for the backward pass.
enum Cache {
    Dense {
        input: DenseMatrix,
    },
    ReLU {
        input: DenseMatrix,
    },
    Conv {
        /// im2col patch matrices, one per sample.
        patches: Vec<DenseMatrix>,
    },
    Pool {
        /// Argmax positions into the input row per output cell.
        argmax: Vec<Vec<usize>>,
        in_features: usize,
    },
}

/// A sequential network.
#[derive(Debug, Clone)]
pub struct Network {
    /// Layers in forward order.
    pub layers: Vec<Layer>,
}

impl Network {
    /// Builds a fully-connected feed-forward classifier:
    /// `input -> hidden.. (ReLU) -> classes` logits.
    pub fn ffn(input: usize, hidden: &[usize], classes: usize, seed: u64) -> Network {
        let mut layers = Vec::new();
        let mut prev = input;
        let mut s = seed;
        for &h in hidden {
            layers.push(Layer::Dense {
                w: he_init(prev, h, s),
                b: DenseMatrix::zeros(1, h),
            });
            layers.push(Layer::ReLU);
            prev = h;
            s = s.wrapping_add(1);
        }
        layers.push(Layer::Dense {
            w: he_init(prev, classes, s),
            b: DenseMatrix::zeros(1, classes),
        });
        Network { layers }
    }

    /// Builds a small LeNet-style CNN over `side x side` single-channel
    /// images: conv(k=5) -> ReLU -> maxpool(2) -> dense -> ReLU -> logits.
    pub fn cnn(
        side: usize,
        conv_channels: usize,
        hidden: usize,
        classes: usize,
        seed: u64,
    ) -> Network {
        let k = 5usize;
        let oh = out_dim(side, k, 1);
        let pooled = out_dim(oh, 2, 2);
        let flat = conv_channels * pooled * pooled;
        Network {
            layers: vec![
                Layer::Conv2d {
                    filters: he_init(k * k, conv_channels, seed)
                        .reshape(conv_channels, k * k)
                        .expect("reshape"),
                    bias: DenseMatrix::zeros(1, conv_channels),
                    in_shape: (1, side, side),
                    kernel: (k, k),
                    stride: 1,
                },
                Layer::ReLU,
                Layer::MaxPool {
                    in_shape: (conv_channels, oh, oh),
                    size: 2,
                },
                Layer::Dense {
                    w: he_init(flat, hidden, seed.wrapping_add(1)),
                    b: DenseMatrix::zeros(1, hidden),
                },
                Layer::ReLU,
                Layer::Dense {
                    w: he_init(hidden, classes, seed.wrapping_add(2)),
                    b: DenseMatrix::zeros(1, classes),
                },
            ],
        }
    }

    /// Trainable parameters as a flat matrix list (`W1, b1, W2, b2, ...`).
    pub fn params(&self) -> Vec<DenseMatrix> {
        let mut out = Vec::new();
        for l in &self.layers {
            match l {
                Layer::Dense { w, b } => {
                    out.push(w.clone());
                    out.push(b.clone());
                }
                Layer::Conv2d { filters, bias, .. } => {
                    out.push(filters.clone());
                    out.push(bias.clone());
                }
                _ => {}
            }
        }
        out
    }

    /// Installs parameters from a flat matrix list (inverse of
    /// [`Network::params`]).
    pub fn set_params(&mut self, params: &[DenseMatrix]) -> Result<()> {
        let mut it = params.iter();
        for l in &mut self.layers {
            match l {
                Layer::Dense { w, b } => {
                    *w = next_param(&mut it, w.shape())?;
                    *b = next_param(&mut it, b.shape())?;
                }
                Layer::Conv2d { filters, bias, .. } => {
                    *filters = next_param(&mut it, filters.shape())?;
                    *bias = next_param(&mut it, bias.shape())?;
                }
                _ => {}
            }
        }
        if it.next().is_some() {
            return Err(MatrixError::InvalidArgument {
                op: "set_params",
                msg: "too many parameter matrices".into(),
            });
        }
        Ok(())
    }

    /// Forward pass to logits.
    pub fn forward(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        let (out, _) = self.forward_cached(x, false)?;
        Ok(out)
    }

    fn forward_cached(&self, x: &DenseMatrix, keep: bool) -> Result<(DenseMatrix, Vec<Cache>)> {
        let mut cur = x.clone();
        let mut caches = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let (next, cache) = layer_forward(layer, &cur, keep)?;
            caches.push(cache);
            cur = next;
        }
        Ok((cur, caches))
    }

    /// Full forward + backward pass with softmax cross-entropy loss over
    /// one-hot targets. Returns `(mean loss, gradients)` with gradients
    /// aligned to [`Network::params`].
    pub fn loss_grad(
        &self,
        x: &DenseMatrix,
        y_onehot: &DenseMatrix,
    ) -> Result<(f64, Vec<DenseMatrix>)> {
        let n = x.rows() as f64;
        let (logits, caches) = self.forward_cached(x, true)?;
        if logits.shape() != y_onehot.shape() {
            return Err(MatrixError::DimensionMismatch {
                op: "loss_grad",
                lhs: logits.shape(),
                rhs: y_onehot.shape(),
            });
        }
        // Softmax + cross-entropy, fused for numerical stability.
        let probs = exdra_matrix::kernels::elementwise::softmax(&logits);
        let mut loss = 0.0;
        for r in 0..logits.rows() {
            for c in 0..logits.cols() {
                if y_onehot.get(r, c) != 0.0 {
                    loss -= probs.get(r, c).max(1e-300).ln();
                }
            }
        }
        loss /= n;
        // dLogits = (probs - y) / n
        let mut dout = probs;
        for (dv, yv) in dout.values_mut().iter_mut().zip(y_onehot.values()) {
            *dv = (*dv - yv) / n;
        }
        // Backward through layers, collecting parameter gradients.
        let mut grads_rev: Vec<DenseMatrix> = Vec::new();
        for (layer, cache) in self.layers.iter().zip(caches.iter()).rev() {
            let (din, mut pgrads) = layer_backward(layer, cache, &dout)?;
            pgrads.reverse(); // maintain (W, b) order after the final reverse
            grads_rev.extend(pgrads);
            dout = din;
        }
        grads_rev.reverse();
        Ok((loss, grads_rev))
    }

    /// Predicts 1-based class labels.
    pub fn predict(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        let logits = self.forward(x)?;
        exdra_matrix::kernels::aggregates::row_index_max(&logits)
    }
}

fn next_param<'a>(
    it: &mut impl Iterator<Item = &'a DenseMatrix>,
    shape: (usize, usize),
) -> Result<DenseMatrix> {
    let m = it.next().ok_or(MatrixError::InvalidArgument {
        op: "set_params",
        msg: "too few parameter matrices".into(),
    })?;
    if m.shape() != shape {
        return Err(MatrixError::DimensionMismatch {
            op: "set_params",
            lhs: m.shape(),
            rhs: shape,
        });
    }
    Ok(m.clone())
}

fn he_init(fan_in: usize, fan_out: usize, seed: u64) -> DenseMatrix {
    let scale = (2.0 / fan_in as f64).sqrt();
    let mut m = randn_matrix(fan_in, fan_out, seed);
    m.map_inplace(|v| v * scale);
    m
}

fn layer_forward(layer: &Layer, x: &DenseMatrix, keep: bool) -> Result<(DenseMatrix, Cache)> {
    match layer {
        Layer::Dense { w, b } => {
            let mut out = matmul(x, w)?;
            for r in 0..out.rows() {
                let row = out.row_mut(r);
                for (o, &bv) in row.iter_mut().zip(b.values()) {
                    *o += bv;
                }
            }
            Ok((
                out,
                Cache::Dense {
                    input: if keep {
                        x.clone()
                    } else {
                        DenseMatrix::zeros(0, 0)
                    },
                },
            ))
        }
        Layer::ReLU => {
            let out = x.map(|v| v.max(0.0));
            Ok((
                out,
                Cache::ReLU {
                    input: if keep {
                        x.clone()
                    } else {
                        DenseMatrix::zeros(0, 0)
                    },
                },
            ))
        }
        Layer::Conv2d {
            filters,
            bias,
            in_shape,
            kernel,
            stride,
        } => {
            let (c_in, h, w) = *in_shape;
            let (kh, kw) = *kernel;
            let oh = out_dim(h, kh, *stride);
            let ow = out_dim(w, kw, *stride);
            let oc = filters.rows();
            let l = oh * ow;
            let mut out = DenseMatrix::zeros(x.rows(), oc * l);
            let mut patches_cache = Vec::with_capacity(if keep { x.rows() } else { 0 });
            for s in 0..x.rows() {
                let patches = im2col(x.row(s), c_in, h, w, kh, kw, *stride);
                // out_map = patches (l x ckk) * filtersᵀ (ckk x oc)
                let pm = matmul(&patches, &transpose(filters))?;
                let orow = out.row_mut(s);
                for o in 0..oc {
                    let bv = bias.get(0, o);
                    for li in 0..l {
                        orow[o * l + li] = pm.get(li, o) + bv;
                    }
                }
                if keep {
                    patches_cache.push(patches);
                }
            }
            Ok((
                out,
                Cache::Conv {
                    patches: patches_cache,
                },
            ))
        }
        Layer::MaxPool { in_shape, size } => {
            let (c, h, w) = *in_shape;
            let oh = out_dim(h, *size, *size);
            let ow = out_dim(w, *size, *size);
            let mut out = DenseMatrix::zeros(x.rows(), c * oh * ow);
            let mut argmax = Vec::with_capacity(if keep { x.rows() } else { 0 });
            for s in 0..x.rows() {
                let row = x.row(s);
                let mut arg = vec![0usize; c * oh * ow];
                let orow = out.row_mut(s);
                for ch in 0..c {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut best = f64::NEG_INFINITY;
                            let mut best_idx = 0usize;
                            for dy in 0..*size {
                                for dx in 0..*size {
                                    let idx = ch * h * w + (oy * size + dy) * w + (ox * size + dx);
                                    if row[idx] > best {
                                        best = row[idx];
                                        best_idx = idx;
                                    }
                                }
                            }
                            let oidx = ch * oh * ow + oy * ow + ox;
                            orow[oidx] = best;
                            arg[oidx] = best_idx;
                        }
                    }
                }
                if keep {
                    argmax.push(arg);
                }
            }
            Ok((
                out,
                Cache::Pool {
                    argmax,
                    in_features: c * h * w,
                },
            ))
        }
    }
}

fn layer_backward(
    layer: &Layer,
    cache: &Cache,
    dout: &DenseMatrix,
) -> Result<(DenseMatrix, Vec<DenseMatrix>)> {
    match (layer, cache) {
        (Layer::Dense { w, .. }, Cache::Dense { input }) => {
            let dw = matmul(&transpose(input), dout)?;
            let db = exdra_matrix::kernels::aggregates::aggregate(
                dout,
                exdra_matrix::kernels::aggregates::AggOp::Sum,
                exdra_matrix::kernels::aggregates::AggDir::Col,
            )?;
            let din = matmul(dout, &transpose(w))?;
            Ok((din, vec![dw, db]))
        }
        (Layer::ReLU, Cache::ReLU { input }) => {
            let din = input.zip(dout, "relu_bw", |x, d| if x > 0.0 { d } else { 0.0 })?;
            Ok((din, vec![]))
        }
        (
            Layer::Conv2d {
                filters,
                in_shape,
                kernel,
                stride,
                ..
            },
            Cache::Conv { patches },
        ) => {
            let (c_in, h, w) = *in_shape;
            let (kh, kw) = *kernel;
            let oh = out_dim(h, kh, *stride);
            let ow = out_dim(w, kw, *stride);
            let oc = filters.rows();
            let l = oh * ow;
            let ckk = c_in * kh * kw;
            let mut dfilters = DenseMatrix::zeros(oc, ckk);
            let mut dbias = DenseMatrix::zeros(1, oc);
            let mut din = DenseMatrix::zeros(dout.rows(), c_in * h * w);
            for s in 0..dout.rows() {
                // Per-sample dout map as oc x l.
                let drow = dout.row(s);
                let mut dmap = DenseMatrix::zeros(oc, l);
                for o in 0..oc {
                    let mut bsum = 0.0;
                    for li in 0..l {
                        let v = drow[o * l + li];
                        dmap.set(o, li, v);
                        bsum += v;
                    }
                    let cur = dbias.get(0, o);
                    dbias.set(0, o, cur + bsum);
                }
                // dF += dmap (oc x l) * patches (l x ckk)
                let df = matmul(&dmap, &patches[s])?;
                for (a, b) in dfilters.values_mut().iter_mut().zip(df.values()) {
                    *a += b;
                }
                // dPatches = dmapᵀ (l x oc) * filters (oc x ckk); col2im.
                let dpatches = matmul(&transpose(&dmap), filters)?;
                col2im(&dpatches, din.row_mut(s), c_in, h, w, kh, kw, *stride);
            }
            Ok((din, vec![dfilters, dbias]))
        }
        (
            Layer::MaxPool { in_shape, .. },
            Cache::Pool {
                argmax,
                in_features,
            },
        ) => {
            let _ = in_shape;
            let mut din = DenseMatrix::zeros(dout.rows(), *in_features);
            for s in 0..dout.rows() {
                let drow = dout.row(s);
                let din_row = din.row_mut(s);
                for (oidx, &iidx) in argmax[s].iter().enumerate() {
                    din_row[iidx] += drow[oidx];
                }
            }
            Ok((din, vec![]))
        }
        _ => Err(MatrixError::InvalidArgument {
            op: "layer_backward",
            msg: "cache/layer mismatch".into(),
        }),
    }
}

/// Extracts convolution patches of one sample row into an
/// `(oh*ow) x (c*kh*kw)` matrix.
fn im2col(
    row: &[f64],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
) -> DenseMatrix {
    let oh = out_dim(h, kh, stride);
    let ow = out_dim(w, kw, stride);
    let mut out = DenseMatrix::zeros(oh * ow, c * kh * kw);
    for oy in 0..oh {
        for ox in 0..ow {
            let prow = out.row_mut(oy * ow + ox);
            let mut k = 0usize;
            for ch in 0..c {
                for dy in 0..kh {
                    for dx in 0..kw {
                        prow[k] = row[ch * h * w + (oy * stride + dy) * w + (ox * stride + dx)];
                        k += 1;
                    }
                }
            }
        }
    }
    out
}

/// Scatters patch gradients back into an input-row gradient (inverse of
/// [`im2col`], accumulating overlaps).
#[allow(clippy::too_many_arguments)]
fn col2im(
    dpatches: &DenseMatrix,
    din_row: &mut [f64],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
) {
    let oh = out_dim(h, kh, stride);
    let ow = out_dim(w, kw, stride);
    for oy in 0..oh {
        for ox in 0..ow {
            let prow = dpatches.row(oy * ow + ox);
            let mut k = 0usize;
            for ch in 0..c {
                for dy in 0..kh {
                    for dx in 0..kw {
                        din_row[ch * h * w + (oy * stride + dy) * w + (ox * stride + dx)] +=
                            prow[k];
                        k += 1;
                    }
                }
            }
        }
    }
}

/// SGD with (optionally Nesterov) momentum over a flat parameter list.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f64,
    /// Use the Nesterov lookahead form.
    pub nesterov: bool,
    velocity: Vec<DenseMatrix>,
}

impl Sgd {
    /// Creates the optimizer; velocities initialize lazily to zeros.
    pub fn new(lr: f64, momentum: f64, nesterov: bool) -> Self {
        Self {
            lr,
            momentum,
            nesterov,
            velocity: Vec::new(),
        }
    }

    /// Applies one update step in place.
    pub fn step(&mut self, params: &mut [DenseMatrix], grads: &[DenseMatrix]) {
        if self.velocity.is_empty() {
            self.velocity = params
                .iter()
                .map(|p| DenseMatrix::zeros(p.rows(), p.cols()))
                .collect();
        }
        for ((p, g), v) in params.iter_mut().zip(grads).zip(&mut self.velocity) {
            for ((pv, &gv), vv) in p
                .values_mut()
                .iter_mut()
                .zip(g.values())
                .zip(v.values_mut())
            {
                let prev = *vv;
                *vv = self.momentum * *vv - self.lr * gv;
                if self.nesterov {
                    *pv += -self.momentum * prev + (1.0 + self.momentum) * *vv;
                } else {
                    *pv += *vv;
                }
            }
        }
    }
}

/// Local mini-batch training loop (the `Local` baseline for FFN/CNN).
/// Returns the per-epoch mean losses.
pub fn train_local(
    net: &mut Network,
    x: &DenseMatrix,
    y_onehot: &DenseMatrix,
    epochs: usize,
    batch_size: usize,
    sgd: &mut Sgd,
) -> Result<Vec<f64>> {
    let n = x.rows();
    let mut params = net.params();
    let mut epoch_losses = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        let mut total = 0.0;
        let mut batches = 0usize;
        let mut lo = 0usize;
        while lo < n {
            let hi = (lo + batch_size).min(n);
            let xb = exdra_matrix::kernels::reorg::index(x, lo, hi, 0, x.cols())?;
            let yb = exdra_matrix::kernels::reorg::index(y_onehot, lo, hi, 0, y_onehot.cols())?;
            net.set_params(&params)?;
            let (loss, grads) = net.loss_grad(&xb, &yb)?;
            sgd.step(&mut params, &grads);
            total += loss;
            batches += 1;
            lo = hi;
        }
        epoch_losses.push(total / batches.max(1) as f64);
    }
    net.set_params(&params)?;
    Ok(epoch_losses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::accuracy;
    use crate::synth;

    #[test]
    fn params_roundtrip() {
        let net = Network::ffn(10, &[8, 6], 3, 1);
        let params = net.params();
        assert_eq!(params.len(), 6); // 3 dense layers x (W, b)
        let mut other = Network::ffn(10, &[8, 6], 3, 99);
        other.set_params(&params).unwrap();
        assert_eq!(other.params(), params);
        // Wrong count rejected.
        assert!(other.set_params(&params[..4]).is_err());
    }

    #[test]
    fn dense_gradient_matches_finite_differences() {
        let net = Network::ffn(4, &[5], 3, 2);
        let x = exdra_matrix::rng::rand_matrix(6, 4, -1.0, 1.0, 3);
        let y = synth::one_hot(&DenseMatrix::col_vector(&[1., 2., 3., 1., 2., 3.]), 3);
        check_gradients(net, &x, &y, 1e-5, 2e-4);
    }

    #[test]
    fn conv_gradient_matches_finite_differences() {
        let net = Network {
            layers: vec![
                Layer::Conv2d {
                    filters: exdra_matrix::rng::randn_matrix(2, 9, 4).map(|v| v * 0.5),
                    bias: DenseMatrix::zeros(1, 2),
                    in_shape: (1, 6, 6),
                    kernel: (3, 3),
                    stride: 1,
                },
                Layer::ReLU,
                Layer::MaxPool {
                    in_shape: (2, 4, 4),
                    size: 2,
                },
                Layer::Dense {
                    w: exdra_matrix::rng::randn_matrix(8, 2, 5).map(|v| v * 0.5),
                    b: DenseMatrix::zeros(1, 2),
                },
            ],
        };
        let x = exdra_matrix::rng::rand_matrix(3, 36, 0.0, 1.0, 6);
        let y = synth::one_hot(&DenseMatrix::col_vector(&[1., 2., 1.]), 2);
        check_gradients(net, &x, &y, 1e-5, 5e-4);
    }

    fn check_gradients(net: Network, x: &DenseMatrix, y: &DenseMatrix, eps: f64, tol: f64) {
        let params = net.params();
        let (_, grads) = net.loss_grad(x, y).unwrap();
        let mut net2 = net.clone();
        for (pi, p) in params.iter().enumerate() {
            // Probe a handful of coordinates per parameter matrix.
            let probes = [0usize, p.len() / 2, p.len() - 1];
            for &ci in probes.iter() {
                let mut plus = params.clone();
                plus[pi].values_mut()[ci] += eps;
                net2.set_params(&plus).unwrap();
                let (lp, _) = net2.loss_grad(x, y).unwrap();
                let mut minus = params.clone();
                minus[pi].values_mut()[ci] -= eps;
                net2.set_params(&minus).unwrap();
                let (lm, _) = net2.loss_grad(x, y).unwrap();
                let numeric = (lp - lm) / (2.0 * eps);
                let analytic = grads[pi].values()[ci];
                assert!(
                    (numeric - analytic).abs() < tol,
                    "param {pi} cell {ci}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn ffn_learns_blobs() {
        let (x, y) = synth::multi_class(400, 6, 3, 0.4, 7);
        let y1h = synth::one_hot(&y, 3);
        let mut net = Network::ffn(6, &[16], 3, 8);
        let mut sgd = Sgd::new(0.1, 0.9, true);
        let losses = train_local(&mut net, &x, &y1h, 15, 32, &mut sgd).unwrap();
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.3),
            "losses {losses:?}"
        );
        let pred = net.predict(&x).unwrap();
        assert!(accuracy(&pred, &y).unwrap() > 0.9);
    }

    #[test]
    fn cnn_learns_synthetic_images() {
        let (x, y) = synth::images(200, 12, 3, 9);
        let y1h = synth::one_hot(&y, 3);
        let mut net = Network::cnn(12, 4, 16, 3, 10);
        let mut sgd = Sgd::new(0.05, 0.9, false);
        let losses = train_local(&mut net, &x, &y1h, 8, 32, &mut sgd).unwrap();
        assert!(losses.last().unwrap() < &losses[0], "losses {losses:?}");
        let pred = net.predict(&x).unwrap();
        assert!(
            accuracy(&pred, &y).unwrap() > 0.8,
            "cnn should fit train data"
        );
    }

    #[test]
    fn nesterov_differs_from_plain_momentum() {
        let (x, y) = synth::multi_class(100, 4, 2, 0.5, 11);
        let y1h = synth::one_hot(&y, 2);
        let mut a = Network::ffn(4, &[8], 2, 12);
        let mut b = a.clone();
        let mut sgd_a = Sgd::new(0.05, 0.9, true);
        let mut sgd_b = Sgd::new(0.05, 0.9, false);
        train_local(&mut a, &x, &y1h, 2, 32, &mut sgd_a).unwrap();
        train_local(&mut b, &x, &y1h, 2, 32, &mut sgd_b).unwrap();
        let diff: f64 = a
            .params()
            .iter()
            .zip(b.params())
            .map(|(pa, pb)| pa.max_abs_diff(&pb))
            .fold(0.0, f64::max);
        assert!(diff > 1e-9, "nesterov must change the trajectory");
    }

    #[test]
    fn im2col_col2im_adjoint() {
        // <im2col(x), p> == <x, col2im(p)> (adjointness).
        let x = exdra_matrix::rng::rand_matrix(1, 16, -1.0, 1.0, 13);
        let patches = im2col(x.row(0), 1, 4, 4, 2, 2, 1);
        let p = exdra_matrix::rng::rand_matrix(patches.rows(), patches.cols(), -1.0, 1.0, 14);
        let lhs: f64 = patches
            .values()
            .iter()
            .zip(p.values())
            .map(|(&a, &b)| a * b)
            .sum();
        let mut back = vec![0.0; 16];
        col2im(&p, &mut back, 1, 4, 4, 2, 2, 1);
        let rhs: f64 = x.row(0).iter().zip(&back).map(|(&a, &b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-10);
    }
}
