//! Model evaluation metrics.

use exdra_matrix::{DenseMatrix, MatrixError, Result};

/// Root mean squared error between predictions and targets.
pub fn rmse(pred: &DenseMatrix, truth: &DenseMatrix) -> Result<f64> {
    check(pred, truth, "rmse")?;
    let n = pred.len() as f64;
    let sse: f64 = pred
        .values()
        .iter()
        .zip(truth.values())
        .map(|(&p, &t)| (p - t) * (p - t))
        .sum();
    Ok((sse / n).sqrt())
}

/// Coefficient of determination R².
pub fn r2(pred: &DenseMatrix, truth: &DenseMatrix) -> Result<f64> {
    check(pred, truth, "r2")?;
    let n = truth.len() as f64;
    let mean = truth.values().iter().sum::<f64>() / n;
    let ss_tot: f64 = truth
        .values()
        .iter()
        .map(|&t| (t - mean) * (t - mean))
        .sum();
    let ss_res: f64 = pred
        .values()
        .iter()
        .zip(truth.values())
        .map(|(&p, &t)| (p - t) * (p - t))
        .sum();
    if ss_tot == 0.0 {
        return Err(MatrixError::InvalidArgument {
            op: "r2",
            msg: "constant target".into(),
        });
    }
    Ok(1.0 - ss_res / ss_tot)
}

/// Fraction of exactly matching labels.
pub fn accuracy(pred: &DenseMatrix, truth: &DenseMatrix) -> Result<f64> {
    check(pred, truth, "accuracy")?;
    let hits = pred
        .values()
        .iter()
        .zip(truth.values())
        .filter(|(p, t)| p == t)
        .count();
    Ok(hits as f64 / pred.len() as f64)
}

/// Confusion matrix for 1-based labels (`k x k`, rows = truth).
pub fn confusion(pred: &DenseMatrix, truth: &DenseMatrix, k: usize) -> Result<DenseMatrix> {
    check(pred, truth, "confusion")?;
    let mut out = DenseMatrix::zeros(k, k);
    for (&p, &t) in pred.values().iter().zip(truth.values()) {
        let (pi, ti) = (p as usize, t as usize);
        if pi < 1 || pi > k || ti < 1 || ti > k {
            return Err(MatrixError::InvalidArgument {
                op: "confusion",
                msg: format!("label out of 1..={k}: pred {p}, truth {t}"),
            });
        }
        let cur = out.get(ti - 1, pi - 1);
        out.set(ti - 1, pi - 1, cur + 1.0);
    }
    Ok(out)
}

fn check(a: &DenseMatrix, b: &DenseMatrix, op: &'static str) -> Result<()> {
    if a.shape() != b.shape() || a.is_empty() {
        return Err(MatrixError::DimensionMismatch {
            op,
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_and_r2_perfect_fit() {
        let t = DenseMatrix::col_vector(&[1., 2., 3.]);
        assert_eq!(rmse(&t, &t).unwrap(), 0.0);
        assert_eq!(r2(&t, &t).unwrap(), 1.0);
    }

    #[test]
    fn r2_of_mean_prediction_is_zero() {
        let t = DenseMatrix::col_vector(&[1., 2., 3.]);
        let p = DenseMatrix::col_vector(&[2., 2., 2.]);
        assert!(r2(&p, &t).unwrap().abs() < 1e-12);
    }

    #[test]
    fn accuracy_counts_matches() {
        let t = DenseMatrix::col_vector(&[1., 2., 2., 3.]);
        let p = DenseMatrix::col_vector(&[1., 2., 3., 3.]);
        assert_eq!(accuracy(&p, &t).unwrap(), 0.75);
    }

    #[test]
    fn confusion_layout() {
        let t = DenseMatrix::col_vector(&[1., 2., 2.]);
        let p = DenseMatrix::col_vector(&[1., 1., 2.]);
        let c = confusion(&p, &t, 2).unwrap();
        assert_eq!(c.get(0, 0), 1.0); // truth 1 pred 1
        assert_eq!(c.get(1, 0), 1.0); // truth 2 pred 1
        assert_eq!(c.get(1, 1), 1.0); // truth 2 pred 2
        assert!(confusion(&p, &t, 1).is_err());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = DenseMatrix::col_vector(&[1.]);
        let b = DenseMatrix::col_vector(&[1., 2.]);
        assert!(rmse(&a, &b).is_err());
    }
}
