#![warn(missing_docs)]
//! # exdra-ml
//!
//! ML algorithms of the ExDRa evaluation, written against the
//! locality-agnostic [`exdra_core::Tensor`]: the *same* function trains on a
//! local in-memory matrix or on federated data without code changes — the
//! paper's central systems claim (§4.2, Example 3).
//!
//! Batch algorithms: [`lm`] (conjugate-gradient and direct-solve linear
//! regression), [`l2svm`], [`mlogreg`], [`kmeans`], [`pca`], [`gmm`].
//! Mini-batch networks: [`nn`] (dense/conv layers, SGD with Nesterov
//! momentum) — trained through the parameter server of `exdra-paramserv`.
//! [`baselines`] holds independent, specialized single-algorithm
//! implementations standing in for Scikit-learn/TensorFlow in Figure 7.

pub mod baselines;
pub mod gmm;
pub mod init;
pub mod kmeans;
pub mod l2svm;
pub mod lm;
pub mod mlogreg;
pub mod nn;
pub mod pca;
pub mod scoring;
pub mod synth;
