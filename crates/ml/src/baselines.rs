//! Specialized single-algorithm baselines standing in for Scikit-learn and
//! TensorFlow in the Figure 7 comparison (see DESIGN.md §4).
//!
//! Figure 7's purpose is to ground the generic declarative system against
//! best-of-breed specialized implementations. These baselines therefore
//! skip the instruction/plan layer entirely: tight loops over raw slices,
//! algorithm-specific memory layouts, no dispatch — the same structural
//! advantage sklearn/TF have over SystemDS.

// Parallel-array index loops are intentional in the hot kernels below:
// iterator zips over 3+ arrays obscure the access pattern.
#![allow(clippy::needless_range_loop)]

use exdra_matrix::rng::rand_permutation;
use exdra_matrix::{DenseMatrix, MatrixError, Result};

/// Direct Lloyd K-Means over raw buffers (Scikit-learn stand-in).
/// Returns `(centroids, wcss, iterations)`.
pub fn kmeans_direct(
    x: &DenseMatrix,
    k: usize,
    max_iter: usize,
    seed: u64,
) -> Result<(DenseMatrix, f64, usize)> {
    let (n, d) = x.shape();
    if k == 0 || k > n {
        return Err(MatrixError::InvalidArgument {
            op: "kmeans_direct",
            msg: format!("k={k} out of range for n={n}"),
        });
    }
    let perm = rand_permutation(n, seed);
    let mut centroids = DenseMatrix::zeros(k, d);
    for c in 0..k {
        let r = perm.get(c, 0) as usize - 1;
        centroids.row_mut(c).copy_from_slice(x.row(r));
    }
    let mut assign = vec![0usize; n];
    let mut wcss = f64::INFINITY;
    let mut iterations = 0usize;
    for _ in 0..max_iter {
        // Assignment step with partial-distance early exit.
        let mut new_wcss = 0.0;
        for i in 0..n {
            let row = x.row(i);
            let mut best = f64::INFINITY;
            let mut best_c = 0usize;
            for c in 0..k {
                let crow = centroids.row(c);
                let mut dist = 0.0;
                for (a, b) in row.iter().zip(crow) {
                    dist += (a - b) * (a - b);
                    if dist >= best {
                        break;
                    }
                }
                if dist < best {
                    best = dist;
                    best_c = c;
                }
            }
            assign[i] = best_c;
            new_wcss += best;
        }
        // Update step.
        let mut sums = DenseMatrix::zeros(k, d);
        let mut counts = vec![0usize; k];
        for i in 0..n {
            let c = assign[i];
            counts[c] += 1;
            let srow = sums.row_mut(c);
            for (s, &v) in srow.iter_mut().zip(x.row(i)) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                let inv = 1.0 / counts[c] as f64;
                let crow = centroids.row_mut(c);
                for (cv, &sv) in crow.iter_mut().zip(sums.row(c)) {
                    *cv = sv * inv;
                }
            }
        }
        iterations += 1;
        if (wcss - new_wcss).abs() < 1e-9 * wcss.abs().max(1.0) {
            wcss = new_wcss;
            break;
        }
        wcss = new_wcss;
    }
    Ok((centroids, wcss, iterations))
}

/// Direct PCA via the covariance Gram matrix and Jacobi eigen-decomposition
/// (Scikit-learn stand-in). Returns `(components d x k, eigenvalues)`.
pub fn pca_direct(x: &DenseMatrix, k: usize) -> Result<(DenseMatrix, Vec<f64>)> {
    let (n, d) = x.shape();
    if k == 0 || k > d || n < 2 {
        return Err(MatrixError::InvalidArgument {
            op: "pca_direct",
            msg: format!("bad k={k} for {n}x{d}"),
        });
    }
    // Single fused pass: column means and Gram accumulation.
    let mut mean = vec![0.0; d];
    for i in 0..n {
        for (m, &v) in mean.iter_mut().zip(x.row(i)) {
            *m += v;
        }
    }
    for m in &mut mean {
        *m /= n as f64;
    }
    let mut cov = DenseMatrix::zeros(d, d);
    let mut centered = vec![0.0; d];
    for i in 0..n {
        for (c, (&v, &m)) in centered.iter_mut().zip(x.row(i).iter().zip(&mean)) {
            *c = v - m;
        }
        for a in 0..d {
            let ca = centered[a];
            if ca == 0.0 {
                continue;
            }
            let crow = cov.row_mut(a);
            for b in a..d {
                crow[b] += ca * centered[b];
            }
        }
    }
    for a in 0..d {
        for b in a..d {
            let v = cov.get(a, b) / (n as f64 - 1.0);
            cov.set(a, b, v);
            cov.set(b, a, v);
        }
    }
    let eig = exdra_matrix::eigen::eigen_symmetric(&cov, 30)?;
    let comps = exdra_matrix::kernels::reorg::index(&eig.vectors, 0, d, 0, k)?;
    Ok((comps, eig.values[..k].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;
    use exdra_core::Tensor;

    #[test]
    fn kmeans_direct_agrees_with_system_kmeans() {
        let (x, _) = synth::blobs(300, 4, 3, 0.3, 81);
        let (_, wcss_direct, _) = kmeans_direct(&x, 3, 25, 9).unwrap();
        let sys = crate::kmeans::kmeans(
            &Tensor::Local(x),
            &crate::kmeans::KMeansParams {
                k: 3,
                max_iter: 25,
                runs: 1,
                tol: 0.0,
                seed: 9,
            },
        )
        .unwrap();
        // Same init seed, same algorithm: same clustering quality.
        assert!(
            (wcss_direct - sys.wcss).abs() / sys.wcss < 1e-6,
            "direct {wcss_direct} vs system {}",
            sys.wcss
        );
    }

    #[test]
    fn pca_direct_agrees_with_system_pca() {
        let (x, _) = synth::blobs(200, 5, 2, 0.5, 82);
        let (comps, vals) = pca_direct(&x, 3).unwrap();
        let sys = crate::pca::pca(&Tensor::Local(x), 3).unwrap();
        assert!(
            comps
                .map(f64::abs)
                .max_abs_diff(&sys.components.map(f64::abs))
                < 1e-8
        );
        for (a, b) in vals.iter().zip(&sys.eigenvalues) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn kmeans_direct_input_validation() {
        let x = DenseMatrix::zeros(3, 2);
        assert!(kmeans_direct(&x, 0, 5, 1).is_err());
        assert!(kmeans_direct(&x, 4, 5, 1).is_err());
    }
}
