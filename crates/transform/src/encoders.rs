//! Feature transformation encoders: recode, equi-width binning, feature
//! hashing, one-hot (dummy) coding, and pass-through.
//!
//! The federated `transformencode` of the paper (§4.4, Figure 3) is a
//! two-pass protocol:
//!
//! 1. **partial build** — every site computes encoder-specific metadata over
//!    its local rows ([`build_partial`]): distinct items for recoded
//!    features, min/max for binned features;
//! 2. **merge, sort, assign codes** — the coordinator consolidates the
//!    partials ([`merge_partials`]) into global [`TransformMeta`] with
//!    contiguous, *sorted* integer codes and global bin boundaries;
//! 3. **apply** — the metadata is broadcast and every site encodes its rows
//!    ([`apply`]) into a numeric matrix with consistently aligned one-hot
//!    columns; categories absent at a site yield all-zero columns.
//!
//! [`decode`] implements `transformdecode` for recode/bin/pass-through
//! columns (feature hashing is intentionally lossy).

use std::collections::BTreeSet;

use bytes::{Buf, BufMut};
use exdra_matrix::frame::{Frame, FrameColumn};
use exdra_matrix::{DenseMatrix, MatrixError, Result};
use exdra_net::codec::{DecodeError, DecodeResult, Wire};

use crate::hashing::feature_bucket;

/// How one input column is transformed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeKind {
    /// Numeric column copied unchanged.
    PassThrough,
    /// Categories mapped to contiguous, sorted integer codes.
    Recode,
    /// Numeric values mapped to `num_bins` equi-width bins.
    Bin {
        /// Number of equi-width bins.
        num_bins: usize,
    },
    /// Categories hashed to `num_features` buckets (no metadata exchange).
    Hash {
        /// Upper bound on the hashed domain.
        num_features: usize,
    },
}

/// Transformation spec for one column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnSpec {
    /// Input column name (must exist in the frame).
    pub name: String,
    /// Transformation kind.
    pub kind: EncodeKind,
    /// Whether the (integer) result is additionally one-hot encoded.
    pub one_hot: bool,
}

/// A full `transformencode` specification: one [`ColumnSpec`] per encoded
/// column, in output order. Unlisted frame columns are ignored.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TransformSpec {
    /// Column specs in output order.
    pub columns: Vec<ColumnSpec>,
}

impl TransformSpec {
    /// Derives a default spec from a frame: string columns are recoded and
    /// one-hot encoded, numeric columns pass through.
    pub fn auto(frame: &Frame) -> Self {
        let columns = frame
            .schema()
            .into_iter()
            .map(|(name, vt)| match vt {
                exdra_matrix::ValueType::Str => ColumnSpec {
                    name,
                    kind: EncodeKind::Recode,
                    one_hot: true,
                },
                _ => ColumnSpec {
                    name,
                    kind: EncodeKind::PassThrough,
                    one_hot: false,
                },
            })
            .collect();
        Self { columns }
    }
}

/// Site-local (first-pass) metadata for one column.
#[derive(Debug, Clone, PartialEq)]
pub enum PartialColumnMeta {
    /// Nothing to collect.
    PassThrough,
    /// Distinct category tokens observed at this site (sorted).
    Recode {
        /// Sorted distinct tokens.
        distincts: Vec<String>,
    },
    /// Local value range (ignoring missing values).
    Bin {
        /// Minimum observed value (`INFINITY` when all missing).
        min: f64,
        /// Maximum observed value (`NEG_INFINITY` when all missing).
        max: f64,
    },
    /// Hashing needs no metadata.
    Hash,
}

/// First-pass metadata over one site's rows.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialMeta {
    /// Per-column partials aligned with the spec.
    pub columns: Vec<PartialColumnMeta>,
    /// Number of local rows (used for imbalance handling elsewhere).
    pub rows: usize,
}

/// Consolidated (global) metadata for one column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnMeta {
    /// Copy through.
    PassThrough,
    /// Sorted global category list; token at index `i` has code `i + 1`.
    Recode {
        /// Sorted global distinct tokens.
        codes: Vec<String>,
    },
    /// Global equi-width bin boundaries.
    Bin {
        /// Global minimum.
        min: f64,
        /// Global maximum.
        max: f64,
        /// Number of bins.
        num_bins: usize,
    },
    /// Hash domain size.
    Hash {
        /// Upper bound on the hashed domain.
        num_features: usize,
    },
}

impl ColumnMeta {
    /// Integer domain size of the encoded column (1 for pass-through).
    pub fn domain(&self) -> usize {
        match self {
            ColumnMeta::PassThrough => 1,
            ColumnMeta::Recode { codes } => codes.len(),
            ColumnMeta::Bin { num_bins, .. } => *num_bins,
            ColumnMeta::Hash { num_features } => *num_features,
        }
    }
}

/// Global `transformencode` metadata: the "metadata frame" of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct TransformMeta {
    /// `(spec, consolidated meta)` per encoded column, in output order.
    pub columns: Vec<(ColumnSpec, ColumnMeta)>,
}

impl TransformMeta {
    /// Output width of one encoded column (domain size when one-hot).
    pub fn out_width(&self, idx: usize) -> usize {
        let (spec, meta) = &self.columns[idx];
        if spec.one_hot {
            meta.domain()
        } else {
            1
        }
    }

    /// Starting output-column offset of each encoded column.
    pub fn offsets(&self) -> Vec<usize> {
        let mut offsets = Vec::with_capacity(self.columns.len());
        let mut acc = 0usize;
        for i in 0..self.columns.len() {
            offsets.push(acc);
            acc += self.out_width(i);
        }
        offsets
    }

    /// Total number of output matrix columns.
    pub fn out_cols(&self) -> usize {
        (0..self.columns.len()).map(|i| self.out_width(i)).sum()
    }
}

/// First pass: builds site-local metadata for `spec` over `frame`.
pub fn build_partial(frame: &Frame, spec: &TransformSpec) -> Result<PartialMeta> {
    let mut columns = Vec::with_capacity(spec.columns.len());
    for cs in &spec.columns {
        let col = frame.column_by_name(&cs.name)?;
        let partial = match cs.kind {
            EncodeKind::PassThrough => PartialColumnMeta::PassThrough,
            EncodeKind::Hash { .. } => PartialColumnMeta::Hash,
            EncodeKind::Recode => {
                let mut set = BTreeSet::new();
                for r in 0..col.len() {
                    if let Some(tok) = col.token(r) {
                        set.insert(tok);
                    }
                }
                PartialColumnMeta::Recode {
                    distincts: set.into_iter().collect(),
                }
            }
            EncodeKind::Bin { .. } => {
                let mut min = f64::INFINITY;
                let mut max = f64::NEG_INFINITY;
                for r in 0..col.len() {
                    let v = col.numeric(r)?;
                    if !v.is_nan() {
                        min = min.min(v);
                        max = max.max(v);
                    }
                }
                PartialColumnMeta::Bin { min, max }
            }
        };
        columns.push(partial);
    }
    Ok(PartialMeta {
        columns,
        rows: frame.rows(),
    })
}

/// Second pass (coordinator): merges site partials, sorts the distinct
/// items, assigns contiguous codes, and computes global bin boundaries.
pub fn merge_partials(partials: &[PartialMeta], spec: &TransformSpec) -> Result<TransformMeta> {
    if partials.is_empty() {
        return Err(MatrixError::InvalidArgument {
            op: "merge_partials",
            msg: "no partial metadata".into(),
        });
    }
    for p in partials {
        if p.columns.len() != spec.columns.len() {
            return Err(MatrixError::InvalidArgument {
                op: "merge_partials",
                msg: format!(
                    "partial has {} columns, spec has {}",
                    p.columns.len(),
                    spec.columns.len()
                ),
            });
        }
    }
    let mut columns = Vec::with_capacity(spec.columns.len());
    for (ci, cs) in spec.columns.iter().enumerate() {
        let meta = match cs.kind {
            EncodeKind::PassThrough => ColumnMeta::PassThrough,
            EncodeKind::Hash { num_features } => ColumnMeta::Hash { num_features },
            EncodeKind::Recode => {
                let mut set = BTreeSet::new();
                for p in partials {
                    match &p.columns[ci] {
                        PartialColumnMeta::Recode { distincts } => {
                            set.extend(distincts.iter().cloned())
                        }
                        other => {
                            return Err(MatrixError::InvalidArgument {
                                op: "merge_partials",
                                msg: format!("column {ci}: expected recode partial, got {other:?}"),
                            })
                        }
                    }
                }
                ColumnMeta::Recode {
                    codes: set.into_iter().collect(),
                }
            }
            EncodeKind::Bin { num_bins } => {
                let mut gmin = f64::INFINITY;
                let mut gmax = f64::NEG_INFINITY;
                for p in partials {
                    match &p.columns[ci] {
                        PartialColumnMeta::Bin { min, max } => {
                            gmin = gmin.min(*min);
                            gmax = gmax.max(*max);
                        }
                        other => {
                            return Err(MatrixError::InvalidArgument {
                                op: "merge_partials",
                                msg: format!("column {ci}: expected bin partial, got {other:?}"),
                            })
                        }
                    }
                }
                if gmin > gmax {
                    return Err(MatrixError::InvalidArgument {
                        op: "merge_partials",
                        msg: format!("column {ci}: no non-missing values to bin"),
                    });
                }
                ColumnMeta::Bin {
                    min: gmin,
                    max: gmax,
                    num_bins,
                }
            }
        };
        columns.push((cs.clone(), meta));
    }
    Ok(TransformMeta { columns })
}

/// Integer code (1-based) of one cell under consolidated metadata;
/// `None` for missing or (for recode) unknown categories.
fn cell_code(col: &FrameColumn, row: usize, meta: &ColumnMeta) -> Result<Option<usize>> {
    Ok(match meta {
        ColumnMeta::PassThrough => unreachable!("pass-through has no code"),
        ColumnMeta::Recode { codes } => col
            .token(row)
            .and_then(|tok| codes.binary_search(&tok).ok().map(|i| i + 1)),
        ColumnMeta::Bin { min, max, num_bins } => {
            let v = col.numeric(row)?;
            if v.is_nan() {
                None
            } else {
                let width = (max - min) / *num_bins as f64;
                let bin = if width <= 0.0 {
                    1
                } else {
                    (((v - min) / width).floor() as i64 + 1).clamp(1, *num_bins as i64) as usize
                };
                Some(bin)
            }
        }
        ColumnMeta::Hash { num_features } => col
            .token(row)
            .map(|tok| feature_bucket(&tok, *num_features)),
    })
}

/// Third pass (sites): encodes `frame` under the broadcast global metadata
/// into a numeric matrix with consistently aligned columns.
///
/// Missing/unknown cells produce NaN for plain integer outputs and all-zero
/// rows for one-hot outputs, preserving downstream imputability.
pub fn apply(frame: &Frame, meta: &TransformMeta) -> Result<DenseMatrix> {
    let rows = frame.rows();
    let offsets = meta.offsets();
    let mut out = DenseMatrix::zeros(rows, meta.out_cols());
    for (ci, (spec, cmeta)) in meta.columns.iter().enumerate() {
        let col = frame.column_by_name(&spec.name)?;
        let base = offsets[ci];
        match cmeta {
            ColumnMeta::PassThrough => {
                for r in 0..rows {
                    out.set(r, base, col.numeric(r)?);
                }
            }
            _ => {
                for r in 0..rows {
                    match cell_code(col, r, cmeta)? {
                        Some(code) if spec.one_hot => out.set(r, base + code - 1, 1.0),
                        Some(code) => out.set(r, base, code as f64),
                        None if spec.one_hot => {} // all-zero row segment
                        None => out.set(r, base, f64::NAN),
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Convenience single-site `transformencode`: build, merge, and apply.
pub fn transform_encode(
    frame: &Frame,
    spec: &TransformSpec,
) -> Result<(DenseMatrix, TransformMeta)> {
    let partial = build_partial(frame, spec)?;
    let meta = merge_partials(std::slice::from_ref(&partial), spec)?;
    let encoded = apply(frame, &meta)?;
    Ok((encoded, meta))
}

/// `transformdecode`: reconstructs a frame from an encoded matrix.
///
/// Recode columns decode to their category strings, bin columns to bin
/// centers, pass-through columns to raw values. Hash columns are lossy and
/// decode to `"h<bucket>"` placeholders. One-hot segments decode via the
/// (unique) hot position; all-zero segments decode to missing.
pub fn decode(encoded: &DenseMatrix, meta: &TransformMeta) -> Result<Frame> {
    let rows = encoded.rows();
    if encoded.cols() != meta.out_cols() {
        return Err(MatrixError::DimensionMismatch {
            op: "transformdecode",
            lhs: encoded.shape(),
            rhs: (rows, meta.out_cols()),
        });
    }
    let offsets = meta.offsets();
    let mut out_cols = Vec::with_capacity(meta.columns.len());
    for (ci, (spec, cmeta)) in meta.columns.iter().enumerate() {
        let base = offsets[ci];
        let code_of = |r: usize| -> Option<usize> {
            if spec.one_hot {
                let width = meta.out_width(ci);
                (0..width)
                    .find(|&k| encoded.get(r, base + k) != 0.0)
                    .map(|k| k + 1)
            } else {
                let v = encoded.get(r, base);
                if v.is_nan() {
                    None
                } else {
                    Some(v as usize)
                }
            }
        };
        let col = match cmeta {
            ColumnMeta::PassThrough => FrameColumn::F64(
                (0..rows)
                    .map(|r| {
                        let v = encoded.get(r, base);
                        if v.is_nan() {
                            None
                        } else {
                            Some(v)
                        }
                    })
                    .collect(),
            ),
            ColumnMeta::Recode { codes } => FrameColumn::Str(
                (0..rows)
                    .map(|r| code_of(r).and_then(|c| codes.get(c - 1).cloned()))
                    .collect(),
            ),
            ColumnMeta::Bin { min, max, num_bins } => {
                let width = (max - min) / *num_bins as f64;
                FrameColumn::F64(
                    (0..rows)
                        .map(|r| code_of(r).map(|c| min + width * (c as f64 - 0.5)))
                        .collect(),
                )
            }
            ColumnMeta::Hash { .. } => FrameColumn::Str(
                (0..rows)
                    .map(|r| code_of(r).map(|c| format!("h{c}")))
                    .collect(),
            ),
        };
        out_cols.push((spec.name.clone(), col));
    }
    Frame::new(out_cols)
}

// ---------------------------------------------------------------------------
// Wire encodings (spec/metadata travel between coordinator and workers).
// ---------------------------------------------------------------------------

impl Wire for EncodeKind {
    fn encode(&self, buf: &mut impl BufMut) {
        match self {
            EncodeKind::PassThrough => buf.put_u8(0),
            EncodeKind::Recode => buf.put_u8(1),
            EncodeKind::Bin { num_bins } => {
                buf.put_u8(2);
                num_bins.encode(buf);
            }
            EncodeKind::Hash { num_features } => {
                buf.put_u8(3);
                num_features.encode(buf);
            }
        }
    }
    fn decode(buf: &mut impl Buf) -> DecodeResult<Self> {
        match u8::decode(buf)? {
            0 => Ok(EncodeKind::PassThrough),
            1 => Ok(EncodeKind::Recode),
            2 => Ok(EncodeKind::Bin {
                num_bins: usize::decode(buf)?,
            }),
            3 => Ok(EncodeKind::Hash {
                num_features: usize::decode(buf)?,
            }),
            t => Err(DecodeError(format!("invalid EncodeKind tag {t}"))),
        }
    }
}

impl Wire for ColumnSpec {
    fn encode(&self, buf: &mut impl BufMut) {
        self.name.encode(buf);
        self.kind.encode(buf);
        self.one_hot.encode(buf);
    }
    fn decode(buf: &mut impl Buf) -> DecodeResult<Self> {
        Ok(Self {
            name: String::decode(buf)?,
            kind: EncodeKind::decode(buf)?,
            one_hot: bool::decode(buf)?,
        })
    }
}

impl Wire for TransformSpec {
    fn encode(&self, buf: &mut impl BufMut) {
        self.columns.encode(buf);
    }
    fn decode(buf: &mut impl Buf) -> DecodeResult<Self> {
        Ok(Self {
            columns: Wire::decode(buf)?,
        })
    }
}

impl Wire for PartialColumnMeta {
    fn encode(&self, buf: &mut impl BufMut) {
        match self {
            PartialColumnMeta::PassThrough => buf.put_u8(0),
            PartialColumnMeta::Recode { distincts } => {
                buf.put_u8(1);
                distincts.encode(buf);
            }
            PartialColumnMeta::Bin { min, max } => {
                buf.put_u8(2);
                min.encode(buf);
                max.encode(buf);
            }
            PartialColumnMeta::Hash => buf.put_u8(3),
        }
    }
    fn decode(buf: &mut impl Buf) -> DecodeResult<Self> {
        match u8::decode(buf)? {
            0 => Ok(PartialColumnMeta::PassThrough),
            1 => Ok(PartialColumnMeta::Recode {
                distincts: Wire::decode(buf)?,
            }),
            2 => Ok(PartialColumnMeta::Bin {
                min: f64::decode(buf)?,
                max: f64::decode(buf)?,
            }),
            3 => Ok(PartialColumnMeta::Hash),
            t => Err(DecodeError(format!("invalid PartialColumnMeta tag {t}"))),
        }
    }
}

impl Wire for PartialMeta {
    fn encode(&self, buf: &mut impl BufMut) {
        self.columns.encode(buf);
        self.rows.encode(buf);
    }
    fn decode(buf: &mut impl Buf) -> DecodeResult<Self> {
        Ok(Self {
            columns: Wire::decode(buf)?,
            rows: usize::decode(buf)?,
        })
    }
}

impl Wire for ColumnMeta {
    fn encode(&self, buf: &mut impl BufMut) {
        match self {
            ColumnMeta::PassThrough => buf.put_u8(0),
            ColumnMeta::Recode { codes } => {
                buf.put_u8(1);
                codes.encode(buf);
            }
            ColumnMeta::Bin { min, max, num_bins } => {
                buf.put_u8(2);
                min.encode(buf);
                max.encode(buf);
                num_bins.encode(buf);
            }
            ColumnMeta::Hash { num_features } => {
                buf.put_u8(3);
                num_features.encode(buf);
            }
        }
    }
    fn decode(buf: &mut impl Buf) -> DecodeResult<Self> {
        match u8::decode(buf)? {
            0 => Ok(ColumnMeta::PassThrough),
            1 => Ok(ColumnMeta::Recode {
                codes: Wire::decode(buf)?,
            }),
            2 => Ok(ColumnMeta::Bin {
                min: f64::decode(buf)?,
                max: f64::decode(buf)?,
                num_bins: usize::decode(buf)?,
            }),
            3 => Ok(ColumnMeta::Hash {
                num_features: usize::decode(buf)?,
            }),
            t => Err(DecodeError(format!("invalid ColumnMeta tag {t}"))),
        }
    }
}

impl Wire for TransformMeta {
    fn encode(&self, buf: &mut impl BufMut) {
        self.columns.encode(buf);
    }
    fn decode(buf: &mut impl Buf) -> DecodeResult<Self> {
        Ok(Self {
            columns: Wire::decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exdra_matrix::frame::FrameColumn;

    /// The Figure 3 scenario: two federated sites, columns A (recode +
    /// one-hot), B (3 equi-width bins + one-hot), C (recode + one-hot,
    /// with NULLs).
    fn site1() -> Frame {
        Frame::new(vec![
            (
                "A".into(),
                FrameColumn::Str(
                    ["R101", "R101", "C7", "R101", "C3", "R102"]
                        .iter()
                        .map(|s| Some(s.to_string()))
                        .collect(),
                ),
            ),
            (
                "B".into(),
                FrameColumn::F64(
                    [2100.0, 4350.0, 5500.0, 2500.0, 4900.0, 5200.0]
                        .iter()
                        .map(|&v| Some(v))
                        .collect(),
                ),
            ),
            (
                "C".into(),
                FrameColumn::Str(vec![
                    Some("X".into()),
                    None,
                    Some("Z".into()),
                    Some("X".into()),
                    Some("Z".into()),
                    Some("Y".into()),
                ]),
            ),
        ])
        .unwrap()
    }

    fn site2() -> Frame {
        Frame::new(vec![
            (
                "A".into(),
                FrameColumn::Str(
                    ["C5", "C91", "C5", "R101", "C5", "R101"]
                        .iter()
                        .map(|s| Some(s.to_string()))
                        .collect(),
                ),
            ),
            (
                "B".into(),
                FrameColumn::F64(
                    [3500.0, 2600.0, 4400.0, 5400.0, 1900.0, 5200.0]
                        .iter()
                        .map(|&v| Some(v))
                        .collect(),
                ),
            ),
            (
                "C".into(),
                FrameColumn::Str(vec![
                    Some("Z".into()),
                    Some("Z".into()),
                    Some("Z".into()),
                    Some("X".into()),
                    None,
                    Some("X".into()),
                ]),
            ),
        ])
        .unwrap()
    }

    fn fig3_spec() -> TransformSpec {
        TransformSpec {
            columns: vec![
                ColumnSpec {
                    name: "A".into(),
                    kind: EncodeKind::Recode,
                    one_hot: true,
                },
                ColumnSpec {
                    name: "B".into(),
                    kind: EncodeKind::Bin { num_bins: 3 },
                    one_hot: true,
                },
                ColumnSpec {
                    name: "C".into(),
                    kind: EncodeKind::Recode,
                    one_hot: true,
                },
            ],
        }
    }

    #[test]
    fn figure3_federated_encode_matches_paper() {
        let spec = fig3_spec();
        let p1 = build_partial(&site1(), &spec).unwrap();
        let p2 = build_partial(&site2(), &spec).unwrap();
        let meta = merge_partials(&[p1, p2], &spec).unwrap();
        // Global domain of A: sorted union {C3, C5, C7, C91, R101, R102}.
        match &meta.columns[0].1 {
            ColumnMeta::Recode { codes } => {
                assert_eq!(codes, &["C3", "C5", "C7", "C91", "R101", "R102"]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Global bin range of B: [1900, 5500].
        match &meta.columns[1].1 {
            ColumnMeta::Bin { min, max, num_bins } => {
                assert_eq!((*min, *max, *num_bins), (1900.0, 5500.0, 3));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Output: 6 (A) + 3 (B) + 3 (C) columns.
        assert_eq!(meta.out_cols(), 12);

        let e1 = apply(&site1(), &meta).unwrap();
        let e2 = apply(&site2(), &meta).unwrap();
        assert_eq!(e1.shape(), (6, 12));
        assert_eq!(e2.shape(), (6, 12));
        // Site 1, row 0: A=R101 -> code 5 -> column 4 hot.
        assert_eq!(e1.get(0, 4), 1.0);
        // Site 1, row 1: C is NULL -> all zeros in C segment (cols 9..12).
        for c in 9..12 {
            assert_eq!(e1.get(1, c), 0.0);
        }
        // Site 1 never sees C5 (code 2) -> column 1 all zero.
        for r in 0..6 {
            assert_eq!(e1.get(r, 1), 0.0);
        }
        // Site 2 sees C5 three times.
        let c5_count: f64 = (0..6).map(|r| e2.get(r, 1)).sum();
        assert_eq!(c5_count, 3.0);
        // B=1900 at site 2 row 4 -> bin 1 -> column 6 hot.
        assert_eq!(e2.get(4, 6), 1.0);
        // B=5500 at site 1 row 2 -> bin 3 -> column 8 hot.
        assert_eq!(e1.get(2, 8), 1.0);
        // Exactly one hot cell per one-hot segment with data.
        let a_row_sum: f64 = (0..6).map(|c| e1.get(0, c)).sum();
        assert_eq!(a_row_sum, 1.0);
    }

    #[test]
    fn federated_equals_centralized_encoding() {
        // Encoding the union locally must equal the two-pass result
        // (the paper's "equivalent to local encoding" claim).
        let spec = fig3_spec();
        let combined = site1().rbind(&site2()).unwrap();
        let (central, _) = transform_encode(&combined, &spec).unwrap();

        let p1 = build_partial(&site1(), &spec).unwrap();
        let p2 = build_partial(&site2(), &spec).unwrap();
        let meta = merge_partials(&[p1, p2], &spec).unwrap();
        let e1 = apply(&site1(), &meta).unwrap();
        let e2 = apply(&site2(), &meta).unwrap();
        let fed = exdra_matrix::kernels::reorg::rbind(&e1, &e2).unwrap();
        assert!(fed.max_abs_diff(&central) < 1e-15);
    }

    #[test]
    fn recode_without_one_hot_gives_codes() {
        let spec = TransformSpec {
            columns: vec![ColumnSpec {
                name: "C".into(),
                kind: EncodeKind::Recode,
                one_hot: false,
            }],
        };
        let (m, meta) = transform_encode(&site1(), &spec).unwrap();
        assert_eq!(m.cols(), 1);
        // Codes sorted: X=1, Y=2, Z=3.
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(5, 0), 2.0);
        assert!(m.get(1, 0).is_nan(), "missing -> NaN");
        match &meta.columns[0].1 {
            ColumnMeta::Recode { codes } => assert_eq!(codes, &["X", "Y", "Z"]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn binning_clamps_out_of_range_values() {
        // Apply global meta from a narrower range to a wider site.
        let meta = TransformMeta {
            columns: vec![(
                ColumnSpec {
                    name: "v".into(),
                    kind: EncodeKind::Bin { num_bins: 4 },
                    one_hot: false,
                },
                ColumnMeta::Bin {
                    min: 0.0,
                    max: 4.0,
                    num_bins: 4,
                },
            )],
        };
        let f = Frame::new(vec![(
            "v".into(),
            FrameColumn::F64(vec![
                Some(-5.0),
                Some(0.5),
                Some(3.99),
                Some(99.0),
                Some(4.0),
            ]),
        )])
        .unwrap();
        let m = apply(&f, &meta).unwrap();
        assert_eq!(
            m.values(),
            &[1.0, 1.0, 4.0, 4.0, 4.0],
            "clamped to [1, num_bins]"
        );
    }

    #[test]
    fn hashing_needs_no_metadata_exchange() {
        let spec = TransformSpec {
            columns: vec![ColumnSpec {
                name: "A".into(),
                kind: EncodeKind::Hash { num_features: 4 },
                one_hot: true,
            }],
        };
        // Each site can encode independently with identical layouts.
        let p1 = build_partial(&site1(), &spec).unwrap();
        assert_eq!(p1.columns[0], PartialColumnMeta::Hash);
        let meta = merge_partials(&[p1], &spec).unwrap();
        let e1 = apply(&site1(), &meta).unwrap();
        let e2 = apply(&site2(), &meta).unwrap();
        assert_eq!(e1.cols(), 4);
        assert_eq!(e2.cols(), 4);
        // Same category hashes to the same bucket at both sites.
        // R101 appears at both sites; find its bucket from row 0 of site 1.
        let bucket = (0..4).find(|&c| e1.get(0, c) == 1.0).unwrap();
        assert_eq!(e2.get(3, bucket), 1.0, "site2 row 3 is also R101");
    }

    #[test]
    fn decode_roundtrips_recode_and_bin_centers() {
        let spec = TransformSpec {
            columns: vec![
                ColumnSpec {
                    name: "A".into(),
                    kind: EncodeKind::Recode,
                    one_hot: true,
                },
                ColumnSpec {
                    name: "B".into(),
                    kind: EncodeKind::Bin { num_bins: 3 },
                    one_hot: false,
                },
            ],
        };
        let (m, meta) = transform_encode(&site1(), &spec).unwrap();
        let back = decode(&m, &meta).unwrap();
        // Categories roundtrip exactly.
        for r in 0..6 {
            assert_eq!(
                back.column_by_name("A").unwrap().token(r),
                site1().column_by_name("A").unwrap().token(r)
            );
        }
        // Bin decoding returns the bin center, within half a bin width.
        let width = (5500.0 - 2100.0) / 3.0;
        for r in 0..6 {
            let orig = site1().column_by_name("B").unwrap().numeric(r).unwrap();
            let dec = back.column_by_name("B").unwrap().numeric(r).unwrap();
            assert!((orig - dec).abs() <= width / 2.0 + 1e-9);
        }
    }

    #[test]
    fn merge_rejects_all_missing_bin_column() {
        let spec = TransformSpec {
            columns: vec![ColumnSpec {
                name: "v".into(),
                kind: EncodeKind::Bin { num_bins: 2 },
                one_hot: false,
            }],
        };
        let f = Frame::new(vec![("v".into(), FrameColumn::F64(vec![None, None]))]).unwrap();
        let p = build_partial(&f, &spec).unwrap();
        assert!(merge_partials(&[p], &spec).is_err());
    }

    #[test]
    fn spec_auto_recodes_strings_only() {
        let s = TransformSpec::auto(&site1());
        assert_eq!(s.columns[0].kind, EncodeKind::Recode);
        assert_eq!(s.columns[1].kind, EncodeKind::PassThrough);
        assert!(s.columns[0].one_hot);
    }

    #[test]
    fn metadata_wire_roundtrip() {
        let spec = fig3_spec();
        let p1 = build_partial(&site1(), &spec).unwrap();
        let meta = merge_partials(std::slice::from_ref(&p1), &spec).unwrap();
        assert_eq!(TransformSpec::from_bytes(&spec.to_bytes()).unwrap(), spec);
        assert_eq!(PartialMeta::from_bytes(&p1.to_bytes()).unwrap(), p1);
        assert_eq!(TransformMeta::from_bytes(&meta.to_bytes()).unwrap(), meta);
    }
}
