//! Metadata drift detection for continuous pipelines.
//!
//! A transform metadata frame is built once over a training snapshot and
//! then applied to every later window. When the underlying distribution
//! moves — sensor ranges escape their encoded bin boundaries, new
//! category tokens appear — applying the stale metadata silently clamps
//! or drops information. [`drift_score`] quantifies how far a fresh
//! site-local [`PartialMeta`] has escaped a consolidated
//! [`TransformMeta`], so a continuous-learning loop can trigger the
//! two-pass re-encode (`build_partial` → `merge_partials`) exactly when
//! the score crosses its threshold instead of on a timer.

use crate::encoders::{ColumnMeta, PartialColumnMeta, PartialMeta, TransformMeta};

/// How far one fresh partial escapes the consolidated metadata, per
/// column, in `[0, ∞)`:
///
/// * `Bin`: the fraction of the encoded range by which the new observed
///   `[min, max]` overhangs it on either side (0 when fully contained;
///   1.0 when the window moved a full range-width outside).
/// * `Recode`: the fraction of the window's distinct tokens that have no
///   code yet.
/// * `PassThrough` / `Hash`: always 0 (nothing to go stale).
///
/// Columns are compared positionally; a shape mismatch scores `f64::MAX`
/// (the spec itself changed — always re-encode).
pub fn column_drift(meta: &ColumnMeta, partial: &PartialColumnMeta) -> f64 {
    match (meta, partial) {
        (ColumnMeta::PassThrough, PartialColumnMeta::PassThrough) => 0.0,
        (ColumnMeta::Hash { .. }, PartialColumnMeta::Hash) => 0.0,
        (ColumnMeta::Bin { min, max, .. }, PartialColumnMeta::Bin { min: lo, max: hi }) => {
            if !lo.is_finite() || !hi.is_finite() {
                // All-missing window: nothing observed, nothing drifted.
                return 0.0;
            }
            let width = (max - min).max(f64::MIN_POSITIVE);
            let under = ((min - lo) / width).max(0.0);
            let over = ((hi - max) / width).max(0.0);
            under + over
        }
        (ColumnMeta::Recode { codes }, PartialColumnMeta::Recode { distincts }) => {
            if distincts.is_empty() {
                return 0.0;
            }
            let unknown = distincts
                .iter()
                .filter(|d| codes.binary_search(d).is_err())
                .count();
            unknown as f64 / distincts.len() as f64
        }
        _ => f64::MAX,
    }
}

/// Worst-column drift of one site's fresh partial against the
/// consolidated metadata (see [`column_drift`]).
pub fn drift_score(meta: &TransformMeta, partial: &PartialMeta) -> f64 {
    if meta.columns.len() != partial.columns.len() {
        return f64::MAX;
    }
    meta.columns
        .iter()
        .zip(&partial.columns)
        .map(|((_, m), p)| column_drift(m, p))
        .fold(0.0, f64::max)
}

/// Worst drift across all sites' fresh partials — the scalar a
/// continuous-learning loop thresholds to decide on re-encoding.
pub fn max_drift(meta: &TransformMeta, partials: &[PartialMeta]) -> f64 {
    partials
        .iter()
        .map(|p| drift_score(meta, p))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoders::{build_partial, merge_partials, TransformSpec};
    use exdra_matrix::frame::{Frame, FrameColumn};

    fn numeric_frame(vals: &[f64]) -> Frame {
        Frame::new(vec![(
            "v".into(),
            FrameColumn::F64(vals.iter().map(|&v| Some(v)).collect()),
        )])
        .unwrap()
    }

    fn bin_spec() -> TransformSpec {
        let mut spec = TransformSpec::auto(&numeric_frame(&[0.0]));
        spec.columns[0].kind = crate::encoders::EncodeKind::Bin { num_bins: 4 };
        spec
    }

    #[test]
    fn contained_window_scores_zero() {
        let spec = bin_spec();
        let base = build_partial(&numeric_frame(&[0.0, 10.0]), &spec).unwrap();
        let meta = merge_partials(&[base], &spec).unwrap();
        let window = build_partial(&numeric_frame(&[2.0, 8.0]), &spec).unwrap();
        assert_eq!(drift_score(&meta, &window), 0.0);
    }

    #[test]
    fn escaping_range_scores_relative_overhang() {
        let spec = bin_spec();
        let base = build_partial(&numeric_frame(&[0.0, 10.0]), &spec).unwrap();
        let meta = merge_partials(&[base], &spec).unwrap();
        // Max escapes by 5 over a width-10 range: score 0.5.
        let window = build_partial(&numeric_frame(&[3.0, 15.0]), &spec).unwrap();
        let s = drift_score(&meta, &window);
        assert!((s - 0.5).abs() < 1e-12, "score {s}");
        // Escaping both sides adds up.
        let wide = build_partial(&numeric_frame(&[-5.0, 15.0]), &spec).unwrap();
        let s = drift_score(&meta, &wide);
        assert!((s - 1.0).abs() < 1e-12, "score {s}");
        // max_drift takes the worst site.
        let calm = build_partial(&numeric_frame(&[4.0, 6.0]), &spec).unwrap();
        assert!((max_drift(&meta, &[calm, wide]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_categories_score_their_fraction() {
        let frame = Frame::new(vec![(
            "c".into(),
            FrameColumn::Str(vec![Some("a".into()), Some("b".into())]),
        )])
        .unwrap();
        let spec = TransformSpec::auto(&frame);
        let base = build_partial(&frame, &spec).unwrap();
        let meta = merge_partials(&[base], &spec).unwrap();
        let window = Frame::new(vec![(
            "c".into(),
            FrameColumn::Str(vec![Some("a".into()), Some("z".into())]),
        )])
        .unwrap();
        let partial = build_partial(&window, &spec).unwrap();
        let s = drift_score(&meta, &partial);
        assert!((s - 0.5).abs() < 1e-12, "score {s}");
    }

    #[test]
    fn shape_mismatch_forces_reencode() {
        let spec = bin_spec();
        let base = build_partial(&numeric_frame(&[0.0, 10.0]), &spec).unwrap();
        let meta = merge_partials(std::slice::from_ref(&base), &spec).unwrap();
        let mut wrong = base;
        wrong.columns.push(crate::encoders::PartialColumnMeta::Hash);
        assert_eq!(drift_score(&meta, &wrong), f64::MAX);
    }
}
