//! Stable string hashing for feature hashing and Bloom filters.
//!
//! Feature hashing (paper §4.4, "Improved Feature Transformations") maps
//! categories to upper-bounded integers "with an agreed hash function",
//! computed purely federated without any metadata exchange. Stability
//! across processes matters (sites hash independently), so we use FNV-1a
//! rather than the process-seeded std hasher.

/// 64-bit FNV-1a hash of a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Second independent hash (FNV over reversed bytes with a different
/// offset) for double-hashing Bloom filters.
pub fn fnv1a_alt(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0x84222325cbf29ce4;
    for &b in bytes.iter().rev() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h | 1 // keep odd so it is a valid double-hashing stride
}

/// Feature-hash a category token into a 1-based bucket in `1..=num_features`.
pub fn feature_bucket(token: &str, num_features: usize) -> usize {
    debug_assert!(num_features > 0);
    (fnv1a(token.as_bytes()) % num_features as u64) as usize + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_values() {
        // FNV-1a 64 reference values.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn buckets_in_range_and_stable() {
        for token in ["R101", "C7", "X", "some longer category name"] {
            let b = feature_bucket(token, 10);
            assert!((1..=10).contains(&b));
            assert_eq!(b, feature_bucket(token, 10), "stable");
        }
    }

    #[test]
    fn alt_hash_differs_and_is_odd() {
        for token in [&b"a"[..], b"abc", b"R101"] {
            assert_ne!(fnv1a(token), fnv1a_alt(token));
            assert_eq!(fnv1a_alt(token) & 1, 1);
        }
    }
}
