//! Missing-value imputation (paper §4.4, Example 4): mode imputation,
//! imputation by (robust) functional dependencies, and a MICE-style
//! iterative regression imputer for numeric matrices.

// Parallel-array index loops are intentional in the hot kernels below:
// iterator zips over 3+ arrays obscure the access pattern.
#![allow(clippy::needless_range_loop)]

use std::collections::HashMap;

use exdra_matrix::eigen::solve_spd;
use exdra_matrix::frame::FrameColumn;
use exdra_matrix::kernels::matmul::matmul;
use exdra_matrix::kernels::reorg::transpose;
use exdra_matrix::{DenseMatrix, MatrixError, Result};

/// Imputes missing cells of a categorical (string) column with its mode
/// (most frequent value). Ties break lexicographically for determinism.
pub fn impute_mode(col: &FrameColumn) -> Result<FrameColumn> {
    let values = match col {
        FrameColumn::Str(v) => v,
        other => {
            return Err(MatrixError::TypeMismatch {
                expected: "string",
                actual: other.value_type().name(),
            })
        }
    };
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for v in values.iter().flatten() {
        *counts.entry(v.as_str()).or_default() += 1;
    }
    let mode = counts
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(a.0)))
        .map(|(v, _)| v.to_string())
        .ok_or(MatrixError::InvalidArgument {
            op: "impute_mode",
            msg: "column is entirely missing".into(),
        })?;
    Ok(FrameColumn::Str(
        values
            .iter()
            .map(|v| v.clone().or_else(|| Some(mode.clone())))
            .collect(),
    ))
}

/// Imputes missing cells of `target` using a functional dependency
/// `det -> target` (paper Example 4: `A -> C`): for each determinant value,
/// the most frequent observed target value fills missing targets that share
/// the determinant. Rows whose determinant never co-occurs with an observed
/// target stay missing. Returns the repaired column and the number of cells
/// filled.
pub fn impute_by_fd(det: &FrameColumn, target: &FrameColumn) -> Result<(FrameColumn, usize)> {
    let targets = match target {
        FrameColumn::Str(v) => v,
        other => {
            return Err(MatrixError::TypeMismatch {
                expected: "string",
                actual: other.value_type().name(),
            })
        }
    };
    if det.len() != targets.len() {
        return Err(MatrixError::InvalidArgument {
            op: "impute_by_fd",
            msg: format!("column lengths differ: {} vs {}", det.len(), targets.len()),
        });
    }
    // Count target values per determinant value.
    let mut by_det: HashMap<String, HashMap<&str, usize>> = HashMap::new();
    for r in 0..det.len() {
        if let (Some(d), Some(t)) = (det.token(r), &targets[r]) {
            *by_det.entry(d).or_default().entry(t.as_str()).or_default() += 1;
        }
    }
    let pick: HashMap<String, String> = by_det
        .into_iter()
        .filter_map(|(d, counts)| {
            counts
                .into_iter()
                .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(a.0)))
                .map(|(t, _)| (d, t.to_string()))
        })
        .collect();
    let mut filled = 0usize;
    let repaired = (0..det.len())
        .map(|r| match &targets[r] {
            Some(v) => Some(v.clone()),
            None => det.token(r).and_then(|d| {
                pick.get(&d).map(|t| {
                    filled += 1;
                    t.clone()
                })
            }),
        })
        .collect();
    Ok((FrameColumn::Str(repaired), filled))
}

/// Confidence that `det -> target` holds: fraction of determinant groups
/// (weighted by size) whose observed targets are unanimous. Used to
/// *discover* robust functional dependencies before imputing by them.
pub fn fd_confidence(det: &FrameColumn, target: &FrameColumn) -> f64 {
    let mut by_det: HashMap<String, HashMap<String, usize>> = HashMap::new();
    let mut total = 0usize;
    for r in 0..det.len().min(target.len()) {
        if let (Some(d), Some(t)) = (det.token(r), target.token(r)) {
            *by_det.entry(d).or_default().entry(t).or_default() += 1;
            total += 1;
        }
    }
    if total == 0 {
        return 0.0;
    }
    let consistent: usize = by_det
        .values()
        .map(|counts| *counts.values().max().unwrap_or(&0))
        .sum();
    consistent as f64 / total as f64
}

/// MICE-style iterative regression imputation for a numeric matrix with
/// NaN missing cells: each incomplete column is repeatedly regressed (ridge)
/// on all other columns, and its missing cells replaced by predictions,
/// for `iterations` rounds. Returns the completed matrix.
pub fn mice_impute(x: &DenseMatrix, iterations: usize, ridge: f64) -> Result<DenseMatrix> {
    let (rows, cols) = x.shape();
    let mut work = x.clone();
    // Initialize missing cells with column means.
    let mut missing: Vec<Vec<usize>> = vec![Vec::new(); cols];
    for c in 0..cols {
        let mut sum = 0.0;
        let mut n = 0usize;
        for r in 0..rows {
            let v = x.get(r, c);
            if v.is_nan() {
                missing[c].push(r);
            } else {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            return Err(MatrixError::InvalidArgument {
                op: "mice_impute",
                msg: format!("column {c} entirely missing"),
            });
        }
        let mean = sum / n as f64;
        for &r in &missing[c] {
            work.set(r, c, mean);
        }
    }
    for _ in 0..iterations {
        for c in 0..cols {
            if missing[c].is_empty() {
                continue;
            }
            // Regress column c on the others using observed rows only.
            let obs: Vec<usize> = (0..rows).filter(|r| !x.get(*r, c).is_nan()).collect();
            let p = cols; // features: other cols + intercept
            let mut xmat = DenseMatrix::zeros(obs.len(), p);
            let mut yvec = DenseMatrix::zeros(obs.len(), 1);
            for (i, &r) in obs.iter().enumerate() {
                let mut k = 0usize;
                for cc in 0..cols {
                    if cc != c {
                        xmat.set(i, k, work.get(r, cc));
                        k += 1;
                    }
                }
                xmat.set(i, p - 1, 1.0); // intercept
                yvec.set(i, 0, work.get(r, c));
            }
            let xt = transpose(&xmat);
            let mut gram = matmul(&xt, &xmat)?;
            for d in 0..p {
                let v = gram.get(d, d);
                gram.set(d, d, v + ridge);
            }
            let rhs = matmul(&xt, &yvec)?;
            let beta = solve_spd(&gram, &rhs)?;
            // Predict missing cells.
            for &r in &missing[c] {
                let mut pred = beta.get(p - 1, 0);
                let mut k = 0usize;
                for cc in 0..cols {
                    if cc != c {
                        pred += beta.get(k, 0) * work.get(r, cc);
                        k += 1;
                    }
                }
                work.set(r, c, pred);
            }
        }
    }
    Ok(work)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exdra_matrix::rng::rand_matrix;
    use rand::Rng;
    use rand::SeedableRng;

    #[test]
    fn mode_imputation_fills_most_frequent() {
        let col = FrameColumn::Str(vec![
            Some("X".into()),
            None,
            Some("Z".into()),
            Some("X".into()),
            None,
        ]);
        let fixed = impute_mode(&col).unwrap();
        assert_eq!(fixed.token(1).as_deref(), Some("X"));
        assert_eq!(fixed.token(4).as_deref(), Some("X"));
        assert_eq!(fixed.missing_count(), 0);
    }

    #[test]
    fn mode_rejects_all_missing() {
        let col = FrameColumn::Str(vec![None, None]);
        assert!(impute_mode(&col).is_err());
    }

    #[test]
    fn fd_imputation_follows_determinant() {
        // Paper Example 4: A -> C; impute NULLs in C from A.
        let a = FrameColumn::Str(
            ["R101", "R101", "C7", "R101", "C3", "R102"]
                .iter()
                .map(|s| Some(s.to_string()))
                .collect(),
        );
        let c = FrameColumn::Str(vec![
            Some("X".into()),
            None, // A=R101 -> X
            Some("Z".into()),
            Some("X".into()),
            Some("Z".into()),
            Some("Y".into()),
        ]);
        let (fixed, n) = impute_by_fd(&a, &c).unwrap();
        assert_eq!(n, 1);
        assert_eq!(fixed.token(1).as_deref(), Some("X"));
    }

    #[test]
    fn fd_leaves_unresolvable_missing() {
        let a = FrameColumn::Str(vec![Some("new".into())]);
        let c = FrameColumn::Str(vec![None]);
        let (fixed, n) = impute_by_fd(&a, &c).unwrap();
        assert_eq!(n, 0);
        assert!(fixed.is_missing(0));
    }

    #[test]
    fn fd_confidence_detects_dependency() {
        let a = FrameColumn::Str(
            ["p", "p", "q", "q"]
                .iter()
                .map(|s| Some(s.to_string()))
                .collect(),
        );
        let perfect = FrameColumn::Str(
            ["1", "1", "2", "2"]
                .iter()
                .map(|s| Some(s.to_string()))
                .collect(),
        );
        let broken = FrameColumn::Str(
            ["1", "2", "1", "2"]
                .iter()
                .map(|s| Some(s.to_string()))
                .collect(),
        );
        assert_eq!(fd_confidence(&a, &perfect), 1.0);
        assert_eq!(fd_confidence(&a, &broken), 0.5);
    }

    #[test]
    fn mice_recovers_linear_structure() {
        // Column 2 = 2*col0 - col1; knock out 10% of col2 and recover it.
        let base = rand_matrix(200, 2, -1.0, 1.0, 81);
        let mut x = DenseMatrix::zeros(200, 3);
        for r in 0..200 {
            x.set(r, 0, base.get(r, 0));
            x.set(r, 1, base.get(r, 1));
            x.set(r, 2, 2.0 * base.get(r, 0) - base.get(r, 1));
        }
        let truth = x.clone();
        let mut rng = rand::rngs::StdRng::seed_from_u64(82);
        let mut holes = Vec::new();
        for r in 0..200 {
            if rng.gen::<f64>() < 0.1 {
                x.set(r, 2, f64::NAN);
                holes.push(r);
            }
        }
        assert!(!holes.is_empty());
        let fixed = mice_impute(&x, 3, 1e-6).unwrap();
        for &r in &holes {
            assert!(
                (fixed.get(r, 2) - truth.get(r, 2)).abs() < 1e-6,
                "row {r}: {} vs {}",
                fixed.get(r, 2),
                truth.get(r, 2)
            );
        }
    }

    #[test]
    fn mice_rejects_fully_missing_column() {
        let mut x = rand_matrix(10, 2, 0.0, 1.0, 83);
        for r in 0..10 {
            x.set(r, 1, f64::NAN);
        }
        assert!(mice_impute(&x, 2, 1e-6).is_err());
    }
}
