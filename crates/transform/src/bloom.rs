//! Bloom filters for distinct-set exchange.
//!
//! Paper §4.4: "techniques like zigzag joins — that rely on Bloom filters
//! for pre-filtering — can be adapted for determining categories that need
//! to be exchanged with the coordinator, thereby reducing data transfer and
//! revealed information."
//!
//! Protocol modeled here (exercised by the `ablation_transform` bench and
//! the runtime's optimized distinct consolidation): the coordinator
//! broadcasts a Bloom filter of the categories it has already consolidated;
//! each site then sends in full only categories that are *definitely new*
//! (filter miss), and 8-byte verification hashes for the possibly-known
//! remainder. False positives are resolved in a second round.

use crate::hashing::{fnv1a, fnv1a_alt};

/// A classic Bloom filter with double hashing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: u64,
    num_hashes: u32,
}

impl BloomFilter {
    /// Sizes a filter for `expected_items` at the target false-positive
    /// probability `fpp` (standard `m = -n ln p / ln2²`, `k = m/n ln2`).
    pub fn new(expected_items: usize, fpp: f64) -> Self {
        let n = expected_items.max(1) as f64;
        let p = fpp.clamp(1e-9, 0.5);
        let m = (-(n * p.ln()) / (std::f64::consts::LN_2 * std::f64::consts::LN_2)).ceil() as u64;
        let m = m.max(64);
        let k = ((m as f64 / n) * std::f64::consts::LN_2).round().max(1.0) as u32;
        Self {
            bits: vec![0u64; m.div_ceil(64) as usize],
            num_bits: m,
            num_hashes: k,
        }
    }

    fn positions(&self, item: &[u8]) -> impl Iterator<Item = u64> + '_ {
        let h1 = fnv1a(item);
        let h2 = fnv1a_alt(item);
        let m = self.num_bits;
        (0..self.num_hashes).map(move |i| h1.wrapping_add((i as u64).wrapping_mul(h2)) % m)
    }

    /// Inserts an item.
    pub fn insert(&mut self, item: &[u8]) {
        let positions: Vec<u64> = self.positions(item).collect();
        for pos in positions {
            self.bits[(pos / 64) as usize] |= 1 << (pos % 64);
        }
    }

    /// Tests membership; false positives possible, false negatives not.
    pub fn contains(&self, item: &[u8]) -> bool {
        self.positions(item)
            .all(|pos| self.bits[(pos / 64) as usize] & (1 << (pos % 64)) != 0)
    }

    /// Serialized size in bytes (what a broadcast costs).
    pub fn size_bytes(&self) -> usize {
        self.bits.len() * 8 + 12
    }
}

/// Result of pre-filtering a site's distinct set against the coordinator's
/// Bloom filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreFilterResult {
    /// Categories the filter proves are new — shipped in full.
    pub definitely_new: Vec<String>,
    /// 8-byte verification hashes of possibly-known categories.
    pub candidate_hashes: Vec<u64>,
}

impl PreFilterResult {
    /// Bytes this first-round reply costs on the wire.
    pub fn reply_bytes(&self) -> usize {
        self.definitely_new
            .iter()
            .map(|s| 8 + s.len())
            .sum::<usize>()
            + self.candidate_hashes.len() * 8
    }
}

/// Splits a site's distinct categories by the coordinator's filter.
pub fn prefilter<'a>(
    filter: &BloomFilter,
    site_distincts: impl Iterator<Item = &'a str>,
) -> PreFilterResult {
    let mut definitely_new = Vec::new();
    let mut candidate_hashes = Vec::new();
    for item in site_distincts {
        if filter.contains(item.as_bytes()) {
            candidate_hashes.push(fnv1a(item.as_bytes()));
        } else {
            definitely_new.push(item.to_string());
        }
    }
    PreFilterResult {
        definitely_new,
        candidate_hashes,
    }
}

/// Coordinator-side verification: returns the candidate hashes that do NOT
/// belong to any known category — these were Bloom false positives and must
/// be requested in full in a second round.
pub fn verify_candidates(known: &[String], candidate_hashes: &[u64]) -> Vec<u64> {
    let known_hashes: std::collections::HashSet<u64> =
        known.iter().map(|s| fnv1a(s.as_bytes())).collect();
    candidate_hashes
        .iter()
        .copied()
        .filter(|h| !known_hashes.contains(h))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(1000, 0.01);
        let items: Vec<String> = (0..1000).map(|i| format!("cat-{i}")).collect();
        for it in &items {
            f.insert(it.as_bytes());
        }
        for it in &items {
            assert!(f.contains(it.as_bytes()));
        }
    }

    #[test]
    fn false_positive_rate_near_target() {
        let mut f = BloomFilter::new(1000, 0.01);
        for i in 0..1000 {
            f.insert(format!("in-{i}").as_bytes());
        }
        let fp = (0..10_000)
            .filter(|i| f.contains(format!("out-{i}").as_bytes()))
            .count();
        let rate = fp as f64 / 10_000.0;
        assert!(rate < 0.03, "false positive rate {rate}");
    }

    #[test]
    fn filter_much_smaller_than_items() {
        let f = BloomFilter::new(10_000, 0.01);
        // ~1.2 bytes/item at 1% fpp vs >= 8 bytes for the raw strings.
        assert!(f.size_bytes() < 10_000 * 8);
    }

    #[test]
    fn prefilter_splits_new_and_known() {
        let known: Vec<String> = (0..50).map(|i| format!("known-{i}")).collect();
        let mut f = BloomFilter::new(known.len(), 0.01);
        for k in &known {
            f.insert(k.as_bytes());
        }
        let site: Vec<String> = known
            .iter()
            .take(30)
            .cloned()
            .chain((0..20).map(|i| format!("new-{i}")))
            .collect();
        let r = prefilter(&f, site.iter().map(String::as_str));
        // All 30 overlapping items are candidates (no false negatives);
        // new items are overwhelmingly classified as definitely new.
        assert!(r.candidate_hashes.len() >= 30);
        assert!(r.definitely_new.len() + (r.candidate_hashes.len() - 30) == 20);
        // Verification finds no unknown hashes among true members.
        let unknown = verify_candidates(&known, &r.candidate_hashes[..30]);
        assert!(unknown.is_empty());
    }

    #[test]
    fn verify_detects_false_positives() {
        let known = vec!["a".to_string(), "b".to_string()];
        let bogus = fnv1a(b"not-known");
        let unresolved = verify_candidates(&known, &[fnv1a(b"a"), bogus]);
        assert_eq!(unresolved, vec![bogus]);
    }

    #[test]
    fn reply_bytes_accounts_strings_and_hashes() {
        let r = PreFilterResult {
            definitely_new: vec!["abcd".into()],
            candidate_hashes: vec![1, 2, 3],
        };
        assert_eq!(r.reply_bytes(), (8 + 4) + 24);
    }
}
