#![warn(missing_docs)]
//! # exdra-transform
//!
//! Feature transformations of the ExDRa reproduction (paper §4.4): the
//! SystemDS `transformencode` / `transformapply` / `transformdecode`
//! family, plus missing-value imputation and the transfer-reducing
//! optimizations the paper describes (Bloom-filter distinct exchange,
//! feature hashing).
//!
//! Everything in this crate is *local and pure*: the two-pass federated
//! protocol (partial metadata build at the sites → merge/sort/assign codes
//! at the coordinator → broadcast and apply, Figure 3) is expressed as
//! three functions — [`encoders::build_partial`],
//! [`encoders::merge_partials`], [`encoders::apply`] — which the federated
//! runtime (`exdra-core`) orchestrates over its six request types.

pub mod bloom;
pub mod drift;
pub mod encoders;
pub mod hashing;
pub mod impute;

pub use drift::{column_drift, drift_score, max_drift};
pub use encoders::{
    apply, build_partial, decode, merge_partials, transform_encode, ColumnMeta, ColumnSpec,
    EncodeKind, PartialMeta, TransformMeta, TransformSpec,
};
