//! Per-channel network accounting.
//!
//! The communication experiments (paper Figure 6 and the scalability
//! discussion of Figure 5) need bytes-moved and time-in-network per
//! configuration; [`NetStats`] is a cheap atomic counter bundle shared
//! between a channel wrapper and the reporting harness.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Atomic counters for one logical connection (or an aggregate of many).
#[derive(Debug, Default)]
pub struct NetStats {
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    messages_sent: AtomicU64,
    messages_received: AtomicU64,
    /// Nanoseconds spent blocked in send/recv calls.
    network_nanos: AtomicU64,
    /// RPC attempts beyond the first (fault-tolerance layer).
    retries: AtomicU64,
    /// Heartbeat probes issued (fault-tolerance layer).
    heartbeats: AtomicU64,
    /// Channel re-establishments after a worker failure (supervision
    /// layer: reconnects and replacement channels).
    recoveries: AtomicU64,
    /// Requests sent through a pipelined (correlation-tagged) stream.
    pipelined_messages: AtomicU64,
    /// High-water mark of simultaneously in-flight pipelined requests.
    max_inflight: AtomicU64,
}

impl NetStats {
    /// Creates a zeroed, shareable counter bundle.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Records an outbound message of `bytes` taking `nanos`.
    pub fn record_send(&self, bytes: u64, nanos: u64) {
        self.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
        self.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.network_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Records an inbound message of `bytes` taking `nanos`.
    pub fn record_recv(&self, bytes: u64, nanos: u64) {
        self.bytes_received.fetch_add(bytes, Ordering::Relaxed);
        self.messages_received.fetch_add(1, Ordering::Relaxed);
        self.network_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Total bytes sent.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Total bytes received.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received.load(Ordering::Relaxed)
    }

    /// Total messages sent.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent.load(Ordering::Relaxed)
    }

    /// Total messages received.
    pub fn messages_received(&self) -> u64 {
        self.messages_received.load(Ordering::Relaxed)
    }

    /// Total seconds spent blocked in the network layer.
    pub fn network_seconds(&self) -> f64 {
        self.network_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Total nanoseconds spent blocked in the network layer (exact
    /// integer form of [`NetStats::network_seconds`], for comparison
    /// against span durations).
    pub fn network_nanos(&self) -> u64 {
        self.network_nanos.load(Ordering::Relaxed)
    }

    /// Records one RPC retry (an attempt beyond the first).
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one heartbeat probe.
    pub fn record_heartbeat(&self) {
        self.heartbeats.fetch_add(1, Ordering::Relaxed);
    }

    /// Total RPC retries.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Total heartbeat probes.
    pub fn heartbeats(&self) -> u64 {
        self.heartbeats.load(Ordering::Relaxed)
    }

    /// Records one channel re-establishment after a worker failure.
    pub fn record_recovery(&self) {
        self.recoveries.fetch_add(1, Ordering::Relaxed);
    }

    /// Total channel re-establishments.
    pub fn recoveries(&self) -> u64 {
        self.recoveries.load(Ordering::Relaxed)
    }

    /// Records one request sent through a pipelined stream while
    /// `inflight` requests (including this one) were outstanding.
    pub fn record_pipelined(&self, inflight: u64) {
        self.pipelined_messages.fetch_add(1, Ordering::Relaxed);
        self.max_inflight.fetch_max(inflight, Ordering::Relaxed);
    }

    /// Total requests sent through pipelined streams.
    pub fn pipelined_messages(&self) -> u64 {
        self.pipelined_messages.load(Ordering::Relaxed)
    }

    /// High-water mark of simultaneously in-flight pipelined requests.
    pub fn max_inflight(&self) -> u64 {
        self.max_inflight.load(Ordering::Relaxed)
    }

    /// Consistent-enough point-in-time copy of all counters (each counter
    /// is read atomically; the set is not a single atomic snapshot, which
    /// is fine for reporting).
    pub fn snapshot(&self) -> NetStatsSnapshot {
        NetStatsSnapshot {
            bytes_sent: self.bytes_sent(),
            bytes_received: self.bytes_received(),
            messages_sent: self.messages_sent(),
            messages_received: self.messages_received(),
            network_seconds: self.network_seconds(),
            network_nanos: self.network_nanos(),
            retries: self.retries(),
            heartbeats: self.heartbeats(),
            recoveries: self.recoveries(),
            pipelined_messages: self.pipelined_messages(),
            max_inflight: self.max_inflight(),
        }
    }

    /// Resets all counters (between experiment repetitions).
    pub fn reset(&self) {
        self.bytes_sent.store(0, Ordering::Relaxed);
        self.bytes_received.store(0, Ordering::Relaxed);
        self.messages_sent.store(0, Ordering::Relaxed);
        self.messages_received.store(0, Ordering::Relaxed);
        self.network_nanos.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
        self.heartbeats.store(0, Ordering::Relaxed);
        self.recoveries.store(0, Ordering::Relaxed);
        self.pipelined_messages.store(0, Ordering::Relaxed);
        self.max_inflight.store(0, Ordering::Relaxed);
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        self.snapshot().to_string()
    }
}

/// Plain-data copy of [`NetStats`] at one point in time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetStatsSnapshot {
    /// Total bytes sent.
    pub bytes_sent: u64,
    /// Total bytes received.
    pub bytes_received: u64,
    /// Total messages sent.
    pub messages_sent: u64,
    /// Total messages received.
    pub messages_received: u64,
    /// Seconds spent blocked in the network layer.
    pub network_seconds: f64,
    /// Nanoseconds spent blocked in the network layer.
    pub network_nanos: u64,
    /// RPC attempts beyond the first.
    pub retries: u64,
    /// Heartbeat probes issued.
    pub heartbeats: u64,
    /// Channel re-establishments after worker failures.
    pub recoveries: u64,
    /// Requests sent through pipelined (correlation-tagged) streams.
    pub pipelined_messages: u64,
    /// High-water mark of simultaneously in-flight pipelined requests.
    pub max_inflight: u64,
}

impl NetStatsSnapshot {
    /// Counter deltas since an `earlier` snapshot of the same
    /// [`NetStats`], for per-phase accounting (bench repetitions,
    /// profiler windows) without resetting shared process-lifetime
    /// totals. Saturates at zero if `earlier` was taken after `self`
    /// or the counters were reset in between.
    pub fn delta(&self, earlier: &NetStatsSnapshot) -> NetStatsSnapshot {
        NetStatsSnapshot {
            bytes_sent: self.bytes_sent.saturating_sub(earlier.bytes_sent),
            bytes_received: self.bytes_received.saturating_sub(earlier.bytes_received),
            messages_sent: self.messages_sent.saturating_sub(earlier.messages_sent),
            messages_received: self
                .messages_received
                .saturating_sub(earlier.messages_received),
            network_seconds: (self.network_seconds - earlier.network_seconds).max(0.0),
            network_nanos: self.network_nanos.saturating_sub(earlier.network_nanos),
            retries: self.retries.saturating_sub(earlier.retries),
            heartbeats: self.heartbeats.saturating_sub(earlier.heartbeats),
            recoveries: self.recoveries.saturating_sub(earlier.recoveries),
            pipelined_messages: self
                .pipelined_messages
                .saturating_sub(earlier.pipelined_messages),
            // A high-water mark has no meaningful difference; the later
            // snapshot's watermark is carried through.
            max_inflight: self.max_inflight,
        }
    }
}

impl std::fmt::Display for NetStatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sent {} msgs / {:.2} MB, recv {} msgs / {:.2} MB, {:.3}s in network, \
             {} retries, {} heartbeats, {} recoveries, {} pipelined (max {} in flight)",
            self.messages_sent,
            self.bytes_sent as f64 / 1e6,
            self.messages_received,
            self.bytes_received as f64 / 1e6,
            self.network_seconds,
            self.retries,
            self.heartbeats,
            self.recoveries,
            self.pipelined_messages,
            self.max_inflight
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = NetStats::shared();
        s.record_send(100, 1_000_000);
        s.record_send(50, 500_000);
        s.record_recv(10, 100_000);
        s.record_retry();
        s.record_heartbeat();
        s.record_heartbeat();
        s.record_recovery();
        s.record_pipelined(3);
        s.record_pipelined(7);
        s.record_pipelined(2);
        assert_eq!(s.bytes_sent(), 150);
        assert_eq!(s.messages_sent(), 2);
        assert_eq!(s.bytes_received(), 10);
        assert!((s.network_seconds() - 0.0016).abs() < 1e-9);
        assert_eq!(s.retries(), 1);
        assert_eq!(s.heartbeats(), 2);
        assert_eq!(s.recoveries(), 1);
        assert_eq!(s.pipelined_messages(), 3);
        assert_eq!(s.max_inflight(), 7, "watermark keeps the peak");
        s.reset();
        assert_eq!(s.bytes_sent(), 0);
        assert_eq!(s.messages_received(), 0);
        assert_eq!(s.retries(), 0);
        assert_eq!(s.heartbeats(), 0);
        assert_eq!(s.recoveries(), 0);
        assert_eq!(s.pipelined_messages(), 0);
        assert_eq!(s.max_inflight(), 0);
    }

    #[test]
    fn snapshot_captures_and_displays() {
        let s = NetStats::shared();
        s.record_send(2_000_000, 5_000_000);
        s.record_retry();
        let snap = s.snapshot();
        assert_eq!(snap.bytes_sent, 2_000_000);
        assert_eq!(snap.messages_sent, 1);
        assert_eq!(snap.retries, 1);
        let text = snap.to_string();
        assert!(text.contains("2.00 MB"), "{text}");
        assert!(text.contains("1 retries"), "{text}");
        // Snapshot is a copy: later traffic doesn't change it.
        s.record_send(1, 1);
        assert_eq!(snap.messages_sent, 1);
        assert_eq!(s.summary(), s.snapshot().to_string());
    }

    #[test]
    fn snapshot_delta_isolates_a_phase() {
        let s = NetStats::shared();
        s.record_send(100, 1_000);
        s.record_heartbeat();
        let before = s.snapshot();
        s.record_send(50, 2_000);
        s.record_recv(25, 500);
        s.record_retry();
        s.record_pipelined(4);
        let phase = s.snapshot().delta(&before);
        assert_eq!(phase.bytes_sent, 50);
        assert_eq!(phase.messages_sent, 1);
        assert_eq!(phase.bytes_received, 25);
        assert_eq!(phase.messages_received, 1);
        assert_eq!(phase.network_nanos, 2_500);
        assert_eq!(phase.retries, 1);
        assert_eq!(phase.heartbeats, 0);
        assert_eq!(phase.pipelined_messages, 1);
        assert_eq!(phase.max_inflight, 4, "watermark carried, not diffed");
        // A reset between snapshots saturates rather than underflows.
        let late = s.snapshot();
        s.reset();
        let after_reset = s.snapshot().delta(&late);
        assert_eq!(after_reset.bytes_sent, 0);
        assert!(after_reset.network_seconds >= 0.0);
    }

    #[test]
    fn delta_under_two_concurrent_sessions_never_underflows() {
        // Two sessions share one channel's `NetStats` (the multi-tenant
        // coordinator's attach socket): both record traffic while a
        // third thread takes rolling snapshots and diffs consecutive
        // pairs. Every delta must be non-negative (no underflow) and
        // consecutive snapshots monotone, even though snapshot() is not
        // a single atomic read across counters.
        let s = NetStats::shared();
        let live = Arc::new(std::sync::atomic::AtomicUsize::new(2));
        let sessions: Vec<_> = (0..2)
            .map(|i| {
                let s = Arc::clone(&s);
                let live = Arc::clone(&live);
                std::thread::spawn(move || {
                    for _ in 0..20_000 {
                        s.record_send(10 + i, 100);
                        s.record_recv(5, 50);
                        s.record_pipelined(i + 1);
                        if i == 0 {
                            s.record_retry();
                        } else {
                            s.record_heartbeat();
                        }
                    }
                    live.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();
        let mut prev = s.snapshot();
        while live.load(Ordering::SeqCst) > 0 {
            let now = s.snapshot();
            // Monotonicity: each counter only grows while both sessions
            // are live (no reset in this window).
            assert!(now.bytes_sent >= prev.bytes_sent);
            assert!(now.bytes_received >= prev.bytes_received);
            assert!(now.messages_sent >= prev.messages_sent);
            assert!(now.messages_received >= prev.messages_received);
            assert!(now.network_nanos >= prev.network_nanos);
            assert!(now.retries >= prev.retries);
            assert!(now.heartbeats >= prev.heartbeats);
            assert!(now.pipelined_messages >= prev.pipelined_messages);
            assert!(now.max_inflight >= prev.max_inflight);
            let d = now.delta(&prev);
            // Deltas are exact differences here — saturating_sub never
            // had to clamp — and internally consistent.
            assert_eq!(d.bytes_sent, now.bytes_sent - prev.bytes_sent);
            assert_eq!(d.messages_sent, now.messages_sent - prev.messages_sent);
            assert!(d.network_seconds >= 0.0);
            assert_eq!(d.max_inflight, now.max_inflight, "watermark carried");
            // Deltas over swapped arguments saturate to zero instead of
            // wrapping (the underflow guard the coordinator relies on).
            let swapped = prev.delta(&now);
            assert_eq!(swapped.bytes_sent, 0);
            assert_eq!(swapped.messages_received, 0);
            assert_eq!(swapped.network_nanos, 0);
            prev = now;
        }
        for h in sessions {
            h.join().unwrap();
        }
        let fin = s.snapshot();
        assert!(fin.retries > 0, "session 0 traffic observed");
        assert!(fin.heartbeats > 0, "session 1 traffic observed");
        assert_eq!(
            fin.messages_sent, fin.messages_received,
            "both sessions pair each send with one recv"
        );
    }

    #[test]
    fn concurrent_updates_race_free() {
        let s = NetStats::shared();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record_send(1, 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.bytes_sent(), 8000);
        assert_eq!(s.messages_sent(), 8000);
    }
}
