//! Blocking message channels.
//!
//! [`Channel`] is the single abstraction the federated runtime talks to:
//! it moves opaque message payloads. Implementations:
//!
//! * [`TcpChannel`] — real sockets with length-prefixed framing (the
//!   production path; workers are standing TCP servers),
//! * [`MemChannel`] — crossbeam-backed in-process pair for deterministic
//!   tests,
//! * [`EncryptedChannel`] — ChaCha20 seal/open around any inner channel,
//! * [`ShapedChannel`] — WAN simulation around any inner channel,
//! * [`InstrumentedChannel`] — byte/message/time accounting around any
//!   inner channel.
//!
//! Wrappers compose: the Figure 6 "WAN + SSL" configuration is
//! `Instrumented(Shaped(Encrypted(Tcp)))`.

use std::io::{self, BufReader, BufWriter};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::crypto::{ChannelKey, CipherState};
use crate::framing::{read_frame, write_frame};
use crate::sim::NetProfile;
use crate::stats::NetStats;

/// A blocking, message-oriented, bidirectional channel.
pub trait Channel: Send {
    /// Sends one message.
    fn send(&mut self, payload: &[u8]) -> io::Result<()>;
    /// Receives one message, blocking until available.
    fn recv(&mut self) -> io::Result<Vec<u8>>;
}

/// Socket-level timeout configuration for [`TcpChannel`]s.
///
/// All timeouts default to `None` (block forever), preserving the paper's
/// standing-worker assumption; the fault-tolerance layer passes finite
/// values so a dead peer surfaces as [`io::ErrorKind::TimedOut`] — which
/// the retry taxonomy classifies as transient — instead of hanging the
/// coordinator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelConfig {
    /// Bound on establishing the TCP connection.
    pub connect_timeout: Option<Duration>,
    /// Bound on each blocking read (per syscall, not per message).
    pub read_timeout: Option<Duration>,
    /// Bound on each blocking write.
    pub write_timeout: Option<Duration>,
}

impl ChannelConfig {
    /// Config with every timeout set to `d`.
    pub fn all(d: Duration) -> Self {
        Self {
            connect_timeout: Some(d),
            read_timeout: Some(d),
            write_timeout: Some(d),
        }
    }

    /// Config with no timeouts (block forever).
    pub fn blocking() -> Self {
        Self::default()
    }
}

/// TCP channel with length-prefixed framing.
pub struct TcpChannel {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

/// Maps the platform's read/write-timeout error (`WouldBlock` on Unix,
/// `TimedOut` on Windows) to the single `TimedOut` kind the fault layer
/// keys on.
fn normalize_timeout(e: io::Error) -> io::Error {
    if e.kind() == io::ErrorKind::WouldBlock {
        io::Error::new(io::ErrorKind::TimedOut, e)
    } else {
        e
    }
}

impl TcpChannel {
    /// Connects to a listening peer with no timeouts.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::connect_with(addr, &ChannelConfig::default())
    }

    /// Connects to a listening peer under `config`.
    pub fn connect_with(addr: impl ToSocketAddrs, config: &ChannelConfig) -> io::Result<Self> {
        let stream = match config.connect_timeout {
            None => TcpStream::connect(addr)?,
            Some(t) => {
                // connect_timeout needs resolved addresses; try each.
                let mut last = None;
                let mut stream = None;
                for a in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&a, t) {
                        Ok(s) => {
                            stream = Some(s);
                            break;
                        }
                        Err(e) => last = Some(e),
                    }
                }
                match stream {
                    Some(s) => s,
                    None => {
                        return Err(last.unwrap_or_else(|| {
                            io::Error::new(
                                io::ErrorKind::InvalidInput,
                                "address resolved to no endpoints",
                            )
                        }))
                    }
                }
            }
        };
        stream.set_nodelay(true)?;
        Self::from_stream_with(stream, config)
    }

    /// Wraps an accepted stream with no timeouts.
    pub fn from_stream(stream: TcpStream) -> io::Result<Self> {
        Self::from_stream_with(stream, &ChannelConfig::default())
    }

    /// Wraps an accepted stream, applying `config`'s read/write timeouts.
    pub fn from_stream_with(stream: TcpStream, config: &ChannelConfig) -> io::Result<Self> {
        stream.set_read_timeout(config.read_timeout)?;
        stream.set_write_timeout(config.write_timeout)?;
        let read_half = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
        })
    }

    /// Changes the read timeout on the live socket.
    pub fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(t)
    }

    /// Changes the write timeout on the live socket.
    pub fn set_write_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        self.writer.get_ref().set_write_timeout(t)
    }
}

impl Channel for TcpChannel {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        write_frame(&mut self.writer, payload).map_err(normalize_timeout)
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        read_frame(&mut self.reader).map_err(normalize_timeout)
    }
}

/// A TCP server handle: binds a port and accepts [`TcpChannel`]s.
pub struct TcpServer {
    listener: TcpListener,
}

impl TcpServer {
    /// Binds to `addr` (use port 0 for an ephemeral port).
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound local address.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Blocks until a client connects.
    pub fn accept(&self) -> io::Result<TcpChannel> {
        self.accept_with(&ChannelConfig::default())
    }

    /// Blocks until a client connects; the accepted channel gets
    /// `config`'s read/write timeouts.
    pub fn accept_with(&self, config: &ChannelConfig) -> io::Result<TcpChannel> {
        let (stream, _) = self.listener.accept()?;
        stream.set_nodelay(true)?;
        TcpChannel::from_stream_with(stream, config)
    }
}

/// In-memory channel endpoint backed by crossbeam queues.
pub struct MemChannel {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

/// Creates a connected in-memory channel pair.
pub fn mem_pair() -> (MemChannel, MemChannel) {
    let (atx, brx) = unbounded();
    let (btx, arx) = unbounded();
    (
        MemChannel { tx: atx, rx: arx },
        MemChannel { tx: btx, rx: brx },
    )
}

impl Channel for MemChannel {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        self.tx
            .send(payload.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer dropped"))
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        self.rx
            .recv()
            .map_err(|_| io::Error::new(io::ErrorKind::UnexpectedEof, "peer dropped"))
    }
}

/// Encrypting wrapper (ChaCha20 + integrity tag) around any channel.
pub struct EncryptedChannel<C: Channel> {
    inner: C,
    tx: CipherState,
    rx: CipherState,
}

impl<C: Channel> EncryptedChannel<C> {
    /// Wraps `inner` with a pre-shared key. `is_initiator` selects the
    /// nonce direction so both endpoints derive disjoint keystreams.
    pub fn new(inner: C, key: ChannelKey, is_initiator: bool) -> Self {
        let (tx_dir, rx_dir) = if is_initiator { (0, 1) } else { (1, 0) };
        Self {
            inner,
            tx: CipherState::new(key, tx_dir),
            rx: CipherState::new(key, rx_dir),
        }
    }
}

impl<C: Channel> Channel for EncryptedChannel<C> {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        let sealed = self.tx.seal(payload);
        self.inner.send(&sealed)
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        let sealed = self.inner.recv()?;
        self.rx.open(&sealed).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, "message authentication failed")
        })
    }
}

/// WAN-shaping wrapper: applies the [`NetProfile`] delay on the send path.
pub struct ShapedChannel<C: Channel> {
    inner: C,
    profile: NetProfile,
}

impl<C: Channel> ShapedChannel<C> {
    /// Wraps `inner` with a link profile.
    pub fn new(inner: C, profile: NetProfile) -> Self {
        Self { inner, profile }
    }
}

impl<C: Channel> Channel for ShapedChannel<C> {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        self.profile.apply(payload.len());
        self.inner.send(payload)
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        self.inner.recv()
    }
}

/// Accounting wrapper recording bytes, messages, and blocked time.
pub struct InstrumentedChannel<C: Channel> {
    inner: C,
    stats: Arc<NetStats>,
}

impl<C: Channel> InstrumentedChannel<C> {
    /// Wraps `inner`, recording into `stats`.
    pub fn new(inner: C, stats: Arc<NetStats>) -> Self {
        Self { inner, stats }
    }
}

impl<C: Channel> Channel for InstrumentedChannel<C> {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        let t0 = Instant::now();
        let r = self.inner.send(payload);
        self.stats
            .record_send(payload.len() as u64, t0.elapsed().as_nanos() as u64);
        r
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        let t0 = Instant::now();
        let r = self.inner.recv();
        if let Ok(p) = &r {
            self.stats
                .record_recv(p.len() as u64, t0.elapsed().as_nanos() as u64);
        }
        r
    }
}

impl Channel for Box<dyn Channel> {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        (**self).send(payload)
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        (**self).recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_pair_duplex() {
        let (mut a, mut b) = mem_pair();
        a.send(b"ping").unwrap();
        assert_eq!(b.recv().unwrap(), b"ping");
        b.send(b"pong").unwrap();
        assert_eq!(a.recv().unwrap(), b"pong");
    }

    #[test]
    fn mem_channel_detects_dropped_peer() {
        let (mut a, b) = mem_pair();
        drop(b);
        assert!(a.send(b"x").is_err());
    }

    #[test]
    fn tcp_roundtrip_over_loopback() {
        let server = TcpServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let mut ch = server.accept().unwrap();
            let msg = ch.recv().unwrap();
            ch.send(&msg).unwrap(); // echo
        });
        let mut client = TcpChannel::connect(addr).unwrap();
        let payload = vec![42u8; 100_000];
        client.send(&payload).unwrap();
        assert_eq!(client.recv().unwrap(), payload);
        handle.join().unwrap();
    }

    #[test]
    fn read_timeout_surfaces_as_timed_out() {
        let server = TcpServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let cfg = ChannelConfig {
            read_timeout: Some(std::time::Duration::from_millis(50)),
            ..ChannelConfig::default()
        };
        let handle = std::thread::spawn(move || {
            // Accept and hold the connection open without ever replying.
            let ch = server.accept().unwrap();
            std::thread::sleep(std::time::Duration::from_millis(300));
            drop(ch);
        });
        let mut client = TcpChannel::connect_with(addr, &cfg).unwrap();
        let err = client.recv().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut, "{err}");
        handle.join().unwrap();
    }

    #[test]
    fn connect_timeout_path_connects_and_rejects() {
        let cfg = ChannelConfig {
            connect_timeout: Some(std::time::Duration::from_millis(500)),
            ..ChannelConfig::default()
        };
        // Positive path: the resolved-address loop connects to a live peer.
        let server = TcpServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let _ch = server.accept().unwrap();
        });
        TcpChannel::connect_with(addr, &cfg).unwrap();
        handle.join().unwrap();
        // Negative path: a port with no listener errors promptly.
        let dead = TcpServer::bind("127.0.0.1:0").unwrap();
        let dead_addr = dead.local_addr().unwrap();
        drop(dead);
        let t0 = Instant::now();
        assert!(TcpChannel::connect_with(dead_addr, &cfg).is_err());
        assert!(t0.elapsed() < std::time::Duration::from_secs(5));
    }

    #[test]
    fn timeouts_adjustable_on_live_channel() {
        let server = TcpServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let mut ch = server.accept().unwrap();
            let msg = ch.recv().unwrap();
            ch.send(&msg).unwrap();
        });
        let client = TcpChannel::connect(addr).unwrap();
        client
            .set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .unwrap();
        client.set_write_timeout(None).unwrap();
        let mut client = client;
        client.send(b"echo").unwrap();
        assert_eq!(client.recv().unwrap(), b"echo");
        handle.join().unwrap();
    }

    #[test]
    fn encrypted_channel_roundtrip() {
        let (a, b) = mem_pair();
        let key = ChannelKey::from_passphrase("secret");
        let mut ea = EncryptedChannel::new(a, key, true);
        let mut eb = EncryptedChannel::new(b, key, false);
        ea.send(b"classified").unwrap();
        assert_eq!(eb.recv().unwrap(), b"classified");
        eb.send(b"ack").unwrap();
        assert_eq!(ea.recv().unwrap(), b"ack");
    }

    #[test]
    fn encrypted_channel_payload_not_plaintext() {
        let (a, mut b) = mem_pair();
        let key = ChannelKey::from_passphrase("secret");
        let mut ea = EncryptedChannel::new(a, key, true);
        ea.send(b"visible-secret-data").unwrap();
        let raw = b.recv().unwrap();
        assert!(!raw.windows(b"visible".len()).any(|w| w == b"visible"));
    }

    #[test]
    fn encrypted_wrong_key_fails_auth() {
        let (a, b) = mem_pair();
        let mut ea = EncryptedChannel::new(a, ChannelKey::from_passphrase("k1"), true);
        let mut eb = EncryptedChannel::new(b, ChannelKey::from_passphrase("k2"), false);
        ea.send(b"msg").unwrap();
        assert!(eb.recv().is_err());
    }

    #[test]
    fn shaped_channel_adds_delay() {
        let (a, mut b) = mem_pair();
        let mut sa = ShapedChannel::new(a, NetProfile::custom(20.0, 1000.0));
        let t0 = Instant::now();
        sa.send(b"x").unwrap();
        assert!(t0.elapsed().as_millis() >= 5);
        assert_eq!(b.recv().unwrap(), b"x");
    }

    #[test]
    fn instrumented_channel_counts() {
        let stats = NetStats::shared();
        let (a, b) = mem_pair();
        let mut ia = InstrumentedChannel::new(a, Arc::clone(&stats));
        let mut ib = InstrumentedChannel::new(b, Arc::clone(&stats));
        ia.send(&[0u8; 500]).unwrap();
        ib.recv().unwrap();
        assert_eq!(stats.bytes_sent(), 500);
        assert_eq!(stats.bytes_received(), 500);
        assert_eq!(stats.messages_sent(), 1);
    }

    #[test]
    fn full_stack_composition() {
        // Instrumented(Shaped(Encrypted(Mem))) both ways.
        let stats = NetStats::shared();
        let key = ChannelKey::from_passphrase("stack");
        let (a, b) = mem_pair();
        let mut client = InstrumentedChannel::new(
            ShapedChannel::new(
                EncryptedChannel::new(a, key, true),
                NetProfile::custom(2.0, 100.0),
            ),
            Arc::clone(&stats),
        );
        let mut server = EncryptedChannel::new(b, key, false);
        client.send(b"end-to-end").unwrap();
        assert_eq!(server.recv().unwrap(), b"end-to-end");
        assert_eq!(stats.messages_sent(), 1);
    }
}
