//! Blocking message channels.
//!
//! [`Channel`] is the single abstraction the federated runtime talks to:
//! it moves opaque message payloads. Implementations:
//!
//! * [`TcpChannel`] — real sockets with length-prefixed framing (the
//!   production path; workers are standing TCP servers),
//! * [`MemChannel`] — crossbeam-backed in-process pair for deterministic
//!   tests,
//! * [`EncryptedChannel`] — ChaCha20 seal/open around any inner channel,
//! * [`ShapedChannel`] — WAN simulation around any inner channel,
//! * [`InstrumentedChannel`] — byte/message/time accounting around any
//!   inner channel.
//!
//! Wrappers compose: the Figure 6 "WAN + SSL" configuration is
//! `Instrumented(Shaped(Encrypted(Tcp)))`.
//!
//! Every channel can additionally [`Channel::split`] into independently
//! owned send and receive halves, which is what lets a worker decode
//! ahead on one thread while answering out of order from others, and
//! [`PipelinedChannel`] keeps a sliding window of correlation-tagged
//! requests in flight over any channel (see `framing` for the tag
//! layout).

use std::collections::{HashMap, HashSet};
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::crypto::{ChannelKey, CipherState};
use crate::framing::{read_frame, tag_request, untag_reply, write_frame};
use crate::sim::NetProfile;
use crate::stats::NetStats;

/// A blocking, message-oriented, bidirectional channel.
pub trait Channel: Send {
    /// Sends one message.
    fn send(&mut self, payload: &[u8]) -> io::Result<()>;
    /// Receives one message, blocking until available.
    fn recv(&mut self) -> io::Result<Vec<u8>>;
    /// Separates the channel into independently-owned send and receive
    /// halves so one thread can keep receiving while others send.
    /// Implementations that cannot split return themselves whole; callers
    /// must handle both arms of [`SplitResult`].
    fn split(self: Box<Self>) -> SplitResult;
}

/// The sending half of a split [`Channel`].
pub trait SendHalf: Send {
    /// Sends one message.
    fn send(&mut self, payload: &[u8]) -> io::Result<()>;
}

/// The receiving half of a split [`Channel`].
pub trait RecvHalf: Send {
    /// Receives one message, blocking until available.
    fn recv(&mut self) -> io::Result<Vec<u8>>;
}

/// Outcome of [`Channel::split`].
pub enum SplitResult {
    /// The channel separated into independently-owned halves.
    Split(Box<dyn SendHalf>, Box<dyn RecvHalf>),
    /// The channel cannot be split and is returned whole.
    Whole(Box<dyn Channel>),
}

/// Socket-level timeout configuration for [`TcpChannel`]s, plus the RPC
/// pipelining window threaded through to the coordinator.
///
/// All timeouts default to `None` (block forever), preserving the paper's
/// standing-worker assumption; the fault-tolerance layer passes finite
/// values so a dead peer surfaces as [`io::ErrorKind::TimedOut`] — which
/// the retry taxonomy classifies as transient — instead of hanging the
/// coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelConfig {
    /// Bound on establishing the TCP connection.
    pub connect_timeout: Option<Duration>,
    /// Bound on each blocking read (per syscall, not per message).
    pub read_timeout: Option<Duration>,
    /// Bound on each blocking write.
    pub write_timeout: Option<Duration>,
    /// Sliding window of in-flight pipelined requests per connection.
    /// `1` (the default) is the legacy lock-step protocol — one request
    /// on the wire at a time, byte-for-byte compatible with peers that
    /// predate pipelining. Values above 1 let the coordinator stream
    /// correlation-tagged requests ahead of their replies.
    pub rpc_window: usize,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        Self {
            connect_timeout: None,
            read_timeout: None,
            write_timeout: None,
            rpc_window: 1,
        }
    }
}

impl ChannelConfig {
    /// Config with every timeout set to `d`.
    pub fn all(d: Duration) -> Self {
        Self {
            connect_timeout: Some(d),
            read_timeout: Some(d),
            write_timeout: Some(d),
            ..Self::default()
        }
    }

    /// Config with no timeouts (block forever).
    pub fn blocking() -> Self {
        Self::default()
    }

    /// Returns the config with the pipelining window set to `n`
    /// (clamped to at least 1).
    pub fn with_rpc_window(mut self, n: usize) -> Self {
        self.rpc_window = n.max(1);
        self
    }
}

/// TCP channel with length-prefixed framing.
pub struct TcpChannel {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

/// Maps the platform's read/write-timeout error (`WouldBlock` on Unix,
/// `TimedOut` on Windows) to the single `TimedOut` kind the fault layer
/// keys on.
fn normalize_timeout(e: io::Error) -> io::Error {
    if e.kind() == io::ErrorKind::WouldBlock {
        io::Error::new(io::ErrorKind::TimedOut, e)
    } else {
        e
    }
}

impl TcpChannel {
    /// Connects to a listening peer with no timeouts.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::connect_with(addr, &ChannelConfig::default())
    }

    /// Connects to a listening peer under `config`.
    pub fn connect_with(addr: impl ToSocketAddrs, config: &ChannelConfig) -> io::Result<Self> {
        let stream = match config.connect_timeout {
            None => TcpStream::connect(addr)?,
            Some(t) => {
                // connect_timeout needs resolved addresses; try each.
                let mut last = None;
                let mut stream = None;
                for a in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&a, t) {
                        Ok(s) => {
                            stream = Some(s);
                            break;
                        }
                        Err(e) => last = Some(e),
                    }
                }
                match stream {
                    Some(s) => s,
                    None => {
                        return Err(last.unwrap_or_else(|| {
                            io::Error::new(
                                io::ErrorKind::InvalidInput,
                                "address resolved to no endpoints",
                            )
                        }))
                    }
                }
            }
        };
        stream.set_nodelay(true)?;
        Self::from_stream_with(stream, config)
    }

    /// Wraps an accepted stream with no timeouts.
    pub fn from_stream(stream: TcpStream) -> io::Result<Self> {
        Self::from_stream_with(stream, &ChannelConfig::default())
    }

    /// Wraps an accepted stream, applying `config`'s read/write timeouts.
    pub fn from_stream_with(stream: TcpStream, config: &ChannelConfig) -> io::Result<Self> {
        stream.set_read_timeout(config.read_timeout)?;
        stream.set_write_timeout(config.write_timeout)?;
        let read_half = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
        })
    }

    /// Changes the read timeout on the live socket.
    pub fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(t)
    }

    /// Changes the write timeout on the live socket.
    pub fn set_write_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        self.writer.get_ref().set_write_timeout(t)
    }
}

impl Channel for TcpChannel {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        write_frame(&mut self.writer, payload).map_err(normalize_timeout)
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        read_frame(&mut self.reader).map_err(normalize_timeout)
    }

    fn split(self: Box<Self>) -> SplitResult {
        // The reader/writer pair already sit on independent clones of the
        // socket, so the halves separate cleanly.
        SplitResult::Split(
            Box::new(TcpSendHalf {
                writer: self.writer,
            }),
            Box::new(TcpRecvHalf {
                reader: self.reader,
            }),
        )
    }
}

struct TcpSendHalf {
    writer: BufWriter<TcpStream>,
}

impl SendHalf for TcpSendHalf {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        write_frame(&mut self.writer, payload).map_err(normalize_timeout)
    }
}

struct TcpRecvHalf {
    reader: BufReader<TcpStream>,
}

impl RecvHalf for TcpRecvHalf {
    fn recv(&mut self) -> io::Result<Vec<u8>> {
        read_frame(&mut self.reader).map_err(normalize_timeout)
    }
}

/// A TCP server handle: binds a port and accepts [`TcpChannel`]s.
pub struct TcpServer {
    listener: TcpListener,
}

impl TcpServer {
    /// Binds to `addr` (use port 0 for an ephemeral port).
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound local address.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Blocks until a client connects.
    pub fn accept(&self) -> io::Result<TcpChannel> {
        self.accept_with(&ChannelConfig::default())
    }

    /// Blocks until a client connects; the accepted channel gets
    /// `config`'s read/write timeouts.
    pub fn accept_with(&self, config: &ChannelConfig) -> io::Result<TcpChannel> {
        let (stream, _) = self.listener.accept()?;
        stream.set_nodelay(true)?;
        TcpChannel::from_stream_with(stream, config)
    }
}

/// In-memory channel endpoint backed by crossbeam queues.
pub struct MemChannel {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

/// Creates a connected in-memory channel pair.
pub fn mem_pair() -> (MemChannel, MemChannel) {
    let (atx, brx) = unbounded();
    let (btx, arx) = unbounded();
    (
        MemChannel { tx: atx, rx: arx },
        MemChannel { tx: btx, rx: brx },
    )
}

fn mem_send(tx: &Sender<Vec<u8>>, payload: &[u8]) -> io::Result<()> {
    tx.send(payload.to_vec())
        .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer dropped"))
}

fn mem_recv(rx: &Receiver<Vec<u8>>) -> io::Result<Vec<u8>> {
    rx.recv()
        .map_err(|_| io::Error::new(io::ErrorKind::UnexpectedEof, "peer dropped"))
}

impl Channel for MemChannel {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        mem_send(&self.tx, payload)
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        mem_recv(&self.rx)
    }

    fn split(self: Box<Self>) -> SplitResult {
        SplitResult::Split(
            Box::new(MemSendHalf { tx: self.tx }),
            Box::new(MemRecvHalf { rx: self.rx }),
        )
    }
}

struct MemSendHalf {
    tx: Sender<Vec<u8>>,
}

impl SendHalf for MemSendHalf {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        mem_send(&self.tx, payload)
    }
}

struct MemRecvHalf {
    rx: Receiver<Vec<u8>>,
}

impl RecvHalf for MemRecvHalf {
    fn recv(&mut self) -> io::Result<Vec<u8>> {
        mem_recv(&self.rx)
    }
}

/// Encrypting wrapper (ChaCha20 + integrity tag) around any channel.
///
/// Each direction keeps its own [`CipherState`] with an independent
/// monotone nonce counter, so send and receive never have to alternate:
/// pipelined traffic (many sends before any receive, replies out of
/// request order) stays decryptable as long as each direction's frames
/// arrive in the order they were sealed — which splitting into one send
/// half and one receive half guarantees by construction.
pub struct EncryptedChannel<C: Channel> {
    inner: C,
    tx: CipherState,
    rx: CipherState,
}

impl<C: Channel + 'static> EncryptedChannel<C> {
    /// Wraps `inner` with a pre-shared key. `is_initiator` selects the
    /// nonce direction so both endpoints derive disjoint keystreams.
    pub fn new(inner: C, key: ChannelKey, is_initiator: bool) -> Self {
        let (tx_dir, rx_dir) = if is_initiator { (0, 1) } else { (1, 0) };
        Self {
            inner,
            tx: CipherState::new(key, tx_dir),
            rx: CipherState::new(key, rx_dir),
        }
    }
}

fn enc_send(inner: &mut impl SendLike, tx: &mut CipherState, payload: &[u8]) -> io::Result<()> {
    let sealed = tx.seal(payload);
    inner.send_msg(&sealed)
}

fn enc_recv(inner: &mut impl RecvLike, rx: &mut CipherState) -> io::Result<Vec<u8>> {
    let sealed = inner.recv_msg()?;
    rx.open(&sealed)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "message authentication failed"))
}

/// Internal unification of `Channel`/`SendHalf` senders so the encrypted
/// and instrumented wrappers share one code path for whole channels and
/// split halves.
trait SendLike {
    fn send_msg(&mut self, payload: &[u8]) -> io::Result<()>;
}

trait RecvLike {
    fn recv_msg(&mut self) -> io::Result<Vec<u8>>;
}

impl<C: Channel + ?Sized> SendLike for C {
    fn send_msg(&mut self, payload: &[u8]) -> io::Result<()> {
        self.send(payload)
    }
}

impl<C: Channel + ?Sized> RecvLike for C {
    fn recv_msg(&mut self) -> io::Result<Vec<u8>> {
        self.recv()
    }
}

impl SendLike for Box<dyn SendHalf> {
    fn send_msg(&mut self, payload: &[u8]) -> io::Result<()> {
        (**self).send(payload)
    }
}

impl RecvLike for Box<dyn RecvHalf> {
    fn recv_msg(&mut self) -> io::Result<Vec<u8>> {
        (**self).recv()
    }
}

impl<C: Channel + 'static> Channel for EncryptedChannel<C> {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        enc_send(&mut self.inner, &mut self.tx, payload)
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        enc_recv(&mut self.inner, &mut self.rx)
    }

    fn split(self: Box<Self>) -> SplitResult {
        let Self { inner, tx, rx } = *self;
        match Box::new(inner).split() {
            SplitResult::Split(s, r) => SplitResult::Split(
                Box::new(EncryptedSendHalf { inner: s, tx }),
                Box::new(EncryptedRecvHalf { inner: r, rx }),
            ),
            SplitResult::Whole(w) => {
                SplitResult::Whole(Box::new(EncryptedChannel { inner: w, tx, rx }))
            }
        }
    }
}

struct EncryptedSendHalf {
    inner: Box<dyn SendHalf>,
    tx: CipherState,
}

impl SendHalf for EncryptedSendHalf {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        enc_send(&mut self.inner, &mut self.tx, payload)
    }
}

struct EncryptedRecvHalf {
    inner: Box<dyn RecvHalf>,
    rx: CipherState,
}

impl RecvHalf for EncryptedRecvHalf {
    fn recv(&mut self) -> io::Result<Vec<u8>> {
        enc_recv(&mut self.inner, &mut self.rx)
    }
}

/// WAN-shaping wrapper: delivers each inbound message no earlier than its
/// simulated arrival over the profiled link.
///
/// The link model charges one-way propagation latency plus bandwidth
/// transfer time per message, with an explicit *arrival* model: messages
/// that are concurrently in flight overlap their latencies (only their
/// transfer times serialize on the link), while a lock-step exchange pays
/// the full latency every round trip. This is what makes pipelining
/// measurable — a window of `w` outstanding requests sees ~`ceil(n/w)`
/// latencies for an `n`-request batch instead of `n`.
///
/// To observe true arrival times (a message that arrives while the
/// consumer is still sleeping out an earlier delivery must not be charged
/// a fresh latency), the wrapper splits its inner channel and moves the
/// receive half onto a pump thread that timestamps each message as it
/// lands. Channels that refuse to split fall back to a synchronous model
/// that is exact for lock-step traffic and merely pessimistic for
/// pipelined traffic.
pub struct ShapedChannel {
    profile: NetProfile,
    mode: ShapedMode,
    /// Simulated instant through which the link is busy transferring
    /// already-accepted messages.
    link_free: Option<Instant>,
    /// Delivered-message counter keying the profile's deterministic
    /// per-message jitter stream.
    seq: u64,
}

enum ShapedMode {
    /// Inner channel split; the receive half lives on a pump thread that
    /// timestamps arrivals.
    Pumped {
        tx: Box<dyn SendHalf>,
        rx: Receiver<(Instant, io::Result<Vec<u8>>)>,
    },
    /// Inner channel would not split: shape synchronously on receive.
    Whole(Box<dyn Channel>),
}

impl ShapedChannel {
    /// Wraps `inner` with a link profile.
    pub fn new(inner: impl Channel + 'static, profile: NetProfile) -> Self {
        let boxed: Box<dyn Channel> = Box::new(inner);
        // An unshaped profile needs no arrival timestamps; skip the pump
        // thread and pass straight through.
        let mode = if profile.is_unshaped() {
            ShapedMode::Whole(boxed)
        } else {
            match boxed.split() {
                SplitResult::Split(tx, mut recv_half) => {
                    let (pump_tx, rx) = unbounded();
                    std::thread::Builder::new()
                        .name("exdra-shaped-pump".into())
                        .spawn(move || loop {
                            let res = recv_half.recv();
                            let failed = res.is_err();
                            if pump_tx.send((Instant::now(), res)).is_err() || failed {
                                break;
                            }
                        })
                        .expect("spawn shaped-channel pump thread");
                    ShapedMode::Pumped { tx, rx }
                }
                SplitResult::Whole(w) => ShapedMode::Whole(w),
            }
        };
        Self {
            profile,
            mode,
            link_free: None,
            seq: 0,
        }
    }

    /// The wrapped link profile.
    pub fn profile(&self) -> NetProfile {
        self.profile
    }

    /// Sleeps until a message that physically arrived at `arrival` with
    /// `bytes` payload would be delivered over the simulated link, and
    /// advances the link-busy horizon.
    fn delay_delivery(&mut self, arrival: Instant, bytes: usize) {
        if self.profile.is_unshaped() {
            return;
        }
        let transfer = self.profile.transfer_time(bytes);
        // The link starts carrying this message when it is free again;
        // propagation latency overlaps with other in-flight messages.
        let start = match self.link_free {
            Some(t) if t > arrival => t,
            _ => arrival,
        };
        self.link_free = Some(start + transfer);
        let latency = self.profile.latency_jittered(self.seq);
        self.seq += 1;
        let deliver = start + transfer + latency;
        let now = Instant::now();
        if deliver > now {
            std::thread::sleep(deliver - now);
        }
    }
}

impl Channel for ShapedChannel {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        match &mut self.mode {
            ShapedMode::Pumped { tx, .. } => tx.send(payload),
            ShapedMode::Whole(w) => w.send(payload),
        }
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        let (arrival, payload) = match &mut self.mode {
            ShapedMode::Pumped { rx, .. } => {
                let (arrival, res) = rx.recv().map_err(|_| {
                    io::Error::new(io::ErrorKind::UnexpectedEof, "shaped pump stopped")
                })?;
                (arrival, res?)
            }
            // Without arrival timestamps, the best estimate is "now":
            // exact for lock-step exchanges, pessimistic for pipelining.
            ShapedMode::Whole(w) => {
                let p = w.recv()?;
                (Instant::now(), p)
            }
        };
        let len = payload.len();
        self.delay_delivery(arrival, len);
        Ok(payload)
    }

    fn split(self: Box<Self>) -> SplitResult {
        let Self {
            profile,
            mode,
            link_free,
            seq,
        } = *self;
        match mode {
            ShapedMode::Pumped { tx, rx } => SplitResult::Split(
                Box::new(ShapedSendHalf { tx }),
                Box::new(ShapedRecvHalf {
                    profile,
                    rx,
                    link_free,
                    seq,
                }),
            ),
            ShapedMode::Whole(w) => SplitResult::Whole(Box::new(ShapedChannel {
                profile,
                mode: ShapedMode::Whole(w),
                link_free,
                seq,
            })),
        }
    }
}

struct ShapedSendHalf {
    tx: Box<dyn SendHalf>,
}

impl SendHalf for ShapedSendHalf {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        self.tx.send(payload)
    }
}

struct ShapedRecvHalf {
    profile: NetProfile,
    rx: Receiver<(Instant, io::Result<Vec<u8>>)>,
    link_free: Option<Instant>,
    seq: u64,
}

impl RecvHalf for ShapedRecvHalf {
    fn recv(&mut self) -> io::Result<Vec<u8>> {
        let (arrival, res) = self
            .rx
            .recv()
            .map_err(|_| io::Error::new(io::ErrorKind::UnexpectedEof, "shaped pump stopped"))?;
        let payload = res?;
        if !self.profile.is_unshaped() {
            let transfer = self.profile.transfer_time(payload.len());
            let start = match self.link_free {
                Some(t) if t > arrival => t,
                _ => arrival,
            };
            self.link_free = Some(start + transfer);
            let latency = self.profile.latency_jittered(self.seq);
            self.seq += 1;
            let deliver = start + transfer + latency;
            let now = Instant::now();
            if deliver > now {
                std::thread::sleep(deliver - now);
            }
        }
        Ok(payload)
    }
}

/// Accounting wrapper recording bytes, messages, and blocked time.
pub struct InstrumentedChannel<C: Channel> {
    inner: C,
    stats: Arc<NetStats>,
}

impl<C: Channel + 'static> InstrumentedChannel<C> {
    /// Wraps `inner`, recording into `stats`.
    pub fn new(inner: C, stats: Arc<NetStats>) -> Self {
        Self { inner, stats }
    }
}

fn inst_send(inner: &mut impl SendLike, stats: &NetStats, payload: &[u8]) -> io::Result<()> {
    let t0 = Instant::now();
    let r = inner.send_msg(payload);
    stats.record_send(payload.len() as u64, t0.elapsed().as_nanos() as u64);
    r
}

fn inst_recv(inner: &mut impl RecvLike, stats: &NetStats) -> io::Result<Vec<u8>> {
    let t0 = Instant::now();
    let r = inner.recv_msg();
    if let Ok(p) = &r {
        stats.record_recv(p.len() as u64, t0.elapsed().as_nanos() as u64);
    }
    r
}

impl<C: Channel + 'static> Channel for InstrumentedChannel<C> {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        inst_send(&mut self.inner, &self.stats, payload)
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        inst_recv(&mut self.inner, &self.stats)
    }

    fn split(self: Box<Self>) -> SplitResult {
        let Self { inner, stats } = *self;
        match Box::new(inner).split() {
            SplitResult::Split(s, r) => SplitResult::Split(
                Box::new(InstrumentedSendHalf {
                    inner: s,
                    stats: Arc::clone(&stats),
                }),
                Box::new(InstrumentedRecvHalf { inner: r, stats }),
            ),
            SplitResult::Whole(w) => {
                SplitResult::Whole(Box::new(InstrumentedChannel { inner: w, stats }))
            }
        }
    }
}

struct InstrumentedSendHalf {
    inner: Box<dyn SendHalf>,
    stats: Arc<NetStats>,
}

impl SendHalf for InstrumentedSendHalf {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        inst_send(&mut self.inner, &self.stats, payload)
    }
}

struct InstrumentedRecvHalf {
    inner: Box<dyn RecvHalf>,
    stats: Arc<NetStats>,
}

impl RecvHalf for InstrumentedRecvHalf {
    fn recv(&mut self) -> io::Result<Vec<u8>> {
        inst_recv(&mut self.inner, &self.stats)
    }
}

impl Channel for Box<dyn Channel> {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        (**self).send(payload)
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        (**self).recv()
    }

    fn split(self: Box<Self>) -> SplitResult {
        (*self).split()
    }
}

/// Default sliding window for pipelined RPC: up to 8 requests in flight
/// per connection.
pub const DEFAULT_WINDOW: usize = 8;

/// Sliding-window multiplexer over any [`Channel`].
///
/// Each request is framed with a fresh correlation id
/// (see `framing::tag_request`); up to `window` requests ride the wire
/// before the first reply is awaited. Replies may come back in any
/// order — a reply-dispatch map parks early arrivals until their caller
/// asks for them, and replies whose correlation id is unknown (stale
/// duplicates from a lossy link) are discarded.
pub struct PipelinedChannel<C: Channel> {
    inner: C,
    window: usize,
    next_corr: u64,
    /// Correlation ids sent and not yet answered.
    pending: HashSet<u64>,
    /// Replies that arrived before their caller claimed them.
    ready: HashMap<u64, Vec<u8>>,
}

impl<C: Channel> PipelinedChannel<C> {
    /// Wraps `inner` with the [`DEFAULT_WINDOW`].
    pub fn new(inner: C) -> Self {
        Self::with_window(inner, DEFAULT_WINDOW)
    }

    /// Wraps `inner` with a window of `window` in-flight requests
    /// (clamped to at least 1).
    pub fn with_window(inner: C, window: usize) -> Self {
        Self {
            inner,
            window: window.max(1),
            next_corr: 1,
            pending: HashSet::new(),
            ready: HashMap::new(),
        }
    }

    /// The configured window.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Requests currently awaiting a reply.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Sends one correlation-tagged request, returning its correlation
    /// id. Blocks (receiving replies) while the window is full.
    pub fn send_request(&mut self, body: &[u8]) -> io::Result<u64> {
        while self.pending.len() >= self.window {
            self.pump_one()?;
        }
        let corr = self.next_corr;
        self.next_corr += 1;
        self.inner.send(&tag_request(corr, body))?;
        self.pending.insert(corr);
        Ok(corr)
    }

    /// Receives one reply frame and routes it: pending ids move to the
    /// ready map, unknown/duplicate ids are dropped.
    fn pump_one(&mut self) -> io::Result<()> {
        let payload = self.inner.recv()?;
        let (corr, body) = untag_reply(&payload)?;
        if self.pending.remove(&corr) {
            self.ready.insert(corr, body.to_vec());
        }
        Ok(())
    }

    /// Blocks until the reply for `corr` arrives and returns its body.
    /// Replies to other in-flight requests received along the way are
    /// parked for their own callers.
    pub fn recv_for(&mut self, corr: u64) -> io::Result<Vec<u8>> {
        loop {
            if let Some(body) = self.ready.remove(&corr) {
                return Ok(body);
            }
            if !self.pending.contains(&corr) {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("correlation id {corr} is not in flight"),
                ));
            }
            self.pump_one()?;
        }
    }

    /// Blocks until any reply is available and returns `(corr, body)`.
    pub fn recv_any(&mut self) -> io::Result<(u64, Vec<u8>)> {
        loop {
            if let Some(&corr) = self.ready.keys().next() {
                let body = self.ready.remove(&corr).expect("key just seen");
                return Ok((corr, body));
            }
            if self.pending.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    "no requests in flight",
                ));
            }
            self.pump_one()?;
        }
    }

    /// Waits out every in-flight request and returns all unclaimed
    /// replies sorted by correlation id.
    pub fn drain(&mut self) -> io::Result<Vec<(u64, Vec<u8>)>> {
        while !self.pending.is_empty() {
            self.pump_one()?;
        }
        let mut out: Vec<(u64, Vec<u8>)> = self.ready.drain().collect();
        out.sort_by_key(|(c, _)| *c);
        Ok(out)
    }

    /// Unwraps the inner channel, discarding any pipelining state.
    pub fn into_inner(self) -> C {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framing::untag_request;

    #[test]
    fn mem_pair_duplex() {
        let (mut a, mut b) = mem_pair();
        a.send(b"ping").unwrap();
        assert_eq!(b.recv().unwrap(), b"ping");
        b.send(b"pong").unwrap();
        assert_eq!(a.recv().unwrap(), b"pong");
    }

    #[test]
    fn mem_channel_detects_dropped_peer() {
        let (mut a, b) = mem_pair();
        drop(b);
        assert!(a.send(b"x").is_err());
    }

    #[test]
    fn tcp_roundtrip_over_loopback() {
        let server = TcpServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let mut ch = server.accept().unwrap();
            let msg = ch.recv().unwrap();
            ch.send(&msg).unwrap(); // echo
        });
        let mut client = TcpChannel::connect(addr).unwrap();
        let payload = vec![42u8; 100_000];
        client.send(&payload).unwrap();
        assert_eq!(client.recv().unwrap(), payload);
        handle.join().unwrap();
    }

    #[test]
    fn read_timeout_surfaces_as_timed_out() {
        let server = TcpServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let cfg = ChannelConfig {
            read_timeout: Some(std::time::Duration::from_millis(50)),
            ..ChannelConfig::default()
        };
        let handle = std::thread::spawn(move || {
            // Accept and hold the connection open without ever replying.
            let ch = server.accept().unwrap();
            std::thread::sleep(std::time::Duration::from_millis(300));
            drop(ch);
        });
        let mut client = TcpChannel::connect_with(addr, &cfg).unwrap();
        let err = client.recv().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut, "{err}");
        handle.join().unwrap();
    }

    #[test]
    fn connect_timeout_path_connects_and_rejects() {
        let cfg = ChannelConfig {
            connect_timeout: Some(std::time::Duration::from_millis(500)),
            ..ChannelConfig::default()
        };
        // Positive path: the resolved-address loop connects to a live peer.
        let server = TcpServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let _ch = server.accept().unwrap();
        });
        TcpChannel::connect_with(addr, &cfg).unwrap();
        handle.join().unwrap();
        // Negative path: a port with no listener errors promptly.
        let dead = TcpServer::bind("127.0.0.1:0").unwrap();
        let dead_addr = dead.local_addr().unwrap();
        drop(dead);
        let t0 = Instant::now();
        assert!(TcpChannel::connect_with(dead_addr, &cfg).is_err());
        assert!(t0.elapsed() < std::time::Duration::from_secs(5));
    }

    #[test]
    fn timeouts_adjustable_on_live_channel() {
        let server = TcpServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let mut ch = server.accept().unwrap();
            let msg = ch.recv().unwrap();
            ch.send(&msg).unwrap();
        });
        let client = TcpChannel::connect(addr).unwrap();
        client
            .set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .unwrap();
        client.set_write_timeout(None).unwrap();
        let mut client = client;
        client.send(b"echo").unwrap();
        assert_eq!(client.recv().unwrap(), b"echo");
        handle.join().unwrap();
    }

    #[test]
    fn channel_config_defaults_to_lockstep_window() {
        assert_eq!(ChannelConfig::default().rpc_window, 1);
        assert_eq!(
            ChannelConfig::all(Duration::from_secs(1)).rpc_window,
            1,
            "timeout presets keep the legacy window"
        );
        assert_eq!(ChannelConfig::default().with_rpc_window(8).rpc_window, 8);
        assert_eq!(
            ChannelConfig::default().with_rpc_window(0).rpc_window,
            1,
            "window clamps to at least one"
        );
    }

    #[test]
    fn encrypted_channel_roundtrip() {
        let (a, b) = mem_pair();
        let key = ChannelKey::from_passphrase("secret");
        let mut ea = EncryptedChannel::new(a, key, true);
        let mut eb = EncryptedChannel::new(b, key, false);
        ea.send(b"classified").unwrap();
        assert_eq!(eb.recv().unwrap(), b"classified");
        eb.send(b"ack").unwrap();
        assert_eq!(ea.recv().unwrap(), b"ack");
    }

    #[test]
    fn encrypted_channel_payload_not_plaintext() {
        let (a, mut b) = mem_pair();
        let key = ChannelKey::from_passphrase("secret");
        let mut ea = EncryptedChannel::new(a, key, true);
        ea.send(b"visible-secret-data").unwrap();
        let raw = b.recv().unwrap();
        assert!(!raw.windows(b"visible".len()).any(|w| w == b"visible"));
    }

    #[test]
    fn encrypted_wrong_key_fails_auth() {
        let (a, b) = mem_pair();
        let mut ea = EncryptedChannel::new(a, ChannelKey::from_passphrase("k1"), true);
        let mut eb = EncryptedChannel::new(b, ChannelKey::from_passphrase("k2"), false);
        ea.send(b"msg").unwrap();
        assert!(eb.recv().is_err());
    }

    #[test]
    fn encrypted_tolerates_burst_sends_without_alternation() {
        // ChaCha20 nonce handling must not assume send/recv lock-step:
        // many sends before any receive, interleaved both ways.
        let (a, b) = mem_pair();
        let key = ChannelKey::from_passphrase("burst");
        let mut ea = EncryptedChannel::new(a, key, true);
        let mut eb = EncryptedChannel::new(b, key, false);
        for i in 0..10u8 {
            ea.send(&[i; 17]).unwrap();
        }
        eb.send(b"early-reply").unwrap();
        for i in 0..10u8 {
            assert_eq!(eb.recv().unwrap(), vec![i; 17]);
        }
        assert_eq!(ea.recv().unwrap(), b"early-reply");
    }

    #[test]
    fn shaped_channel_delays_delivery() {
        // Shaping now charges the arrival path: the receiver waits out
        // the one-way latency; sends are free.
        let (a, b) = mem_pair();
        let mut sa = ShapedChannel::new(a, NetProfile::custom(40.0, 1000.0));
        let mut b = b;
        let t0 = Instant::now();
        sa.send(b"x").unwrap();
        assert!(
            t0.elapsed() < Duration::from_millis(15),
            "send path is unshaped"
        );
        assert_eq!(b.recv().unwrap(), b"x");
        b.send(b"reply").unwrap();
        let t1 = Instant::now();
        assert_eq!(sa.recv().unwrap(), b"reply");
        assert!(
            t1.elapsed() >= Duration::from_millis(15),
            "recv pays one-way latency, got {:?}",
            t1.elapsed()
        );
    }

    #[test]
    fn shaped_channel_overlaps_latency_of_concurrent_messages() {
        // Messages already in flight share the link: n queued replies
        // cost ~1 latency, not n. This is the property pipelining rides.
        let (a, mut b) = mem_pair();
        let mut sa = ShapedChannel::new(a, NetProfile::custom(80.0, f64::INFINITY));
        sa.send(b"warmup").unwrap();
        b.recv().unwrap();
        for i in 0..4u8 {
            b.send(&[i]).unwrap();
        }
        // Let all four land in the pump before the first recv.
        std::thread::sleep(Duration::from_millis(30));
        let t0 = Instant::now();
        for i in 0..4u8 {
            assert_eq!(sa.recv().unwrap(), vec![i]);
        }
        let elapsed = t0.elapsed();
        assert!(
            elapsed < Duration::from_millis(3 * 40),
            "4 concurrent messages must overlap latency, took {elapsed:?}"
        );
    }

    #[test]
    fn shaped_channel_serializes_lockstep_exchanges() {
        // A strict request/reply loop pays the latency every time.
        let (a, b) = mem_pair();
        let mut sa = ShapedChannel::new(a, NetProfile::custom(30.0, f64::INFINITY));
        let handle = std::thread::spawn(move || {
            let mut b = b;
            while let Ok(m) = b.recv() {
                if b.send(&m).is_err() {
                    break;
                }
            }
        });
        let t0 = Instant::now();
        for _ in 0..3 {
            sa.send(b"rt").unwrap();
            sa.recv().unwrap();
        }
        let elapsed = t0.elapsed();
        assert!(
            elapsed >= Duration::from_millis(3 * 15),
            "3 lock-step round trips pay 3 latencies, took {elapsed:?}"
        );
        drop(sa);
        handle.join().unwrap();
    }

    #[test]
    fn instrumented_channel_counts() {
        let stats = NetStats::shared();
        let (a, b) = mem_pair();
        let mut ia = InstrumentedChannel::new(a, Arc::clone(&stats));
        let mut ib = InstrumentedChannel::new(b, Arc::clone(&stats));
        ia.send(&[0u8; 500]).unwrap();
        ib.recv().unwrap();
        assert_eq!(stats.bytes_sent(), 500);
        assert_eq!(stats.bytes_received(), 500);
        assert_eq!(stats.messages_sent(), 1);
    }

    #[test]
    fn full_stack_composition() {
        // Instrumented(Shaped(Encrypted(Mem))) both ways.
        let stats = NetStats::shared();
        let key = ChannelKey::from_passphrase("stack");
        let (a, b) = mem_pair();
        let mut client = InstrumentedChannel::new(
            ShapedChannel::new(
                EncryptedChannel::new(a, key, true),
                NetProfile::custom(2.0, 100.0),
            ),
            Arc::clone(&stats),
        );
        let mut server = EncryptedChannel::new(b, key, false);
        client.send(b"end-to-end").unwrap();
        assert_eq!(server.recv().unwrap(), b"end-to-end");
        server.send(b"roger").unwrap();
        assert_eq!(client.recv().unwrap(), b"roger");
        assert_eq!(stats.messages_sent(), 1);
        assert_eq!(stats.messages_received(), 1);
    }

    #[test]
    fn mem_channel_splits_into_working_halves() {
        let (a, mut b) = mem_pair();
        let (mut s, mut r) = match (Box::new(a) as Box<dyn Channel>).split() {
            SplitResult::Split(s, r) => (s, r),
            SplitResult::Whole(_) => panic!("mem channel must split"),
        };
        s.send(b"to-peer").unwrap();
        assert_eq!(b.recv().unwrap(), b"to-peer");
        b.send(b"from-peer").unwrap();
        assert_eq!(r.recv().unwrap(), b"from-peer");
    }

    #[test]
    fn tcp_channel_splits_and_halves_work_concurrently() {
        let server = TcpServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let mut ch = server.accept().unwrap();
            for _ in 0..3 {
                let m = ch.recv().unwrap();
                ch.send(&m).unwrap();
            }
        });
        let client = Box::new(TcpChannel::connect(addr).unwrap());
        let (mut s, mut r) = match (client as Box<dyn Channel>).split() {
            SplitResult::Split(s, r) => (s, r),
            SplitResult::Whole(_) => panic!("tcp channel must split"),
        };
        // Send from this thread while a second thread receives.
        let recv_thread = std::thread::spawn(move || {
            let mut got = Vec::new();
            for _ in 0..3 {
                got.push(r.recv().unwrap());
            }
            got
        });
        for i in 0..3u8 {
            s.send(&[i; 5]).unwrap();
        }
        let got = recv_thread.join().unwrap();
        assert_eq!(got, vec![vec![0u8; 5], vec![1u8; 5], vec![2u8; 5]]);
        handle.join().unwrap();
    }

    #[test]
    fn encrypted_and_instrumented_stacks_split() {
        let stats = NetStats::shared();
        let key = ChannelKey::from_passphrase("split");
        let (a, b) = mem_pair();
        let stack = InstrumentedChannel::new(EncryptedChannel::new(a, key, true), stats.clone());
        let (mut s, mut r) = match (Box::new(stack) as Box<dyn Channel>).split() {
            SplitResult::Split(s, r) => (s, r),
            SplitResult::Whole(_) => panic!("wrapper stack must split"),
        };
        let mut peer = EncryptedChannel::new(b, key, false);
        s.send(b"down").unwrap();
        assert_eq!(peer.recv().unwrap(), b"down");
        peer.send(b"up").unwrap();
        assert_eq!(r.recv().unwrap(), b"up");
        assert_eq!(stats.messages_sent(), 1);
        assert_eq!(stats.messages_received(), 1);
    }

    /// Echo peer that answers each tagged request with a tagged reply
    /// whose body proves which request it belongs to.
    fn pipelined_echo_peer(
        mut ch: MemChannel,
        reorder_every: usize,
    ) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            let mut held: Vec<(u64, Vec<u8>)> = Vec::new();
            while let Ok(frame) = ch.recv() {
                let (corr, body) = match untag_request(&frame) {
                    Some(x) => (x.0, x.1.to_vec()),
                    None => continue,
                };
                held.push((corr, body));
                if held.len() >= reorder_every {
                    // Reply in reverse order to force out-of-order
                    // correlation matching on the client.
                    for (c, b) in held.drain(..).rev() {
                        let mut reply = b"echo:".to_vec();
                        reply.extend_from_slice(&b);
                        if ch.send(&crate::framing::tag_reply(c, &reply)).is_err() {
                            return;
                        }
                    }
                }
            }
        })
    }

    #[test]
    fn pipelined_channel_routes_out_of_order_replies() {
        let (a, b) = mem_pair();
        let peer = pipelined_echo_peer(b, 4);
        let mut pc = PipelinedChannel::with_window(a, 4);
        let corrs: Vec<u64> = (0..8)
            .map(|i| pc.send_request(format!("req{i}").as_bytes()).unwrap())
            .collect();
        assert!(pc.in_flight() <= 4, "window bound respected");
        for (i, corr) in corrs.iter().enumerate() {
            let body = pc.recv_for(*corr).unwrap();
            assert_eq!(body, format!("echo:req{i}").as_bytes());
        }
        assert_eq!(pc.in_flight(), 0);
        drop(pc);
        peer.join().unwrap();
    }

    #[test]
    fn pipelined_window_blocks_at_capacity() {
        let (a, b) = mem_pair();
        let peer = pipelined_echo_peer(b, 1);
        let mut pc = PipelinedChannel::with_window(a, 2);
        for i in 0..6 {
            pc.send_request(&[i]).unwrap();
            assert!(pc.in_flight() <= 2, "in-flight {} > window", pc.in_flight());
        }
        let drained = pc.drain().unwrap();
        assert_eq!(drained.len(), 6);
        drop(pc);
        peer.join().unwrap();
    }

    #[test]
    fn pipelined_channel_discards_unknown_and_duplicate_corrs() {
        let (a, mut b) = mem_pair();
        let mut pc = PipelinedChannel::with_window(a, 4);
        let corr = pc.send_request(b"ping").unwrap();
        // Peer sends a stale/unknown correlation id, a duplicate of the
        // real reply, and then the real reply.
        let frame = b.recv().unwrap();
        assert!(untag_request(&frame).is_some());
        b.send(&crate::framing::tag_reply(9999, b"stale")).unwrap();
        b.send(&crate::framing::tag_reply(corr, b"pong")).unwrap();
        b.send(&crate::framing::tag_reply(corr, b"dup")).unwrap();
        assert_eq!(pc.recv_for(corr).unwrap(), b"pong");
        // The duplicate is ignored on the next pump, not delivered.
        let c2 = pc.send_request(b"again").unwrap();
        b.recv().unwrap();
        b.send(&crate::framing::tag_reply(c2, b"fresh")).unwrap();
        assert_eq!(pc.recv_for(c2).unwrap(), b"fresh");
    }

    #[test]
    fn pipelined_window_one_is_lockstep() {
        let (a, b) = mem_pair();
        let peer = pipelined_echo_peer(b, 1);
        let mut pc = PipelinedChannel::with_window(a, 1);
        for i in 0..4u8 {
            let corr = pc.send_request(&[i]).unwrap();
            assert_eq!(pc.in_flight(), 1, "lock-step: one in flight");
            let body = pc.recv_for(corr).unwrap();
            assert_eq!(body, [b'e', b'c', b'h', b'o', b':', i]);
        }
        drop(pc);
        peer.join().unwrap();
    }
}
