//! Hand-written binary wire format.
//!
//! The paper's coordinator and workers exchange typed payloads (matrices,
//! frames, scalars, instruction strings). [`Wire`] is a small, explicit
//! serialization trait over `bytes::{Buf, BufMut}` — a database-systems
//! style codec with no reflection or derive machinery, so the byte layout
//! is obvious and stable.
//!
//! Layout conventions: all integers little-endian; lengths as `u64`;
//! strings as length-prefixed UTF-8; matrices as shape + payload with a
//! representation tag.

use bytes::{Buf, BufMut};
use exdra_matrix::compress::CompressedMatrix;
use exdra_matrix::frame::{Frame, FrameColumn};
use exdra_matrix::kernels::matmul::{KC, NR};
use exdra_matrix::{DenseMatrix, Matrix, SparseMatrix};

/// Error raised when decoding malformed wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

/// Result alias for decoding.
pub type DecodeResult<T> = Result<T, DecodeError>;

fn need(buf: &impl Buf, n: usize, what: &str) -> DecodeResult<()> {
    if buf.remaining() < n {
        Err(DecodeError(format!(
            "need {n} bytes for {what}, have {}",
            buf.remaining()
        )))
    } else {
        Ok(())
    }
}

/// Types that can be encoded to and decoded from the wire format.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut impl BufMut);
    /// Decodes a value, advancing `buf` past it.
    fn decode(buf: &mut impl Buf) -> DecodeResult<Self>;

    /// Convenience: encodes into a fresh byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::new();
        self.encode(&mut v);
        v
    }

    /// Convenience: decodes from a byte slice, requiring full consumption.
    fn from_bytes(mut bytes: &[u8]) -> DecodeResult<Self> {
        let v = Self::decode(&mut bytes)?;
        if !bytes.is_empty() {
            return Err(DecodeError(format!("{} trailing bytes", bytes.len())));
        }
        Ok(v)
    }
}

impl Wire for u8 {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u8(*self);
    }
    fn decode(buf: &mut impl Buf) -> DecodeResult<Self> {
        need(buf, 1, "u8")?;
        Ok(buf.get_u8())
    }
}

impl Wire for bool {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u8(u8::from(*self));
    }
    fn decode(buf: &mut impl Buf) -> DecodeResult<Self> {
        need(buf, 1, "bool")?;
        match buf.get_u8() {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(DecodeError(format!("invalid bool byte {other}"))),
        }
    }
}

impl Wire for u32 {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u32_le(*self);
    }
    fn decode(buf: &mut impl Buf) -> DecodeResult<Self> {
        need(buf, 4, "u32")?;
        Ok(buf.get_u32_le())
    }
}

impl Wire for u64 {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u64_le(*self);
    }
    fn decode(buf: &mut impl Buf) -> DecodeResult<Self> {
        need(buf, 8, "u64")?;
        Ok(buf.get_u64_le())
    }
}

impl Wire for i64 {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_i64_le(*self);
    }
    fn decode(buf: &mut impl Buf) -> DecodeResult<Self> {
        need(buf, 8, "i64")?;
        Ok(buf.get_i64_le())
    }
}

impl Wire for usize {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u64_le(*self as u64);
    }
    fn decode(buf: &mut impl Buf) -> DecodeResult<Self> {
        need(buf, 8, "usize")?;
        Ok(buf.get_u64_le() as usize)
    }
}

impl Wire for f64 {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_f64_le(*self);
    }
    fn decode(buf: &mut impl Buf) -> DecodeResult<Self> {
        need(buf, 8, "f64")?;
        Ok(buf.get_f64_le())
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut impl BufMut) {
        (self.len() as u64).encode(buf);
        buf.put_slice(self.as_bytes());
    }
    fn decode(buf: &mut impl Buf) -> DecodeResult<Self> {
        let len = u64::decode(buf)? as usize;
        need(buf, len, "string payload")?;
        let mut bytes = vec![0u8; len];
        buf.copy_to_slice(&mut bytes);
        String::from_utf8(bytes).map_err(|e| DecodeError(format!("invalid utf-8: {e}")))
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut impl BufMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
    fn decode(buf: &mut impl Buf) -> DecodeResult<Self> {
        need(buf, 1, "option tag")?;
        match buf.get_u8() {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            other => Err(DecodeError(format!("invalid option tag {other}"))),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut impl BufMut) {
        (self.len() as u64).encode(buf);
        for v in self {
            v.encode(buf);
        }
    }
    fn decode(buf: &mut impl Buf) -> DecodeResult<Self> {
        let len = u64::decode(buf)? as usize;
        // Cap the pre-allocation so a corrupt length cannot OOM us.
        let mut out = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, buf: &mut impl BufMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(buf: &mut impl Buf) -> DecodeResult<Self> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

/// Cell count above which dense payloads (de)serialize through the
/// `exdra_par` pool (64k f64 = 512 KiB on the wire).
const PAR_DENSE_CELLS: usize = 1 << 16;

/// Cells per contiguous wire panel: one `KC x NR` packed panel of the
/// blocked GEMM micro-kernels (8 KiB of f64). Parallel (de)serialization
/// chunks are rounded up to whole panels so frames stream in panel-sized
/// contiguous runs — the same unit the matmul kernels pack — and a panel
/// is never split across two pool workers.
const WIRE_PANEL_CELLS: usize = KC * NR;

/// Parallel chunk size (in cells) for an `n`-cell dense payload: the
/// pool's preferred chunk, rounded up to whole kernel panels.
fn wire_chunk_cells(n: usize) -> usize {
    exdra_par::chunk_len(n, PAR_DENSE_CELLS / 8).next_multiple_of(WIRE_PANEL_CELLS)
}

impl Wire for DenseMatrix {
    fn encode(&self, buf: &mut impl BufMut) {
        self.rows().encode(buf);
        self.cols().encode(buf);
        let values = self.values();
        if values.len() >= PAR_DENSE_CELLS {
            // Large payload: byte-convert panel-aligned chunks in
            // parallel into a staging buffer, then append in one shot.
            // Chunks are disjoint 8-byte-aligned slices, so the wire
            // bytes are identical to the serial loop below.
            let mut raw = vec![0u8; values.len() * 8];
            let chunk = wire_chunk_cells(values.len());
            exdra_par::par_chunks_mut(&mut raw, chunk * 8, |_, off, part| {
                for (d, bytes) in part.chunks_exact_mut(8).enumerate() {
                    bytes.copy_from_slice(&values[off / 8 + d].to_le_bytes());
                }
            });
            buf.put_slice(&raw);
            return;
        }
        for &v in values {
            buf.put_f64_le(v);
        }
    }
    fn decode(buf: &mut impl Buf) -> DecodeResult<Self> {
        let rows = usize::decode(buf)?;
        let cols = usize::decode(buf)?;
        let n = rows
            .checked_mul(cols)
            .ok_or_else(|| DecodeError("matrix size overflow".into()))?;
        need(buf, n * 8, "dense payload")?;
        let mut data = vec![0.0f64; n];
        if n >= PAR_DENSE_CELLS {
            let chunk = wire_chunk_cells(n);
            let convert = |raw: &[u8], data: &mut [f64]| {
                exdra_par::par_chunks_mut(data, chunk, |_, off, part| {
                    for (d, v) in part.iter_mut().enumerate() {
                        let at = (off + d) * 8;
                        *v = f64::from_le_bytes(raw[at..at + 8].try_into().unwrap());
                    }
                });
            };
            if buf.chunk().len() >= n * 8 {
                // Fast path: the whole payload is contiguous in the
                // receive buffer — convert panels straight out of it,
                // skipping the staging copy entirely.
                convert(&buf.chunk()[..n * 8], &mut data);
                buf.advance(n * 8);
            } else {
                let mut raw = vec![0u8; n * 8];
                buf.copy_to_slice(&mut raw);
                convert(&raw, &mut data);
            }
        } else {
            for v in &mut data {
                *v = buf.get_f64_le();
            }
        }
        DenseMatrix::new(rows, cols, data).map_err(|e| DecodeError(e.to_string()))
    }
}

impl Wire for SparseMatrix {
    fn encode(&self, buf: &mut impl BufMut) {
        // Shipped as a triple dump reconstructed through the validated
        // constructor on the other side.
        let d = self.to_dense();
        let (rows, cols) = d.shape();
        rows.encode(buf);
        cols.encode(buf);
        (self.nnz() as u64).encode(buf);
        for r in 0..rows {
            for (c, v) in self.row_entries(r) {
                (r as u64).encode(buf);
                (c as u64).encode(buf);
                v.encode(buf);
            }
        }
    }
    fn decode(buf: &mut impl Buf) -> DecodeResult<Self> {
        let rows = usize::decode(buf)?;
        let cols = usize::decode(buf)?;
        let nnz = u64::decode(buf)? as usize;
        let mut dense = DenseMatrix::zeros(rows, cols);
        for _ in 0..nnz {
            let r = u64::decode(buf)? as usize;
            let c = u64::decode(buf)? as usize;
            let v = f64::decode(buf)?;
            if r >= rows || c >= cols {
                return Err(DecodeError(format!("cell ({r},{c}) out of {rows}x{cols}")));
            }
            dense.set(r, c, v);
        }
        Ok(SparseMatrix::from_dense(&dense))
    }
}

impl Wire for Matrix {
    fn encode(&self, buf: &mut impl BufMut) {
        match self {
            Matrix::Dense(d) => {
                buf.put_u8(0);
                d.encode(buf);
            }
            Matrix::Sparse(s) => {
                buf.put_u8(1);
                s.encode(buf);
            }
            // Compressed intermediates are a worker-local storage
            // optimization; they travel decompressed.
            Matrix::Compressed(c) => {
                buf.put_u8(0);
                c.decompress().encode(buf);
            }
        }
    }
    fn decode(buf: &mut impl Buf) -> DecodeResult<Self> {
        need(buf, 1, "matrix tag")?;
        match buf.get_u8() {
            0 => Ok(Matrix::Dense(DenseMatrix::decode(buf)?)),
            1 => Ok(Matrix::Sparse(SparseMatrix::decode(buf)?)),
            other => Err(DecodeError(format!("invalid matrix tag {other}"))),
        }
    }
}

// CompressedMatrix has no direct wire form (see Matrix::encode); provide a
// helper for symmetry in tests.
impl Wire for CompressedMatrix {
    fn encode(&self, buf: &mut impl BufMut) {
        self.decompress().encode(buf);
    }
    fn decode(buf: &mut impl Buf) -> DecodeResult<Self> {
        Ok(CompressedMatrix::compress(&DenseMatrix::decode(buf)?))
    }
}

impl Wire for FrameColumn {
    fn encode(&self, buf: &mut impl BufMut) {
        match self {
            FrameColumn::F64(v) => {
                buf.put_u8(0);
                v.encode(buf);
            }
            FrameColumn::I64(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
            FrameColumn::Str(v) => {
                buf.put_u8(2);
                v.encode(buf);
            }
            FrameColumn::Bool(v) => {
                buf.put_u8(3);
                v.encode(buf);
            }
        }
    }
    fn decode(buf: &mut impl Buf) -> DecodeResult<Self> {
        need(buf, 1, "column tag")?;
        match buf.get_u8() {
            0 => Ok(FrameColumn::F64(Wire::decode(buf)?)),
            1 => Ok(FrameColumn::I64(Wire::decode(buf)?)),
            2 => Ok(FrameColumn::Str(Wire::decode(buf)?)),
            3 => Ok(FrameColumn::Bool(Wire::decode(buf)?)),
            other => Err(DecodeError(format!("invalid column tag {other}"))),
        }
    }
}

impl Wire for Frame {
    fn encode(&self, buf: &mut impl BufMut) {
        (self.cols() as u64).encode(buf);
        for (name, _) in self.schema() {
            name.encode(buf);
        }
        for c in 0..self.cols() {
            self.column(c).expect("in range").encode(buf);
        }
    }
    fn decode(buf: &mut impl Buf) -> DecodeResult<Self> {
        let ncols = u64::decode(buf)? as usize;
        let mut names = Vec::with_capacity(ncols.min(1 << 16));
        for _ in 0..ncols {
            names.push(String::decode(buf)?);
        }
        let mut cols = Vec::with_capacity(ncols.min(1 << 16));
        for name in names {
            cols.push((name, FrameColumn::decode(buf)?));
        }
        Frame::new(cols).map_err(|e| DecodeError(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exdra_matrix::rng::{rand_matrix, sprand_matrix};

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = v.to_bytes();
        let back = T::from_bytes(&bytes).unwrap();
        assert_eq!(&back, v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(&42u8);
        roundtrip(&true);
        roundtrip(&0xdead_beefu32);
        roundtrip(&u64::MAX);
        roundtrip(&-7i64);
        roundtrip(&3.25f64);
        roundtrip(&"hello wörld".to_string());
        roundtrip(&Some(9u64));
        roundtrip(&Option::<u64>::None);
        roundtrip(&vec![1.0f64, 2.0, f64::NEG_INFINITY]);
        roundtrip(&("k".to_string(), 3u64));
    }

    #[test]
    fn dense_matrix_roundtrip() {
        roundtrip(&rand_matrix(13, 7, -5.0, 5.0, 71));
        roundtrip(&DenseMatrix::zeros(0, 5));
    }

    #[test]
    fn large_dense_panel_path_matches_serial_bytes() {
        // 90_000 cells > PAR_DENSE_CELLS: exercises the panel-aligned
        // parallel encode and the zero-copy contiguous decode path.
        let m = rand_matrix(300, 300, -2.0, 2.0, 77);
        let bytes = m.to_bytes();
        // Wire bytes must equal the serial little-endian dump.
        let mut want = Vec::with_capacity(bytes.len());
        m.rows().encode(&mut want);
        m.cols().encode(&mut want);
        for &v in m.values() {
            want.put_f64_le(v);
        }
        assert_eq!(bytes, want, "panel encode changed the wire format");
        let back = DenseMatrix::from_bytes(&bytes).unwrap();
        assert_eq!(back.values(), m.values());

        // A non-contiguous receive buffer (empty `chunk()`) must fall
        // back to the staging copy and still produce identical bits.
        struct Staged<'a>(&'a [u8]);
        impl Buf for Staged<'_> {
            fn remaining(&self) -> usize {
                self.0.remaining()
            }
            fn copy_to_slice(&mut self, dst: &mut [u8]) {
                self.0.copy_to_slice(dst)
            }
            fn advance(&mut self, cnt: usize) {
                self.0.advance(cnt)
            }
        }
        let mut staged = Staged(&bytes);
        let back2 = DenseMatrix::decode(&mut staged).unwrap();
        assert_eq!(back2.values(), m.values());
    }

    #[test]
    fn sparse_matrix_roundtrip() {
        let s = SparseMatrix::from_dense(&sprand_matrix(20, 10, 1.0, 2.0, 0.15, 72));
        roundtrip(&s);
    }

    #[test]
    fn matrix_enum_roundtrip() {
        roundtrip(&Matrix::Dense(rand_matrix(4, 4, 0.0, 1.0, 73)));
        roundtrip(&Matrix::Sparse(SparseMatrix::from_dense(&sprand_matrix(
            8, 8, 1.0, 2.0, 0.1, 74,
        ))));
    }

    #[test]
    fn compressed_travels_dense() {
        let d = rand_matrix(6, 3, 0.0, 1.0, 75);
        let m = Matrix::Compressed(CompressedMatrix::compress(&d));
        let back = Matrix::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(back.repr_name(), "dense");
        assert!(back.to_dense().max_abs_diff(&d) < 1e-15);
    }

    #[test]
    fn frame_roundtrip() {
        let f = Frame::new(vec![
            ("a".into(), FrameColumn::Str(vec![Some("x".into()), None])),
            ("b".into(), FrameColumn::F64(vec![None, Some(2.5)])),
            ("c".into(), FrameColumn::Bool(vec![Some(true), Some(false)])),
            ("d".into(), FrameColumn::I64(vec![Some(-1), Some(9)])),
        ])
        .unwrap();
        roundtrip(&f);
    }

    #[test]
    fn truncated_input_rejected() {
        let m = rand_matrix(3, 3, 0.0, 1.0, 76);
        let bytes = m.to_bytes();
        for cut in [0, 1, 8, 15, bytes.len() - 1] {
            assert!(DenseMatrix::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = 7u64.to_bytes();
        bytes.push(0);
        assert!(u64::from_bytes(&bytes).is_err());
    }

    #[test]
    fn corrupt_tags_rejected() {
        assert!(bool::from_bytes(&[7]).is_err());
        assert!(Option::<u64>::from_bytes(&[9]).is_err());
        assert!(Matrix::from_bytes(&[9]).is_err());
    }
}
