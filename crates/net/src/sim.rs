//! Network condition simulation.
//!
//! The paper's WAN experiments run the coordinator in Copenhagen and
//! workers in Graz: "round-trip latency of about 35-60 ms, and data
//! transfer bandwidth of about 1.4-2 MB/s". We reproduce those two effects
//! — latency per message and transfer time per byte — by shaping the
//! *receive* path of a channel: a pump thread timestamps each message's
//! real arrival and withholds it until link transfer plus one-way latency
//! have elapsed, so pipelined messages overlap their latencies exactly as
//! they would on a real link. Sleeps are real wall-clock time so
//! end-to-end runtimes reflect the same costs the paper measures; a
//! `scale` factor lets the harness shrink them proportionally for fast
//! runs.

use std::time::Duration;

/// Link profile applied to each message as it crosses the channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetProfile {
    /// One-way latency added per message, in milliseconds.
    pub one_way_latency_ms: f64,
    /// Link bandwidth in bytes per second (`f64::INFINITY` = unshaped).
    pub bandwidth_bytes_per_sec: f64,
    /// Per-message latency jitter as a fraction of the one-way latency
    /// (`0.25` = ±25%). `0.0` (the default) disables jitter.
    pub jitter_frac: f64,
    /// Seed for the deterministic jitter stream. Two channels shaped with
    /// the same `(seed, message sequence)` draw identical jitter, so a
    /// shaped run is reproducible from its recorded seed.
    pub jitter_seed: u64,
}

impl NetProfile {
    /// Unshaped local-area profile: loopback/LAN latency and bandwidth are
    /// left to the real socket (the paper's 10 Gb LAN is likewise unshaped
    /// relative to its workloads).
    pub fn lan() -> Self {
        Self {
            one_way_latency_ms: 0.0,
            bandwidth_bytes_per_sec: f64::INFINITY,
            jitter_frac: 0.0,
            jitter_seed: 0,
        }
    }

    /// The paper's measured WAN band: ~40 ms RTT (20 ms one-way) and
    /// ~1.7 MB/s.
    pub fn wan() -> Self {
        Self {
            one_way_latency_ms: 20.0,
            bandwidth_bytes_per_sec: 1.7e6,
            jitter_frac: 0.0,
            jitter_seed: 0,
        }
    }

    /// Custom profile from round-trip latency and bandwidth in MB/s.
    pub fn custom(rtt_ms: f64, mbps: f64) -> Self {
        Self {
            one_way_latency_ms: rtt_ms / 2.0,
            bandwidth_bytes_per_sec: mbps * 1e6,
            jitter_frac: 0.0,
            jitter_seed: 0,
        }
    }

    /// Adds seeded latency jitter: each message's propagation latency is
    /// perturbed by a deterministic draw in `±frac` of the base latency,
    /// keyed by `(seed, message sequence number)`.
    pub fn with_jitter(mut self, frac: f64, seed: u64) -> Self {
        self.jitter_frac = frac.max(0.0);
        self.jitter_seed = seed;
        self
    }

    /// Scales delays down by `factor` (e.g. 0.1 = ten times faster), for
    /// quick experiment runs; relative overheads are preserved because both
    /// the latency and transfer terms scale together (and jitter is
    /// relative, so it scales with them).
    pub fn scaled(self, factor: f64) -> Self {
        Self {
            one_way_latency_ms: self.one_way_latency_ms * factor,
            bandwidth_bytes_per_sec: if self.bandwidth_bytes_per_sec.is_finite() {
                self.bandwidth_bytes_per_sec / factor
            } else {
                self.bandwidth_bytes_per_sec
            },
            ..self
        }
    }

    /// True when the profile adds no shaping at all.
    pub fn is_unshaped(&self) -> bool {
        self.one_way_latency_ms == 0.0 && self.bandwidth_bytes_per_sec.is_infinite()
    }

    /// The one-way propagation latency as a [`Duration`].
    pub fn latency(&self) -> Duration {
        Duration::from_secs_f64(self.one_way_latency_ms / 1e3)
    }

    /// The one-way latency for message number `seq` on this link,
    /// including the deterministic jitter draw (identical to
    /// [`NetProfile::latency`] when `jitter_frac` is 0).
    pub fn latency_jittered(&self, seq: u64) -> Duration {
        if self.jitter_frac == 0.0 {
            return self.latency();
        }
        // splitmix64 over (seed, seq): a full avalanche per message, so
        // consecutive sequence numbers draw independent-looking jitter
        // while the whole stream replays from the recorded seed.
        let mut s = self
            .jitter_seed
            .wrapping_add(seq.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        s = (s ^ (s >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        s = (s ^ (s >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        s ^= s >> 31;
        // Uniform in [-1, 1).
        let unit = (s >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0;
        let ms = (self.one_way_latency_ms * (1.0 + self.jitter_frac * unit)).max(0.0);
        Duration::from_secs_f64(ms / 1e3)
    }

    /// The link-occupancy (serialization) time for `bytes` at the
    /// profile's bandwidth. This is the component that stays serial when
    /// messages are pipelined: concurrent messages share the link, so
    /// their transfer times add while their latencies overlap.
    pub fn transfer_time(&self, bytes: usize) -> Duration {
        if self.bandwidth_bytes_per_sec.is_finite() {
            Duration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec)
        } else {
            Duration::ZERO
        }
    }

    /// The simulated delay for sending one message of `bytes` over an
    /// otherwise idle link: propagation latency plus transfer time.
    pub fn delay_for(&self, bytes: usize) -> Duration {
        self.latency() + self.transfer_time(bytes)
    }

    /// Sleeps for the simulated delay of one `bytes`-sized message.
    pub fn apply(&self, bytes: usize) {
        if !self.is_unshaped() {
            std::thread::sleep(self.delay_for(bytes));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lan_is_unshaped() {
        assert!(NetProfile::lan().is_unshaped());
        assert_eq!(NetProfile::lan().delay_for(1 << 20), Duration::ZERO);
    }

    #[test]
    fn wan_delay_combines_latency_and_transfer() {
        let p = NetProfile::wan();
        let d = p.delay_for(1_700_000); // 1.7 MB at 1.7 MB/s = 1 s
        assert!((d.as_secs_f64() - 1.02).abs() < 1e-9, "{d:?}");
    }

    #[test]
    fn custom_profile_from_rtt() {
        let p = NetProfile::custom(50.0, 2.0);
        assert_eq!(p.one_way_latency_ms, 25.0);
        assert_eq!(p.bandwidth_bytes_per_sec, 2e6);
    }

    #[test]
    fn scaling_preserves_ratio() {
        let p = NetProfile::wan();
        let s = p.scaled(0.1);
        let big = 1 << 20;
        let ratio = p.delay_for(big).as_secs_f64() / s.delay_for(big).as_secs_f64();
        assert!((ratio - 10.0).abs() < 1e-6);
        let ratio_small = p.delay_for(64).as_secs_f64() / s.delay_for(64).as_secs_f64();
        // Nanosecond rounding in Duration loosens the small-message ratio.
        assert!((ratio_small - 10.0).abs() < 1e-3);
    }

    #[test]
    fn delay_math_decomposes_into_latency_and_transfer() {
        let p = NetProfile::wan();
        assert_eq!(p.latency(), Duration::from_millis(20));
        // 170 KB at 1.7 MB/s = 100 ms of link occupancy.
        let t = p.transfer_time(170_000);
        assert!((t.as_secs_f64() - 0.1).abs() < 1e-9, "{t:?}");
        assert_eq!(p.delay_for(170_000), p.latency() + t);
        // Zero-byte messages still pay propagation latency.
        assert_eq!(p.delay_for(0), p.latency());
        // Unshaped profiles pay nothing at all.
        assert_eq!(NetProfile::lan().latency(), Duration::ZERO);
        assert_eq!(NetProfile::lan().transfer_time(1 << 30), Duration::ZERO);
        // Latency-only profiles are byte-size independent.
        let lat_only = NetProfile {
            one_way_latency_ms: 5.0,
            bandwidth_bytes_per_sec: f64::INFINITY,
            jitter_frac: 0.0,
            jitter_seed: 0,
        };
        assert_eq!(lat_only.delay_for(0), lat_only.delay_for(1 << 20));
        assert!(!lat_only.is_unshaped());
    }

    #[test]
    fn jitter_is_seeded_bounded_and_deterministic() {
        let base = NetProfile::wan();
        // No jitter: jittered latency is exactly the base latency.
        assert_eq!(base.latency_jittered(17), base.latency());
        let p = base.with_jitter(0.25, 99);
        let lo = base.one_way_latency_ms * 0.75 / 1e3;
        let hi = base.one_way_latency_ms * 1.25 / 1e3;
        let mut distinct = false;
        for seq in 0..64u64 {
            let d = p.latency_jittered(seq).as_secs_f64();
            assert!((lo..=hi).contains(&d), "seq {seq}: {d} outside ±25%");
            // Same (seed, seq) replays the identical draw.
            assert_eq!(p.latency_jittered(seq), p.latency_jittered(seq));
            if p.latency_jittered(seq) != p.latency() {
                distinct = true;
            }
        }
        assert!(distinct, "jitter never moved off the base latency");
        // A different seed yields a different stream.
        let q = base.with_jitter(0.25, 100);
        assert!((0..64u64).any(|s| p.latency_jittered(s) != q.latency_jittered(s)));
        // Scaling preserves the relative jitter band.
        let s = p.scaled(0.1);
        assert_eq!(s.jitter_frac, p.jitter_frac);
        assert_eq!(s.jitter_seed, p.jitter_seed);
    }

    #[test]
    fn apply_sleeps_approximately() {
        let p = NetProfile::custom(10.0, 1000.0);
        let t0 = std::time::Instant::now();
        p.apply(0);
        let elapsed = t0.elapsed();
        assert!(elapsed >= Duration::from_millis(4), "{elapsed:?}");
    }
}
