#![warn(missing_docs)]
//! # exdra-net
//!
//! Network substrate of the ExDRa reproduction — the counterpart of the
//! Netty layer the paper's federated backend uses for "RPCs and data
//! transfers" (§4.1).
//!
//! Components:
//!
//! * [`codec`] — hand-written binary wire format ([`codec::Wire`]) for
//!   primitives, matrices, and frames,
//! * [`framing`] — length-prefixed message framing over any byte stream,
//! * [`transport`] — blocking [`transport::Channel`]s: real TCP sockets and
//!   an in-memory pair for deterministic tests, plus composable wrappers,
//! * [`sim`] — WAN simulation (round-trip latency + bandwidth caps) standing
//!   in for the paper's Copenhagen–Graz link,
//! * [`crypto`] — ChaCha20-encrypted channels standing in for Netty's
//!   `SslContext` (see DESIGN.md §4 for the substitution rationale),
//! * [`stats`] — per-channel byte/message/time accounting used by the
//!   communication experiments (Figure 6).

pub mod codec;
pub mod crypto;
pub mod framing;
pub mod sim;
pub mod stats;
pub mod transport;

pub use codec::Wire;
pub use sim::NetProfile;
pub use stats::NetStats;
pub use transport::{Channel, PipelinedChannel, RecvHalf, SendHalf, SplitResult, TcpChannel};
