//! Length-prefixed message framing over any byte stream.
//!
//! Every message on the wire is `[u32 length LE][payload]`. A maximum frame
//! size guards against corrupt prefixes. The same framing is used by plain,
//! encrypted, and shaped channels.
//!
//! ## Correlation tagging
//!
//! Pipelined RPC multiplexes several in-flight requests over one
//! connection, so replies need a way back to their originating request.
//! A *tagged* request payload is
//!
//! ```text
//! [PIPELINE_MAGIC u64 LE][correlation id u64 LE][envelope bytes]
//! ```
//!
//! and the matching reply is `[correlation id u64 LE][reply bytes]`. The
//! magic is `u64::MAX`, a value the legacy (untagged) protocol never puts
//! in its first eight bytes — an `RpcEnvelope` starts with its trace id,
//! which the coordinator clamps below `u64::MAX` — so a receiver can
//! sniff each frame and serve tagged and untagged traffic on the same
//! connection. Untagged frames are byte-for-byte the pre-pipelining
//! protocol, which keeps window=1 wire-compatible with older peers.

use std::io::{self, Read, Write};

/// Maximum accepted frame payload (256 MiB) — larger prefixes indicate
/// corruption or protocol mismatch.
pub const MAX_FRAME: u32 = 256 * 1024 * 1024;

/// First eight bytes of a correlation-tagged request payload. Legacy
/// envelopes start with a trace id that is always clamped below this
/// value, so the two framings are distinguishable per message.
pub const PIPELINE_MAGIC: u64 = u64::MAX;

/// Upper bound on a single `read` pre-allocation. A corrupt-but-in-range
/// length prefix therefore cannot make us allocate 256 MiB up front; the
/// payload buffer grows chunk by chunk as bytes actually arrive.
const READ_CHUNK: usize = 4 * 1024 * 1024;

/// Writes one length-prefixed frame, enforcing `max_frame`.
pub fn write_frame_limited(w: &mut impl Write, payload: &[u8], max_frame: u32) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    if len > max_frame {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame too large",
        ));
    }
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    write_frame_limited(w, payload, MAX_FRAME)
}

/// Reads one length-prefixed frame, enforcing `max_frame`.
pub fn read_frame_limited(r: &mut impl Read, max_frame: u32) -> io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len > max_frame {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds maximum"),
        ));
    }
    let len = len as usize;
    let mut payload = Vec::with_capacity(len.min(READ_CHUNK));
    let mut remaining = len;
    while remaining > 0 {
        let chunk = remaining.min(READ_CHUNK);
        let start = payload.len();
        payload.resize(start + chunk, 0);
        r.read_exact(&mut payload[start..])?;
        remaining -= chunk;
    }
    Ok(payload)
}

/// Reads one length-prefixed frame.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    read_frame_limited(r, MAX_FRAME)
}

/// Builds a correlation-tagged request payload:
/// `[PIPELINE_MAGIC][corr][body]`.
pub fn tag_request(corr: u64, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + body.len());
    out.extend_from_slice(&PIPELINE_MAGIC.to_le_bytes());
    out.extend_from_slice(&corr.to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Splits a tagged request payload into `(corr, body)`. Returns `None`
/// for legacy (untagged) payloads, which do not start with the magic.
pub fn untag_request(payload: &[u8]) -> Option<(u64, &[u8])> {
    if payload.len() < 16 {
        return None;
    }
    let magic = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
    if magic != PIPELINE_MAGIC {
        return None;
    }
    let corr = u64::from_le_bytes(payload[8..16].try_into().expect("8 bytes"));
    Some((corr, &payload[16..]))
}

/// Reads the `(trace_id, parent_span_id)` an `RpcEnvelope`-shaped
/// request payload leads with, seeing through an optional correlation
/// tag. Returns `None` for payloads too short to carry a trace header
/// or whose trace id is `0` ("no context"). Lets an intermediary (the
/// coordinator front door) attribute a forwarded frame to its trace
/// without decoding the envelope.
pub fn peek_trace(payload: &[u8]) -> Option<(u64, u64)> {
    let body = match untag_request(payload) {
        Some((_, body)) => body,
        None => payload,
    };
    if body.len() < 16 {
        return None;
    }
    let trace_id = u64::from_le_bytes(body[..8].try_into().expect("8 bytes"));
    if trace_id == 0 || trace_id == PIPELINE_MAGIC {
        return None;
    }
    let parent = u64::from_le_bytes(body[8..16].try_into().expect("8 bytes"));
    Some((trace_id, parent))
}

/// Builds a correlated reply payload: `[corr][body]`.
pub fn tag_reply(corr: u64, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + body.len());
    out.extend_from_slice(&corr.to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Splits a correlated reply payload into `(corr, body)`.
pub fn untag_reply(payload: &[u8]) -> io::Result<(u64, &[u8])> {
    if payload.len() < 8 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "correlated reply shorter than its correlation id",
        ));
    }
    let corr = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
    Ok((corr, &payload[8..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[7u8; 1000]).unwrap();
        let mut c = Cursor::new(buf);
        assert_eq!(read_frame(&mut c).unwrap(), b"hello");
        assert_eq!(read_frame(&mut c).unwrap(), b"");
        assert_eq!(read_frame(&mut c).unwrap(), vec![7u8; 1000]);
    }

    #[test]
    fn roundtrip_at_size_boundaries() {
        // Payload sizes 0 and 1 through the public API; max-1, max, and
        // max+1 against an explicit limit so the boundary semantics are
        // tested exactly without allocating 256 MiB.
        for payload in [vec![], vec![0xabu8]] {
            let mut buf = Vec::new();
            write_frame(&mut buf, &payload).unwrap();
            assert_eq!(buf.len(), 4 + payload.len());
            assert_eq!(read_frame(&mut Cursor::new(buf)).unwrap(), payload);
        }
        let max = 64u32;
        for len in [max - 1, max] {
            let payload = vec![0x5au8; len as usize];
            let mut buf = Vec::new();
            write_frame_limited(&mut buf, &payload, max).unwrap();
            let got = read_frame_limited(&mut Cursor::new(buf), max).unwrap();
            assert_eq!(got, payload, "len {len}");
        }
        // One past the limit: rejected on write and on read.
        let over = vec![0u8; (max + 1) as usize];
        let mut buf = Vec::new();
        let err = write_frame_limited(&mut buf, &over, max).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let mut raw = (max + 1).to_le_bytes().to_vec();
        raw.extend_from_slice(&over);
        let err = read_frame_limited(&mut Cursor::new(raw), max).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn max_frame_prefix_accepted_but_truncation_detected() {
        // A MAX_FRAME-length prefix passes the size check (it is within
        // bounds) and the chunked reader then hits honest EOF instead of
        // allocating the full 256 MiB up front.
        let mut raw = MAX_FRAME.to_le_bytes().to_vec();
        raw.extend_from_slice(&[1, 2, 3]);
        let err = read_frame(&mut Cursor::new(raw)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_prefix_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut c = Cursor::new(buf);
        let err = read_frame(&mut c).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let mut just_over = Vec::new();
        just_over.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        assert!(read_frame(&mut Cursor::new(just_over)).is_err());
    }

    #[test]
    fn truncated_payload_errors() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&10u32.to_le_bytes());
        buf.extend_from_slice(b"abc");
        let mut c = Cursor::new(buf);
        assert!(read_frame(&mut c).is_err());
    }

    #[test]
    fn truncated_prefix_errors() {
        for cut in 0..4 {
            let buf = vec![0u8; cut];
            assert!(read_frame(&mut Cursor::new(buf)).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn request_tag_roundtrip_and_sniffing() {
        let tagged = tag_request(42, b"envelope");
        assert_eq!(untag_request(&tagged), Some((42, &b"envelope"[..])));
        // A legacy envelope (starts with a sub-MAX trace id) is not
        // mistaken for a tagged request.
        let mut legacy = 7u64.to_le_bytes().to_vec();
        legacy.extend_from_slice(&1u64.to_le_bytes());
        legacy.extend_from_slice(b"rest");
        assert_eq!(untag_request(&legacy), None);
        // Too-short payloads are never tagged.
        assert_eq!(untag_request(&PIPELINE_MAGIC.to_le_bytes()), None);
        assert_eq!(untag_request(b""), None);
    }

    #[test]
    fn peek_trace_sees_through_tagging() {
        // Envelope-shaped body: trace id 7, parent span 9, then payload.
        let mut body = 7u64.to_le_bytes().to_vec();
        body.extend_from_slice(&9u64.to_le_bytes());
        body.extend_from_slice(b"rest");
        assert_eq!(peek_trace(&body), Some((7, 9)));
        assert_eq!(peek_trace(&tag_request(3, &body)), Some((7, 9)));
        // No context (trace id 0), too short, or empty: nothing to peek.
        let mut none = 0u64.to_le_bytes().to_vec();
        none.extend_from_slice(&9u64.to_le_bytes());
        assert_eq!(peek_trace(&none), None);
        assert_eq!(peek_trace(b"short"), None);
        assert_eq!(peek_trace(&tag_request(3, b"")), None);
    }

    #[test]
    fn reply_tag_roundtrip() {
        let tagged = tag_reply(9, b"reply");
        let (corr, body) = untag_reply(&tagged).unwrap();
        assert_eq!(corr, 9);
        assert_eq!(body, b"reply");
        assert_eq!(untag_reply(&tag_reply(0, b"")).unwrap(), (0, &b""[..]));
        assert!(untag_reply(&[1, 2, 3]).is_err());
    }
}
