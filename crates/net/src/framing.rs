//! Length-prefixed message framing over any byte stream.
//!
//! Every message on the wire is `[u32 length LE][payload]`. A maximum frame
//! size guards against corrupt prefixes. The same framing is used by plain,
//! encrypted, and shaped channels.

use std::io::{self, Read, Write};

/// Maximum accepted frame payload (256 MiB) — larger prefixes indicate
/// corruption or protocol mismatch.
pub const MAX_FRAME: u32 = 256 * 1024 * 1024;

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame too large",
        ));
    }
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds maximum"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[7u8; 1000]).unwrap();
        let mut c = Cursor::new(buf);
        assert_eq!(read_frame(&mut c).unwrap(), b"hello");
        assert_eq!(read_frame(&mut c).unwrap(), b"");
        assert_eq!(read_frame(&mut c).unwrap(), vec![7u8; 1000]);
    }

    #[test]
    fn oversized_prefix_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut c = Cursor::new(buf);
        assert!(read_frame(&mut c).is_err());
    }

    #[test]
    fn truncated_payload_errors() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&10u32.to_le_bytes());
        buf.extend_from_slice(b"abc");
        let mut c = Cursor::new(buf);
        assert!(read_frame(&mut c).is_err());
    }
}
