//! Channel encryption: ChaCha20 (RFC 8439) with a keyed integrity tag.
//!
//! Stands in for the Netty `SslContext` encryption of the paper's federated
//! backend (Figure 6 measures its overhead at roughly 10–15 %). The relevant
//! cost in that experiment is symmetric-cipher throughput on bulk matrix
//! transfers, which a real software ChaCha20 reproduces faithfully. Key
//! exchange/handshakes are out of scope: enterprise federated deployments
//! use pre-provisioned credentials, so we accept a pre-shared 256-bit key.

/// A 256-bit pre-shared channel key.
#[derive(Clone, Copy)]
pub struct ChannelKey(pub [u8; 32]);

impl ChannelKey {
    /// Derives a key from a passphrase by iterated mixing (test/demo
    /// convenience; production deployments provision random keys).
    pub fn from_passphrase(pass: &str) -> Self {
        let mut state = [0x6a09e667u32; 8];
        for (i, b) in pass.bytes().enumerate() {
            let idx = i % 8;
            state[idx] = state[idx].wrapping_mul(0x01000193) ^ (b as u32) ^ (i as u32);
        }
        // Run a few ChaCha quarter-round mixes for diffusion.
        for _ in 0..16 {
            quarter_round(&mut state, 0, 1, 2, 3);
            quarter_round(&mut state, 4, 5, 6, 7);
            quarter_round(&mut state, 0, 5, 2, 7);
            quarter_round(&mut state, 4, 1, 6, 3);
        }
        let mut key = [0u8; 32];
        for (i, w) in state.iter().enumerate() {
            key[i * 4..(i + 1) * 4].copy_from_slice(&w.to_le_bytes());
        }
        ChannelKey(key)
    }
}

#[inline]
fn quarter_round(s: &mut [u32], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

/// Produces one 64-byte ChaCha20 keystream block (RFC 8439 §2.3).
fn chacha20_block(key: &[u8; 32], counter: u32, nonce: &[u8; 12]) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[0] = 0x61707865;
    state[1] = 0x3320646e;
    state[2] = 0x79622d32;
    state[3] = 0x6b206574;
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes(key[i * 4..(i + 1) * 4].try_into().unwrap());
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes(nonce[i * 4..(i + 1) * 4].try_into().unwrap());
    }
    let mut working = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let v = working[i].wrapping_add(state[i]);
        out[i * 4..(i + 1) * 4].copy_from_slice(&v.to_le_bytes());
    }
    out
}

/// XORs `data` with the ChaCha20 keystream for (key, nonce), starting at
/// block counter 1 (counter 0 is reserved for the tag key, as in AEAD
/// constructions).
fn chacha20_xor(key: &[u8; 32], nonce: &[u8; 12], data: &mut [u8]) {
    // Counter mode is embarrassingly parallel: each 64-byte block's
    // keystream depends only on its block counter, so chunks of whole
    // blocks fan out across the `exdra_par` pool with the counter
    // re-derived from the byte offset — ciphertext bytes are identical
    // to the serial loop. Chunks are block-multiples so every block
    // boundary lands on a chunk boundary.
    const PAR_MIN_BLOCKS: usize = 1 << 12; // 256 KiB per chunk floor
    let blocks = data.len().div_ceil(64);
    let blocks_per_chunk = exdra_par::chunk_len(blocks, PAR_MIN_BLOCKS);
    exdra_par::par_chunks_mut(data, blocks_per_chunk * 64, |_, off, part| {
        let mut counter = 1u32.wrapping_add((off / 64) as u32);
        for chunk in part.chunks_mut(64) {
            let ks = chacha20_block(key, counter, nonce);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
            counter = counter.wrapping_add(1);
        }
    });
}

/// Computes a 16-byte integrity tag over the ciphertext, keyed by keystream
/// block 0. (A keyed sponge over the one-time key — simpler than Poly1305
/// but serves the same tamper-detection role for the reproduction.)
fn tag(key: &[u8; 32], nonce: &[u8; 12], ciphertext: &[u8]) -> [u8; 16] {
    let otk = chacha20_block(key, 0, nonce);
    let mut s: [u64; 2] = [
        u64::from_le_bytes(otk[0..8].try_into().unwrap()),
        u64::from_le_bytes(otk[8..16].try_into().unwrap()),
    ];
    let mix = |s: &mut [u64; 2], v: u64| {
        s[0] = (s[0] ^ v).wrapping_mul(0x9E3779B97F4A7C15).rotate_left(31);
        s[1] = s[1]
            .wrapping_add(s[0] ^ v.rotate_left(17))
            .wrapping_mul(0xBF58476D1CE4E5B9);
    };
    for chunk in ciphertext.chunks(8) {
        let mut b = [0u8; 8];
        b[..chunk.len()].copy_from_slice(chunk);
        mix(&mut s, u64::from_le_bytes(b));
    }
    mix(&mut s, ciphertext.len() as u64);
    let mut out = [0u8; 16];
    out[0..8].copy_from_slice(&s[0].to_le_bytes());
    out[8..16].copy_from_slice(&s[1].to_le_bytes());
    out
}

/// Stateful cipher for one channel direction: a monotone message counter
/// provides the per-message nonce, so each frame uses a fresh keystream.
pub struct CipherState {
    key: [u8; 32],
    /// Message counter; combined with the direction byte into the nonce.
    seq: u64,
    /// Direction discriminator (0 = client→server, 1 = server→client) so
    /// both directions derive disjoint nonces from the shared key.
    direction: u8,
}

impl CipherState {
    /// Creates cipher state for one direction of a channel.
    pub fn new(key: ChannelKey, direction: u8) -> Self {
        Self {
            key: key.0,
            seq: 0,
            direction,
        }
    }

    fn nonce(&self) -> [u8; 12] {
        let mut n = [0u8; 12];
        n[0] = self.direction;
        n[4..12].copy_from_slice(&self.seq.to_le_bytes());
        n
    }

    /// Encrypts a plaintext into `ciphertext || tag`, advancing the nonce.
    pub fn seal(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let nonce = self.nonce();
        self.seq += 1;
        let mut out = plaintext.to_vec();
        chacha20_xor(&self.key, &nonce, &mut out);
        let t = tag(&self.key, &nonce, &out);
        out.extend_from_slice(&t);
        out
    }

    /// Verifies and decrypts a `ciphertext || tag` message, advancing the
    /// nonce. Returns `None` on tag mismatch or truncation.
    pub fn open(&mut self, sealed: &[u8]) -> Option<Vec<u8>> {
        if sealed.len() < 16 {
            return None;
        }
        let nonce = self.nonce();
        let (ct, t) = sealed.split_at(sealed.len() - 16);
        let expect = tag(&self.key, &nonce, ct);
        // Constant-time-ish comparison.
        let mut diff = 0u8;
        for (a, b) in t.iter().zip(expect.iter()) {
            diff |= a ^ b;
        }
        if diff != 0 {
            return None;
        }
        self.seq += 1;
        let mut out = ct.to_vec();
        chacha20_xor(&self.key, &nonce, &mut out);
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.3.2 test vector.
    #[test]
    fn chacha20_block_rfc_vector() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let block = chacha20_block(&key, 1, &nonce);
        let expected_start: [u8; 16] = [
            0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20,
            0x71, 0xc4,
        ];
        assert_eq!(&block[..16], &expected_start);
    }

    /// RFC 8439 §2.4.2 encryption test vector.
    #[test]
    fn chacha20_encrypt_rfc_vector() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let mut data = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.".to_vec();
        chacha20_xor(&key, &nonce, &mut data);
        assert_eq!(
            &data[..8],
            &[0x6e, 0x2e, 0x35, 0x9a, 0x25, 0x68, 0xf9, 0x80]
        );
        assert_eq!(data[data.len() - 1], 0x4d);
    }

    #[test]
    fn seal_open_roundtrip() {
        let key = ChannelKey::from_passphrase("exdra-test");
        let mut tx = CipherState::new(key, 0);
        let mut rx = CipherState::new(key, 0);
        for msg in [&b"hello"[..], &[0u8; 1000], &[]] {
            let sealed = tx.seal(msg);
            let opened = rx.open(&sealed).expect("valid tag");
            assert_eq!(opened, msg);
        }
    }

    #[test]
    fn directions_use_disjoint_nonces() {
        let key = ChannelKey::from_passphrase("exdra-test");
        let mut a = CipherState::new(key, 0);
        let mut b = CipherState::new(key, 1);
        assert_ne!(a.seal(b"same"), b.seal(b"same"));
    }

    #[test]
    fn tamper_detected() {
        let key = ChannelKey::from_passphrase("k");
        let mut tx = CipherState::new(key, 0);
        let mut rx = CipherState::new(key, 0);
        let mut sealed = tx.seal(b"payload");
        sealed[0] ^= 1;
        assert!(rx.open(&sealed).is_none());
    }

    #[test]
    fn replay_rejected_by_sequence() {
        let key = ChannelKey::from_passphrase("k");
        let mut tx = CipherState::new(key, 0);
        let mut rx = CipherState::new(key, 0);
        let first = tx.seal(b"one");
        assert!(rx.open(&first).is_some());
        // Replaying the same sealed message fails: rx nonce has advanced.
        assert!(rx.open(&first).is_none());
    }

    #[test]
    fn wrong_key_rejected() {
        let mut tx = CipherState::new(ChannelKey::from_passphrase("a"), 0);
        let mut rx = CipherState::new(ChannelKey::from_passphrase("b"), 0);
        assert!(rx.open(&tx.seal(b"msg")).is_none());
    }
}
