#![warn(missing_docs)]
//! # exdra-paramserv
//!
//! Data-parallel parameter servers (paper §4.3): the classic architecture —
//! a server holding the model, workers computing mini-batch gradients over
//! disjoint partitions — in two deployments:
//!
//! * [`local`] — multi-threaded in-process workers (SystemDS' local PS),
//! * [`fed`] — the *federated* parameter server: workers are the standing
//!   federated sites; gradient/update functions are installed at setup
//!   (shipped by name over `EXEC_UDF`); per-epoch synchronization exchanges
//!   only models/gradients, never raw data.
//!
//! [`balance`] implements the paper's imbalance handling: replication of
//! small partitions with adjusted aggregation weights.

pub mod balance;
pub mod fed;
pub mod local;

use exdra_matrix::DenseMatrix;

/// Update strategy (paper: `utype`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateType {
    /// Bulk-synchronous parallel: the server waits for all workers each
    /// synchronization round.
    Bsp,
    /// Asynchronous parallel: updates apply as they arrive.
    Asp,
}

/// Synchronization frequency (paper: `freq`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateFreq {
    /// Push accrued updates after every local mini-batch.
    Batch,
    /// Update locally per batch; push once per epoch (the federated
    /// default — "after a fixed number of batches, the accrued gradients
    /// are sent to the server").
    Epoch,
}

/// Partial-failure tolerance of the synchronization barrier (federated
/// deployments only; local workers share the coordinator's fate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AggregationMode {
    /// Every partition must contribute each round; any worker failure
    /// aborts training (exact BSP semantics).
    Strict,
    /// Straggler/failure tolerant: a round commits once partitions
    /// carrying at least `min_weight` of the total aggregation weight
    /// have contributed. Failed partitions are skipped for the round and
    /// the surviving weights renormalized; skipped contributions are
    /// counted in [`local::PsRun::skipped_updates`].
    Quorum {
        /// Minimum contributed weight fraction in `(0, 1]`.
        min_weight: f64,
    },
}

/// Parameter-server configuration (the `paramserv(...)` argument list).
#[derive(Debug, Clone, Copy)]
pub struct PsConfig {
    /// Update strategy.
    pub update_type: UpdateType,
    /// Synchronization frequency.
    pub freq: UpdateFreq,
    /// Number of passes over the (local) data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate.
    pub lr: f64,
    /// SGD momentum coefficient.
    pub momentum: f64,
    /// Nesterov momentum flag.
    pub nesterov: bool,
    /// Shuffle/init seed.
    pub seed: u64,
    /// Partial-failure tolerance of each synchronization round.
    pub aggregation: AggregationMode,
    /// Stale-synchronous bound for [`UpdateType::Asp`]: a partition at
    /// epoch `e` blocks until every active partition has completed at
    /// least epoch `e - bound`. `None` (the default) is fully
    /// asynchronous; `Some(0)` degenerates to BSP-like lockstep. Ignored
    /// under [`UpdateType::Bsp`], whose barrier is already exact.
    pub max_staleness: Option<usize>,
}

impl Default for PsConfig {
    fn default() -> Self {
        Self {
            update_type: UpdateType::Bsp,
            freq: UpdateFreq::Epoch,
            epochs: 5,
            batch_size: 64,
            lr: 0.05,
            momentum: 0.9,
            nesterov: true,
            seed: 42,
            aggregation: AggregationMode::Strict,
            max_staleness: None,
        }
    }
}

/// Weighted in-place model aggregation: `acc += weight * delta`.
pub(crate) fn axpy_model(acc: &mut [DenseMatrix], delta: &[DenseMatrix], weight: f64) {
    for (a, d) in acc.iter_mut().zip(delta) {
        for (av, &dv) in a.values_mut().iter_mut().zip(d.values()) {
            *av += weight * dv;
        }
    }
}

/// Element-wise model difference `a - b`.
pub(crate) fn model_delta(a: &[DenseMatrix], b: &[DenseMatrix]) -> Vec<DenseMatrix> {
    a.iter()
        .zip(b)
        .map(|(x, y)| x.zip(y, "delta", |p, q| p - q).expect("aligned models"))
        .collect()
}
