//! The federated parameter server (paper §4.3).
//!
//! Architecture: the server runs at the coordinator; workers at the
//! federated sites compute gradients on their private partitions. "During
//! setup, we serialize the gradient and update functions and send them to
//! the workers" — here the functions are installed by name
//! ([`install_ps_udf`], see DESIGN.md §4 on the substitution) and invoked
//! through `EXEC_UDF` requests. "Depending on the update frequency, the
//! model is updated at the worker, and after a fixed number of batches,
//! the accrued gradients are sent to the server for aggregation."
//!
//! Only models and model deltas cross the network; the raw federated
//! partitions never do.

use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use exdra_core::coordinator::expect_data;
use exdra_core::fed::FedMatrix;
use exdra_core::protocol::Request;
use exdra_core::supervision::LatencyTracker;
use exdra_core::udf::Udf;
use exdra_core::worker::Worker;
use exdra_core::{DataValue, FedContext, Result, RuntimeError};
use exdra_matrix::kernels::reorg;
use exdra_matrix::{DenseMatrix, Matrix};

use exdra_ml::nn::{Network, Sgd};

use crate::balance::BalancePlan;
use crate::local::PsRun;
use crate::{axpy_model, model_delta, AggregationMode, PsConfig, UpdateType};

/// Registry name of the parameter-server epoch function.
pub const PS_EPOCH_UDF: &str = "ps.epoch";

fn model_to_value(model: &[DenseMatrix]) -> DataValue {
    DataValue::List(
        model
            .iter()
            .map(|m| DataValue::Matrix(Matrix::Dense(m.clone())))
            .collect(),
    )
}

fn value_to_model(v: &DataValue) -> Result<Vec<DenseMatrix>> {
    match v {
        DataValue::List(items) => items.iter().map(|i| i.to_dense()).collect(),
        other => Err(RuntimeError::Invalid(format!(
            "expected model list, found {}",
            other.type_name()
        ))),
    }
}

/// Installs the gradient/update function on a worker (the setup-time
/// function shipment of §4.3). The network architecture is captured; model
/// parameters arrive with every invocation.
pub fn install_ps_udf(worker: &Worker, net: Network) {
    worker.register_udf(
        PS_EPOCH_UDF,
        Arc::new(move |symbols, args| {
            // symbols: [X partition, y one-hot partition]
            // args: [model list, lr, momentum, nesterov, batch_size, seed]
            if symbols.len() != 2 || args.len() != 6 {
                return Err(RuntimeError::Invalid(format!(
                    "ps.epoch: expected 2 symbols + 6 args, got {} + {}",
                    symbols.len(),
                    args.len()
                )));
            }
            let x = symbols[0].to_dense()?;
            let y = symbols[1].to_dense()?;
            let snapshot = value_to_model(&args[0])?;
            let lr = args[1].as_scalar()?;
            let momentum = args[2].as_scalar()?;
            let nesterov = args[3].as_scalar()? != 0.0;
            let batch_size = args[4].as_scalar()? as usize;
            let seed = args[5].as_scalar()? as u64;

            let mut local = snapshot.clone();
            let mut sgd = Sgd::new(lr, momentum, nesterov);
            let mut net = net.clone();
            let n = x.rows();
            // Local shuffling only — the raw rows never leave the site.
            let perm = exdra_matrix::rng::rand_permutation(n, seed);
            let xs = reorg::gather_rows(&x, &perm)?;
            let ys = reorg::gather_rows(&y, &perm)?;
            let mut total = 0.0;
            let mut batches = 0usize;
            let mut lo = 0usize;
            while lo < n {
                let hi = (lo + batch_size).min(n);
                let xb = reorg::index(&xs, lo, hi, 0, xs.cols())?;
                let yb = reorg::index(&ys, lo, hi, 0, ys.cols())?;
                net.set_params(&local)?;
                let (loss, grads) = net.loss_grad(&xb, &yb)?;
                sgd.step(&mut local, &grads);
                total += loss;
                batches += 1;
                lo = hi;
            }
            let delta = model_delta(&local, &snapshot);
            Ok(Some(DataValue::List(vec![
                model_to_value(&delta),
                DataValue::Scalar(total / batches.max(1) as f64),
            ])))
        }),
    );
}

/// Labels aligned with a row-partitioned federated matrix: per-partition
/// label symbol IDs at the workers.
pub struct FedLabels {
    /// `(worker, symbol id)` per partition, in partition order.
    pub ids: Vec<(usize, u64)>,
}

/// Scatters coordinator-local one-hot labels to the workers, sliced to
/// align with the federated feature partitions.
pub fn scatter_labels(x: &FedMatrix, y_onehot: &DenseMatrix) -> Result<FedLabels> {
    if y_onehot.rows() != x.rows() {
        return Err(RuntimeError::Invalid(format!(
            "labels have {} rows, features {}",
            y_onehot.rows(),
            x.rows()
        )));
    }
    let ctx = x.ctx();
    let mut ids = Vec::with_capacity(x.parts().len());
    let mut batches = vec![Vec::new(); ctx.num_workers()];
    for p in x.parts() {
        let id = ctx.fresh_id();
        let slice = reorg::index(y_onehot, p.lo, p.hi, 0, y_onehot.cols())?;
        batches[p.worker].push(Request::Put {
            id,
            data: DataValue::from(slice),
            privacy: x.privacy(),
        });
        ids.push((p.worker, id));
    }
    let responses = ctx.call_all(batches)?;
    for (w, rs) in responses.iter().enumerate() {
        for r in rs {
            exdra_core::coordinator::expect_ok(r, w)?;
        }
    }
    Ok(FedLabels { ids })
}

/// Applies a balancing plan at the workers: replicates partitions in place
/// (fresh symbol IDs) per [`BalancePlan::replication`]. Returns the new
/// feature/label IDs per partition.
pub fn apply_balance(
    x: &FedMatrix,
    labels: &FedLabels,
    plan: &BalancePlan,
) -> Result<Vec<(usize, u64, u64)>> {
    let ctx = x.ctx();
    let mut out = Vec::with_capacity(x.parts().len());
    let mut batches = vec![Vec::new(); ctx.num_workers()];
    for (i, p) in x.parts().iter().enumerate() {
        let times = plan.replication[i] as u64;
        let (_, y_id) = labels.ids[i];
        if times <= 1 {
            out.push((p.worker, p.id, y_id));
            continue;
        }
        let new_x = ctx.fresh_id();
        let new_y = ctx.fresh_id();
        batches[p.worker].push(Request::ExecUdf {
            udf: Udf::Replicate {
                x: p.id,
                y: Some(y_id),
                times,
                out_x: new_x,
                out_y: Some(new_y),
            },
        });
        out.push((p.worker, new_x, new_y));
    }
    let responses = ctx.call_all(batches)?;
    for (w, rs) in responses.iter().enumerate() {
        for r in rs {
            exdra_core::coordinator::expect_ok(r, w)?;
        }
    }
    Ok(out)
}

/// True for failures quorum aggregation may skip: transport trouble and
/// dead workers, never data/protocol errors (those indicate a bug, not a
/// straggler).
fn quorum_tolerable(e: &RuntimeError) -> bool {
    e.is_transient() || matches!(e, RuntimeError::WorkerDead { .. })
}

/// Shared stale-synchronous state for the ASP arm: per-partition epoch
/// progress plus an active mask (a partition that finished, errored, or
/// dropped out under quorum must stop holding the minimum down).
/// Uses `std::sync` primitives because the gate needs a condvar.
struct SspState {
    /// Epochs completed per partition.
    progress: Vec<usize>,
    /// Whether the partition still participates in the staleness minimum.
    active: Vec<bool>,
}

impl SspState {
    /// Minimum completed epoch across active partitions; `None` when no
    /// partition is active any more (then nothing can be gated on).
    fn min_active_progress(&self) -> Option<usize> {
        self.progress
            .iter()
            .zip(&self.active)
            .filter(|&(_, &a)| a)
            .map(|(&p, _)| p)
            .min()
    }
}

/// Deactivates its partition in the SSP state on drop — every exit path
/// of a partition thread (finish, error, quorum drop-out, panic) must
/// wake gated siblings or they would wait on a dead minimum forever.
struct SspGuard<'a> {
    ssp: &'a (std::sync::Mutex<SspState>, std::sync::Condvar),
    slot: usize,
}

impl Drop for SspGuard<'_> {
    fn drop(&mut self) {
        let mut st = self
            .ssp
            .0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        st.active[self.slot] = false;
        drop(st);
        self.ssp.1.notify_all();
    }
}

/// Trains a network with the federated parameter server over a
/// row-partitioned federated feature matrix and aligned federated labels.
///
/// `weights` are the per-partition aggregation weights (see
/// [`crate::balance::plan`]); they must sum to 1.
///
/// Under [`AggregationMode::Quorum`], a round tolerates worker failures
/// as long as surviving partitions carry at least the configured weight
/// fraction; their weights are renormalized for the round and the number
/// of skipped per-partition contributions is reported in
/// [`PsRun::skipped_updates`].
pub fn train(
    ctx: &Arc<FedContext>,
    data_ids: &[(usize, u64, u64)],
    net: &Network,
    cfg: &PsConfig,
    weights: &[f64],
) -> Result<PsRun> {
    train_tracked(ctx, data_ids, net, cfg, weights, None)
}

/// Like [`train`], additionally recording every partition's successful
/// round-trip wall time into a [`LatencyTracker`] — typically the
/// supervisor's tracker (`Supervisor::latency_tracker()`), so
/// parameter-server rounds feed the same latency histories that derive
/// straggler-speculation deadlines and replica ranking.
pub fn train_tracked(
    ctx: &Arc<FedContext>,
    data_ids: &[(usize, u64, u64)],
    net: &Network,
    cfg: &PsConfig,
    weights: &[f64],
    tracker: Option<&LatencyTracker>,
) -> Result<PsRun> {
    if data_ids.is_empty() || data_ids.len() != weights.len() {
        return Err(RuntimeError::Invalid(
            "data ids and weights must be non-empty and aligned".into(),
        ));
    }
    if let AggregationMode::Quorum { min_weight } = cfg.aggregation {
        if !(min_weight > 0.0 && min_weight <= 1.0) {
            return Err(RuntimeError::Invalid(format!(
                "quorum min_weight must be in (0, 1], got {min_weight}"
            )));
        }
    }
    let model = Arc::new(Mutex::new(net.params()));
    let mut skipped_updates = 0usize;
    let mut max_observed_staleness = 0usize;
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    let make_udf = |snapshot: &[DenseMatrix], epoch: usize| Udf::Registered {
        name: PS_EPOCH_UDF.into(),
        args: vec![
            model_to_value(snapshot),
            DataValue::Scalar(cfg.lr),
            DataValue::Scalar(cfg.momentum),
            DataValue::Scalar(if cfg.nesterov { 1.0 } else { 0.0 }),
            DataValue::Scalar(cfg.batch_size as f64),
            DataValue::Scalar(cfg.seed.wrapping_add(epoch as u64) as f64),
        ],
        arg_ids: vec![],
        out: None,
    };

    let obs_on = exdra_obs::enabled();
    let mut train_span = exdra_obs::span(exdra_obs::SpanKind::ParamServ, "ps.train");
    if train_span.is_active() {
        train_span.attr(
            "mode",
            match cfg.update_type {
                UpdateType::Bsp => "bsp",
                UpdateType::Asp => "asp",
            },
        );
        train_span.attr("epochs", cfg.epochs);
        train_span.attr("partitions", data_ids.len());
    }

    match cfg.update_type {
        UpdateType::Bsp => {
            for epoch in 0..cfg.epochs {
                let mut epoch_span = exdra_obs::span(exdra_obs::SpanKind::ParamServ, "ps.epoch");
                epoch_span.attr("epoch", epoch);
                let skipped_before = skipped_updates;

                // Push phase: snapshot the model and build the per-worker
                // epoch UDF batches (model serialization cost).
                let t_push = obs_on.then(Instant::now);
                let snapshot = model.lock().clone();
                // One server thread per worker (via parallel call_all).
                let mut batches = vec![Vec::new(); ctx.num_workers()];
                let mut slots = Vec::with_capacity(data_ids.len());
                for &(worker, x_id, y_id) in data_ids {
                    let mut udf = make_udf(&snapshot, epoch);
                    if let Udf::Registered { arg_ids, .. } = &mut udf {
                        *arg_ids = vec![x_id, y_id];
                    }
                    slots.push((worker, batches[worker].len()));
                    batches[worker].push(Request::ExecUdf { udf });
                }
                if let Some(t) = t_push {
                    exdra_obs::global().record("ps.push", t.elapsed().as_nanos() as u64);
                }

                // Pull phase: one round trip of gradient computation
                // across all workers.
                let t_round = obs_on.then(Instant::now);
                let results = ctx.call_all_observed(batches, tracker)?;
                if let Some(t) = t_round {
                    exdra_obs::global().record("ps.round", t.elapsed().as_nanos() as u64);
                }

                // Aggregate phase; under quorum, a tolerable worker
                // failure skips its partitions instead of aborting the
                // epoch.
                let t_agg = obs_on.then(Instant::now);
                let mut round: Vec<(Vec<DenseMatrix>, f64, f64)> = Vec::new();
                let mut contributed = 0.0;
                for (&(worker, idx), w) in slots.iter().zip(weights) {
                    let response = match &results[worker] {
                        Ok(rs) => &rs[idx],
                        Err(e) => match cfg.aggregation {
                            AggregationMode::Quorum { .. } if quorum_tolerable(e) => {
                                skipped_updates += 1;
                                continue;
                            }
                            _ => return Err(e.clone()),
                        },
                    };
                    let data = expect_data(response, worker)?;
                    let (delta, l) = split_epoch_result(&data)?;
                    round.push((delta, l, *w));
                    contributed += *w;
                }
                if let AggregationMode::Quorum { min_weight } = cfg.aggregation {
                    if contributed < min_weight {
                        return Err(RuntimeError::WorkerDead {
                            worker: usize::MAX,
                            msg: format!(
                                "quorum lost: only {contributed:.3} of required \
                                 {min_weight:.3} aggregation weight responded"
                            ),
                        });
                    }
                }
                // Renormalize surviving weights so the round's update has
                // the same magnitude regardless of who was skipped.
                let mut new_model = snapshot.clone();
                let mut loss = 0.0;
                for (delta, l, w) in &round {
                    let wn = w / contributed;
                    axpy_model(&mut new_model, delta, wn);
                    loss += wn * l;
                }
                *model.lock() = new_model;
                epoch_losses.push(loss);
                if let Some(t) = t_agg {
                    exdra_obs::global().record("ps.aggregate", t.elapsed().as_nanos() as u64);
                }
                if obs_on {
                    let reg = exdra_obs::global();
                    reg.inc("ps.epochs");
                    reg.add(
                        "ps.skipped_updates",
                        (skipped_updates - skipped_before) as u64,
                    );
                }
                if epoch_span.is_active() {
                    epoch_span.attr("loss", loss);
                    epoch_span.attr("skipped", skipped_updates - skipped_before);
                    epoch_span.attr("contributed_weight", contributed);
                }
            }
        }
        UpdateType::Asp => {
            let losses = Arc::new(Mutex::new(vec![0.0f64; cfg.epochs]));
            // (skipped contributions, weight of partitions that gave up)
            let dropped = Arc::new(Mutex::new((0usize, 0.0f64)));
            // Stale-synchronous bookkeeping: progress is always tracked
            // (so the run reports its realized staleness even unbounded);
            // the condvar gate only engages when `max_staleness` is set.
            let ssp = Arc::new((
                std::sync::Mutex::new(SspState {
                    progress: vec![0usize; data_ids.len()],
                    active: vec![true; data_ids.len()],
                }),
                std::sync::Condvar::new(),
            ));
            let staleness_seen = Arc::new(Mutex::new(0usize));
            let parent = train_span.context();
            std::thread::scope(|scope| -> Result<()> {
                let mut handles = Vec::new();
                for (i, &(worker, x_id, y_id)) in data_ids.iter().enumerate() {
                    let model = Arc::clone(&model);
                    let losses = Arc::clone(&losses);
                    let dropped = Arc::clone(&dropped);
                    let ssp = Arc::clone(&ssp);
                    let staleness_seen = Arc::clone(&staleness_seen);
                    let weight = weights[i];
                    let ctx = Arc::clone(ctx);
                    handles.push(scope.spawn(move || -> Result<()> {
                        let _trace = exdra_obs::propagate(parent);
                        let mut part_span =
                            exdra_obs::span(exdra_obs::SpanKind::ParamServ, "ps.partition");
                        part_span.attr("worker", worker);
                        let _deactivate = SspGuard { ssp: &ssp, slot: i };
                        for epoch in 0..cfg.epochs {
                            // SSP gate: block until no active partition is
                            // more than `max_staleness` epochs behind us,
                            // recording the lag we actually proceed with.
                            {
                                let (lock, cvar) = &*ssp;
                                let mut st = lock
                                    .lock()
                                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                                if let Some(bound) = cfg.max_staleness {
                                    while st
                                        .min_active_progress()
                                        .is_some_and(|min| epoch > min + bound)
                                    {
                                        st = cvar
                                            .wait(st)
                                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                                    }
                                }
                                let lag =
                                    epoch.saturating_sub(st.min_active_progress().unwrap_or(epoch));
                                drop(st);
                                let mut seen = staleness_seen.lock();
                                if lag > *seen {
                                    *seen = lag;
                                }
                            }
                            let snapshot = model.lock().clone();
                            let mut udf = make_udf(&snapshot, epoch);
                            if let Udf::Registered { arg_ids, .. } = &mut udf {
                                *arg_ids = vec![x_id, y_id];
                            }
                            let t0 = Instant::now();
                            let rs = match ctx.call(worker, &[Request::ExecUdf { udf }]) {
                                Ok(rs) => {
                                    if let Some(tracker) = tracker {
                                        tracker.record(worker, t0.elapsed());
                                    }
                                    rs
                                }
                                Err(e) => match cfg.aggregation {
                                    AggregationMode::Quorum { .. } if quorum_tolerable(&e) => {
                                        // This partition drops out of the
                                        // run; quorum is checked at join.
                                        let mut d = dropped.lock();
                                        d.0 += cfg.epochs - epoch;
                                        d.1 += weight;
                                        return Ok(());
                                    }
                                    _ => return Err(e),
                                },
                            };
                            let data = expect_data(&rs[0], worker)?;
                            let (delta, l) = split_epoch_result(&data)?;
                            {
                                let mut m = model.lock();
                                axpy_model(&mut m, &delta, weight);
                            }
                            losses.lock()[epoch] += weight * l;
                            let (lock, cvar) = &*ssp;
                            lock.lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .progress[i] = epoch + 1;
                            cvar.notify_all();
                        }
                        Ok(())
                    }));
                }
                for h in handles {
                    h.join()
                        .map_err(|_| RuntimeError::Network("PS thread panicked".into()))??;
                }
                Ok(())
            })?;
            max_observed_staleness = *staleness_seen.lock();
            let (skips, lost_weight) = *dropped.lock();
            skipped_updates = skips;
            if obs_on {
                let reg = exdra_obs::global();
                reg.add("ps.epochs", cfg.epochs as u64);
                reg.add("ps.skipped_updates", skipped_updates as u64);
            }
            if let AggregationMode::Quorum { min_weight } = cfg.aggregation {
                let surviving = 1.0 - lost_weight;
                if surviving < min_weight {
                    return Err(RuntimeError::WorkerDead {
                        worker: usize::MAX,
                        msg: format!(
                            "quorum lost: only {surviving:.3} of required \
                             {min_weight:.3} aggregation weight survived"
                        ),
                    });
                }
            }
            epoch_losses = Arc::try_unwrap(losses)
                .map(|m| m.into_inner())
                .unwrap_or_default();
        }
    }
    let params = Arc::try_unwrap(model)
        .map(|m| m.into_inner())
        .unwrap_or_else(|m| m.lock().clone());
    Ok(PsRun {
        params,
        epoch_losses,
        skipped_updates,
        max_observed_staleness,
    })
}

fn split_epoch_result(v: &DataValue) -> Result<(Vec<DenseMatrix>, f64)> {
    match v {
        DataValue::List(items) if items.len() == 2 => {
            Ok((value_to_model(&items[0])?, items[1].as_scalar()?))
        }
        other => Err(RuntimeError::Protocol(format!(
            "malformed ps.epoch result: {}",
            other.type_name()
        ))),
    }
}

/// Convenience: full federated PS setup and training in one call — scatter
/// labels, optionally balance, and train. The `workers` slice is needed to
/// install the gradient UDF (setup-time function shipment).
pub fn train_federated(
    x: &FedMatrix,
    y_onehot: &DenseMatrix,
    workers: &[Arc<Worker>],
    net: &Network,
    cfg: &PsConfig,
    strategy: crate::balance::BalanceStrategy,
) -> Result<PsRun> {
    for w in workers {
        install_ps_udf(w, net.clone());
    }
    let labels = scatter_labels(x, y_onehot)?;
    let sizes: Vec<usize> = x.parts().iter().map(|p| p.len()).collect();
    let plan = crate::balance::plan(&sizes, strategy);
    let data_ids = apply_balance(x, &labels, &plan)?;
    train(x.ctx(), &data_ids, net, cfg, &plan.weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::BalanceStrategy;
    use crate::local;
    use exdra_core::testutil::mem_federation;
    use exdra_core::PrivacyLevel;
    use exdra_ml::scoring::accuracy;
    use exdra_ml::synth;

    #[test]
    fn federated_bsp_equals_local_bsp() {
        let (x, y) = synth::multi_class(300, 5, 3, 0.4, 201);
        let y1h = synth::one_hot(&y, 3);
        let net = Network::ffn(5, &[12], 3, 202);
        let cfg = PsConfig {
            epochs: 3,
            seed: 7,
            ..PsConfig::default()
        };
        // Local reference with identical contiguous partitioning.
        let parts = local::partition(&x, &y1h, 3, None).unwrap();
        let local_run = local::train(&net, &parts, &cfg).unwrap();
        // Federated run over the same partitioning.
        let (ctx, workers) = mem_federation(3);
        let fed = FedMatrix::scatter_rows(&ctx, &x, PrivacyLevel::Public).unwrap();
        let fed_run =
            train_federated(&fed, &y1h, &workers, &net, &cfg, BalanceStrategy::None).unwrap();
        for (a, b) in fed_run.params.iter().zip(&local_run.params) {
            assert!(a.max_abs_diff(b) < 1e-10, "diff {}", a.max_abs_diff(b));
        }
        for (a, b) in fed_run.epoch_losses.iter().zip(&local_run.epoch_losses) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn tracked_training_feeds_latency_history() {
        use exdra_core::supervision::SpeculationPolicy;

        let (x, y) = synth::multi_class(200, 4, 2, 0.4, 301);
        let y1h = synth::one_hot(&y, 2);
        let net = Network::ffn(4, &[8], 2, 302);
        let (ctx, workers) = mem_federation(2);
        for w in &workers {
            install_ps_udf(w, net.clone());
        }
        let fed = FedMatrix::scatter_rows(&ctx, &x, PrivacyLevel::Public).unwrap();
        let labels = scatter_labels(&fed, &y1h).unwrap();
        let plan = crate::balance::plan(
            &fed.parts().iter().map(|p| p.len()).collect::<Vec<_>>(),
            BalanceStrategy::None,
        );
        let data_ids = apply_balance(&fed, &labels, &plan).unwrap();
        let epochs = 3usize;
        let tracker = LatencyTracker::new(2, SpeculationPolicy::default());
        let run = train_tracked(
            fed.ctx(),
            &data_ids,
            &net,
            &PsConfig {
                epochs,
                ..PsConfig::default()
            },
            &plan.weights,
            Some(&tracker),
        )
        .unwrap();
        assert_eq!(run.epoch_losses.len(), epochs);
        // Every BSP round recorded one sample per worker.
        assert_eq!(tracker.samples(0), epochs as u64);
        assert_eq!(tracker.samples(1), epochs as u64);
    }

    #[test]
    fn federated_ffn_learns() {
        let (x, y) = synth::multi_class(500, 6, 3, 0.4, 203);
        let y1h = synth::one_hot(&y, 3);
        let net = Network::ffn(6, &[16], 3, 204);
        let (ctx, workers) = mem_federation(3);
        let _ = ctx;
        let fed =
            FedMatrix::scatter_rows(&ctx, &x, PrivacyLevel::PrivateAggregate { min_group: 10 })
                .unwrap();
        let run = train_federated(
            &fed,
            &y1h,
            &workers,
            &net,
            &PsConfig {
                epochs: 10,
                ..PsConfig::default()
            },
            BalanceStrategy::None,
        )
        .unwrap();
        let mut trained = net.clone();
        trained.set_params(&run.params).unwrap();
        let pred = trained.predict(&x).unwrap();
        assert!(
            accuracy(&pred, &y).unwrap() > 0.9,
            "losses {:?}",
            run.epoch_losses
        );
    }

    #[test]
    fn asp_federated_converges() {
        let (x, y) = synth::multi_class(300, 4, 2, 0.4, 205);
        let y1h = synth::one_hot(&y, 2);
        let net = Network::ffn(4, &[10], 2, 206);
        let (_ctx, workers) = mem_federation(2);
        let fed = FedMatrix::scatter_rows(&_ctx, &x, PrivacyLevel::Public).unwrap();
        let run = train_federated(
            &fed,
            &y1h,
            &workers,
            &net,
            &PsConfig {
                update_type: UpdateType::Asp,
                epochs: 8,
                ..PsConfig::default()
            },
            BalanceStrategy::None,
        )
        .unwrap();
        let mut trained = net.clone();
        trained.set_params(&run.params).unwrap();
        let pred = trained.predict(&x).unwrap();
        assert!(accuracy(&pred, &y).unwrap() > 0.85);
    }

    #[test]
    fn asp_bounded_staleness_is_enforced_and_reported() {
        let (x, y) = synth::multi_class(300, 4, 2, 0.4, 215);
        let y1h = synth::one_hot(&y, 2);
        let net = Network::ffn(4, &[10], 2, 216);
        let (_ctx, workers) = mem_federation(3);
        let fed = FedMatrix::scatter_rows(&_ctx, &x, PrivacyLevel::Public).unwrap();
        for bound in [0usize, 1, 2] {
            let run = train_federated(
                &fed,
                &y1h,
                &workers,
                &net,
                &PsConfig {
                    update_type: UpdateType::Asp,
                    epochs: 8,
                    max_staleness: Some(bound),
                    ..PsConfig::default()
                },
                BalanceStrategy::None,
            )
            .unwrap();
            assert!(
                run.max_observed_staleness <= bound,
                "bound {bound} violated: observed {}",
                run.max_observed_staleness
            );
            assert_eq!(run.epoch_losses.len(), 8);
        }
        // max_staleness = Some(0) is BSP-like lockstep: every epoch slot
        // still accumulates all three weighted partition losses.
        let run = train_federated(
            &fed,
            &y1h,
            &workers,
            &net,
            &PsConfig {
                update_type: UpdateType::Asp,
                epochs: 6,
                max_staleness: Some(0),
                ..PsConfig::default()
            },
            BalanceStrategy::None,
        )
        .unwrap();
        assert!(run.epoch_losses.iter().all(|l| *l > 0.0));
        let mut trained = net.clone();
        trained.set_params(&run.params).unwrap();
        let pred = trained.predict(&x).unwrap();
        assert!(exdra_ml::scoring::accuracy(&pred, &y).unwrap() > 0.8);
    }

    #[test]
    fn imbalanced_partitions_with_replication() {
        // Build a skewed federation: worker 0 gets 20 rows, worker 1 gets
        // 280 — replication with adjusted weights must still learn class
        // structure present at both sites.
        let (x, y) = synth::multi_class(300, 4, 2, 0.4, 207);
        let y1h = synth::one_hot(&y, 2);
        let net = Network::ffn(4, &[10], 2, 208);
        let (ctx, workers) = mem_federation(2);
        // Manual skewed scatter.
        let x0 = reorg::index(&x, 0, 20, 0, 4).unwrap();
        let x1 = reorg::index(&x, 20, 300, 0, 4).unwrap();
        let id0 = ctx.fresh_id();
        let id1 = ctx.fresh_id();
        workers[0].install_matrix(id0, x0, PrivacyLevel::Public, "skew0");
        workers[1].install_matrix(id1, x1, PrivacyLevel::Public, "skew1");
        let fed = FedMatrix::from_parts(
            Arc::clone(&ctx),
            exdra_core::PartitionScheme::Row,
            300,
            4,
            vec![
                exdra_core::fed::FedPartition {
                    lo: 0,
                    hi: 20,
                    worker: 0,
                    id: id0,
                },
                exdra_core::fed::FedPartition {
                    lo: 20,
                    hi: 300,
                    worker: 1,
                    id: id1,
                },
            ],
            PrivacyLevel::Public,
            false,
        )
        .unwrap();
        let run = train_federated(
            &fed,
            &y1h,
            &workers,
            &net,
            &PsConfig {
                epochs: 10,
                ..PsConfig::default()
            },
            BalanceStrategy::ReplicateToMax,
        )
        .unwrap();
        let mut trained = net.clone();
        trained.set_params(&run.params).unwrap();
        let pred = trained.predict(&x).unwrap();
        assert!(accuracy(&pred, &y).unwrap() > 0.85);
    }

    #[test]
    fn scatter_labels_rejects_misaligned() {
        let (x, _) = synth::multi_class(100, 3, 2, 0.5, 209);
        let (ctx, _workers) = mem_federation(2);
        let fed = FedMatrix::scatter_rows(&ctx, &x, PrivacyLevel::Public).unwrap();
        let bad = DenseMatrix::zeros(50, 2);
        assert!(scatter_labels(&fed, &bad).is_err());
    }
}
