//! Local, multi-threaded parameter server (the `Local` FFN/CNN baseline):
//! data is partitioned horizontally among in-process workers; a shared
//! server model is updated under BSP (per-epoch barrier) or ASP.

use std::sync::Arc;

use exdra_matrix::kernels::reorg;
use exdra_matrix::{DenseMatrix, Result};
use parking_lot::Mutex;

use exdra_ml::nn::{Network, Sgd};

use crate::{axpy_model, model_delta, PsConfig, UpdateType};

/// Result of a parameter-server training run.
#[derive(Debug, Clone)]
pub struct PsRun {
    /// Final model parameters.
    pub params: Vec<DenseMatrix>,
    /// Mean training loss per epoch, as reported by the workers.
    pub epoch_losses: Vec<f64>,
    /// Per-partition epoch contributions skipped by quorum aggregation
    /// (always 0 for local runs and strict federated runs).
    pub skipped_updates: usize,
    /// Largest epoch lag observed between the fastest and slowest active
    /// partition at any update-apply point. Always 0 for BSP (the barrier
    /// is exact) and for local runs; under federated ASP it measures the
    /// realized staleness, which [`crate::PsConfig::max_staleness`]
    /// mechanically bounds when set.
    pub max_observed_staleness: usize,
}

/// One local worker's epoch: run mini-batch SGD from the given snapshot,
/// return the model delta and mean loss.
fn worker_epoch(
    net: &Network,
    snapshot: &[DenseMatrix],
    x: &DenseMatrix,
    y: &DenseMatrix,
    cfg: &PsConfig,
    epoch: usize,
) -> Result<(Vec<DenseMatrix>, f64)> {
    let mut local = snapshot.to_vec();
    let mut sgd = Sgd::new(cfg.lr, cfg.momentum, cfg.nesterov);
    let mut net = net.clone();
    let n = x.rows();
    // Local shuffling only (locality-respecting partitioner, §4.3).
    let perm = exdra_matrix::rng::rand_permutation(n, cfg.seed.wrapping_add(epoch as u64));
    let xs = reorg::gather_rows(x, &perm)?;
    let ys = reorg::gather_rows(y, &perm)?;
    let mut total = 0.0;
    let mut batches = 0usize;
    let mut lo = 0usize;
    while lo < n {
        let hi = (lo + cfg.batch_size).min(n);
        let xb = reorg::index(&xs, lo, hi, 0, xs.cols())?;
        let yb = reorg::index(&ys, lo, hi, 0, ys.cols())?;
        net.set_params(&local)?;
        let (loss, grads) = net.loss_grad(&xb, &yb)?;
        sgd.step(&mut local, &grads);
        total += loss;
        batches += 1;
        lo = hi;
    }
    Ok((model_delta(&local, snapshot), total / batches.max(1) as f64))
}

/// Runs the local multi-threaded parameter server over `parts` disjoint
/// `(X, y_onehot)` partitions.
pub fn train(net: &Network, parts: &[(DenseMatrix, DenseMatrix)], cfg: &PsConfig) -> Result<PsRun> {
    assert!(!parts.is_empty(), "at least one worker partition");
    let total_rows: usize = parts.iter().map(|(x, _)| x.rows()).sum();
    let weights: Vec<f64> = parts
        .iter()
        .map(|(x, _)| x.rows() as f64 / total_rows as f64)
        .collect();
    let model = Arc::new(Mutex::new(net.params()));
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);

    match cfg.update_type {
        UpdateType::Bsp => {
            for epoch in 0..cfg.epochs {
                let snapshot = model.lock().clone();
                let mut results: Vec<Result<(Vec<DenseMatrix>, f64)>> = Vec::new();
                std::thread::scope(|scope| {
                    let handles: Vec<_> = parts
                        .iter()
                        .map(|(x, y)| {
                            let snap = &snapshot;
                            scope.spawn(move || worker_epoch(net, snap, x, y, cfg, epoch))
                        })
                        .collect();
                    for h in handles {
                        results.push(h.join().expect("worker thread"));
                    }
                });
                let mut new_model = snapshot.clone();
                let mut loss = 0.0;
                for (w, r) in weights.iter().zip(results) {
                    let (delta, l) = r?;
                    axpy_model(&mut new_model, &delta, *w);
                    loss += w * l;
                }
                *model.lock() = new_model;
                epoch_losses.push(loss);
            }
        }
        UpdateType::Asp => {
            // Each worker loops epochs independently, applying its deltas
            // to the shared model as they complete (no barrier).
            let losses = Arc::new(Mutex::new(vec![0.0f64; cfg.epochs]));
            std::thread::scope(|scope| {
                for (wi, (x, y)) in parts.iter().enumerate() {
                    let model = Arc::clone(&model);
                    let losses = Arc::clone(&losses);
                    let weight = weights[wi];
                    scope.spawn(move || {
                        for epoch in 0..cfg.epochs {
                            let snapshot = model.lock().clone();
                            if let Ok((delta, l)) = worker_epoch(net, &snapshot, x, y, cfg, epoch) {
                                let mut m = model.lock();
                                axpy_model(&mut m, &delta, weight);
                                losses.lock()[epoch] += weight * l;
                            }
                        }
                    });
                }
            });
            epoch_losses = Arc::try_unwrap(losses)
                .map(|m| m.into_inner())
                .unwrap_or_default();
        }
    }
    let params = Arc::try_unwrap(model)
        .map(|m| m.into_inner())
        .unwrap_or_else(|m| m.lock().clone());
    Ok(PsRun {
        params,
        epoch_losses,
        skipped_updates: 0,
        max_observed_staleness: 0,
    })
}

/// Splits `(X, y)` into `k` contiguous row partitions (shuffled first when
/// `shuffle_seed` is set) — the standard PS data partitioner.
pub fn partition(
    x: &DenseMatrix,
    y: &DenseMatrix,
    k: usize,
    shuffle_seed: Option<u64>,
) -> Result<Vec<(DenseMatrix, DenseMatrix)>> {
    let (xs, ys) = match shuffle_seed {
        Some(seed) => {
            let perm = exdra_matrix::rng::rand_permutation(x.rows(), seed);
            (reorg::gather_rows(x, &perm)?, reorg::gather_rows(y, &perm)?)
        }
        None => (x.clone(), y.clone()),
    };
    let n = xs.rows();
    let base = n / k;
    let extra = n % k;
    let mut out = Vec::with_capacity(k);
    let mut lo = 0usize;
    for i in 0..k {
        let hi = lo + base + usize::from(i < extra);
        out.push((
            reorg::index(&xs, lo, hi, 0, xs.cols())?,
            reorg::index(&ys, lo, hi, 0, ys.cols())?,
        ));
        lo = hi;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exdra_ml::scoring::accuracy;
    use exdra_ml::synth;

    #[test]
    fn bsp_trains_ffn_to_high_accuracy() {
        let (x, y) = synth::multi_class(600, 6, 3, 0.4, 91);
        let y1h = synth::one_hot(&y, 3);
        let net = Network::ffn(6, &[16], 3, 92);
        let parts = partition(&x, &y1h, 3, Some(1)).unwrap();
        let run = train(
            &net,
            &parts,
            &PsConfig {
                epochs: 12,
                ..PsConfig::default()
            },
        )
        .unwrap();
        assert_eq!(run.epoch_losses.len(), 12);
        assert!(run.epoch_losses[11] < run.epoch_losses[0] * 0.5);
        let mut trained = net.clone();
        trained.set_params(&run.params).unwrap();
        let pred = trained.predict(&x).unwrap();
        assert!(accuracy(&pred, &y).unwrap() > 0.9);
    }

    #[test]
    fn asp_also_converges() {
        let (x, y) = synth::multi_class(400, 5, 2, 0.4, 93);
        let y1h = synth::one_hot(&y, 2);
        let net = Network::ffn(5, &[12], 2, 94);
        let parts = partition(&x, &y1h, 2, Some(2)).unwrap();
        let run = train(
            &net,
            &parts,
            &PsConfig {
                update_type: UpdateType::Asp,
                epochs: 10,
                ..PsConfig::default()
            },
        )
        .unwrap();
        let mut trained = net.clone();
        trained.set_params(&run.params).unwrap();
        let pred = trained.predict(&x).unwrap();
        assert!(accuracy(&pred, &y).unwrap() > 0.85);
    }

    #[test]
    fn partition_covers_all_rows() {
        let (x, y) = synth::multi_class(103, 4, 2, 0.5, 95);
        let y1h = synth::one_hot(&y, 2);
        let parts = partition(&x, &y1h, 4, None).unwrap();
        assert_eq!(parts.len(), 4);
        let rows: usize = parts.iter().map(|(p, _)| p.rows()).sum();
        assert_eq!(rows, 103);
        assert_eq!(parts[0].0.rows(), 26); // 103 = 26 + 26 + 26 + 25
        assert_eq!(parts[3].0.rows(), 25);
    }

    #[test]
    fn single_worker_bsp_equals_sequential_sgd() {
        let (x, y) = synth::multi_class(200, 4, 2, 0.5, 96);
        let y1h = synth::one_hot(&y, 2);
        let net = Network::ffn(4, &[8], 2, 97);
        let cfg = PsConfig {
            epochs: 3,
            seed: 5,
            ..PsConfig::default()
        };
        let run = train(&net, &[(x.clone(), y1h.clone())], &cfg).unwrap();
        // Sequential reference with the same shuffling per epoch.
        let mut params = net.params();
        let mut netc = net.clone();
        for epoch in 0..cfg.epochs {
            let snapshot = params.clone();
            let (delta, _) = worker_epoch(&netc, &snapshot, &x, &y1h, &cfg, epoch).unwrap();
            axpy_model(&mut params, &delta, 1.0);
        }
        netc.set_params(&params).unwrap();
        for (a, b) in run.params.iter().zip(&params) {
            assert!(a.max_abs_diff(b) < 1e-12);
        }
    }
}
