//! Imbalance and skew handling (paper §4.3).
//!
//! Federated partitions differ in size ("statistical heterogeneity"); an
//! equal number of epochs then means different iteration counts, stalls in
//! BSP, and biased updates dominated by the largest site. The paper's
//! current approach — "replication with adjusted weights" — replicates
//! small partitions up to rough parity and weights each site's update by
//! its *original* data fraction.

/// Balancing strategy for heterogeneous partition sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalanceStrategy {
    /// Use partitions as-is; aggregate weighted by data fraction.
    None,
    /// Replicate small partitions to approximate the largest, with
    /// aggregation weights still proportional to the original sizes.
    ReplicateToMax,
}

/// Per-worker balancing plan.
#[derive(Debug, Clone, PartialEq)]
pub struct BalancePlan {
    /// Replication factor per worker (>= 1).
    pub replication: Vec<usize>,
    /// Aggregation weight per worker (sums to 1, proportional to the
    /// original partition sizes).
    pub weights: Vec<f64>,
}

/// Computes the balancing plan for the given partition sizes.
pub fn plan(sizes: &[usize], strategy: BalanceStrategy) -> BalancePlan {
    assert!(!sizes.is_empty(), "at least one partition");
    let total: usize = sizes.iter().sum();
    let weights: Vec<f64> = sizes
        .iter()
        .map(|&s| {
            if total == 0 {
                1.0 / sizes.len() as f64
            } else {
                s as f64 / total as f64
            }
        })
        .collect();
    let replication = match strategy {
        BalanceStrategy::None => vec![1; sizes.len()],
        BalanceStrategy::ReplicateToMax => {
            let max = sizes.iter().copied().max().unwrap_or(1).max(1);
            sizes
                .iter()
                .map(|&s| {
                    if s == 0 {
                        1
                    } else {
                        // Round to nearest factor, at least 1.
                        ((max as f64 / s as f64).round() as usize).max(1)
                    }
                })
                .collect()
        }
    };
    BalancePlan {
        replication,
        weights,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_proportional_to_sizes() {
        let p = plan(&[100, 300], BalanceStrategy::None);
        assert_eq!(p.replication, vec![1, 1]);
        assert!((p.weights[0] - 0.25).abs() < 1e-12);
        assert!((p.weights[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn replication_approaches_parity() {
        let p = plan(&[100, 400, 1000], BalanceStrategy::ReplicateToMax);
        assert_eq!(p.replication, vec![10, 3, 1]);
        // Weights stay proportional to the original sizes, not the
        // replicated ones (the "adjusted weights" of §4.3).
        assert!((p.weights[2] - 1000.0 / 1500.0).abs() < 1e-12);
    }

    #[test]
    fn balanced_partitions_unchanged() {
        let p = plan(&[500, 500, 500], BalanceStrategy::ReplicateToMax);
        assert_eq!(p.replication, vec![1, 1, 1]);
        for w in &p.weights {
            assert!((w - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn weights_sum_to_one() {
        let p = plan(&[7, 13, 29, 51], BalanceStrategy::ReplicateToMax);
        let s: f64 = p.weights.iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }
}
