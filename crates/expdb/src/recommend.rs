//! Pipeline recommendation (paper §3.3).
//!
//! "Given a high-level ML task, dataset and its data characteristics, ...
//! and history of pipeline runs and their accuracy, the goal is to
//! recommend a ranked list of pipelines for exploration. ... Our current
//! prototype computes embeddings of pipeline metadata, and trains an ML
//! model to predict scores of pipeline candidates."
//!
//! This implementation embeds dataset characteristics into a normalized
//! meta-feature vector and scores each candidate pipeline by a
//! similarity-weighted (Nadaraya-Watson) average of its historical metric
//! values — unseen pipelines rank by a prior so exploration still surfaces
//! them.

use crate::store::ExperimentDb;

/// Dataset characteristics ("data characteristics" of §3.3) used as the
/// recommendation embedding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetMeta {
    /// Number of observations.
    pub rows: usize,
    /// Number of features (post-encoding).
    pub cols: usize,
    /// Fraction of non-zero cells.
    pub sparsity: f64,
    /// Number of target classes (0 for regression/unsupervised).
    pub num_classes: usize,
    /// Fraction of missing cells in the raw input.
    pub missing_rate: f64,
}

impl DatasetMeta {
    /// Normalized meta-feature embedding.
    pub fn embed(&self) -> [f64; 5] {
        [
            (self.rows as f64).max(1.0).log10() / 9.0,
            (self.cols as f64).max(1.0).log10() / 6.0,
            self.sparsity,
            (self.num_classes as f64).min(100.0) / 100.0,
            self.missing_rate,
        ]
    }

    /// Euclidean distance between embeddings.
    pub fn distance(&self, other: &DatasetMeta) -> f64 {
        self.embed()
            .iter()
            .zip(other.embed())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Persistence line (space-separated).
    #[allow(clippy::wrong_self_convention)]
    pub(crate) fn to_line(&self) -> String {
        format!(
            "{} {} {} {} {}",
            self.rows, self.cols, self.sparsity, self.num_classes, self.missing_rate
        )
    }

    /// Parses [`DatasetMeta::to_line`] output.
    pub(crate) fn from_line(s: &str) -> Option<Self> {
        let mut it = s.split(' ');
        Some(Self {
            rows: it.next()?.parse().ok()?,
            cols: it.next()?.parse().ok()?,
            sparsity: it.next()?.parse().ok()?,
            num_classes: it.next()?.parse().ok()?,
            missing_rate: it.next()?.parse().ok()?,
        })
    }
}

/// A ranked recommendation.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// Candidate pipeline ID.
    pub pipeline_id: u64,
    /// Predicted metric value on the target dataset.
    pub predicted_score: f64,
    /// Number of historical runs that informed the prediction.
    pub support: usize,
}

/// Recommends a ranked list of pipelines for a new dataset, predicting
/// `metric` (higher = better) from the run history.
///
/// `prior` is the score assigned to pipelines without history (controls
/// the exploration/exploitation balance).
pub fn recommend(
    db: &ExperimentDb,
    target: &DatasetMeta,
    metric: &str,
    prior: f64,
) -> Vec<Recommendation> {
    let bandwidth = 0.25f64;
    let runs = db.all_runs();
    let mut out: Vec<Recommendation> = db
        .all_pipelines()
        .iter()
        .map(|p| {
            let mut wsum = 0.0;
            let mut wtotal = 0.0;
            let mut support = 0usize;
            for r in runs.iter().filter(|r| r.pipeline_id == p.id) {
                if let Some(v) = r.metric(metric) {
                    let d = target.distance(&r.dataset);
                    let w = (-d * d / (2.0 * bandwidth * bandwidth)).exp();
                    wsum += w * v;
                    wtotal += w;
                    support += 1;
                }
            }
            let predicted_score = if wtotal > 1e-12 { wsum / wtotal } else { prior };
            Recommendation {
                pipeline_id: p.id,
                predicted_score,
                support,
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.predicted_score
            .partial_cmp(&a.predicted_score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(rows: usize, classes: usize) -> DatasetMeta {
        DatasetMeta {
            rows,
            cols: 100,
            sparsity: 0.5,
            num_classes: classes,
            missing_rate: 0.0,
        }
    }

    #[test]
    fn embedding_distance_sane() {
        let a = meta(1000, 2);
        let b = meta(1000, 2);
        assert_eq!(a.distance(&b), 0.0);
        let c = meta(1_000_000, 50);
        assert!(a.distance(&c) > 0.1);
    }

    #[test]
    fn meta_line_roundtrip() {
        let m = DatasetMeta {
            rows: 123,
            cols: 45,
            sparsity: 0.67,
            num_classes: 8,
            missing_rate: 0.09,
        };
        assert_eq!(DatasetMeta::from_line(&m.to_line()), Some(m));
        assert_eq!(DatasetMeta::from_line("1 2 3"), None);
    }

    #[test]
    fn similar_history_dominates_ranking() {
        let db = ExperimentDb::new();
        let good = db.register_pipeline("good-on-small", &["lm"]);
        let bad = db.register_pipeline("bad-on-small", &["l2svm"]);
        // History: "good" excels on small data, "bad" excels on huge data.
        db.track_run(good, &[], meta(1000, 2), &[("accuracy", 0.95)], &[]);
        db.track_run(bad, &[], meta(1000, 2), &[("accuracy", 0.60)], &[]);
        db.track_run(bad, &[], meta(100_000_000, 2), &[("accuracy", 0.99)], &[]);
        let recs = recommend(&db, &meta(1200, 2), "accuracy", 0.5);
        assert_eq!(recs[0].pipeline_id, good);
        assert!(recs[0].predicted_score > 0.9);
        // The bad pipeline's faraway success barely counts here.
        assert!(recs[1].predicted_score < 0.9);
    }

    #[test]
    fn unseen_pipelines_get_prior() {
        let db = ExperimentDb::new();
        let seen = db.register_pipeline("seen", &["lm"]);
        let unseen = db.register_pipeline("unseen", &["kmeans"]);
        db.track_run(seen, &[], meta(1000, 2), &[("accuracy", 0.4)], &[]);
        let recs = recommend(&db, &meta(1000, 2), "accuracy", 0.7);
        // The unseen pipeline's prior outranks the seen one's poor history.
        assert_eq!(recs[0].pipeline_id, unseen);
        assert_eq!(recs[0].predicted_score, 0.7);
        assert_eq!(recs[0].support, 0);
        assert_eq!(recs[1].support, 1);
    }
}
