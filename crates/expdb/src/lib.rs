#![warn(missing_docs)]
//! # exdra-expdb
//!
//! The ExperimentDB of the ExDRa architecture (paper §3.3): a model and
//! metric store for exploratory data science — versioned pipelines, runs
//! with parameters/metrics/lineage, operator-type categorization — plus the
//! pipeline recommendation prototype ("computes embeddings of pipeline
//! metadata, and trains an ML model to predict scores of pipeline
//! candidates"; here a similarity-weighted historical scorer over dataset
//! meta-feature embeddings).

pub mod recommend;
pub mod store;

pub use recommend::{recommend, DatasetMeta};
pub use store::{ExperimentDb, OperatorType, Pipeline, PipelineStep, Run};
