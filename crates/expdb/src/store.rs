//! The model and metric store.
//!
//! Pipelines are registered with versioning (same name → next version);
//! runs record parameters, dataset characteristics, output metrics, and
//! lineage strings. Queries support "query-based pipeline comparisons,
//! explanations, and analysis" (paper §3.3). A line-based text format
//! provides durable save/load without external dependencies.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::Path;

use parking_lot::RwLock;

use crate::recommend::DatasetMeta;

/// High-level operator categories the store assigns to pipeline steps
/// (paper §3.3 lists exactly these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperatorType {
    /// Model ensembling.
    Ensemble,
    /// Model training (estimator).
    Estimator,
    /// Missing-value imputation.
    Imputer,
    /// Feature scaling/normalization.
    Scaler,
    /// Feature selection.
    Selector,
    /// Feature generation.
    Generator,
    /// Data sampling.
    Sampler,
    /// Feature transformation (encode/hash/bin).
    Transformer,
}

impl OperatorType {
    /// Stable name for persistence.
    pub fn name(self) -> &'static str {
        match self {
            OperatorType::Ensemble => "ensemble",
            OperatorType::Estimator => "estimator",
            OperatorType::Imputer => "imputer",
            OperatorType::Scaler => "scaler",
            OperatorType::Selector => "selector",
            OperatorType::Generator => "generator",
            OperatorType::Sampler => "sampler",
            OperatorType::Transformer => "transformer",
        }
    }

    /// Parses a stable name.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "ensemble" => OperatorType::Ensemble,
            "estimator" => OperatorType::Estimator,
            "imputer" => OperatorType::Imputer,
            "scaler" => OperatorType::Scaler,
            "selector" => OperatorType::Selector,
            "generator" => OperatorType::Generator,
            "sampler" => OperatorType::Sampler,
            "transformer" => OperatorType::Transformer,
            _ => return None,
        })
    }

    /// Categorizes a step by conventional naming (the store's parser
    /// categorizes pipeline steps "accordingly", §3.3).
    pub fn categorize(step_name: &str) -> OperatorType {
        let n = step_name.to_ascii_lowercase();
        if n.contains("impute") || n.contains("mice") {
            OperatorType::Imputer
        } else if n.contains("normalize") || n.contains("scale") || n.contains("clip") {
            OperatorType::Scaler
        } else if n.contains("select") {
            OperatorType::Selector
        } else if n.contains("encode") || n.contains("hash") || n.contains("bin") {
            OperatorType::Transformer
        } else if n.contains("split") || n.contains("sample") {
            OperatorType::Sampler
        } else if n.contains("generate") || n.contains("synth") {
            OperatorType::Generator
        } else if n.contains("ensemble") || n.contains("vote") {
            OperatorType::Ensemble
        } else {
            OperatorType::Estimator
        }
    }
}

/// One step of a pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineStep {
    /// Step name (e.g. "transformencode", "lm").
    pub name: String,
    /// Categorized operator type.
    pub op_type: OperatorType,
}

impl PipelineStep {
    /// Creates a step, auto-categorizing its operator type.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        let op_type = OperatorType::categorize(&name);
        Self { name, op_type }
    }
}

/// A registered pipeline version (an "artifact").
#[derive(Debug, Clone, PartialEq)]
pub struct Pipeline {
    /// Store-assigned ID.
    pub id: u64,
    /// Pipeline name (shared across versions).
    pub name: String,
    /// Version within the name (1-based).
    pub version: u32,
    /// Ordered steps.
    pub steps: Vec<PipelineStep>,
}

/// One tracked run of a pipeline version.
#[derive(Debug, Clone, PartialEq)]
pub struct Run {
    /// Store-assigned ID.
    pub id: u64,
    /// The pipeline version this run executed.
    pub pipeline_id: u64,
    /// Hyperparameters as key/value strings.
    pub params: Vec<(String, String)>,
    /// Characteristics of the input dataset.
    pub dataset: DatasetMeta,
    /// Output metrics (e.g. `("accuracy", 0.93)`).
    pub metrics: Vec<(String, f64)>,
    /// Lineage strings (input sources, intermediate hashes).
    pub lineage: Vec<String>,
}

impl Run {
    /// Looks up a metric by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

/// The experiment store.
#[derive(Debug, Default)]
pub struct ExperimentDb {
    inner: RwLock<DbInner>,
}

#[derive(Debug, Default)]
struct DbInner {
    pipelines: Vec<Pipeline>,
    runs: Vec<Run>,
    next_id: u64,
}

impl ExperimentDb {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a pipeline; re-registering a name creates the next
    /// version. Returns the pipeline ID.
    pub fn register_pipeline(&self, name: &str, step_names: &[&str]) -> u64 {
        let mut inner = self.inner.write();
        let version = inner
            .pipelines
            .iter()
            .filter(|p| p.name == name)
            .map(|p| p.version)
            .max()
            .unwrap_or(0)
            + 1;
        inner.next_id += 1;
        let id = inner.next_id;
        inner.pipelines.push(Pipeline {
            id,
            name: name.to_string(),
            version,
            steps: step_names.iter().map(|s| PipelineStep::new(*s)).collect(),
        });
        id
    }

    /// Tracks a run; returns the run ID. Unknown pipeline IDs are rejected.
    pub fn track_run(
        &self,
        pipeline_id: u64,
        params: &[(&str, &str)],
        dataset: DatasetMeta,
        metrics: &[(&str, f64)],
        lineage: &[&str],
    ) -> Option<u64> {
        let mut inner = self.inner.write();
        if !inner.pipelines.iter().any(|p| p.id == pipeline_id) {
            return None;
        }
        inner.next_id += 1;
        let id = inner.next_id;
        inner.runs.push(Run {
            id,
            pipeline_id,
            params: params
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            dataset,
            metrics: metrics.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            lineage: lineage.iter().map(|s| s.to_string()).collect(),
        });
        Some(id)
    }

    /// Pipeline by ID.
    pub fn pipeline(&self, id: u64) -> Option<Pipeline> {
        self.inner
            .read()
            .pipelines
            .iter()
            .find(|p| p.id == id)
            .cloned()
    }

    /// All versions of a pipeline name, ascending.
    pub fn versions(&self, name: &str) -> Vec<Pipeline> {
        let mut v: Vec<Pipeline> = self
            .inner
            .read()
            .pipelines
            .iter()
            .filter(|p| p.name == name)
            .cloned()
            .collect();
        v.sort_by_key(|p| p.version);
        v
    }

    /// All runs of a pipeline version.
    pub fn runs_for(&self, pipeline_id: u64) -> Vec<Run> {
        self.inner
            .read()
            .runs
            .iter()
            .filter(|r| r.pipeline_id == pipeline_id)
            .cloned()
            .collect()
    }

    /// All runs (for the recommender).
    pub fn all_runs(&self) -> Vec<Run> {
        self.inner.read().runs.clone()
    }

    /// All pipelines.
    pub fn all_pipelines(&self) -> Vec<Pipeline> {
        self.inner.read().pipelines.clone()
    }

    /// Best run by metric (maximizing).
    pub fn best_run(&self, metric: &str) -> Option<Run> {
        self.inner
            .read()
            .runs
            .iter()
            .filter(|r| r.metric(metric).is_some())
            .max_by(|a, b| {
                a.metric(metric)
                    .partial_cmp(&b.metric(metric))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .cloned()
    }

    /// Best run by metric, minimizing — the natural query for loss-like
    /// metrics a continuous-learning loop tracks per retraining round.
    pub fn best_run_min(&self, metric: &str) -> Option<Run> {
        self.inner
            .read()
            .runs
            .iter()
            .filter(|r| r.metric(metric).is_some())
            .min_by(|a, b| {
                a.metric(metric)
                    .partial_cmp(&b.metric(metric))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .cloned()
    }

    /// Query-based comparison: mean metric per pipeline version, sorted
    /// descending — the "query-based pipeline comparisons" of §3.3.
    pub fn compare(&self, metric: &str) -> Vec<(u64, f64, usize)> {
        let inner = self.inner.read();
        let mut agg: HashMap<u64, (f64, usize)> = HashMap::new();
        for r in &inner.runs {
            if let Some(v) = r.metric(metric) {
                let e = agg.entry(r.pipeline_id).or_insert((0.0, 0));
                e.0 += v;
                e.1 += 1;
            }
        }
        let mut out: Vec<(u64, f64, usize)> = agg
            .into_iter()
            .map(|(id, (sum, n))| (id, sum / n as f64, n))
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        out
    }

    /// Serializes the store to a line-based text format.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let inner = self.inner.read();
        let mut out = String::new();
        writeln!(out, "exdra-expdb v1").unwrap();
        writeln!(out, "next_id {}", inner.next_id).unwrap();
        for p in &inner.pipelines {
            let steps: Vec<String> = p.steps.iter().map(|s| s.name.clone()).collect();
            writeln!(
                out,
                "P\t{}\t{}\t{}\t{}",
                p.id,
                esc(&p.name),
                p.version,
                steps.join("|")
            )
            .unwrap();
        }
        for r in &inner.runs {
            let params: Vec<String> = r
                .params
                .iter()
                .map(|(k, v)| format!("{}={}", esc(k), esc(v)))
                .collect();
            let metrics: Vec<String> = r
                .metrics
                .iter()
                .map(|(k, v)| format!("{}={}", esc(k), v))
                .collect();
            writeln!(
                out,
                "R\t{}\t{}\t{}\t{}\t{}\t{}",
                r.id,
                r.pipeline_id,
                params.join("|"),
                r.dataset.to_line(),
                metrics.join("|"),
                r.lineage
                    .iter()
                    .map(|l| esc(l))
                    .collect::<Vec<_>>()
                    .join("|"),
            )
            .unwrap();
        }
        std::fs::write(path, out)
    }

    /// Loads a store from [`ExperimentDb::save`] output.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        let mut inner = DbInner::default();
        for (i, line) in text.lines().enumerate() {
            let bad = || {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("expdb parse error at line {}", i + 1),
                )
            };
            if i == 0 {
                if line != "exdra-expdb v1" {
                    return Err(bad());
                }
                continue;
            }
            if let Some(rest) = line.strip_prefix("next_id ") {
                inner.next_id = rest.parse().map_err(|_| bad())?;
                continue;
            }
            let parts: Vec<&str> = line.split('\t').collect();
            match parts.first() {
                Some(&"P") if parts.len() == 5 => {
                    inner.pipelines.push(Pipeline {
                        id: parts[1].parse().map_err(|_| bad())?,
                        name: unesc(parts[2]),
                        version: parts[3].parse().map_err(|_| bad())?,
                        steps: parts[4]
                            .split('|')
                            .filter(|s| !s.is_empty())
                            .map(PipelineStep::new)
                            .collect(),
                    });
                }
                Some(&"R") if parts.len() == 7 => {
                    inner.runs.push(Run {
                        id: parts[1].parse().map_err(|_| bad())?,
                        pipeline_id: parts[2].parse().map_err(|_| bad())?,
                        params: parse_kv(parts[3]),
                        dataset: DatasetMeta::from_line(parts[4]).ok_or_else(bad)?,
                        metrics: parse_kv(parts[5])
                            .into_iter()
                            .filter_map(|(k, v)| v.parse().ok().map(|f| (k, f)))
                            .collect(),
                        lineage: parts[6]
                            .split('|')
                            .filter(|s| !s.is_empty())
                            .map(unesc)
                            .collect(),
                    });
                }
                _ => return Err(bad()),
            }
        }
        Ok(Self {
            inner: RwLock::new(inner),
        })
    }
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('\t', "\\t")
        .replace('|', "\\p")
        .replace('=', "\\e")
        .replace('\n', "\\n")
}

fn unesc(s: &str) -> String {
    s.replace("\\n", "\n")
        .replace("\\e", "=")
        .replace("\\p", "|")
        .replace("\\t", "\t")
        .replace("\\\\", "\\")
}

fn parse_kv(s: &str) -> Vec<(String, String)> {
    s.split('|')
        .filter(|kv| !kv.is_empty())
        .filter_map(|kv| kv.split_once('=').map(|(k, v)| (unesc(k), unesc(v))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> DatasetMeta {
        DatasetMeta {
            rows: 1000,
            cols: 50,
            sparsity: 0.8,
            num_classes: 3,
            missing_rate: 0.05,
        }
    }

    #[test]
    fn versioning_increments_per_name() {
        let db = ExperimentDb::new();
        let a1 = db.register_pipeline("p2", &["transformencode", "lm"]);
        let a2 = db.register_pipeline("p2", &["transformencode", "normalize", "lm"]);
        let b1 = db.register_pipeline("other", &["kmeans"]);
        assert_eq!(db.pipeline(a1).unwrap().version, 1);
        assert_eq!(db.pipeline(a2).unwrap().version, 2);
        assert_eq!(db.pipeline(b1).unwrap().version, 1);
        assert_eq!(db.versions("p2").len(), 2);
    }

    #[test]
    fn step_categorization_matches_paper_types() {
        assert_eq!(
            OperatorType::categorize("transformencode"),
            OperatorType::Transformer
        );
        assert_eq!(
            OperatorType::categorize("impute_mice"),
            OperatorType::Imputer
        );
        assert_eq!(OperatorType::categorize("normalize"), OperatorType::Scaler);
        assert_eq!(
            OperatorType::categorize("train_test_split"),
            OperatorType::Sampler
        );
        assert_eq!(
            OperatorType::categorize("feature_select"),
            OperatorType::Selector
        );
        assert_eq!(OperatorType::categorize("lm"), OperatorType::Estimator);
        assert_eq!(
            OperatorType::categorize("vote_ensemble"),
            OperatorType::Ensemble
        );
    }

    #[test]
    fn run_tracking_and_queries() {
        let db = ExperimentDb::new();
        let p1 = db.register_pipeline("a", &["lm"]);
        let p2 = db.register_pipeline("b", &["l2svm"]);
        db.track_run(
            p1,
            &[("lr", "0.1")],
            meta(),
            &[("accuracy", 0.8)],
            &["src:x.csv"],
        );
        db.track_run(p1, &[("lr", "0.2")], meta(), &[("accuracy", 0.9)], &[]);
        db.track_run(p2, &[], meta(), &[("accuracy", 0.85)], &[]);
        assert!(db.track_run(999, &[], meta(), &[], &[]).is_none());

        assert_eq!(db.runs_for(p1).len(), 2);
        let best = db.best_run("accuracy").unwrap();
        assert_eq!(best.metric("accuracy"), Some(0.9));
        let worst = db.best_run_min("accuracy").unwrap();
        assert_eq!(worst.metric("accuracy"), Some(0.8));
        assert!(db.best_run_min("loss").is_none());
        let cmp = db.compare("accuracy");
        assert_eq!(cmp[0].0, p1); // mean 0.85 ... tie actually: p1 mean 0.85, p2 0.85
        assert_eq!(cmp.len(), 2);
    }

    #[test]
    fn save_load_roundtrip() {
        let db = ExperimentDb::new();
        let p = db.register_pipeline("pipe|with=weird\tname", &["encode", "lm"]);
        db.track_run(
            p,
            &[("lr", "0.1"), ("note", "a|b=c")],
            meta(),
            &[("rmse", 1.25), ("r2", 0.9)],
            &["lineage|1", "lineage=2"],
        );
        let path = std::env::temp_dir().join(format!("expdb-{}.txt", std::process::id()));
        db.save(&path).unwrap();
        let loaded = ExperimentDb::load(&path).unwrap();
        assert_eq!(loaded.all_pipelines(), db.all_pipelines());
        assert_eq!(loaded.all_runs(), db.all_runs());
        // IDs continue after reload.
        let p2 = loaded.register_pipeline("new", &["x"]);
        assert!(p2 > p);
    }

    #[test]
    fn load_rejects_garbage() {
        let path = std::env::temp_dir().join(format!("expdb-bad-{}.txt", std::process::id()));
        std::fs::write(&path, "not an expdb\n").unwrap();
        assert!(ExperimentDb::load(&path).is_err());
    }
}
