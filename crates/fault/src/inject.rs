//! Deterministic, seeded fault injection at the channel layer.
//!
//! A [`FaultPlan`] describes what can go wrong on a link — message drops,
//! extra delay, duplication, and a hard kill after N messages — and a
//! [`FaultyChannel`] applies the plan to any [`Channel`] on the send path.
//! All randomness comes from a SplitMix64 stream seeded by the plan, so a
//! failing test reproduces exactly from its seed. The wrapper composes
//! with the rest of the transport stack, e.g.
//! `Instrumented(Faulty(Shaped(Tcp)))` simulates a flaky WAN link.

use std::io;
use std::time::Duration;

use exdra_net::transport::Channel;

use crate::retry::splitmix64;

/// A seeded description of link faults. Probabilities are per-message and
/// evaluated on the send path in the order drop → kill → delay → duplicate.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Seed for the deterministic fault stream.
    pub seed: u64,
    /// Probability a sent message is silently dropped.
    pub drop_prob: f64,
    /// Probability a sent message is delivered twice.
    pub duplicate_prob: f64,
    /// Probability a sent message is delayed by [`FaultPlan::delay`].
    pub delay_prob: f64,
    /// Extra latency applied to delayed messages.
    pub delay: Duration,
    /// After this many send attempts the channel dies permanently:
    /// every later send/recv fails with `BrokenPipe`/`ConnectionReset`.
    pub kill_after: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing (identity wrapper).
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            delay_prob: 0.0,
            delay: Duration::ZERO,
            kill_after: None,
        }
    }

    /// Plan that kills the link after `n` sent messages.
    pub fn kill_after(seed: u64, n: u64) -> Self {
        Self {
            kill_after: Some(n),
            ..Self::none(seed)
        }
    }

    /// Plan that drops each message with probability `p`.
    pub fn dropping(seed: u64, p: f64) -> Self {
        Self {
            drop_prob: p,
            ..Self::none(seed)
        }
    }

    /// Sets the message-drop probability.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop_prob = p;
        self
    }

    /// Sets the duplication probability.
    pub fn with_duplicate(mut self, p: f64) -> Self {
        self.duplicate_prob = p;
        self
    }

    /// Sets the delay fault: probability `p`, extra latency `d`.
    pub fn with_delay(mut self, p: f64, d: Duration) -> Self {
        self.delay_prob = p;
        self.delay = d;
        self
    }

    /// Sets the kill threshold.
    pub fn with_kill_after(mut self, n: u64) -> Self {
        self.kill_after = Some(n);
        self
    }
}

/// Channel wrapper that applies a [`FaultPlan`] to the send path.
pub struct FaultyChannel<C: Channel> {
    inner: C,
    plan: FaultPlan,
    rng: u64,
    sent: u64,
    killed: bool,
}

impl<C: Channel> FaultyChannel<C> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: C, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            rng: plan.seed,
            sent: 0,
            // kill_after == Some(0) means the link is dead on arrival.
            killed: matches!(plan.kill_after, Some(0)),
        }
    }

    /// Messages offered to the send path so far (including dropped ones).
    pub fn sent_count(&self) -> u64 {
        self.sent
    }

    /// True once the kill threshold has fired.
    pub fn is_killed(&self) -> bool {
        self.killed
    }

    /// Unwraps the inner channel.
    pub fn into_inner(self) -> C {
        self.inner
    }

    fn draw_unit(&mut self) -> f64 {
        (splitmix64(&mut self.rng) >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<C: Channel> Channel for FaultyChannel<C> {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        if self.killed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "fault injection: link killed",
            ));
        }
        self.sent += 1;
        if let Some(n) = self.plan.kill_after {
            if self.sent > n {
                self.killed = true;
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "fault injection: link killed",
                ));
            }
        }
        if self.plan.drop_prob > 0.0 && self.draw_unit() < self.plan.drop_prob {
            // Silently lose the message: the peer never sees it, the
            // caller sees success — exactly what a lossy link does.
            return Ok(());
        }
        if self.plan.delay_prob > 0.0 && self.draw_unit() < self.plan.delay_prob {
            std::thread::sleep(self.plan.delay);
        }
        self.inner.send(payload)?;
        if self.plan.duplicate_prob > 0.0 && self.draw_unit() < self.plan.duplicate_prob {
            self.inner.send(payload)?;
        }
        Ok(())
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        if self.killed {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "fault injection: link killed",
            ));
        }
        self.inner.recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exdra_net::transport::mem_pair;

    #[test]
    fn none_plan_is_transparent() {
        let (a, mut b) = mem_pair();
        let mut fa = FaultyChannel::new(a, FaultPlan::none(1));
        fa.send(b"hello").unwrap();
        assert_eq!(b.recv().unwrap(), b"hello");
    }

    #[test]
    fn kill_after_n_messages() {
        let (a, mut b) = mem_pair();
        let mut fa = FaultyChannel::new(a, FaultPlan::kill_after(1, 2));
        fa.send(b"1").unwrap();
        fa.send(b"2").unwrap();
        let err = fa.send(b"3").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert!(fa.is_killed());
        assert!(fa.recv().is_err());
        assert_eq!(b.recv().unwrap(), b"1");
        assert_eq!(b.recv().unwrap(), b"2");
    }

    #[test]
    fn kill_after_zero_is_dead_on_arrival() {
        let (a, _b) = mem_pair();
        let mut fa = FaultyChannel::new(a, FaultPlan::kill_after(9, 0));
        assert!(fa.send(b"x").is_err());
    }

    #[test]
    fn drops_are_silent_and_seeded() {
        let run = |seed| {
            let (a, b) = mem_pair();
            let mut fa = FaultyChannel::new(a, FaultPlan::dropping(seed, 0.5));
            for i in 0..100u8 {
                fa.send(&[i]).unwrap();
            }
            drop(fa);
            let mut got = Vec::new();
            let mut b = b;
            while let Ok(m) = b.recv() {
                got.push(m[0]);
            }
            got
        };
        let first = run(42);
        assert!(first.len() < 100, "some messages must drop");
        assert!(!first.is_empty(), "some messages must survive");
        assert_eq!(first, run(42), "same seed, same faults");
        assert_ne!(first, run(43), "different seed, different faults");
    }

    #[test]
    fn duplicates_deliver_twice() {
        let (a, b) = mem_pair();
        let mut fa = FaultyChannel::new(a, FaultPlan::none(7).with_duplicate(1.0));
        fa.send(b"dup").unwrap();
        drop(fa);
        let mut b = b;
        assert_eq!(b.recv().unwrap(), b"dup");
        assert_eq!(b.recv().unwrap(), b"dup");
        assert!(b.recv().is_err());
    }

    #[test]
    fn delay_fault_adds_latency() {
        let (a, mut b) = mem_pair();
        let mut fa = FaultyChannel::new(
            a,
            FaultPlan::none(3).with_delay(1.0, Duration::from_millis(20)),
        );
        let t0 = std::time::Instant::now();
        fa.send(b"slow").unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(20));
        assert_eq!(b.recv().unwrap(), b"slow");
    }
}
