//! Deterministic, seeded fault injection at the channel layer.
//!
//! A [`FaultPlan`] describes what can go wrong on a link — message drops,
//! extra delay, duplication, and a hard kill after N messages — and a
//! [`FaultyChannel`] applies the plan to any [`Channel`] on the send path.
//! All randomness comes from a SplitMix64 stream seeded by the plan, so a
//! failing test reproduces exactly from its seed. The wrapper composes
//! with the rest of the transport stack, e.g.
//! `Instrumented(Faulty(Shaped(Tcp)))` simulates a flaky WAN link.

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use exdra_net::transport::{Channel, RecvHalf, SendHalf, SplitResult};

use crate::retry::splitmix64;

/// A seeded description of link faults. Probabilities are per-message and
/// evaluated on the send path in the order drop → kill → delay → duplicate.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Seed for the deterministic fault stream.
    pub seed: u64,
    /// Probability a sent message is silently dropped.
    pub drop_prob: f64,
    /// Probability a sent message is delivered twice.
    pub duplicate_prob: f64,
    /// Probability a sent message is delayed by [`FaultPlan::delay`].
    pub delay_prob: f64,
    /// Extra latency applied to delayed messages.
    pub delay: Duration,
    /// After this many send attempts the channel dies permanently:
    /// every later send/recv fails with `BrokenPipe`/`ConnectionReset`.
    pub kill_after: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing (identity wrapper).
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            delay_prob: 0.0,
            delay: Duration::ZERO,
            kill_after: None,
        }
    }

    /// Plan that kills the link after `n` sent messages.
    pub fn kill_after(seed: u64, n: u64) -> Self {
        Self {
            kill_after: Some(n),
            ..Self::none(seed)
        }
    }

    /// Plan that drops each message with probability `p`.
    pub fn dropping(seed: u64, p: f64) -> Self {
        Self {
            drop_prob: p,
            ..Self::none(seed)
        }
    }

    /// Sets the message-drop probability.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop_prob = p;
        self
    }

    /// Sets the duplication probability.
    pub fn with_duplicate(mut self, p: f64) -> Self {
        self.duplicate_prob = p;
        self
    }

    /// Sets the delay fault: probability `p`, extra latency `d`.
    pub fn with_delay(mut self, p: f64, d: Duration) -> Self {
        self.delay_prob = p;
        self.delay = d;
        self
    }

    /// Sets the kill threshold.
    pub fn with_kill_after(mut self, n: u64) -> Self {
        self.kill_after = Some(n);
        self
    }
}

/// Channel wrapper that applies a [`FaultPlan`] to the send path.
///
/// The kill flag is shared between split halves, so a kill fired on the
/// send path also poisons a receive half running on another thread —
/// matching a real dead socket, where both directions fail.
pub struct FaultyChannel<C: Channel> {
    inner: C,
    plan: FaultPlan,
    rng: u64,
    sent: u64,
    killed: Arc<AtomicBool>,
}

impl<C: Channel> FaultyChannel<C> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: C, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            rng: plan.seed,
            sent: 0,
            // kill_after == Some(0) means the link is dead on arrival.
            killed: Arc::new(AtomicBool::new(matches!(plan.kill_after, Some(0)))),
        }
    }

    /// Messages offered to the send path so far (including dropped ones).
    pub fn sent_count(&self) -> u64 {
        self.sent
    }

    /// True once the kill threshold has fired.
    pub fn is_killed(&self) -> bool {
        self.killed.load(Ordering::SeqCst)
    }

    /// Unwraps the inner channel.
    pub fn into_inner(self) -> C {
        self.inner
    }
}

fn killed_send_err() -> io::Error {
    io::Error::new(io::ErrorKind::BrokenPipe, "fault injection: link killed")
}

fn killed_recv_err() -> io::Error {
    io::Error::new(
        io::ErrorKind::ConnectionReset,
        "fault injection: link killed",
    )
}

/// Send-path fault logic shared between the whole channel and its split
/// send half. Returns `Ok(true)` when the message should be forwarded,
/// `Ok(false)` when it is silently dropped.
fn apply_send_faults(
    plan: &FaultPlan,
    rng: &mut u64,
    sent: &mut u64,
    killed: &AtomicBool,
) -> io::Result<SendFate> {
    if killed.load(Ordering::SeqCst) {
        return Err(killed_send_err());
    }
    *sent += 1;
    if let Some(n) = plan.kill_after {
        if *sent > n {
            killed.store(true, Ordering::SeqCst);
            return Err(killed_send_err());
        }
    }
    let mut draw = || (splitmix64(rng) >> 11) as f64 / (1u64 << 53) as f64;
    if plan.drop_prob > 0.0 && draw() < plan.drop_prob {
        // Silently lose the message: the peer never sees it, the
        // caller sees success — exactly what a lossy link does.
        return Ok(SendFate::Drop);
    }
    if plan.delay_prob > 0.0 && draw() < plan.delay_prob {
        std::thread::sleep(plan.delay);
    }
    let duplicate = plan.duplicate_prob > 0.0 && draw() < plan.duplicate_prob;
    Ok(if duplicate {
        SendFate::SendTwice
    } else {
        SendFate::Send
    })
}

enum SendFate {
    Drop,
    Send,
    SendTwice,
}

impl<C: Channel + 'static> Channel for FaultyChannel<C> {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        match apply_send_faults(&self.plan, &mut self.rng, &mut self.sent, &self.killed)? {
            SendFate::Drop => Ok(()),
            SendFate::Send => self.inner.send(payload),
            SendFate::SendTwice => {
                self.inner.send(payload)?;
                self.inner.send(payload)
            }
        }
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        if self.is_killed() {
            return Err(killed_recv_err());
        }
        self.inner.recv()
    }

    fn split(self: Box<Self>) -> SplitResult {
        let Self {
            inner,
            plan,
            rng,
            sent,
            killed,
        } = *self;
        match Box::new(inner).split() {
            SplitResult::Split(s, r) => SplitResult::Split(
                Box::new(FaultySendHalf {
                    inner: s,
                    plan,
                    rng,
                    sent,
                    killed: Arc::clone(&killed),
                }),
                Box::new(FaultyRecvHalf { inner: r, killed }),
            ),
            SplitResult::Whole(w) => SplitResult::Whole(Box::new(FaultyChannel {
                inner: w,
                plan,
                rng,
                sent,
                killed,
            })),
        }
    }
}

struct FaultySendHalf {
    inner: Box<dyn SendHalf>,
    plan: FaultPlan,
    rng: u64,
    sent: u64,
    killed: Arc<AtomicBool>,
}

impl SendHalf for FaultySendHalf {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        match apply_send_faults(&self.plan, &mut self.rng, &mut self.sent, &self.killed)? {
            SendFate::Drop => Ok(()),
            SendFate::Send => self.inner.send(payload),
            SendFate::SendTwice => {
                self.inner.send(payload)?;
                self.inner.send(payload)
            }
        }
    }
}

struct FaultyRecvHalf {
    inner: Box<dyn RecvHalf>,
    killed: Arc<AtomicBool>,
}

impl RecvHalf for FaultyRecvHalf {
    fn recv(&mut self) -> io::Result<Vec<u8>> {
        if self.killed.load(Ordering::SeqCst) {
            return Err(killed_recv_err());
        }
        self.inner.recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exdra_net::transport::mem_pair;

    #[test]
    fn none_plan_is_transparent() {
        let (a, mut b) = mem_pair();
        let mut fa = FaultyChannel::new(a, FaultPlan::none(1));
        fa.send(b"hello").unwrap();
        assert_eq!(b.recv().unwrap(), b"hello");
    }

    #[test]
    fn kill_after_n_messages() {
        let (a, mut b) = mem_pair();
        let mut fa = FaultyChannel::new(a, FaultPlan::kill_after(1, 2));
        fa.send(b"1").unwrap();
        fa.send(b"2").unwrap();
        let err = fa.send(b"3").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert!(fa.is_killed());
        assert!(fa.recv().is_err());
        assert_eq!(b.recv().unwrap(), b"1");
        assert_eq!(b.recv().unwrap(), b"2");
    }

    #[test]
    fn kill_after_zero_is_dead_on_arrival() {
        let (a, _b) = mem_pair();
        let mut fa = FaultyChannel::new(a, FaultPlan::kill_after(9, 0));
        assert!(fa.send(b"x").is_err());
    }

    #[test]
    fn drops_are_silent_and_seeded() {
        let run = |seed| {
            let (a, b) = mem_pair();
            let mut fa = FaultyChannel::new(a, FaultPlan::dropping(seed, 0.5));
            for i in 0..100u8 {
                fa.send(&[i]).unwrap();
            }
            drop(fa);
            let mut got = Vec::new();
            let mut b = b;
            while let Ok(m) = b.recv() {
                got.push(m[0]);
            }
            got
        };
        let first = run(42);
        assert!(first.len() < 100, "some messages must drop");
        assert!(!first.is_empty(), "some messages must survive");
        assert_eq!(first, run(42), "same seed, same faults");
        assert_ne!(first, run(43), "different seed, different faults");
    }

    #[test]
    fn duplicates_deliver_twice() {
        let (a, b) = mem_pair();
        let mut fa = FaultyChannel::new(a, FaultPlan::none(7).with_duplicate(1.0));
        fa.send(b"dup").unwrap();
        drop(fa);
        let mut b = b;
        assert_eq!(b.recv().unwrap(), b"dup");
        assert_eq!(b.recv().unwrap(), b"dup");
        assert!(b.recv().is_err());
    }

    #[test]
    fn split_halves_share_the_kill_flag() {
        let (a, mut b) = mem_pair();
        let fa = FaultyChannel::new(a, FaultPlan::kill_after(5, 1));
        let (mut s, mut r) = match (Box::new(fa) as Box<dyn Channel>).split() {
            exdra_net::SplitResult::Split(s, r) => (s, r),
            exdra_net::SplitResult::Whole(_) => panic!("faulty(mem) must split"),
        };
        s.send(b"ok").unwrap();
        assert_eq!(b.recv().unwrap(), b"ok");
        // The second send trips the kill; the receive half (which could be
        // on another thread) must observe the same death.
        assert!(s.send(b"boom").is_err());
        let err = r.recv().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
    }

    #[test]
    fn delay_fault_adds_latency() {
        let (a, mut b) = mem_pair();
        let mut fa = FaultyChannel::new(
            a,
            FaultPlan::none(3).with_delay(1.0, Duration::from_millis(20)),
        );
        let t0 = std::time::Instant::now();
        fa.send(b"slow").unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(20));
        assert_eq!(b.recv().unwrap(), b"slow");
    }
}
