//! Straggler detection: latency-histogram-derived speculation deadlines.
//!
//! A federated computation is as slow as its slowest partition (the
//! paper's parallel-RPC model makes every consolidation a barrier), so a
//! single overloaded or WAN-degraded worker stalls the whole exploratory
//! loop. The classic mitigation (MapReduce backup tasks, Spark
//! speculative execution) is to re-issue a request to a replica once the
//! primary's response time exceeds what its own history predicts, and
//! keep whichever reply lands first.
//!
//! [`LatencyTracker`] holds one log-scale latency [`Histogram`] per
//! worker; [`LatencyTracker::deadline`] turns the history into a
//! speculation deadline (`multiplier × p95`, clamped) once enough samples
//! exist. The protocol-aware racing itself lives in
//! `exdra-core::supervision` — this module is transport-agnostic
//! bookkeeping, usable from PS rounds and plain RPC paths alike.

use std::time::Duration;

use exdra_obs::Histogram;

/// When and how aggressively to speculate on stragglers.
#[derive(Debug, Clone, Copy)]
pub struct SpeculationPolicy {
    /// Deadline = `multiplier × p95` of the worker's observed latency.
    pub multiplier: f64,
    /// Minimum samples per worker before any deadline is derived
    /// (cold histograms would speculate on noise).
    pub min_samples: u64,
    /// Lower clamp on derived deadlines (don't speculate on
    /// micro-latency jitter).
    pub min_deadline: Duration,
    /// Upper clamp on derived deadlines (bound the wait even when the
    /// history is already slow).
    pub max_deadline: Duration,
}

impl Default for SpeculationPolicy {
    fn default() -> Self {
        Self {
            multiplier: 3.0,
            min_samples: 8,
            min_deadline: Duration::from_millis(10),
            max_deadline: Duration::from_secs(10),
        }
    }
}

/// Per-worker latency history and deadline derivation.
#[derive(Debug)]
pub struct LatencyTracker {
    histograms: Vec<Histogram>,
    policy: SpeculationPolicy,
}

impl LatencyTracker {
    /// Tracker for `n` workers under `policy`.
    pub fn new(n: usize, policy: SpeculationPolicy) -> Self {
        Self {
            histograms: (0..n).map(|_| Histogram::default()).collect(),
            policy,
        }
    }

    /// Number of tracked workers.
    pub fn len(&self) -> usize {
        self.histograms.len()
    }

    /// True when no workers are tracked.
    pub fn is_empty(&self) -> bool {
        self.histograms.is_empty()
    }

    /// The active policy.
    pub fn policy(&self) -> SpeculationPolicy {
        self.policy
    }

    /// Records one completed request's latency for `worker`.
    /// Out-of-range workers are ignored (federations never shrink, but
    /// racing recovery may briefly observe a stale index).
    pub fn record(&self, worker: usize, latency: Duration) {
        if let Some(h) = self.histograms.get(worker) {
            h.record(latency.as_nanos() as u64);
        }
    }

    /// Samples recorded for `worker` so far.
    pub fn samples(&self, worker: usize) -> u64 {
        self.histograms.get(worker).map_or(0, |h| h.count())
    }

    /// The speculation deadline for `worker`: `multiplier × p95` of its
    /// history, clamped to `[min_deadline, max_deadline]`. `None` until
    /// `min_samples` observations exist — no history, no speculation.
    pub fn deadline(&self, worker: usize) -> Option<Duration> {
        let h = self.histograms.get(worker)?;
        if h.count() < self.policy.min_samples {
            return None;
        }
        let p95 = h.quantile(0.95);
        let nanos = (p95 * self.policy.multiplier).max(0.0);
        let d = Duration::from_nanos(nanos as u64);
        Some(d.clamp(self.policy.min_deadline, self.policy.max_deadline))
    }

    /// The worker with the smallest observed p95 among `candidates`
    /// (ties break to the lower index); workers with no samples rank as
    /// fastest, so unobserved replicas get a chance. `None` when
    /// `candidates` is empty.
    pub fn fastest(&self, candidates: &[usize]) -> Option<usize> {
        candidates
            .iter()
            .copied()
            .filter(|&w| w < self.histograms.len())
            .min_by(|&a, &b| {
                let pa = self.p95(a);
                let pb = self.p95(b);
                pa.partial_cmp(&pb).unwrap_or(std::cmp::Ordering::Equal)
            })
    }

    fn p95(&self, worker: usize) -> f64 {
        let h = &self.histograms[worker];
        if h.count() == 0 {
            0.0
        } else {
            h.quantile(0.95)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_policy() -> SpeculationPolicy {
        SpeculationPolicy {
            multiplier: 2.0,
            min_samples: 4,
            min_deadline: Duration::from_nanos(1),
            max_deadline: Duration::from_secs(60),
        }
    }

    #[test]
    fn no_deadline_before_min_samples() {
        let t = LatencyTracker::new(2, fast_policy());
        assert_eq!(t.deadline(0), None);
        for _ in 0..3 {
            t.record(0, Duration::from_millis(10));
        }
        assert_eq!(t.deadline(0), None, "3 < min_samples");
        t.record(0, Duration::from_millis(10));
        assert!(t.deadline(0).is_some());
        assert_eq!(t.deadline(1), None, "other worker untouched");
    }

    #[test]
    fn deadline_tracks_history_scale() {
        let t = LatencyTracker::new(1, fast_policy());
        for _ in 0..32 {
            t.record(0, Duration::from_millis(10));
        }
        let d = t.deadline(0).unwrap();
        // 2 × p95 of a ~10ms history: within the 2x bucket resolution of
        // the log histogram, well under 100ms and over 5ms.
        assert!(d >= Duration::from_millis(5), "{d:?}");
        assert!(d <= Duration::from_millis(100), "{d:?}");
    }

    #[test]
    fn deadline_clamped_to_policy_bounds() {
        let policy = SpeculationPolicy {
            multiplier: 1000.0,
            min_samples: 1,
            min_deadline: Duration::from_millis(5),
            max_deadline: Duration::from_millis(50),
        };
        let t = LatencyTracker::new(1, policy);
        t.record(0, Duration::from_secs(1));
        assert_eq!(t.deadline(0).unwrap(), Duration::from_millis(50));
    }

    #[test]
    fn fastest_prefers_low_latency_and_unobserved() {
        let t = LatencyTracker::new(3, fast_policy());
        for _ in 0..8 {
            t.record(0, Duration::from_millis(100));
            t.record(1, Duration::from_millis(1));
        }
        assert_eq!(t.fastest(&[0, 1]), Some(1));
        // Worker 2 has no history and ranks fastest.
        assert_eq!(t.fastest(&[0, 2]), Some(2));
        assert_eq!(t.fastest(&[]), None);
        // Out-of-range candidates are ignored.
        assert_eq!(t.fastest(&[7]), None);
    }

    #[test]
    fn record_out_of_range_is_ignored() {
        let t = LatencyTracker::new(1, fast_policy());
        t.record(5, Duration::from_millis(1));
        assert_eq!(t.samples(5), 0);
        assert_eq!(t.samples(0), 0);
    }
}
